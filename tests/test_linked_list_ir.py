"""Invariants of the intrusive linked-list operation storage.

The linked list must behave observably like the list it replaced:
``move_before``/``move_after``/``erase``/``insert_before``/``insert_after``
preserve iteration order, ``walk()`` stays safe when the current (or a
nested) operation is erased mid-iteration, and ordering queries
(``is_before_in_block``/``block_index``) stay correct through arbitrary
mutation, including the order-key renumbering path.
"""

import pytest

from repro.dialects import arith, builtin, scf
from repro.ir import Block, IRError, i64, index


def _constants(n):
    """A detached block with n constant ops valued 0..n-1."""
    block = Block()
    ops = [block.append(arith.ConstantOp.build(i, i64())) for i in range(n)]
    return block, ops


def _values(block):
    return [op.get_int_attr("value") for op in block]


class TestLinkedListStructure:
    def test_append_order_and_len(self):
        block, ops = _constants(5)
        assert _values(block) == [0, 1, 2, 3, 4]
        assert len(block) == 5
        assert block.first_op is ops[0]
        assert block.last_op is ops[4]

    def test_operations_view_is_a_snapshot(self):
        block, ops = _constants(3)
        view = block.operations
        view.reverse()  # mutating the view must not affect the block
        assert _values(block) == [0, 1, 2]

    def test_insert_before_and_after(self):
        block, ops = _constants(3)
        block.insert_before(ops[0], arith.ConstantOp.build(10, i64()))
        block.insert_after(ops[2], arith.ConstantOp.build(11, i64()))
        block.insert_before(ops[1], arith.ConstantOp.build(12, i64()))
        block.insert_after(ops[1], arith.ConstantOp.build(13, i64()))
        assert _values(block) == [10, 0, 12, 1, 13, 2, 11]

    def test_insert_at_index_matches_list_semantics(self):
        block, _ = _constants(3)
        block.insert(0, arith.ConstantOp.build(20, i64()))
        block.insert(2, arith.ConstantOp.build(21, i64()))
        block.insert(99, arith.ConstantOp.build(22, i64()))
        assert _values(block) == [20, 0, 21, 1, 2, 22]

    def test_insert_before_self_is_a_noop(self):
        block, ops = _constants(3)
        assert block.insert_before(ops[1], ops[1]) is ops[1]
        ops[1].move_before(ops[1])
        assert _values(block) == [0, 1, 2]
        assert block.last_op is ops[2]

    def test_insert_with_foreign_anchor_is_rejected(self):
        block_a, ops_a = _constants(2)
        block_b, _ = _constants(1)
        with pytest.raises(IRError, match="anchor"):
            block_b.insert_before(ops_a[0], arith.ConstantOp.build(9, i64()))

    def test_detach_relinks_neighbours(self):
        block, ops = _constants(3)
        ops[1].detach()
        assert _values(block) == [0, 2]
        assert ops[1].parent is None
        assert ops[0].next_op() is ops[2]
        assert ops[2].prev_op() is ops[0]
        # A detached op can be re-appended.
        block.append(ops[1])
        assert _values(block) == [0, 2, 1]

    def test_erase_first_middle_last(self):
        block, ops = _constants(5)
        ops[0].erase()
        ops[2].erase()
        ops[4].erase()
        assert _values(block) == [1, 3]
        assert block.first_op is ops[1]
        assert block.last_op is ops[3]

    def test_move_before_and_after_preserve_order(self):
        block, ops = _constants(4)
        ops[3].move_before(ops[0])
        assert _values(block) == [3, 0, 1, 2]
        ops[0].move_after(ops[2])
        assert _values(block) == [3, 1, 2, 0]
        # Moving within the same neighbourhood.
        ops[1].move_after(ops[1].next_op())
        assert _values(block) == [3, 2, 1, 0]

    def test_move_between_blocks(self):
        block_a, ops_a = _constants(3)
        block_b, ops_b = _constants(2)
        ops_a[1].move_before(ops_b[1])
        assert _values(block_a) == [0, 2]
        assert _values(block_b) == [0, 1, 1]
        assert ops_a[1].parent is block_b


class TestOrderingQueries:
    def test_is_before_in_block(self):
        block, ops = _constants(4)
        assert ops[0].is_before_in_block(ops[3])
        assert not ops[3].is_before_in_block(ops[0])
        assert not ops[2].is_before_in_block(ops[2])

    def test_is_before_requires_same_block(self):
        block_a, ops_a = _constants(1)
        block_b, ops_b = _constants(1)
        with pytest.raises(IRError):
            ops_a[0].is_before_in_block(ops_b[0])

    def test_block_index_tracks_mutation(self):
        block, ops = _constants(4)
        assert [op.block_index() for op in ops] == [0, 1, 2, 3]
        ops[0].erase()
        assert ops[2].block_index() == 1
        block.insert_before(ops[1], arith.ConstantOp.build(7, i64()))
        assert ops[1].block_index() == 1
        assert ops[3].block_index() == 3

    def test_block_index_rejects_detached_op(self):
        block, ops = _constants(2)
        detached = ops[0].detach()
        with pytest.raises(IRError):
            detached.block_index()

    def test_order_survives_repeated_insertion_at_same_point(self):
        # Bisecting the same gap repeatedly exhausts it and forces the
        # renumbering path; ordering must stay exact throughout.
        block, ops = _constants(2)
        anchor = ops[1]
        previous = ops[0]
        for i in range(200):
            inserted = block.insert_before(anchor, arith.ConstantOp.build(
                100 + i, i64()))
            assert previous.is_before_in_block(inserted)
            assert inserted.is_before_in_block(anchor)
            anchor = inserted
        values = _values(block)
        assert values[0] == 0 and values[-1] == 1
        assert values[1:-1] == list(range(100 + 199, 100 - 1, -1))


class TestWalkUnderErasure:
    def _nested_module(self):
        module = builtin.ModuleOp.build()
        c0 = module.append(arith.ConstantOp.build(0, index()))
        c8 = module.append(arith.ConstantOp.build(8, index()))
        c1 = module.append(arith.ConstantOp.build(1, index()))
        loop = module.append(scf.ForOp.build(c0.result, c8.result, c1.result))
        inner = loop.body.append(arith.ConstantOp.build(42, i64()))
        loop.body.append(scf.YieldOp.build())
        return module, loop, inner

    def test_walk_safe_under_erasure_of_current(self):
        module, loop, inner = self._nested_module()
        visited = []
        for op in module.walk(include_self=False):
            if op.parent is None:
                continue
            visited.append(op.name)
            if op.name == "arith.constant" and not op.has_uses():
                op.erase()
        assert "scf.for" in visited
        # The unused inner constant was erased while being visited.
        assert inner.parent is None

    def test_walk_safe_under_erasure_of_nested(self):
        module, loop, inner = self._nested_module()
        seen_inner = []
        for op in module.walk(include_self=False):
            if op.parent is None:
                continue
            if op is loop:
                # Erase a nested op while visiting its ancestor.
                inner.erase()
            seen_inner.append(op is inner)
        assert not any(seen_inner)

    def test_walk_safe_under_erasure_of_subtree(self):
        module, loop, inner = self._nested_module()
        visited = []
        for op in module.walk(include_self=False):
            if op.parent is None:
                continue
            if op is loop:
                # Erase the whole loop subtree while standing on it; the
                # nested ops must not be yielded afterwards.
                loop.erase()
                continue
            visited.append(op)
        assert inner not in visited
        assert inner.parent is None

    def test_erase_rejects_op_with_uses(self):
        block = Block()
        c = block.append(arith.ConstantOp.build(1, i64()))
        block.append(arith.AddIOp.build(c.result, c.result))
        with pytest.raises(IRError, match="still have uses"):
            c.erase()


class TestUseListInvariants:
    def test_users_are_distinct_and_in_use_order(self):
        block = Block()
        c = block.append(arith.ConstantOp.build(1, i64()))
        first = block.append(arith.AddIOp.build(c.result, c.result))
        second = block.append(arith.MulIOp.build(c.result, first.result))
        assert c.result.users() == [first, second]
        assert c.result.num_uses() == 3

    def test_remove_use_and_replace_all_uses(self):
        block = Block()
        a = block.append(arith.ConstantOp.build(1, i64()))
        b = block.append(arith.ConstantOp.build(2, i64()))
        user = block.append(arith.AddIOp.build(a.result, a.result))
        a.result.replace_all_uses_with(b.result)
        assert not a.result.has_uses()
        assert b.result.users() == [user]
        assert user.operands[0] is b.result and user.operands[1] is b.result

    def test_many_uses_scale(self):
        # 1000 users: users() and the final RAUW must stay linear (this
        # was quadratic with the old list-scan use chain).
        block = Block()
        c = block.append(arith.ConstantOp.build(1, i64()))
        d = block.append(arith.ConstantOp.build(2, i64()))
        users = [block.append(arith.AddIOp.build(c.result, c.result))
                 for _ in range(1000)]
        assert c.result.num_uses() == 2000
        assert c.result.users() == users
        c.result.replace_all_uses_with(d.result)
        assert not c.result.has_uses()
        assert d.result.num_uses() == 2000
