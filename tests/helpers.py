"""Shared helpers for building test IR mirroring the paper's listings."""

from __future__ import annotations

from repro.dialects import affine, arith, builtin, func, memref, scf, sycl
from repro.ir import (
    Builder,
    InsertionPoint,
    MemRefType,
    StringAttr,
    UnitAttr,
    f32,
    i1,
    i32,
    i64,
    index,
    memref as memref_type,
)


def build_listing1_function():
    """Listing 1: a function with potentially aliasing memref arguments.

    .. code-block:: text

        func.func @foo(%cond: i1, %v1: i32, %v2: i32,
                       %ptr1: memref<i32>, %ptr2: memref<i32>) {
          scf.if %cond {
            memref.store %v1, %ptr1[] {tag = "a"}
          } else {
            memref.store %v2, %ptr2[] {tag = "b"}
          }
          ... = memref.load %ptr1[]
        }
    """
    scalar_memref = MemRefType((), i32())
    f = func.FuncOp.build(
        "foo", [i1(), i32(), i32(), scalar_memref, scalar_memref],
        arg_names=["cond", "v1", "v2", "ptr1", "ptr2"])
    cond, v1, v2, ptr1, ptr2 = f.arguments
    b = Builder(InsertionPoint.at_end(f.body))
    if_op = b.insert(scf.IfOp.build(cond, with_else=True))
    store_a = scf.IfOp and memref.StoreOp.build(v1, ptr1)
    store_a.set_attr("tag", StringAttr("a"))
    if_op.then_block.append(store_a)
    if_op.then_block.append(scf.YieldOp.build())
    store_b = memref.StoreOp.build(v2, ptr2)
    store_b.set_attr("tag", StringAttr("b"))
    if_op.else_block.append(store_b)
    if_op.else_block.append(scf.YieldOp.build())
    load = b.insert(memref.LoadOp.build(ptr1))
    b.insert(func.ReturnOp.build())
    return f, {"store_a": store_a, "store_b": store_b, "load": load,
               "ptr1": ptr1, "ptr2": ptr2}


def build_listing2_function():
    """Listing 2: a function with a divergent branch.

    The global id of an nd_item feeds a branch condition; both branch arms
    store different values to the same alloca, and a load of that alloca
    feeds a second branch, which is therefore divergent as well.
    """
    nd_item_memref = sycl.memref_of(sycl.NDItemType(2))
    f = func.FuncOp.build("non_uniform", [nd_item_memref, index()],
                          arg_names=["nd_item", "idx"])
    f.set_attr("sycl.kernel", UnitAttr())
    nd_item, idx = f.arguments
    b = Builder(InsertionPoint.at_end(f.body))
    c0_i32 = b.insert(arith.ConstantOp.build(0, i32()))
    c0 = b.insert(arith.ConstantOp.build(0, i64()))
    c1 = b.insert(arith.ConstantOp.build(1, i64()))
    c2 = b.insert(arith.ConstantOp.build(2, i64()))
    alloca = b.insert(memref.AllocaOp.build(memref_type([10], i64())))
    gid_x = b.insert(sycl.SYCLNDItemGetGlobalIDOp.build(nd_item, c0_i32.result))
    cond = b.insert(arith.CmpIOp.build("sgt", gid_x.result, c0.result))
    if_op = b.insert(scf.IfOp.build(cond.result, with_else=True))
    store_then = memref.StoreOp.build(c1.result, alloca.result, [idx])
    if_op.then_block.append(store_then)
    if_op.then_block.append(scf.YieldOp.build())
    store_else = memref.StoreOp.build(c2.result, alloca.result, [idx])
    if_op.else_block.append(store_else)
    if_op.else_block.append(scf.YieldOp.build())
    load = b.insert(memref.LoadOp.build(alloca.result, [idx]))
    cond1 = b.insert(arith.CmpIOp.build("sgt", load.result, c0.result))
    if_op2 = b.insert(scf.IfOp.build(cond1.result))
    if_op2.then_block.append(scf.YieldOp.build())
    b.insert(func.ReturnOp.build())
    return f, {"gid_x": gid_x, "cond": cond, "cond1": cond1, "load": load,
               "if_op": if_op, "if_op2": if_op2}


def build_listing3_function():
    """Listing 3: kernel loop with the paper's access-matrix example.

    The access index is ``[gid_x + 1, 2*i, 2*i + 2 + gid_y]`` where ``i`` is
    the loop induction variable.
    """
    acc_type = sycl.AccessorType(3, f32())
    item_type = sycl.ItemType(2)
    f = func.FuncOp.build(
        "mem_acc", [sycl.memref_of(acc_type), sycl.memref_of(item_type)],
        arg_names=["acc", "item"])
    f.set_attr("sycl.kernel", UnitAttr())
    acc, item = f.arguments
    b = Builder(InsertionPoint.at_end(f.body))
    c0_i32 = b.insert(arith.ConstantOp.build(0, i32()))
    c1_i32 = b.insert(arith.ConstantOp.build(1, i32()))
    c0 = b.insert(arith.ConstantOp.build(0, index()))
    c1 = b.insert(arith.ConstantOp.build(1, index()))
    c2 = b.insert(arith.ConstantOp.build(2, index()))
    c64 = b.insert(arith.ConstantOp.build(64, index()))
    id_alloca = b.insert(memref.AllocaOp.build(
        memref_type([1], sycl.IDType(3))))
    gid_x = b.insert(sycl.SYCLItemGetIDOp.build(item, c0_i32.result))
    gid_y = b.insert(sycl.SYCLItemGetIDOp.build(item, c1_i32.result))
    loop = b.insert(affine.AffineForOp.build(c0.result, c64.result, 1))
    lb = Builder(InsertionPoint.at_end(loop.body))
    iv = loop.induction_variable()
    add1 = lb.insert(arith.AddIOp.build(gid_x.result, c1.result))
    mul1 = lb.insert(arith.MulIOp.build(iv, c2.result))
    add1a = lb.insert(arith.AddIOp.build(mul1.result, c2.result))
    add1b = lb.insert(arith.AddIOp.build(add1a.result, gid_y.result))
    lb.insert(sycl.SYCLConstructorOp.build(
        "id", id_alloca.result, [add1.result, mul1.result, add1b.result]))
    subscript = lb.insert(sycl.SYCLAccessorSubscriptOp.build(acc, id_alloca.result))
    load = lb.insert(affine.AffineLoadOp.build(subscript.result, [c0.result]))
    lb.insert(affine.AffineYieldOp.build())
    b.insert(func.ReturnOp.build())
    return f, {"load": load, "loop": loop, "gid_x": gid_x, "gid_y": gid_y}


def wrap_in_module(*functions):
    module = builtin.ModuleOp.build("test")
    for function in functions:
        module.append(function)
    return module


# ---------------------------------------------------------------------------
# Shared interpreter test kernels.  The builders live in
# benchmarks/kernels.py (tests already depend on the benchmarks package,
# never the reverse) so the BENCH_5 scenarios, these tests and the CI
# differential-smoke job all execute the same kernels.
# ---------------------------------------------------------------------------

def build_vecadd_source():
    """``c[i] = a[i] + b[i]`` over a 1-D range (KernelSource)."""
    from benchmarks.kernels import build_vecadd_source as build

    return build()


def build_gemm_module(size=8, work_group=4):
    """An nd_item GEMM whose ``sycl.work_group_size`` attribute makes
    Loop Internalization fire; returns ``(module, {"gemm": spec})``."""
    from benchmarks.kernels import build_gemm_module as build

    return build(size, work_group)


def listing_execution_specs():
    """Launch configurations for the paper listing kernels.

    Listing 3's access index reaches ``[gid+1, 2i, 2i+2+gid]`` with
    ``i < 64``, so its buffer must extend past 128 in the loop
    dimensions.
    """
    from repro.interp import ExecutionSpec

    return {
        "non_uniform": ExecutionSpec(global_size=(4, 4),
                                     scalars={"idx": 3}),
        "mem_acc": ExecutionSpec(global_size=(2, 2),
                                 buffers={"acc": (3, 128, 130)}),
    }
