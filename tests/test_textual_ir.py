"""Round-trip and driver tests for the textual IR parser and `repro-opt`.

The tentpole property: for every module ``m`` built programmatically,
``print(parse(print(m))) == print(m)`` — the printer/parser pair is a
verified serialization layer, and textual test cases can drive every
registered transform through the ``repro-opt`` pipeline driver.
"""

import pytest

from repro.dialects import arith, builtin, func
from repro.ir import (
    ArrayAttr,
    DictAttr,
    FloatAttr,
    IntegerAttr,
    ParseError,
    Printer,
    StringAttr,
    SymbolRefAttr,
    TypeAttr,
    UnitAttr,
    f32,
    function_type,
    i32,
    i64,
    parse_module,
    parse_type,
    verify,
)
from repro.tools.repro_opt import main as repro_opt_main
from repro.transforms.pipelines import available_passes, parse_pass_pipeline

from .filecheck import FileCheckError, filecheck
from .helpers import (
    build_listing1_function,
    build_listing2_function,
    build_listing3_function,
    wrap_in_module,
)


def _roundtrip(module):
    text = Printer().print_module(module)
    reparsed = parse_module(text)
    return text, reparsed, Printer().print_module(reparsed)


LISTING_BUILDERS = {
    "listing1": build_listing1_function,
    "listing2": build_listing2_function,
    "listing3": build_listing3_function,
}


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(LISTING_BUILDERS))
    def test_listing_roundtrips_exactly(self, name):
        function, _ = LISTING_BUILDERS[name]()
        text, reparsed, reprinted = _roundtrip(wrap_in_module(function))
        assert reprinted == text
        verify(reparsed)

    def test_combined_module_roundtrips_exactly(self):
        functions = [builder()[0] for builder in LISTING_BUILDERS.values()]
        text, reparsed, reprinted = _roundtrip(wrap_in_module(*functions))
        assert reprinted == text
        verify(reparsed)

    def test_roundtrip_is_idempotent(self):
        function, _ = build_listing3_function()
        text, reparsed, reprinted = _roundtrip(wrap_in_module(function))
        assert Printer().print_module(parse_module(reprinted)) == text

    def test_parsed_ops_have_registered_classes(self):
        function, _ = build_listing1_function()
        text = Printer().print_module(wrap_in_module(function))
        reparsed = parse_module(text)
        assert isinstance(reparsed, builtin.ModuleOp)
        inner = reparsed.lookup_symbol("foo")
        assert isinstance(inner, func.FuncOp)
        assert inner.arguments[0].name_hint == "cond"

    def test_attribute_kinds_roundtrip(self):
        module = builtin.ModuleOp.build("attrs")
        op = arith.ConstantOp.build(7, i64())
        op.set_attr("fval", FloatAttr(2.5, f32()))
        op.set_attr("tag", StringAttr("hello"))
        op.set_attr("sym", SymbolRefAttr("kernels", ("K1",)))
        op.set_attr("marker", UnitAttr())
        op.set_attr("arr", ArrayAttr((IntegerAttr(1, i64()),
                                      IntegerAttr(2, i64()))))
        op.set_attr("cfg", DictAttr((("a", IntegerAttr(3, i64())),
                                     ("b", StringAttr("x")))))
        op.set_attr("ft", TypeAttr(function_type([i32()], [i32()])))
        module.append(op)
        text, _, reprinted = _roundtrip(module)
        assert reprinted == text

    def test_dense_elements_roundtrip_losslessly(self):
        from repro.dialects import memref as memref_dialect
        from repro.ir import DenseElementsAttr, MemRefType, f64

        module = builtin.ModuleOp.build("g")
        init = DenseElementsAttr(tuple(range(16)), (4, 4), i64())
        module.append(memref_dialect.GlobalOp.build(
            "filter", MemRefType((4, 4), i64()), initial_value=init))
        scalarish = DenseElementsAttr((1.5, 2.5, 3.5, 4.5), (2, 2), f64())
        module.append(memref_dialect.GlobalOp.build(
            "weights", MemRefType((2, 2), f64()), initial_value=scalarish))
        text, reparsed, reprinted = _roundtrip(module)
        assert reprinted == text
        parsed_init = reparsed.regions[0].front.operations[0] \
            .attributes["initial_value"]
        assert parsed_init == init  # full data, shape and element type
        parsed_weights = reparsed.regions[0].front.operations[1] \
            .attributes["initial_value"]
        assert parsed_weights == scalarish

    def test_string_attrs_with_special_characters_roundtrip(self):
        module = builtin.ModuleOp.build()
        op = arith.ConstantOp.build(1, i64())
        op.set_attr("note", StringAttr('say "hi"\nback\\slash\ttab'))
        module.append(op)
        text, reparsed, reprinted = _roundtrip(module)
        assert reprinted == text
        parsed = reparsed.regions[0].front.operations[0]
        assert parsed.get_str_attr("note") == 'say "hi"\nback\\slash\ttab'

    def test_non_finite_floats_roundtrip(self):
        import math

        from repro.ir import parse_attribute

        for value in (float("inf"), float("-inf"), float("nan")):
            attr = parse_attribute(str(FloatAttr(value, f32())))
            assert isinstance(attr, FloatAttr)
            if math.isnan(value):
                assert math.isnan(attr.value)
            else:
                assert attr.value == value

    def test_truncated_dense_attr_is_rejected(self):
        with pytest.raises(ParseError, match="truncation marker"):
            parse_module(
                '"builtin.module"() {v = dense<[1, 2, ...] : 3xi64>} '
                ': () -> () ({ })')

    @pytest.mark.parametrize("offsets, surviving", [
        ((0, 8), 2),   # distinct offsets: must NOT merge after parsing
        ((0, 0), 1),   # identical offsets: must still merge
    ])
    def test_gep_offsets_survive_roundtrip_and_cse(self, offsets, surviving):
        from repro.dialects import llvm
        from repro.ir import PointerType
        from repro.transforms import CSEPass
        from repro.transforms.pass_manager import CompileReport

        # Use func.func: CSE (a FunctionPass) only visits FuncOp bodies.
        module = builtin.ModuleOp.build()
        f = func.FuncOp.build("f", [PointerType()], arg_names=["p"])
        base = f.arguments[0]
        geps = [llvm.LLVMGEPOp.build(base, static_offsets=[o])
                for o in offsets]
        for gep in geps:
            f.body.append(gep)
        f.body.append(llvm.LLVMCallOp.build(
            "use", [g.result for g in geps]))
        f.body.append(func.ReturnOp.build())
        module.append(f)
        text, reparsed, reprinted = _roundtrip(module)
        assert reprinted == text
        CSEPass().run(reparsed, CompileReport())
        parsed_geps = [op for op in reparsed.lookup_symbol("f").body
                       if op.name == "llvm.getelementptr"]
        assert len(parsed_geps) == surviving
        assert sorted(g.static_offsets for g in parsed_geps) == \
            sorted([o] for o in set(offsets))

    def test_affine_apply_folds_after_roundtrip(self):
        from repro.dialects import affine
        from repro.ir import index

        module = builtin.ModuleOp.build()
        f = func.FuncOp.build("f", [])
        c3 = arith.ConstantOp.build(3, index())
        f.body.append(c3)
        apply = affine.AffineApplyOp.build([2], [c3.result], constant=1)
        f.body.append(apply)
        f.body.append(func.ReturnOp.build())
        module.append(f)
        text, reparsed, reprinted = _roundtrip(module)
        assert reprinted == text
        parsed_apply = reparsed.lookup_symbol("f").body.operations[1]
        assert parsed_apply.coefficients == [2]
        folded = parsed_apply.fold()
        assert folded is not None and folded[0].value == 7  # 2*3 + 1

    def test_successors_roundtrip(self):
        text = (
            '"test.graph"() : () -> () ({\n'
            ' ^bb0():\n'
            '  "test.br"() : () -> () [^bb2]\n'
            ' ^bb1():\n'
            '  "test.br"() : () -> () [^bb0, ^bb2]\n'
            ' ^bb2():\n'
            '  "test.done"() : () -> ()\n'
            '})')
        op = parse_module(text, allow_unregistered=True)
        region = op.regions[0]
        branch = region.blocks[0].operations[0]
        assert branch.successors == [region.blocks[2]]
        fanout = region.blocks[1].operations[0]
        assert fanout.successors == [region.blocks[0], region.blocks[2]]
        assert Printer().print_module(op) == text

    def test_comments_and_whitespace_are_ignored(self):
        text = (
            '// a textual test case\n'
            '"builtin.module"() : () -> () ({\n'
            '  %c = "arith.constant"() {value = 4 : i64}\n'
            '       : () -> (i64)  // trailing comment\n'
            '})')
        module = parse_module(text)
        constant = module.regions[0].front.operations[0]
        assert isinstance(constant, arith.ConstantOp)
        assert constant.value == 4


class TestTypeParsing:
    @pytest.mark.parametrize("spelling", [
        "i1", "i32", "f64", "index", "none",
        "memref<i32>", "memref<10xi64>", "memref<2x3xf32>",
        "memref<?xf32, local>", "vector<4xi32>",
        "!llvm.ptr", "!llvm.ptr<i32>",
        "!sycl_id_3", "!sycl_nd_item_2", "!sycl_queue",
        "!sycl_accessor_3_f32_read_write",
        "!sycl_accessor_1_i32_read_write_local",
        "!sycl_buffer_2_f64",
        "!sycl_buffer_1_memref<4xf32>",
        "!sycl_accessor_1_vector<4xf32>_read_write",
        "!sycl_accessor_2_memref<?xi32, local>_read_local",
        "!sycl_accessor_1_!sycl_id_2_read",
        "!sycl_buffer_1_!llvm.ptr",
        "(i1, i32) -> (f32)",
    ])
    def test_type_spelling_roundtrips(self, spelling):
        assert str(parse_type(spelling)) == spelling

    def test_unknown_type_is_an_error(self):
        with pytest.raises(ParseError, match="unknown type"):
            parse_type("i32x")

    def test_unknown_dialect_type_is_an_error(self):
        with pytest.raises(ParseError, match="no type parser registered"):
            parse_type("!spirv_thing")

    def test_unknown_sycl_type_is_an_error(self):
        with pytest.raises(ParseError, match="cannot parse type"):
            parse_type("!sycl_gizmo_3")


class TestParserErrors:
    def test_unknown_operation(self):
        with pytest.raises(ParseError, match="unknown operation 'foo.bar'"):
            parse_module('"foo.bar"() : () -> ()')

    def test_unknown_operation_suggests_close_match(self):
        with pytest.raises(ParseError, match="did you mean 'arith.addi'"):
            parse_module('"arith.addi_"() : () -> ()')

    def test_operand_type_mismatch(self):
        text = (
            '"builtin.module"() : () -> () ({\n'
            '  %0 = "arith.constant"() {value = 1 : i32} : () -> (i32)\n'
            '  "func.return"(%0) : (i64) -> ()\n'
            '})')
        with pytest.raises(ParseError, match="type mismatch for operand %0"):
            parse_module(text)

    def test_operand_count_mismatch(self):
        text = (
            '"builtin.module"() : () -> () ({\n'
            '  %0 = "arith.constant"() {value = 1 : i64} : () -> (i64)\n'
            '  "func.return"(%0) : () -> ()\n'
            '})')
        with pytest.raises(ParseError, match="1 operands .* 0 operand types"):
            parse_module(text)

    def test_result_count_mismatch(self):
        text = ('"builtin.module"() : () -> () ({\n'
                '  %0, %1 = "arith.constant"() {value = 1 : i64} '
                ': () -> (i64)\n'
                '})')
        with pytest.raises(ParseError, match="binds 2 results"):
            parse_module(text)

    def test_unbalanced_region(self):
        text = ('"builtin.module"() : () -> () ({\n'
                '  %0 = "arith.constant"() {value = 1 : i64} : () -> (i64)\n')
        with pytest.raises(ParseError, match="unbalanced region"):
            parse_module(text)

    def test_use_of_undefined_value(self):
        text = ('"builtin.module"() : () -> () ({\n'
                '  "func.return"(%x) : (i32) -> ()\n'
                '})')
        with pytest.raises(ParseError, match="use of undefined value %x"):
            parse_module(text)

    def test_value_redefinition(self):
        text = ('"builtin.module"() : () -> () ({\n'
                '  %0 = "arith.constant"() {value = 1 : i64} : () -> (i64)\n'
                '  %0 = "arith.constant"() {value = 2 : i64} : () -> (i64)\n'
                '})')
        with pytest.raises(ParseError, match="redefinition of value %0"):
            parse_module(text)

    def test_isolated_regions_do_not_leak_names(self):
        # %c is defined inside a func.func (IsolatedFromAbove); a sibling
        # function must not be able to reference it.
        text = (
            '"builtin.module"() : () -> () ({\n'
            '  "func.func"() {sym_name = "a", function_type = () -> ()} '
            ': () -> () ({\n'
            '    %c = "arith.constant"() {value = 1 : i64} : () -> (i64)\n'
            '    "func.return"() : () -> ()\n'
            '  })\n'
            '  "func.func"() {sym_name = "b", function_type = () -> ()} '
            ': () -> () ({\n'
            '    "func.return"(%c) : (i64) -> ()\n'
            '  })\n'
            '})')
        with pytest.raises(ParseError, match="use of undefined value %c"):
            parse_module(text)

    def test_trailing_input(self):
        with pytest.raises(ParseError, match="trailing input"):
            parse_module('"func.return"() : () -> () garbage')

    def test_empty_input(self):
        with pytest.raises(ParseError, match="empty input"):
            parse_module("   // only a comment\n")

    def test_error_carries_line_information(self):
        text = ('"builtin.module"() : () -> () ({\n'
                '  "func.return"(%x) : (i32) -> ()\n'
                '})')
        with pytest.raises(ParseError, match="line 2:"):
            parse_module(text)


class TestPassPipelineSpecs:
    def test_parse_simple_spec(self):
        manager = parse_pass_pipeline("canonicalize, cse")
        assert len(manager) == 2
        assert [p.NAME for p in manager.passes] == ["canonicalize", "cse"]

    def test_paper_pass_names_are_registered(self):
        names = available_passes()
        for expected in ("canonicalize", "cse", "dce", "licm",
                         "detect-reduction", "loop-internalization",
                         "host-raising", "lower-sycl-accessors"):
            assert expected in names

    def test_unknown_pass_is_an_error(self):
        with pytest.raises(ValueError, match="available passes"):
            parse_pass_pipeline("canonicalize,frobnicate")

    def test_empty_spec_is_an_error(self):
        with pytest.raises(ValueError, match="empty pass pipeline"):
            parse_pass_pipeline(" , ")

    def test_named_pipeline_rejects_unsupported_options(self):
        from repro.transforms.pipelines import (
            OptimizationOptions,
            build_named_pipeline,
        )

        options = OptimizationOptions(licm=False)
        assert len(build_named_pipeline("sycl-mlir", options)) > 0
        with pytest.raises(ValueError, match="does not accept"):
            build_named_pipeline("adaptivecpp-jit", options)
        with pytest.raises(ValueError, match="unknown pipeline"):
            build_named_pipeline("nope")


class TestReproOptDriver:
    def _write_listing(self, tmp_path, builder=build_listing1_function):
        function, _ = builder()
        path = tmp_path / "input.mlir"
        path.write_text(
            Printer().print_module(wrap_in_module(function)) + "\n",
            encoding="utf-8")
        return path

    def test_canonicalize_cse_produces_verified_output(self, tmp_path):
        source = self._write_listing(tmp_path, build_listing2_function)
        out = tmp_path / "out.mlir"
        rc = repro_opt_main(
            [str(source), "--passes", "canonicalize,cse", "-o", str(out)])
        assert rc == 0
        optimized = parse_module(out.read_text(encoding="utf-8"))
        verify(optimized)
        filecheck(out.read_text(encoding="utf-8"), """
            CHECK: "func.func"
            CHECK-SAME: non_uniform
            CHECK: "func.return"
        """)

    def test_cse_deduplicates_constants_textually(self, tmp_path):
        source = tmp_path / "dup.mlir"
        source.write_text(
            '"builtin.module"() : () -> () ({\n'
            '  "func.func"() {sym_name = "f", function_type = () -> ()} '
            ': () -> () ({\n'
            '    %a = "arith.constant"() {value = 41 : i64} : () -> (i64)\n'
            '    %b = "arith.constant"() {value = 41 : i64} : () -> (i64)\n'
            '    %s = "arith.addi"(%a, %b) : (i64, i64) -> (i64)\n'
            '    "func.return"(%s) : (i64) -> ()\n'
            '  })\n'
            '})\n', encoding="utf-8")
        out = tmp_path / "out.mlir"
        rc = repro_opt_main([str(source), "--passes", "canonicalize,cse",
                             "-o", str(out)])
        assert rc == 0
        filecheck(out.read_text(encoding="utf-8"), """
            CHECK: "arith.constant"
            CHECK-NOT: "arith.constant"
            CHECK: "func.return"
        """)

    def test_named_pipeline_runs(self, tmp_path):
        source = self._write_listing(tmp_path, build_listing3_function)
        out = tmp_path / "out.mlir"
        rc = repro_opt_main(
            [str(source), "--pipeline", "sycl-mlir", "-o", str(out)])
        assert rc == 0
        verify(parse_module(out.read_text(encoding="utf-8")))

    def test_parse_error_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.mlir"
        bad.write_text('"no.such.op"() : () -> ()\n', encoding="utf-8")
        assert repro_opt_main([str(bad)]) == 1
        assert "parse error" in capsys.readouterr().err

    def test_unknown_pass_exit_code(self, tmp_path, capsys):
        source = self._write_listing(tmp_path)
        assert repro_opt_main([str(source), "--passes", "nope"]) == 2
        assert "unknown pass" in capsys.readouterr().err

    def test_list_passes(self, capsys):
        assert repro_opt_main(["--list-passes"]) == 0
        listed = capsys.readouterr().out.split()
        assert "canonicalize" in listed and "cse" in listed

    def test_report_goes_to_stderr(self, tmp_path, capsys):
        source = self._write_listing(tmp_path, build_listing3_function)
        rc = repro_opt_main([str(source), "--passes", "canonicalize",
                             "-o", str(tmp_path / "o.mlir"), "--report"])
        assert rc == 0
        assert "Compile report" in capsys.readouterr().err


class TestFileCheckLite:
    def test_out_of_order_check_fails(self):
        with pytest.raises(FileCheckError):
            filecheck("a\nb\n", "CHECK: b\nCHECK: a")

    def test_check_next_enforces_adjacency(self):
        filecheck("a\nb\n", "CHECK: a\nCHECK-NEXT: b")
        with pytest.raises(FileCheckError):
            filecheck("a\nx\nb\n", "CHECK: a\nCHECK-NEXT: b")

    def test_check_not_window(self):
        filecheck("a\nc\n", "CHECK: a\nCHECK-NOT: b\nCHECK: c")
        with pytest.raises(FileCheckError):
            filecheck("a\nb\nc\n", "CHECK: a\nCHECK-NOT: b\nCHECK: c")

    def test_trailing_check_not(self):
        filecheck("a\n", "CHECK: a\nCHECK-NOT: z")
        with pytest.raises(FileCheckError):
            filecheck("a\nz\n", "CHECK: a\nCHECK-NOT: z")

    def test_empty_directive_is_rejected(self):
        with pytest.raises(FileCheckError, match="empty pattern"):
            filecheck("a\n", "CHECK: a\nCHECK:")

    def test_check_not_sees_the_match_line_prefix(self):
        # 'foo' occurs before 'bar' on the very line CHECK matches — the
        # forbidden pattern must still be reported.
        with pytest.raises(FileCheckError):
            filecheck("foo bar\n", "CHECK-NOT: foo\nCHECK: bar")
        filecheck("bar foo\n", "CHECK-NOT: foo\nCHECK: bar\nCHECK-SAME: foo")
