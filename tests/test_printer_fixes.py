"""Regression tests for printer naming and successor-label bugs."""

import re

from repro.dialects import arith, builtin
from repro.ir import Block, Operation, Printer, i64


class TestNameCollisions:
    def test_hint_collision_fallback_is_unique(self):
        module = builtin.ModuleOp.build()
        for value in (1, 2, 3):
            op = arith.ConstantOp.build(value, i64())
            op.result.name_hint = "c"
            module.append(op)
        text = Printer().print_module(module)
        defined = re.findall(r"(%[A-Za-z0-9_.$]+) =", text)
        assert len(defined) == 3
        assert len(set(defined)) == 3, f"duplicate SSA names in:\n{text}"

    def test_numeric_hint_does_not_collide_with_anonymous_names(self):
        # A value whose hint prints as %0 must not clash with the first
        # anonymous value (which would also be named %0).
        module = builtin.ModuleOp.build()
        hinted = arith.ConstantOp.build(1, i64())
        hinted.result.name_hint = "0"
        anonymous = arith.ConstantOp.build(2, i64())
        module.append(hinted)
        module.append(anonymous)
        text = Printer().print_module(module)
        defined = re.findall(r"(%[A-Za-z0-9_.$]+) =", text)
        assert len(set(defined)) == 2, f"duplicate SSA names in:\n{text}"

    def test_block_argument_fallback_is_unique(self):
        printer = Printer()
        block_a = Block([i64()])
        block_b = Block([i64()])
        names = {printer.value_name(block_a.arguments[0]),
                 printer.value_name(block_b.arguments[0])}
        assert len(names) == 2


class TestSuccessorLabels:
    def _graph_op(self):
        """An op whose single region has three blocks and a back edge."""
        op = Operation(regions=1)
        region = op.regions[0]
        blocks = [region.add_block(Block()) for _ in range(3)]
        branch = Operation(successors=(blocks[2],))
        blocks[0].append(branch)
        skip = Operation(successors=(blocks[0], blocks[2]))
        blocks[1].append(skip)
        return op, branch, skip

    def test_labels_use_region_block_index(self):
        op, _, _ = self._graph_op()
        text = Printer().print_op_to_string(op)
        # The branch in ^bb0 targets the third block: must print ^bb2, not
        # the successor's position in the successor list (^bb0).
        lines = text.splitlines()
        branch_line = next(l for l in lines if "[" in l)
        assert "[^bb2]" in branch_line

    def test_multiple_successors_print_their_own_indices(self):
        op, _, _ = self._graph_op()
        text = Printer().print_op_to_string(op)
        assert "[^bb0, ^bb2]" in text

    def test_detached_successor_prints_placeholder(self):
        detached = Block()
        branch = Operation(successors=(detached,))
        parent = Operation(regions=1)
        parent.regions[0].add_block(Block()).append(branch)
        assert "^bb?" in Printer().print_op_to_string(parent)
