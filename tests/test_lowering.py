"""Tests for the ``lower-to-llvm`` pipeline and the ``cf`` dialect.

Covers the lowering subsystem end to end:

* conversion-pass shape tests (``scf.if``/``scf.for``/``scf.while`` →
  ``cf`` CFG, memref accesses → ``llvm.getelementptr``/``load``/
  ``store``, ``func.func`` → ``llvm.func``);
* differential equivalence of the fully lowered module against the
  source — all listings, GEMM, and the internalizing composition
  (``sycl-mlir`` *then* ``lower-to-llvm``) — across all execution tiers;
* CFG mechanics: ``cf`` print/parse round trips, multi-block dominance
  in the verifier, the interpreter's branch-dispatch loop;
* the JIT tier's ``scf.while`` support (results *and* counters match
  the interpreter).
"""

import pytest

from repro.dialects import arith, cf, func, memref, scf
from repro.dialects.llvm import LLVMFuncOp
from repro.interp import ExecutionSpec, run_differential
from repro.interp.engine import ExecutionEngine
from repro.ir import (
    Block,
    IndexType,
    MemRefType,
    VerificationError,
    i1,
    i32,
    parse_module,
    verify,
)
from repro.ir.builder import Builder, InsertionPoint
from repro.ir.printer import print_op
from repro.transforms import build_named_pipeline

from .filecheck import filecheck
from .helpers import (
    build_gemm_module,
    build_listing1_function,
    build_listing2_function,
    build_listing3_function,
    listing_execution_specs,
    wrap_in_module,
)


def index():
    return IndexType()


def _listing_module():
    return wrap_in_module(*[build()[0] for build in (
        build_listing1_function,
        build_listing2_function,
        build_listing3_function,
    )])


def _lower(module):
    build_named_pipeline("lower-to-llvm", None, 1).run(module)
    return module


def _dialect_histogram(module):
    counts = {}
    for op in module.walk():
        dialect = op.name.split(".")[0]
        counts[dialect] = counts.get(dialect, 0) + 1
    return counts


class TestConversionShape:
    def test_functions_become_llvm_funcs(self):
        module = _lower(_listing_module())
        kinds = [type(op).__name__ for op in module.body.operations]
        assert all(isinstance(op, LLVMFuncOp)
                   for op in module.body.operations), kinds

    def test_no_structured_control_flow_survives(self):
        module = _lower(_listing_module())
        histogram = _dialect_histogram(module)
        assert "scf" not in histogram
        assert "affine" not in histogram
        assert "func" not in histogram
        assert histogram.get("cf", 0) > 0
        assert histogram.get("llvm", 0) > 0

    def test_if_becomes_diamond(self):
        module = _lower(wrap_in_module(build_listing1_function()[0]))
        filecheck(print_op(module), '''
            CHECK: "cf.cond_br"(%cond)
            CHECK-SAME: [^bb1, ^bb2]
            CHECK: ^bb1
            CHECK: "cf.br"()
            CHECK-SAME: [^bb3]
            CHECK: ^bb2
            CHECK: "cf.br"()
            CHECK-SAME: [^bb3]
            CHECK: ^bb3
            CHECK: "llvm.return"()
        ''')

    def test_memref_accesses_become_gep_load_store(self):
        module = _lower(wrap_in_module(build_listing1_function()[0]))
        text = print_op(module)
        filecheck(text, '''
            CHECK: "builtin.unrealized_conversion_cast"(%ptr1)
            CHECK-SAME: (memref<i32>) -> (!llvm.ptr<i32>)
            CHECK: "llvm.getelementptr"
            CHECK: "llvm.store"
        ''')
        assert '"memref.store"' not in text
        assert '"memref.load"' not in text

    def test_for_loop_becomes_header_cfg(self):
        module = wrap_in_module(build_listing3_function()[0])
        _lower(module)
        filecheck(print_op(module), '''
            CHECK: "cf.br"
            CHECK: "llvm.icmp"
            CHECK: "cf.cond_br"
        ''')

    def test_conversion_statistics_are_reported(self):
        from repro.transforms import CompileReport

        report = CompileReport()
        module = _listing_module()
        build_named_pipeline("lower-to-llvm", None, 1).run(
            module, report=report)
        stats = {(stat.pass_name, stat.name): stat.value
                 for stat in report.statistics}
        assert stats.get(("convert-scf-to-cf", "expanded"), 0) > 0
        assert stats.get(("convert-memref-to-llvm", "accesses"), 0) > 0


class TestDifferential:
    def test_listings_survive_lowering(self):
        report = run_differential(_listing_module(), "lower-to-llvm",
                                  specs=listing_execution_specs())
        assert report.executed == ["foo", "mem_acc", "non_uniform"]
        assert report.skipped == {}

    def test_gemm_survives_lowering(self):
        module, specs = build_gemm_module()
        report = run_differential(module, "lower-to-llvm", specs=specs)
        assert report.executed == ["gemm"]

    def test_internalized_gemm_survives_lowering(self):
        """The paper pipeline first, then the lowering — the lowered
        module must still compute what the *original* source did."""
        module, specs = build_gemm_module()
        reference = print_op(module)
        build_named_pipeline("sycl-mlir", None, 1).run(module)
        assert print_op(module) != reference  # internalization fired
        report = run_differential(module, "lower-to-llvm", specs=specs)
        assert report.executed == ["gemm"]
        histogram = _dialect_histogram(module)
        assert "scf" not in histogram

    @pytest.mark.parametrize("tier", ["interp", "jit", "vector", "auto"])
    def test_lowering_verifies_under_every_tier(self, tier):
        report = run_differential(_listing_module(), "lower-to-llvm",
                                  specs=listing_execution_specs(),
                                  tier=tier)
        assert report.executed == ["foo", "mem_acc", "non_uniform"]


class TestCFMechanics:
    def _diamond(self):
        f = func.FuncOp.build("pick", [i1(), i32(), i32()], [i32()])
        cond, x, y = f.arguments
        entry = f.body
        exit_block = Block([i32()])
        then_block = Block()
        else_block = Block()
        for block in (then_block, else_block, exit_block):
            f.regions[0].add_block(block)
        entry.append(cf.CondBranchOp.build(cond, then_block, (),
                                           else_block, ()))
        then_block.append(cf.BranchOp.build(exit_block, [x]))
        else_block.append(cf.BranchOp.build(exit_block, [y]))
        exit_block.append(func.ReturnOp.build([exit_block.arguments[0]]))
        return f

    def test_cf_round_trips_through_printer_and_parser(self):
        module = wrap_in_module(self._diamond())
        verify(module)
        text = print_op(module)
        back = parse_module(text)
        verify(back)
        assert print_op(back) == text

    def test_interpreter_follows_branches(self):
        engine = ExecutionEngine(wrap_in_module(self._diamond()),
                                 tier="interp")
        assert engine.call("pick", [True, 10, 20]) == [10]
        assert engine.call("pick", [False, 10, 20]) == [20]

    def test_branch_operand_count_is_verified(self):
        f = func.FuncOp.build("bad", [i32()], [])
        target = Block([i32(), i32()])
        f.regions[0].add_block(target)
        f.body.append(
            cf.BranchOp.build(target, [f.arguments[0]]))
        target.append(func.ReturnOp.build())
        with pytest.raises(VerificationError):
            verify(wrap_in_module(f))

    def test_value_from_non_dominating_block_is_rejected(self):
        """A value defined in one arm of a diamond is not visible in the
        join block — classic CFG dominance, not lexical scoping."""
        f = func.FuncOp.build("bad_dom", [i1()], [])
        cond, = f.arguments
        then_block, else_block, join = Block(), Block(), Block()
        for block in (then_block, else_block, join):
            f.regions[0].add_block(block)
        f.body.append(cf.CondBranchOp.build(
            cond, then_block, (), else_block, ()))
        b = Builder(InsertionPoint.at_end(then_block))
        c1 = b.insert(arith.ConstantOp.build(1, i32()))
        then_block.append(cf.BranchOp.build(join))
        else_block.append(cf.BranchOp.build(join))
        # Illegal: uses %c1 which only dominates along the then-edge.
        store_to = memref.AllocaOp.build(MemRefType((), i32()))
        join.append(store_to)
        join.append(memref.StoreOp.build(c1.result, store_to.results[0]))
        join.append(func.ReturnOp.build())
        with pytest.raises(VerificationError):
            verify(wrap_in_module(f))

    def test_dominating_definition_is_accepted(self):
        """The same shape with the constant hoisted to the entry block
        verifies: the entry dominates every block."""
        f = func.FuncOp.build("good_dom", [i1()], [])
        cond, = f.arguments
        b = Builder(InsertionPoint.at_end(f.body))
        c1 = b.insert(arith.ConstantOp.build(1, i32()))
        alloca = b.insert(memref.AllocaOp.build(MemRefType((), i32())))
        then_block, else_block, join = Block(), Block(), Block()
        for block in (then_block, else_block, join):
            f.regions[0].add_block(block)
        f.body.append(cf.CondBranchOp.build(
            cond, then_block, (), else_block, ()))
        then_block.append(cf.BranchOp.build(join))
        else_block.append(cf.BranchOp.build(join))
        join.append(memref.StoreOp.build(c1.result, alloca.results[0]))
        join.append(func.ReturnOp.build())
        verify(wrap_in_module(f))

    def test_block_dominates(self):
        from repro.ir.dominance import block_dominates

        f = self._diamond()
        entry, then_block, else_block, exit_block = f.regions[0].blocks
        assert block_dominates(entry, exit_block)
        assert block_dominates(entry, then_block)
        assert not block_dominates(then_block, exit_block)
        assert not block_dominates(then_block, else_block)
        assert block_dominates(exit_block, exit_block)


def _build_while_function():
    """``collatz_steps(n)``: iteration count of the Collatz map — a loop
    no ``scf.for`` can express (data-dependent trip count)."""
    f = func.FuncOp.build("collatz_steps", [index()], [index()])
    b = Builder(InsertionPoint.at_end(f.body))
    c0 = b.insert(arith.ConstantOp.build(0, index()))
    loop = b.insert(scf.WhileOp.build([f.arguments[0], c0.result],
                                      [index(), index()]))
    before = Builder(InsertionPoint.at_end(loop.before_block))
    n, steps = loop.before_block.arguments
    c1 = before.insert(arith.ConstantOp.build(1, index()))
    more = before.insert(arith.CmpIOp.build("sgt", n, c1.result))
    before.insert(scf.ConditionOp.build(more.result, [n, steps]))
    after = Builder(InsertionPoint.at_end(loop.after_block))
    n, steps = loop.after_block.arguments
    c1a = after.insert(arith.ConstantOp.build(1, index()))
    c2 = after.insert(arith.ConstantOp.build(2, index()))
    c3 = after.insert(arith.ConstantOp.build(3, index()))
    rem = after.insert(arith.RemSIOp.build(n, c2.result))
    c0a = after.insert(arith.ConstantOp.build(0, index()))
    is_even = after.insert(arith.CmpIOp.build("eq", rem.result, c0a.result))
    if_op = after.insert(scf.IfOp.build(is_even.result, [index()],
                                        with_else=True))
    tb = Builder(InsertionPoint.at_end(if_op.then_block))
    halved = tb.insert(arith.DivSIOp.build(n, c2.result))
    tb.insert(scf.YieldOp.build([halved.result]))
    eb = Builder(InsertionPoint.at_end(if_op.else_block))
    tripled = eb.insert(arith.MulIOp.build(n, c3.result))
    bumped = eb.insert(arith.AddIOp.build(tripled.result, c1a.result))
    eb.insert(scf.YieldOp.build([bumped.result]))
    next_steps = after.insert(arith.AddIOp.build(steps, c1a.result))
    after.insert(scf.YieldOp.build([if_op.results[0],
                                    next_steps.result]))
    b.insert(func.ReturnOp.build([loop.results[1]]))
    return f


class TestJITWhile:
    @pytest.mark.parametrize("n,expected", [(1, 0), (6, 8), (27, 111)])
    def test_jit_matches_interpreter(self, n, expected):
        spec = ExecutionSpec(scalars={"arg0": n})
        runs = {}
        for tier in ("interp", "jit"):
            engine = ExecutionEngine(
                wrap_in_module(_build_while_function()), tier=tier)
            runs[tier] = engine.run("collatz_steps", spec)
        assert runs["jit"].tier == "jit"  # compiled, no fallback
        assert runs["interp"].results == [expected]
        assert runs["jit"].results == runs["interp"].results
        assert runs["jit"].counters == runs["interp"].counters

    def test_while_respects_the_step_budget(self):
        from repro.interp.memory import TrapError

        engine = ExecutionEngine(
            wrap_in_module(_build_while_function()), tier="jit",
            max_steps=50)
        with pytest.raises((TrapError, Exception)) as excinfo:
            engine.run("collatz_steps", ExecutionSpec(scalars={"arg0": 27}))
        assert "step budget" in str(excinfo.value)

    def test_generated_source_shape(self):
        from repro.interp.jit import _Emitter

        source = _Emitter(_build_while_function(), "function").emit()
        filecheck(source, '''
            CHECK: while True:
            CHECK: break
        ''')

    def test_while_differential_under_lowering(self):
        """scf.while also lowers to a CFG and survives differentially."""
        module = wrap_in_module(_build_while_function())
        report = run_differential(
            module, "lower-to-llvm",
            specs={"collatz_steps": ExecutionSpec(scalars={"arg0": 27})})
        assert report.executed == ["collatz_steps"]
        _lower(module)  # run_differential compiles a copy
        assert '"scf.while"' not in print_op(module)
        assert '"cf.cond_br"' in print_op(module)
