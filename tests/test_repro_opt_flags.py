"""FileCheck-lite tests for the instrumentation-backed ``repro-opt`` flags.

Each flag added by the pass-infrastructure redesign gets a textual
before/after test through the driver: ``--print-ir-before``,
``--print-ir-after``, ``--print-ir-after-all``, ``--verify-each``,
``--dump-pass-pipeline`` and the schema-printing ``--list-passes``.
"""

import pytest

from repro.ir import Printer, parse_module, verify
from repro.tools.repro_opt import main as repro_opt_main

from .filecheck import filecheck
from .helpers import build_listing2_function, wrap_in_module

NESTED_SPEC = ("builtin.module(cse,func.func("
               "canonicalize{max-iterations=10},licm))")
CANONICAL_SPEC = ("builtin.module(cse,func.func("
                  "canonicalize{max-iterations=10},sycl-licm))")


@pytest.fixture
def listing_path(tmp_path):
    function, _ = build_listing2_function()
    path = tmp_path / "input.mlir"
    path.write_text(
        Printer().print_module(wrap_in_module(function)) + "\n",
        encoding="utf-8")
    return path


class TestDumpPassPipeline:
    def test_dump_emits_canonical_spec(self, listing_path, tmp_path, capsys):
        rc = repro_opt_main([
            str(listing_path), "--passes", NESTED_SPEC,
            "--dump-pass-pipeline", "-o", str(tmp_path / "out.mlir")])
        assert rc == 0
        err = capsys.readouterr().err
        filecheck(err, f"""
            CHECK: {CANONICAL_SPEC}
        """)

    def test_dumped_spec_is_accepted_back(self, listing_path, tmp_path,
                                          capsys):
        # The acceptance criterion: feed the dumped spec back through the
        # driver and get the same optimized output.
        first = tmp_path / "first.mlir"
        rc = repro_opt_main([str(listing_path), "--passes", NESTED_SPEC,
                             "--dump-pass-pipeline", "-o", str(first)])
        assert rc == 0
        dumped_spec = capsys.readouterr().err.strip().splitlines()[0]
        second = tmp_path / "second.mlir"
        rc = repro_opt_main([str(listing_path), "--passes", dumped_spec,
                             "-o", str(second)])
        assert rc == 0
        assert first.read_text(encoding="utf-8") == \
            second.read_text(encoding="utf-8")


class TestPrintIRFlags:
    def test_print_ir_before_selected_pass(self, listing_path, tmp_path,
                                           capsys):
        rc = repro_opt_main([
            str(listing_path), "--passes", "canonicalize,cse",
            "--print-ir-before", "cse", "-o", str(tmp_path / "o.mlir")])
        assert rc == 0
        err = capsys.readouterr().err
        filecheck(err, """
            CHECK-NOT: IR Dump Before canonicalize
            CHECK: // -----// IR Dump Before cse
            CHECK: "builtin.module"
            CHECK: "func.func"
        """)

    def test_print_ir_after_selected_pass(self, listing_path, tmp_path,
                                          capsys):
        rc = repro_opt_main([
            str(listing_path), "--passes", "canonicalize,cse",
            "--print-ir-after", "canonicalize",
            "-o", str(tmp_path / "o.mlir")])
        assert rc == 0
        err = capsys.readouterr().err
        filecheck(err, """
            CHECK: // -----// IR Dump After canonicalize
            CHECK-NOT: IR Dump After cse
        """)

    def test_print_ir_after_all(self, listing_path, tmp_path, capsys):
        rc = repro_opt_main([
            str(listing_path), "--passes", "canonicalize,cse",
            "--print-ir-after-all", "-o", str(tmp_path / "o.mlir")])
        assert rc == 0
        err = capsys.readouterr().err
        filecheck(err, """
            CHECK: // -----// IR Dump After canonicalize
            CHECK: // -----// IR Dump After cse
        """)

    def test_print_ir_flags_resolve_aliases(self, listing_path, tmp_path,
                                            capsys):
        # `licm` is an alias of sycl-licm; the selector must still match.
        rc = repro_opt_main([
            str(listing_path), "--passes", "func.func(licm)",
            "--print-ir-after", "licm", "-o", str(tmp_path / "o.mlir")])
        assert rc == 0
        err = capsys.readouterr().err
        filecheck(err, """
            CHECK: // -----// IR Dump After sycl-licm
        """)

    def test_print_ir_flags_reject_unknown_pass(self, listing_path, capsys):
        rc = repro_opt_main([
            str(listing_path), "--passes", "cse",
            "--print-ir-before", "frobnicate"])
        assert rc == 2
        assert "unknown pass 'frobnicate'" in capsys.readouterr().err

    def test_function_anchored_dump_shows_function_not_module(
            self, listing_path, tmp_path, capsys):
        rc = repro_opt_main([
            str(listing_path), "--passes", "func.func(canonicalize)",
            "--print-ir-before", "canonicalize",
            "-o", str(tmp_path / "o.mlir")])
        assert rc == 0
        err = capsys.readouterr().err
        filecheck(err, """
            CHECK: // -----// IR Dump Before canonicalize
            CHECK-NOT: "builtin.module"
            CHECK: "func.func"
        """)


class TestVerifyEach:
    def test_verify_each_passes_on_clean_pipeline(self, listing_path,
                                                  tmp_path):
        out = tmp_path / "out.mlir"
        rc = repro_opt_main([str(listing_path), "--passes", NESTED_SPEC,
                             "--verify-each", "-o", str(out)])
        assert rc == 0
        verify(parse_module(out.read_text(encoding="utf-8")))

    def test_verify_each_composes_with_timing(self, listing_path, tmp_path,
                                              capsys):
        rc = repro_opt_main([str(listing_path), "--passes", "canonicalize,cse",
                             "--verify-each", "--timing",
                             "-o", str(tmp_path / "o.mlir")])
        assert rc == 0
        err = capsys.readouterr().err
        # Timing rows are keyed by pipeline position.
        filecheck(err, """
            CHECK: Pass execution timing report
            CHECK: 0: canonicalize
            CHECK: 1: cse
            CHECK: Total
        """)


class TestListPasses:
    def test_list_passes_includes_option_schemas(self, capsys):
        assert repro_opt_main(["--list-passes"]) == 0
        out = capsys.readouterr().out
        filecheck(out, """
            CHECK: canonicalize
            CHECK: max-iterations : int = 32
            CHECK: prune-dead : bool = true
            CHECK: licm-generic  (alias of sycl-licm{alias=generic})
            CHECK: sycl-licm
            CHECK: alias : str = sycl (one of: sycl, generic, runtime-checked)
            CHECK: stat: ops_hoisted
        """)


class TestSpecErrors:
    def test_bad_option_reports_offset_and_exits_2(self, listing_path,
                                                   capsys):
        rc = repro_opt_main([str(listing_path), "--passes",
                             "canonicalize{max-iterations=ten}"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "expects an integer" in err
        assert "at character" in err

    def test_unknown_pass_reports_offset_and_exits_2(self, listing_path,
                                                     capsys):
        rc = repro_opt_main([str(listing_path), "--passes",
                             "cse,frobnicate"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown pass 'frobnicate'" in err
        assert "at character 4" in err
