"""Tests reproducing the IR-level examples (Listings 1-5) of the paper."""


from repro.analysis import (
    MemoryAccessAnalysis,
    ReachingDefinitionAnalysis,
    SYCLAliasAnalysis,
    Uniformity,
    UniformityAnalysis,
)
from repro.analysis.memory_access import BasisKind
from repro.ir import verify

from .helpers import (
    build_listing1_function,
    build_listing2_function,
    build_listing3_function,
    wrap_in_module,
)


class TestListing1ReachingDefinitions:
    """Listing 1: {MODS: a, PMODS: b} for the load of %ptr1."""

    def setup_method(self):
        self.function, self.refs = build_listing1_function()

    def test_ir_verifies(self):
        verify(self.function)

    def test_mods_is_store_a(self):
        analysis = ReachingDefinitionAnalysis(self.function)
        defs = analysis.reaching_definitions(self.refs["load"], self.refs["ptr1"])
        assert defs.mods == frozenset({self.refs["store_a"]})

    def test_pmods_is_store_b(self):
        analysis = ReachingDefinitionAnalysis(self.function)
        defs = analysis.reaching_definitions(self.refs["load"], self.refs["ptr2"])
        # Querying ptr1 yields store_b as potential modifier...
        defs_ptr1 = analysis.reaching_definitions(
            self.refs["load"], self.refs["ptr1"])
        assert defs_ptr1.pmods == frozenset({self.refs["store_b"]})
        # ... and querying ptr2 symmetrically sees store_a as potential.
        assert defs.mods == frozenset({self.refs["store_b"]})
        assert defs.pmods == frozenset({self.refs["store_a"]})


class TestListing2Uniformity:
    """Listing 2: the global-id derived branch conditions are divergent."""

    def setup_method(self):
        self.function, self.refs = build_listing2_function()
        self.analysis = UniformityAnalysis(self.function)

    def test_ir_verifies(self):
        verify(self.function)

    def test_global_id_is_non_uniform(self):
        assert self.analysis.uniformity_of(
            self.refs["gid_x"].result) is Uniformity.NON_UNIFORM

    def test_first_condition_is_non_uniform(self):
        assert self.analysis.uniformity_of(
            self.refs["cond"].result) is Uniformity.NON_UNIFORM

    def test_load_through_divergent_stores_is_non_uniform(self):
        assert self.analysis.uniformity_of(
            self.refs["load"].result) is Uniformity.NON_UNIFORM

    def test_second_condition_is_non_uniform(self):
        assert self.analysis.uniformity_of(
            self.refs["cond1"].result) is Uniformity.NON_UNIFORM

    def test_branches_are_divergent(self):
        assert self.analysis.is_divergent_branch(self.refs["if_op"])
        assert self.analysis.is_divergent_branch(self.refs["if_op2"])

    def test_divergent_region_query(self):
        store = self.refs["if_op"].then_block.operations[0]
        assert self.analysis.is_in_divergent_region(store)
        assert not self.analysis.is_in_divergent_region(self.refs["if_op"])


class TestListing3MemoryAccessMatrix:
    """Listing 3: access matrix [[1,0,0],[0,0,2],[0,1,2]], offsets [1,0,2]."""

    def setup_method(self):
        self.function, self.refs = build_listing3_function()
        self.analysis = MemoryAccessAnalysis(self.function)

    def test_ir_verifies(self):
        verify(self.function)

    def test_one_access_found(self):
        assert len(self.analysis.accesses) == 1

    def test_access_matrix_matches_paper(self):
        access = self.analysis.access_for(self.refs["load"])
        assert access is not None
        labels = [b.label for b in access.basis]
        assert labels == ["gid_x", "gid_y", "iv"]
        assert access.matrix == [[1, 0, 0], [0, 0, 2], [0, 1, 2]]
        assert access.offsets == [1, 0, 2]

    def test_basis_kinds(self):
        access = self.analysis.access_for(self.refs["load"])
        kinds = [b.kind for b in access.basis]
        assert kinds == [BasisKind.WORK_ITEM, BasisKind.WORK_ITEM, BasisKind.LOOP]

    def test_temporal_reuse_detected(self):
        access = self.analysis.access_for(self.refs["load"])
        assert access.has_temporal_reuse()

    def test_inter_work_item_matrix(self):
        access = self.analysis.access_for(self.refs["load"])
        assert access.inter_work_item_matrix() == [[1, 0], [0, 0], [0, 1]]
        assert access.intra_work_item_matrix() == [[0], [2], [2]]


class TestSYCLAliasOnListings:
    def test_accessor_and_item_do_not_alias(self):
        function, refs = build_listing3_function()
        acc, item = function.arguments
        analysis = SYCLAliasAnalysis()
        assert analysis.no_alias(acc, item)

    def test_module_wrapping(self):
        f1, _ = build_listing1_function()
        f2, _ = build_listing2_function()
        module = wrap_in_module(f1, f2)
        assert module.lookup_symbol("foo") is f1
        assert module.lookup_symbol("non_uniform") is f2
