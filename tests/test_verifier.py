"""Every verifier diagnostic, exercised with and without locations.

The PR-6 verifier reports findings as source-located
:class:`~repro.ir.Diagnostic` objects while keeping the classic
``verify()`` message strings byte-stable.  Each structural invariant gets
a test: per-op ``verify_op`` failures, terminator position, SINGLE_BLOCK
regions and operand dominance (including the attached defining-op note).
"""

import pytest

from repro.dialects import arith, func, memref, scf, sycl
from repro.ir import (
    Block,
    Builder,
    DiagnosticEngine,
    InsertionPoint,
    Operation,
    Severity,
    VerificationError,
    i1,
    i32,
    parse_module,
    verify,
    verify_with_diagnostics,
)
from repro.ir.types import MemRefType

from .helpers import wrap_in_module


def _empty_func(name="f", arg_types=(), arg_names=None):
    return func.FuncOp.build(name, list(arg_types), arg_names=arg_names)


class BadOp(Operation):
    """Test-only op whose per-op verifier always rejects."""

    OPERATION_NAME = "test.bad"

    def verify_op(self):
        raise ValueError("this op is always invalid")


class TestVerifyOpHook:
    def test_failing_verify_op_becomes_diagnostic(self):
        f = _empty_func()
        body = Builder(InsertionPoint.at_end(f.body))
        body.insert(BadOp(operands=(), result_types=()))
        body.insert(func.ReturnOp.build())
        diagnostics = verify_with_diagnostics(f)
        assert len(diagnostics) == 1
        assert diagnostics[0].severity is Severity.ERROR
        assert diagnostics[0].message == "test.bad: this op is always invalid"

    def test_verify_raises_with_diagnostics_attached(self):
        f = _empty_func()
        body = Builder(InsertionPoint.at_end(f.body))
        body.insert(BadOp(operands=(), result_types=()))
        body.insert(func.ReturnOp.build())
        with pytest.raises(VerificationError) as excinfo:
            verify(f)
        assert "test.bad: this op is always invalid" in str(excinfo.value)
        assert len(excinfo.value.diagnostics) == 1

    def test_verify_without_raise_returns_messages(self):
        f = _empty_func()
        body = Builder(InsertionPoint.at_end(f.body))
        body.insert(BadOp(operands=(), result_types=()))
        body.insert(func.ReturnOp.build())
        messages = verify(f, raise_on_error=False)
        assert messages == ["test.bad: this op is always invalid"]


class TestTerminatorPosition:
    def test_terminator_not_last_is_reported(self):
        f = _empty_func()
        body = Builder(InsertionPoint.at_end(f.body))
        body.insert(func.ReturnOp.build())
        body.insert(arith.ConstantOp.build(1, i32()))
        diagnostics = verify_with_diagnostics(f)
        assert any(
            "func.return: terminator must be the last operation" in d.message
            for d in diagnostics)

    def test_terminator_in_last_position_is_clean(self):
        f = _empty_func()
        body = Builder(InsertionPoint.at_end(f.body))
        body.insert(arith.ConstantOp.build(1, i32()))
        body.insert(func.ReturnOp.build())
        assert verify_with_diagnostics(f) == []


class TestSingleBlockRegions:
    def test_extra_block_in_single_block_region_is_reported(self):
        f = _empty_func("g", [i1()], arg_names=["cond"])
        (cond,) = f.arguments
        body = Builder(InsertionPoint.at_end(f.body))
        if_op = body.insert(scf.IfOp.build(cond))
        if_op.then_block.append(scf.YieldOp.build())
        if_op.regions[0].add_block(Block())
        body.insert(func.ReturnOp.build())
        diagnostics = verify_with_diagnostics(f)
        assert any(
            "scf.if: expected a single block per region" in d.message
            for d in diagnostics)


class TestOperandDominance:
    def test_use_before_def_in_same_block(self):
        f = _empty_func()
        body = Builder(InsertionPoint.at_end(f.body))
        c = body.insert(arith.ConstantOp.build(1, i32()))
        add = body.insert(arith.AddIOp.build(c.result, c.result))
        body.insert(func.ReturnOp.build())
        add.move_before(c)
        diagnostics = verify_with_diagnostics(f)
        assert any("does not dominate its use" in d.message
                   for d in diagnostics)

    def test_sibling_region_escape_reports_error_and_note(self):
        # The PR 5 miscompile shape: a pointer materialized inside one arm
        # of an scf.if, used after the scf.if.
        scalar = MemRefType((), i32())
        f = _empty_func("k", [i1(), scalar, i32()],
                        arg_names=["cond", "ptr", "v"])
        cond, ptr, v = f.arguments
        body = Builder(InsertionPoint.at_end(f.body))
        if_op = body.insert(scf.IfOp.build(cond))
        pointer = sycl.SYCLAccessorGetPointerOp.build(ptr)
        if_op.then_block.append(pointer)
        if_op.then_block.append(scf.YieldOp.build())
        zero = body.insert(arith.ConstantOp.build(0, i32()))
        store = body.insert(memref.StoreOp.build(
            v, pointer.result, [zero.result]))
        body.insert(func.ReturnOp.build())
        del store
        diagnostics = verify_with_diagnostics(f)
        dominance = [d for d in diagnostics
                     if "does not dominate its use" in d.message]
        assert len(dominance) == 1
        notes = dominance[0].notes
        assert len(notes) == 1
        assert "sycl.accessor.get_pointer" in notes[0].message

    def test_textual_dominance_violation_carries_location(self):
        text = (
            '"builtin.module"() : () -> () ({\n'
            '  "func.func"() {function_type = (memref<i32>, i32) -> (), '
            'sym_name = "k", sym_visibility = "public"} : () -> () ({\n'
            '   ^bb0(%ptr: memref<i32>, %v: i32):\n'
            '    "memref.store"(%v, %p) : (i32, memref<i32>) -> ()\n'
            '    %p = "sycl.accessor.get_pointer"(%ptr) : '
            '(memref<i32>) -> (memref<i32>)\n'
            '    "func.return"() : () -> ()\n'
            '  })\n'
            '})\n')
        module = parse_module(text, filename="test.mlir")
        diagnostics = verify_with_diagnostics(module)
        located = [d for d in diagnostics
                   if "does not dominate its use" in d.message]
        assert len(located) == 1
        assert located[0].location.describe() == "test.mlir:4:5"
        assert located[0].notes[0].location.describe() == "test.mlir:5:5"


class TestEngineIntegration:
    def test_diagnostics_emitted_into_engine(self):
        f = _empty_func()
        body = Builder(InsertionPoint.at_end(f.body))
        body.insert(BadOp(operands=(), result_types=()))
        body.insert(func.ReturnOp.build())
        engine = DiagnosticEngine()
        with engine.capture() as captured:
            returned = verify_with_diagnostics(f, engine)
        assert captured == returned
        assert engine.error_count == 1

    def test_clean_module_emits_nothing(self):
        module = wrap_in_module(_empty_func_with_return())
        engine = DiagnosticEngine()
        with engine.capture() as captured:
            verify_with_diagnostics(module, engine)
        assert captured == []


def _empty_func_with_return():
    f = _empty_func()
    Builder(InsertionPoint.at_end(f.body)).insert(func.ReturnOp.build())
    return f
