"""The compile daemon: protocol, concurrency, and fault behaviour.

The server under test is hosted in-process on an ephemeral port (the
subprocess lifecycle — SIGTERM/Ctrl-C exit codes — is covered in
``tests/test_fault_tolerance.py`` with the other CLI signal contracts).
The load-bearing assertions: N concurrent clients get results
byte-identical to a serial one-shot compile, a bad request never takes
the daemon down, and injected ``serve.request`` transients surface as
retryable errors the client's retry loop absorbs — never as wrong
output.
"""

import json
import sys
import threading
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.faults import fault_plan, install_fault_plan  # noqa: E402
from repro.ir import Printer  # noqa: E402
from repro.serve import (  # noqa: E402
    CompileService,
    ProtocolError,
    ReproServer,
    ServeClient,
    ServeError,
    read_message,
    write_message,
)
from repro.transforms import parse_pass_pipeline  # noqa: E402

from .helpers import (  # noqa: E402
    build_listing1_function,
    build_listing2_function,
    build_listing3_function,
    wrap_in_module,
)

PIPELINE = "builtin.module(func.func(canonicalize,cse,dce))"


@pytest.fixture(autouse=True)
def _clean_fault_state():
    yield
    install_fault_plan(None)


def _module_text():
    module = wrap_in_module(*[build()[0] for build in (
        build_listing1_function,
        build_listing2_function,
        build_listing3_function,
    )])
    return Printer().print_module(module)


def _one_shot(text):
    """What ``repro-opt`` would print for the same input (plus the
    trailing newline both emit)."""
    from repro.ir import parse_module

    module = parse_module(text, filename="<request>")
    manager = parse_pass_pipeline(PIPELINE)
    manager.run(module)
    return Printer().print_module(module) + "\n"


@pytest.fixture()
def server():
    service = CompileService()
    instance = ReproServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=instance.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    yield instance
    instance.shutdown()
    instance.server_close()
    thread.join(timeout=5)


def _client(server, **kwargs):
    return ServeClient(host=server.host, port=server.port, timeout=30.0,
                       **kwargs)


class TestProtocol:
    def test_ping(self, server):
        with _client(server) as client:
            response = client.ping()
        assert response["pong"] is True
        assert response["protocol"] == 1

    def test_unknown_method_is_an_error_not_a_disconnect(self, server):
        with _client(server) as client:
            with pytest.raises(ServeError, match="unknown method"):
                client.request("frobnicate")
            assert client.ping()["pong"] is True

    def test_framing_error_reported_then_connection_dropped(self, server):
        import socket

        with socket.create_connection((server.host, server.port),
                                      timeout=10) as sock:
            rfile = sock.makefile("rb")
            wfile = sock.makefile("wb")
            wfile.write(b"this is not json\n")
            wfile.flush()
            response = read_message(rfile)
            assert response["ok"] is False
            assert response["kind"] == "protocol-error"
            assert read_message(rfile) is None  # server hung up

    def test_requests_are_id_tagged(self, server):
        import socket

        with socket.create_connection((server.host, server.port),
                                      timeout=10) as sock:
            rfile = sock.makefile("rb")
            wfile = sock.makefile("wb")
            write_message(wfile, {"id": "my-tag", "method": "ping"})
            response = read_message(rfile)
        assert response["id"] == "my-tag"

    def test_message_round_trip_helpers(self):
        import io

        buffer = io.BytesIO()
        write_message(buffer, {"a": 1})
        buffer.seek(0)
        assert read_message(buffer) == {"a": 1}
        assert read_message(buffer) is None
        with pytest.raises(ProtocolError):
            read_message(io.BytesIO(b"[1, 2]\n"))


class TestCompile:
    def test_byte_identical_to_one_shot(self, server):
        text = _module_text()
        with _client(server) as client:
            done = client.compile(text, PIPELINE)
        assert done["text"] == _one_shot(text)
        assert done["cached"] is False

    def test_second_compile_is_cached(self, server):
        text = _module_text()
        with _client(server) as client:
            first = client.compile(text, PIPELINE)
            second = client.compile(text, PIPELINE)
        assert second["cached"] is True
        assert second["text"] == first["text"]
        assert second["statistics"] is not None

    def test_progress_events_stream(self, server):
        text = _module_text()
        events = []
        with _client(server) as client:
            done = client.compile(text, PIPELINE, progress=events.append)
        assert done["text"] == _one_shot(text)
        phases = {event["phase"] for event in events}
        assert phases == {"pass-begin", "pass-end"}
        names = {event["pass"] for event in events}
        assert names == {"canonicalize", "cse", "dce"}
        # Streaming bypasses the cache (the documented trade).
        assert done["cached"] is False

    def test_parse_error_keeps_daemon_alive(self, server):
        with _client(server) as client:
            with pytest.raises(ServeError) as excinfo:
                client.compile("definitely not IR {", PIPELINE)
            assert excinfo.value.kind == "parse-error"
            assert client.ping()["pong"] is True

    def test_bad_pipeline_spec_is_a_request_error(self, server):
        with _client(server) as client:
            with pytest.raises(ServeError) as excinfo:
                client.compile(_module_text(), "no-such-pass(")
            assert excinfo.value.kind == "pipeline-error"

    def test_missing_fields_rejected(self, server):
        with _client(server) as client:
            with pytest.raises(ServeError, match="no IR"):
                client.request("compile", passes=PIPELINE)
            with pytest.raises(ServeError, match="no pipeline"):
                client.request("compile", ir=_module_text())

    def test_manager_pool_reuses_managers(self, server):
        text = _module_text()
        with _client(server) as client:
            client.compile(text, PIPELINE)
            client.compile(text, PIPELINE)
            status = client.status()
        assert status["pool"] == {PIPELINE: 1}


class TestStatus:
    def test_status_reports_cache_and_counters(self, server):
        text = _module_text()
        with _client(server) as client:
            client.compile(text, PIPELINE)
            client.compile(text, PIPELINE)
            status = client.status()
        assert status["compiles"] == 2
        assert status["cache"]["hits"] == 1
        assert status["cache"]["misses"] == 1
        assert status["uptime_seconds"] >= 0
        assert "analyses" in status

    def test_status_includes_disk_tier_when_configured(self, tmp_path):
        service = CompileService(cache_dir=str(tmp_path))
        server = ReproServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=server.serve_forever,
                                  kwargs={"poll_interval": 0.05},
                                  daemon=True)
        thread.start()
        try:
            with ServeClient(host=server.host, port=server.port) as client:
                client.compile(_module_text(), PIPELINE)
                status = client.status()
            disk = status["cache"]["disk"]
            assert disk["stores"] == 1
            assert disk["bytes_on_disk"] > 0
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestConcurrency:
    def test_concurrent_clients_byte_identical(self, server):
        """The acceptance bar: >= 4 concurrent clients, every result
        byte-identical to the serial one-shot compile."""
        text = _module_text()
        expected = _one_shot(text)
        results = {}
        errors = []

        def hammer(index):
            try:
                with _client(server) as client:
                    for _ in range(3):
                        done = client.compile(text, PIPELINE)
                        assert done["text"] == expected
                    results[index] = True
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append((index, exc))

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        assert len(results) == 6

    def test_concurrent_distinct_pipelines(self, server):
        text = _module_text()
        specs = [
            "builtin.module(func.func(canonicalize))",
            "builtin.module(func.func(cse))",
            "builtin.module(func.func(canonicalize,cse,dce))",
            "builtin.module(func.func(dce))",
        ]
        outcomes = {}
        errors = []

        def compile_with(spec):
            try:
                with _client(server) as client:
                    outcomes[spec] = client.compile(text, spec)["text"]
            except Exception as exc:  # noqa: BLE001
                errors.append((spec, exc))

        threads = [threading.Thread(target=compile_with, args=(spec,))
                   for spec in specs]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        assert len(outcomes) == len(specs)
        # dce alone and the full pipeline genuinely differ from each
        # other on at least one listing, so outputs are not all equal.
        assert len(set(outcomes.values())) > 1


class TestFaults:
    def test_transient_request_fault_is_retryable(self, server):
        text = _module_text()
        with _client(server, max_retries=2, backoff=0.01) as client:
            with fault_plan("serve.request@compile=transient"):
                done = client.compile(text, PIPELINE)
        assert done["text"] == _one_shot(text)

    def test_transient_fault_without_retries_surfaces(self, server):
        text = _module_text()
        with _client(server, max_retries=0) as client:
            with fault_plan("serve.request@compile=transient"):
                with pytest.raises(ServeError) as excinfo:
                    client.compile(text, PIPELINE)
        assert excinfo.value.retryable is True
        assert excinfo.value.kind == "transient"

    def test_corrupt_request_fault_rejected_not_wrong(self, server):
        text = _module_text()
        with _client(server, max_retries=2, backoff=0.01) as client:
            with fault_plan("serve.request@compile=corrupt"):
                done = client.compile(text, PIPELINE)
        assert done["text"] == _one_shot(text)

    def test_disk_read_corruption_served_through_daemon(self, tmp_path):
        """A daemon over a poisoned disk store recompiles cold and
        still answers correctly."""
        text = _module_text()
        service = CompileService(cache_dir=str(tmp_path))
        server = ReproServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=server.serve_forever,
                                  kwargs={"poll_interval": 0.05},
                                  daemon=True)
        thread.start()
        try:
            with ServeClient(host=server.host, port=server.port) as client:
                client.compile(text, PIPELINE)
            # Mangle the persisted entry behind the daemon's back, then
            # defeat the in-memory tier so the next compile reads disk.
            victim = next(Path(tmp_path).glob("*/*.json"))
            payload = json.loads(victim.read_text())
            payload["text"] = payload["text"][:-10]
            victim.write_text(json.dumps(payload))
            service.cache.clear()
            with ServeClient(host=server.host, port=server.port) as client:
                done = client.compile(text, PIPELINE)
                status = client.status()
            assert done["text"] == _one_shot(text)
            assert status["cache"]["disk"]["corrupt_recoveries"] == 1
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestShutdown:
    def test_shutdown_request_stops_server(self):
        service = CompileService()
        server = ReproServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=server.serve_forever,
                                  kwargs={"poll_interval": 0.05},
                                  daemon=True)
        thread.start()
        with ServeClient(host=server.host, port=server.port) as client:
            response = client.shutdown()
        assert response["shutdown"] is True
        thread.join(timeout=10)
        assert not thread.is_alive()
        server.server_close()
