"""Regression tests: the greedy driver must report non-convergence."""

import warnings

import pytest

from repro.dialects import arith, builtin
from repro.ir import IntegerAttr, IRError, i64
from repro.transforms.rewrite import (
    NonConvergenceWarning,
    RewritePattern,
    apply_patterns_greedily,
)


class _SetFlag(RewritePattern):
    ROOT_OP = "arith.constant"

    def match_and_rewrite(self, op, rewriter):
        if op.get_int_attr("flag", 0) == 0:
            op.set_attr("flag", IntegerAttr(1, i64()))
            rewriter.notify_changed()
            return True
        return False


class _ClearFlag(RewritePattern):
    ROOT_OP = "arith.constant"

    def match_and_rewrite(self, op, rewriter):
        if op.get_int_attr("flag", 0) == 1:
            op.set_attr("flag", IntegerAttr(0, i64()))
            rewriter.notify_changed()
            return True
        return False


def _module_with_constant():
    module = builtin.ModuleOp.build()
    module.append(arith.ConstantOp.build(1, i64()))
    return module


def test_ping_pong_patterns_warn():
    module = _module_with_constant()
    with pytest.warns(NonConvergenceWarning, match="did not converge"):
        changed = apply_patterns_greedily(module, [_SetFlag(), _ClearFlag()])
    assert changed  # the IR did change, it just never reached a fixed point


def test_ping_pong_patterns_can_raise():
    module = _module_with_constant()
    with pytest.raises(IRError, match="did not converge"):
        apply_patterns_greedily(module, [_SetFlag(), _ClearFlag()],
                                on_nonconvergence="error")


def test_invalid_on_nonconvergence_is_rejected():
    module = _module_with_constant()
    with pytest.raises(ValueError, match="must be 'warn' or 'error'"):
        apply_patterns_greedily(module, [_SetFlag()],
                                on_nonconvergence="raise")


def test_converging_patterns_do_not_warn():
    module = _module_with_constant()
    with warnings.catch_warnings():
        warnings.simplefilter("error", NonConvergenceWarning)
        changed = apply_patterns_greedily(module, [_SetFlag()])
    assert changed
    assert module.body.operations[0].get_int_attr("flag") == 1


def test_no_change_returns_false_without_warning():
    module = _module_with_constant()
    with warnings.catch_warnings():
        warnings.simplefilter("error", NonConvergenceWarning)
        changed = apply_patterns_greedily(module, [_ClearFlag()])
    assert not changed
