"""Tests for the nested, options-aware pass-manager infrastructure.

Covers the tentpole properties of the redesign:

* pipeline-spec round trip: ``dump(parse(s)) == dump(parse(dump(parse(s))))``
  for nested + options specs, and parsed pipelines behave exactly like
  hand-built ones;
* typed option parsing (booleans, ints, choices, unknown keys) with
  character-offset diagnostics;
* per-function anchoring: a func-anchored pass runs once per isolated
  function and never observes siblings;
* instrumentation ordering, including ``run_after_failed_verify``;
* position-keyed timing aggregation (duplicate passes stay distinct) and
  the analogous ``CompileReport.merge`` re-keying.
"""

import pytest

from repro.dialects import arith, builtin, func
from repro.ir import Printer, VerificationError, i64, parse_module, verify
from repro.transforms import (
    CSEPass,
    CanonicalizePass,
    CompileReport,
    DCEPass,
    DetectReduction,
    FunctionPass,
    HostDeviceOptimizationPass,
    HostRaisingPass,
    LoopInternalization,
    LoopInvariantCodeMotion,
    OpPassManager,
    PassInstrumentation,
    PassManager,
    PipelineParseError,
    VerifierInstrumentation,
    available_passes,
    dump_pass_pipeline,
    lookup_pass,
    parse_pass_pipeline,
    register_pass,
    sycl_mlir_pipeline,
)

from .helpers import (
    build_listing1_function,
    build_listing2_function,
    build_listing3_function,
    wrap_in_module,
)

LISTING_BUILDERS = (
    build_listing1_function,
    build_listing2_function,
    build_listing3_function,
)


def _two_function_module():
    module = builtin.ModuleOp.build()
    for name in ("f", "g"):
        f = func.FuncOp.build(name, [])
        c = arith.ConstantOp.build(7, i64())
        f.body.append(c)
        f.body.append(func.ReturnOp.build())
        module.append(f)
    return module


# ---------------------------------------------------------------------------
# Pipeline-spec round trip
# ---------------------------------------------------------------------------

ROUND_TRIP_SPECS = [
    "canonicalize,cse",
    "builtin.module(cse,func.func(canonicalize{max-iterations=10},licm))",
    "func.func(canonicalize{prune-dead=false},cse)",
    "builtin.module(host-raising,host-device-propagation,"
    "func.func(licm{alias=generic,allow-side-effecting-hoist=false}))",
    "detect-reduction-generic",
    "builtin.module(func.func(canonicalize,cse,dce),host-raising)",
    "canonicalize{max-iterations=10,prune-dead=false}",
]


class TestRoundTrip:
    @pytest.mark.parametrize("spec", ROUND_TRIP_SPECS)
    def test_dump_parse_round_trip(self, spec):
        once = dump_pass_pipeline(parse_pass_pipeline(spec))
        twice = dump_pass_pipeline(parse_pass_pipeline(once))
        assert once == twice

    def test_dump_is_canonical_for_aliases(self):
        # `licm` is an alias; the dump names the primary pass.
        spec = dump_pass_pipeline(parse_pass_pipeline("licm"))
        assert spec == "builtin.module(sycl-licm)"
        # Preset options of an alias survive the round trip.
        spec = dump_pass_pipeline(parse_pass_pipeline("licm-generic"))
        assert spec == "builtin.module(sycl-licm{alias=generic})"

    def test_flat_and_nested_specs_build_equal_pipelines(self):
        flat = parse_pass_pipeline("canonicalize,cse")
        nested = parse_pass_pipeline("builtin.module(canonicalize,cse)")
        assert dump_pass_pipeline(flat) == dump_pass_pipeline(nested)

    @pytest.mark.parametrize("builder", LISTING_BUILDERS)
    def test_parsed_pipeline_matches_hand_built(self, builder):
        # The acceptance criterion: running the parsed spec on the paper
        # listing modules matches the equivalent hand-built PassManager.
        spec = "builtin.module(cse,func.func(" \
               "canonicalize{max-iterations=10},licm))"
        parsed_module = wrap_in_module(builder()[0])
        hand_module = wrap_in_module(builder()[0])

        parse_pass_pipeline(spec).run(parsed_module)

        pm = PassManager()
        pm.add(CSEPass())
        nested = pm.nest("func.func")
        nested.add(CanonicalizePass(max_iterations=10))
        nested.add(LoopInvariantCodeMotion())
        pm.run(hand_module)

        assert Printer().print_module(parsed_module) == \
            Printer().print_module(hand_module)
        verify(parsed_module)

    @pytest.mark.parametrize("builder", LISTING_BUILDERS)
    def test_sycl_mlir_pipeline_round_trips_and_matches(self, builder):
        pipeline = sycl_mlir_pipeline()
        spec = dump_pass_pipeline(pipeline)
        assert dump_pass_pipeline(parse_pass_pipeline(spec)) == spec

        direct = wrap_in_module(builder()[0])
        reparsed = wrap_in_module(builder()[0])
        pipeline.run(direct)
        parse_pass_pipeline(spec).run(reparsed)
        assert Printer().print_module(direct) == \
            Printer().print_module(reparsed)


# ---------------------------------------------------------------------------
# Option parsing
# ---------------------------------------------------------------------------

class TestOptionParsing:
    @pytest.mark.parametrize("text, expected", [
        ("true", True), ("True", True), ("1", True),
        ("false", False), ("False", False), ("0", False),
    ])
    def test_boolean_spellings(self, text, expected):
        manager = parse_pass_pipeline(f"canonicalize{{prune-dead={text}}}")
        assert manager.passes[0].options.prune_dead is expected

    def test_integer_option(self):
        manager = parse_pass_pipeline("canonicalize{max-iterations=7}")
        assert manager.passes[0].options.max_iterations == 7

    def test_bad_boolean_is_an_error_with_offset(self):
        with pytest.raises(PipelineParseError,
                           match=r"expects a boolean.*at character 24"):
            parse_pass_pipeline("canonicalize{prune-dead=maybe}")

    def test_bad_integer_is_an_error(self):
        with pytest.raises(PipelineParseError, match="expects an integer"):
            parse_pass_pipeline("canonicalize{max-iterations=ten}")

    def test_unknown_option_key_is_an_error(self):
        with pytest.raises(PipelineParseError,
                           match=r"unknown option 'frobnicate' for pass "
                                 r"'canonicalize'.*available options: "
                                 r"max-iterations, prune-dead"):
            parse_pass_pipeline("canonicalize{frobnicate=1}")

    def test_choice_option_rejects_unknown_value(self):
        with pytest.raises(PipelineParseError,
                           match="expects one of sycl, generic"):
            parse_pass_pipeline("licm{alias=psychic}")

    def test_unknown_pass_reports_token_and_offset(self):
        with pytest.raises(PipelineParseError,
                           match=r"unknown pass 'frobnicate'.*available "
                                 r"passes.*at character 13"):
            parse_pass_pipeline("canonicalize,frobnicate")

    def test_unterminated_option_block(self):
        with pytest.raises(PipelineParseError,
                           match=r"expected ',' or '}' .* got end of spec"):
            parse_pass_pipeline("canonicalize{max-iterations=3")

    def test_pass_does_not_take_nested_pipeline(self):
        with pytest.raises(PipelineParseError,
                           match="pass 'cse' does not take a nested"):
            parse_pass_pipeline("cse(canonicalize)")

    def test_unknown_anchor(self):
        with pytest.raises(PipelineParseError,
                           match="unknown pipeline anchor 'spirv.module'"):
            parse_pass_pipeline("spirv.module(cse)")

    def test_module_pass_cannot_nest_under_function(self):
        with pytest.raises(PipelineParseError,
                           match="cannot schedule pass 'host-raising'"):
            parse_pass_pipeline("func.func(host-raising)")

    def test_empty_nested_pipeline_is_an_error(self):
        with pytest.raises(PipelineParseError, match="empty pass pipeline"):
            parse_pass_pipeline("builtin.module(cse,func.func())")

    def test_missing_comma_between_options_is_an_error(self):
        with pytest.raises(PipelineParseError,
                           match=r"expected ',' or '}' after an option"):
            parse_pass_pipeline(
                "canonicalize{max-iterations=10 prune-dead=false}")

    def test_trailing_comma_in_option_block_is_an_error(self):
        with pytest.raises(PipelineParseError, match="trailing ','"):
            parse_pass_pipeline("canonicalize{max-iterations=10,}")

    def test_resolve_pass_name_resolves_aliases(self):
        from repro.transforms import resolve_pass_name

        assert resolve_pass_name("licm") == "sycl-licm"
        assert resolve_pass_name("cse") == "cse"
        with pytest.raises(ValueError, match="available passes"):
            resolve_pass_name("nope")

    def test_programmatic_option_overrides(self):
        pass_ = CanonicalizePass(max_iterations=5)
        assert pass_.to_spec() == "canonicalize{max-iterations=5}"
        assert CanonicalizePass().to_spec() == "canonicalize"

    def test_prune_dead_option_changes_behaviour(self):
        text = ('"builtin.module"() : () -> () ({\n'
                '  "func.func"() {sym_name = "f", function_type = () -> ()} '
                ': () -> () ({\n'
                '    %a = "arith.constant"() {value = 1 : i64} : () -> (i64)\n'
                '    "func.return"() : () -> ()\n'
                '  })\n'
                '})')

        kept = parse_module(text)
        parse_pass_pipeline("canonicalize{prune-dead=false}").run(kept)
        assert any(op.name == "arith.constant"
                   for op in kept.walk())

        pruned = parse_module(text)
        parse_pass_pipeline("canonicalize").run(pruned)
        assert not any(op.name == "arith.constant"
                       for op in pruned.walk())


# ---------------------------------------------------------------------------
# Nesting and anchoring
# ---------------------------------------------------------------------------

class _SpyPass(FunctionPass):
    """Records the ops each invocation can observe."""

    NAME = "spy"

    def __init__(self):
        super().__init__()
        self.seen_roots = []
        self.seen_functions = []

    def run(self, op, report):
        self.seen_roots.append(op.name)
        super().run(op, report)

    def run_on_function(self, function, report):
        visible = sorted({o.sym_name for o in function.walk()
                          if isinstance(o, func.FuncOp)})
        self.seen_functions.append((function.sym_name, visible))


class TestAnchoring:
    def test_function_anchored_pass_runs_per_isolated_function(self):
        module = _two_function_module()
        spy = _SpyPass()
        pm = PassManager()
        pm.nest("func.func").add(spy)
        pm.run(module)
        # Two invocations, each rooted at one function, each seeing only
        # that function — never a sibling.
        assert spy.seen_roots == ["func.func", "func.func"]
        assert spy.seen_functions == [("f", ["f"]), ("g", ["g"])]

    def test_module_scheduled_function_pass_iterates_itself(self):
        module = _two_function_module()
        spy = _SpyPass()
        PassManager([spy]).run(module)
        # Legacy flat scheduling: one invocation rooted at the module.
        assert spy.seen_roots == ["builtin.module"]
        assert [name for name, _ in spy.seen_functions] == ["f", "g"]

    def test_add_rejects_incompatible_anchor(self):
        pm = PassManager()
        nested = pm.nest("func.func")
        with pytest.raises(ValueError, match="cannot schedule"):
            nested.add(HostRaisingPass())

    def test_nest_rejects_module_under_function(self):
        nested = PassManager().nest("func.func")
        with pytest.raises(ValueError, match="cannot nest"):
            nested.nest("builtin.module")

    def test_unknown_anchor_is_rejected(self):
        with pytest.raises(ValueError, match="unknown pipeline anchor"):
            PassManager().nest("gpu.module")
        with pytest.raises(ValueError, match="unknown pipeline anchor"):
            OpPassManager("gpu.module")

    def test_flattened_passes_view_and_len(self):
        pm = PassManager([CSEPass()])
        pm.nest("func.func").add(CanonicalizePass()).add(DCEPass())
        assert [p.NAME for p in pm.passes] == ["cse", "canonicalize", "dce"]
        assert len(pm) == 3


# ---------------------------------------------------------------------------
# Instrumentation
# ---------------------------------------------------------------------------

class _Recorder(PassInstrumentation):
    def __init__(self, label, log):
        self.label = label
        self.log = log

    def run_before_pipeline(self, op):
        self.log.append(f"{self.label}.before_pipeline")

    def run_after_pipeline(self, op):
        self.log.append(f"{self.label}.after_pipeline")

    def run_before_pass(self, pass_, op):
        self.log.append(f"{self.label}.before:{pass_.NAME}")

    def run_after_pass(self, pass_, op):
        self.log.append(f"{self.label}.after:{pass_.NAME}")

    def run_after_failed_verify(self, pass_, op, error):
        self.log.append(f"{self.label}.failed_verify:{pass_.NAME}")


class _BreakIRPass(FunctionPass):
    """Appends a second terminator, invalidating the function."""

    NAME = "break-ir"

    def run_on_function(self, function, report):
        function.body.append(func.ReturnOp.build())


class TestInstrumentation:
    def test_hooks_nest_like_a_stack(self):
        log = []
        pm = PassManager([CanonicalizePass(), CSEPass()])
        pm.add_instrumentation(_Recorder("A", log))
        pm.add_instrumentation(_Recorder("B", log))
        pm.run(_two_function_module())
        assert log == [
            "A.before_pipeline", "B.before_pipeline",
            "A.before:canonicalize", "B.before:canonicalize",
            "B.after:canonicalize", "A.after:canonicalize",
            "A.before:cse", "B.before:cse",
            "B.after:cse", "A.after:cse",
            "B.after_pipeline", "A.after_pipeline",
        ]

    def test_verifier_instrumentation_raises_and_notifies(self):
        log = []
        pm = PassManager([_BreakIRPass()])
        pm.add_instrumentation(_Recorder("A", log))
        pm.add_instrumentation(VerifierInstrumentation())
        with pytest.raises(VerificationError):
            pm.run(_two_function_module())
        assert "A.failed_verify:break-ir" in log

    def test_verify_after_each_legacy_flag_still_works(self):
        pm = PassManager([_BreakIRPass()], verify_after_each=True)
        with pytest.raises(VerificationError):
            pm.run(_two_function_module())
        # A clean pipeline under the same flag is fine.
        PassManager([CanonicalizePass()],
                    verify_after_each=True).run(_two_function_module())

    def test_after_pipeline_hooks_run_when_a_pass_fails_verification(self):
        log = []
        pm = PassManager([_BreakIRPass()], verify_after_each=True)
        pm.add_instrumentation(_Recorder("A", log))
        with pytest.raises(VerificationError):
            pm.run(_two_function_module())
        # Teardown hooks still fire so resources opened in
        # run_before_pipeline are not leaked.
        assert "A.after_pipeline" in log

    def test_ir_printing_selectors_accept_false(self):
        from repro.transforms import IRPrintingInstrumentation

        instrumentation = IRPrintingInstrumentation(print_before=True,
                                                    print_after=False)
        assert instrumentation.print_after == frozenset()

    def test_function_anchored_instrumentation_sees_function_roots(self):
        log = []
        pm = PassManager()
        pm.nest("func.func").add(CanonicalizePass())
        roots = []

        class _RootRecorder(PassInstrumentation):
            def run_before_pass(self, pass_, op):
                roots.append(op.name)

        pm.add_instrumentation(_RootRecorder())
        pm.run(_two_function_module())
        assert roots == ["func.func", "func.func"]
        assert log == []


# ---------------------------------------------------------------------------
# Timing aggregation
# ---------------------------------------------------------------------------

class TestTiming:
    def test_duplicate_passes_get_distinct_buckets(self):
        pm = PassManager([CanonicalizePass(), CSEPass(), CanonicalizePass()])
        report = pm.run(_two_function_module())
        keys = sorted(report.timings)
        assert keys == ["0: canonicalize", "1: cse", "2: canonicalize"]

    def test_nested_runs_aggregate_under_one_position(self):
        pm = PassManager()
        pm.nest("func.func").add(CanonicalizePass()).add(CSEPass())
        report = pm.run(_two_function_module())
        # Two functions ran through each pass, but each pass occupies one
        # pipeline position.
        assert sorted(report.timings) == ["0: canonicalize", "1: cse"]

    def test_merge_renumbers_positions(self):
        first = CompileReport(timings={"0: canonicalize": 1.0, "1: cse": 2.0})
        second = CompileReport(timings={"0: canonicalize": 4.0,
                                        "parse": 0.5})
        first.merge(second)
        assert first.timings == {
            "0: canonicalize": 1.0,
            "1: cse": 2.0,
            "2: canonicalize": 4.0,  # re-keyed, not summed into position 0
            "parse": 0.5,            # unprefixed keys merge additively
        }

    def test_merge_into_empty_report_keeps_positions(self):
        report = CompileReport()
        report.merge(CompileReport(timings={"0: cse": 1.0}))
        assert report.timings == {"0: cse": 1.0}

    def test_shared_pass_instance_keeps_per_slot_buckets(self):
        # Positions are keyed by pipeline slot, not by pass object, so one
        # instance scheduled twice still reports two distinct buckets.
        shared = CanonicalizePass()
        pm = PassManager([shared, CSEPass(), shared])
        report = pm.run(_two_function_module())
        assert sorted(report.timings) == \
            ["0: canonicalize", "1: cse", "2: canonicalize"]


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_duplicate_registration_is_an_error(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_pass
            class _Clash(FunctionPass):  # noqa: F841
                NAME = "canonicalize"

                def run_on_function(self, function, report):
                    pass

    def test_lookup_and_build(self):
        registration = lookup_pass("canonicalize")
        assert registration is not None
        pass_ = registration.build({"max_iterations": 3})
        assert pass_.options.max_iterations == 3

    def test_alias_registrations_point_at_primaries(self):
        generic = lookup_pass("licm-generic")
        assert generic.alias_of == "sycl-licm"
        built = generic.build()
        assert built.options.alias == "generic"

    def test_paper_pass_names_are_registered(self):
        names = available_passes()
        for expected in ("canonicalize", "cse", "dce", "licm",
                         "detect-reduction", "loop-internalization",
                         "host-raising", "lower-sycl-accessors",
                         "host-device-propagation", "sycl-licm"):
            assert expected in names

    @pytest.mark.parametrize("name", sorted(
        n for n in available_passes()))
    def test_every_registered_pass_runs_standalone(self, name):
        # The CI smoke matrix in miniature: each registered pass runs on a
        # combined listing module and leaves verifiable IR behind.
        module = wrap_in_module(*[b()[0] for b in LISTING_BUILDERS])
        parse_pass_pipeline(name).run(module)
        verify(module)


# ---------------------------------------------------------------------------
# Declared metadata
# ---------------------------------------------------------------------------

class TestDeclaredMetadata:
    @pytest.mark.parametrize("pass_class", [
        CanonicalizePass, CSEPass, DCEPass, DetectReduction,
        HostDeviceOptimizationPass, HostRaisingPass, LoopInternalization,
        LoopInvariantCodeMotion,
    ])
    def test_statistics_are_declared(self, pass_class):
        assert pass_class.STATISTICS, \
            f"{pass_class.__name__} declares no statistics"
        for name, description in pass_class.STATISTICS:
            assert name and description

    def test_anchors(self):
        assert CanonicalizePass.ANCHOR == "func.func"
        assert HostRaisingPass.ANCHOR == "builtin.module"
        assert HostDeviceOptimizationPass.ANCHOR == "builtin.module"

    def test_reported_statistics_are_declared(self):
        # Statistics reported on a real run are a subset of the declared
        # schema (the schema is what --list-passes advertises).
        module = wrap_in_module(*[b()[0] for b in LISTING_BUILDERS])
        report = sycl_mlir_pipeline().run(module)
        declared = {}
        for name in available_passes():
            registration = lookup_pass(name)
            declared.setdefault(registration.pass_class.NAME, set()).update(
                stat for stat, _ in registration.pass_class.STATISTICS)
        for stat in report.statistics:
            assert stat.name in declared.get(stat.pass_name, set()), \
                f"undeclared statistic {stat.pass_name}.{stat.name}"
