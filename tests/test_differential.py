"""Differential-execution tests: every shipped pipeline must preserve
the observable semantics of every listing module, and of generated
kernels that trigger the heavyweight transforms (Loop Internalization
with barriers + local tiles, Detect Reduction) — including under
``jobs=4`` and a warm CompileCache."""

import pytest

from repro.dialects import builtin
from repro.frontend.kernel_builder import (
    AccessorParam,
    KernelSource,
    ScalarParam,
)
from repro.interp import (
    DifferentialError,
    ExecutionSpec,
    execute_module,
    run_differential,
)
from repro.ir import Printer, f32, index
from repro.transforms import (
    CompileCache,
    CompileReport,
    FunctionPass,
    build_named_pipeline,
    shipped_pipeline_names,
)

from .helpers import (
    build_gemm_module,
    build_listing1_function,
    build_listing2_function,
    build_listing3_function,
    listing_execution_specs,
    wrap_in_module,
)

SHIPPED_PIPELINES = shipped_pipeline_names()

LISTING_SPECS = listing_execution_specs()

_gemm_module = build_gemm_module


def _listing_module():
    return wrap_in_module(*[build()[0] for build in (
        build_listing1_function,
        build_listing2_function,
        build_listing3_function,
    )])


class TestListingModules:
    @pytest.mark.parametrize("pipeline", SHIPPED_PIPELINES)
    def test_all_listings_equivalent_under_pipeline(self, pipeline):
        report = run_differential(_listing_module(), pipeline,
                                  specs=LISTING_SPECS)
        assert report.executed == ["foo", "mem_acc", "non_uniform"]
        assert report.skipped == {}

    def test_module_left_untouched(self):
        module = _listing_module()
        before = Printer().print_module(module)
        run_differential(module, "sycl-mlir", specs=LISTING_SPECS)
        assert Printer().print_module(module) == before


class TestGeneratedKernels:
    @pytest.mark.parametrize("pipeline", SHIPPED_PIPELINES)
    def test_gemm_equivalent_under_pipeline(self, pipeline):
        module, specs = _gemm_module()
        report = run_differential(module, pipeline, specs=specs)
        assert report.executed == ["gemm"]

    def test_sycl_mlir_actually_internalizes_the_gemm(self):
        # Guard against the flagship case silently degenerating: the
        # sycl-mlir pipeline must produce barriers + local tiles here,
        # so the equivalence above really covers the tiled execution.
        module, _ = _gemm_module()
        optimized = module.clone({})
        build_named_pipeline("sycl-mlir").run(optimized)
        text = Printer().print_module(optimized)
        assert "sycl.group_barrier" in text
        assert "memref.alloc" in text

    @pytest.mark.parametrize("pipeline", SHIPPED_PIPELINES)
    def test_boundary_guarded_kernel(self, pipeline):
        def body(k):
            i = k.global_id(0)
            n = k.parameter("n")
            guard = (i < n) & (i >= 1)
            with k.if_then(guard):
                k.store("out", [i], k.load("a", [i]) * 2.0)
            flagged = guard.select(k.load("a", [i]), 0.0)
            k.store("flags", [i], flagged)

        source = KernelSource(
            "guarded", body=body, nd_range_dims=1,
            accessors=[AccessorParam("a", 1, f32(), "read"),
                       AccessorParam("out", 1, f32(), "write"),
                       AccessorParam("flags", 1, f32(), "write")],
            scalars=[ScalarParam("n", index())])
        module = wrap_in_module(source.build())
        spec = ExecutionSpec(global_size=(8,), scalars={"n": 6})
        report = run_differential(module, pipeline,
                                  specs={"guarded": spec})
        assert report.executed == ["guarded"]


class TestConcurrentCompilation:
    def test_jobs4_pipeline_preserves_semantics(self):
        module, specs = _gemm_module()
        manager = build_named_pipeline("sycl-mlir", jobs=4)
        try:
            report = run_differential(module, "sycl-mlir", specs=specs,
                                      manager=manager)
        finally:
            manager.close()
        assert report.executed == ["gemm"]

    def test_warm_compile_cache_preserves_semantics(self):
        # A cache hit splices a clone of the cached optimized module;
        # the differential harness proves the splice executes like the
        # cold compile did.
        module, specs = _gemm_module()
        cache = CompileCache()
        primer = build_named_pipeline("sycl-mlir")
        primer.cache = cache
        primer.run(module.clone({}), report=CompileReport())
        assert cache.describe()["entries"] >= 1

        warm = build_named_pipeline("sycl-mlir")
        warm.cache = cache
        try:
            report = run_differential(module, "sycl-mlir", specs=specs,
                                      manager=warm)
        finally:
            warm.close()
            primer.close()
        assert report.executed == ["gemm"]
        assert cache.describe()["hits"] >= 1

    def test_jobs4_and_warm_cache_on_listings(self):
        cache = CompileCache()
        primer = build_named_pipeline("sycl-mlir", jobs=4)
        primer.cache = cache
        primer.run(_listing_module(), report=CompileReport())
        warm = build_named_pipeline("sycl-mlir", jobs=4)
        warm.cache = cache
        try:
            report = run_differential(_listing_module(), "sycl-mlir",
                                      specs=LISTING_SPECS, manager=warm)
        finally:
            warm.close()
            primer.close()
        assert report.executed == ["foo", "mem_acc", "non_uniform"]
        assert cache.describe()["hits"] >= 1


class _MiscompilingPass(FunctionPass):
    """Deliberately breaks semantics: rewrites addf into subf."""

    NAME = "test-miscompile"

    def run_on_function(self, function, report: CompileReport) -> None:
        from repro.dialects import arith

        for op in list(function.walk()):
            if op.name == "arith.addf":
                replacement = arith.SubFOp.build(op.operands[0],
                                                 op.operands[1])
                op.parent.insert_before(op, replacement)
                op.replace_all_uses_with([replacement.result])
                op.erase()


class TestHarnessSensitivity:
    def test_miscompile_is_detected(self):
        # The harness must actually be able to fail: a pipeline that
        # changes arithmetic must raise DifferentialError.
        from repro.transforms import PassManager

        module, specs = _gemm_module()
        manager = PassManager()
        manager.nest("func.func").add(_MiscompilingPass())
        with pytest.raises(DifferentialError):
            run_differential(module, manager, specs=specs)

    def test_unexecutable_module_raises_when_required(self):
        module = builtin.ModuleOp.build("empty")
        with pytest.raises(DifferentialError, match="could not execute"):
            run_differential(module, "sycl-mlir")

    @pytest.mark.parametrize("pipeline", SHIPPED_PIPELINES)
    def test_local_accessor_kernel_is_synthesized(self, pipeline):
        # Kernels taking a sycl local_accessor must execute under the
        # harness (shared per-group scratch), not crash synthesis.
        def body(k):
            tile = k.parameter("tile")
            li = k.local_id(0)
            k.private_store(tile.value, li, k.load("a", [k.global_id(0)]))
            k.group_barrier()
            other = k.private_load(tile.value, (li + 1) % 2)
            k.store("out", [k.global_id(0)], other)

        source = KernelSource(
            "swap", body=body, nd_range_dims=1,
            accessors=[AccessorParam("a", 1, f32(), "read"),
                       AccessorParam("tile", 1, f32(), "read_write",
                                     target="local"),
                       AccessorParam("out", 1, f32(), "write")])
        module = wrap_in_module(source.build())
        spec = ExecutionSpec(global_size=(4,), local_size=(2,),
                             buffers={"a": (4,), "tile": (2,),
                                      "out": (4,)})
        report = run_differential(module, pipeline, specs={"swap": spec})
        assert report.executed == ["swap"]

    def test_indivisible_work_group_size_is_a_skip_not_a_crash(self):
        # NDRange validation errors must surface as skip reasons, not
        # escape the harness as raw ValueErrors.
        module, _ = _gemm_module(size=8, work_group=3)
        executions, skipped = execute_module(module)
        assert executions == {}
        assert "divisible" in skipped["gemm"]
        report = run_differential(module, "sycl-mlir",
                                  require_executions=False)
        assert "divisible" in report.skipped["gemm"]

    def test_trapping_division_is_not_speculated_out_of_zero_trip_loop(
            self):
        # LICM must not hoist a possibly-trapping divsi above a loop
        # that may execute zero times: with n=0 and d=0 the original
        # program never divides, so the optimized one must not either.
        from repro.dialects import arith, func as func_dialect, scf
        from repro.ir import Builder, InsertionPoint, index

        f = func_dialect.FuncOp.build("maybe_div", [index(), index()],
                                      [index()], arg_names=["n", "d"])
        n, d = f.arguments
        b = Builder(InsertionPoint.at_end(f.body))
        c0 = b.insert(arith.ConstantOp.build(0, index()))
        c1 = b.insert(arith.ConstantOp.build(1, index()))
        c10 = b.insert(arith.ConstantOp.build(10, index()))
        loop = b.insert(scf.ForOp.build(c0.result, n, c1.result,
                                        [c0.result]))
        lb = Builder(InsertionPoint.at_end(loop.body))
        quotient = lb.insert(arith.DivSIOp.build(c10.result, d))
        acc = lb.insert(arith.AddIOp.build(loop.region_iter_args[0],
                                           quotient.result))
        lb.insert(scf.YieldOp.build([acc.result]))
        b.insert(func_dialect.ReturnOp.build([loop.results[0]]))
        module = wrap_in_module(f)
        spec = ExecutionSpec(scalars={"n": 0, "d": 0})
        for pipeline in SHIPPED_PIPELINES:
            report = run_differential(module, pipeline,
                                      specs={"maybe_div": spec})
            assert report.executed == ["maybe_div"]

    def test_non_kernel_function_with_accessor_argument(self):
        # Accessor arguments are not kernel-only: a plain function
        # querying one must execute (binding wrapped on the call path).
        from repro.dialects import func as func_dialect, sycl
        from repro.ir import Builder, InsertionPoint, f32 as f32_type, index

        f = func_dialect.FuncOp.build(
            "accsize", [sycl.memref_of(sycl.AccessorType(1, f32_type()))],
            [index()], arg_names=["acc"])
        b = Builder(InsertionPoint.at_end(f.body))
        size = b.insert(sycl.SYCLAccessorSizeOp.build(f.arguments[0]))
        b.insert(func_dialect.ReturnOp.build([size.result]))
        module = wrap_in_module(f)
        executions, skipped = execute_module(
            module, specs={"accsize": ExecutionSpec(
                buffers={"acc": (6,)})})
        assert skipped == {}
        assert executions["accsize"].results == [6]

    def test_global_state_is_part_of_the_comparison(self):
        # A function whose only observable effect is a store into a
        # memref.global: the harness must snapshot that state, so a pass
        # corrupting it is caught.
        from repro.dialects import arith, func as func_dialect, memref
        from repro.ir import Builder, InsertionPoint, MemRefType, index
        from repro.transforms import PassManager

        def build_module():
            module = builtin.ModuleOp.build("g")
            module.append(memref.GlobalOp.build(
                "state", MemRefType((2,), index()), constant=False))
            f = func_dialect.FuncOp.build("bump", [index()])
            b = Builder(InsertionPoint.at_end(f.body))
            get = b.insert(memref.GetGlobalOp.build(
                "state", MemRefType((2,), index())))
            c0 = b.insert(arith.ConstantOp.build(0, index()))
            b.insert(memref.StoreOp.build(f.arguments[0], get.result,
                                          [c0.result]))
            b.insert(func_dialect.ReturnOp.build())
            module.append(f)
            return module

        module = build_module()
        executions, skipped = execute_module(module)
        assert skipped == {}
        assert executions["bump"].memory["global:state"][0] != 0

        class _DropStores(FunctionPass):
            NAME = "test-drop-stores"

            def run_on_function(self, function, report):
                for op in list(function.walk()):
                    if op.name == "memref.store":
                        op.erase()

        manager = PassManager()
        manager.nest("func.func").add(_DropStores())
        with pytest.raises(DifferentialError, match="global:state"):
            run_differential(build_module(), manager)

    def test_execute_module_reports_skips(self):
        from repro.dialects import func as func_dialect
        from repro.ir import PointerType

        module = _listing_module()
        opaque = func_dialect.FuncOp.build("opaque", [PointerType()])
        body_builder = opaque.body
        body_builder.append(func_dialect.ReturnOp.build())
        module.append(opaque)
        executions, skipped = execute_module(module, specs=LISTING_SPECS)
        assert set(executions) == {"foo", "mem_acc", "non_uniform"}
        assert "opaque" in skipped
