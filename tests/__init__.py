"""Test package marker so relative imports (``from .helpers import ...``)
resolve during pytest collection."""
