"""Direct tests for the runtime package (buffers, accessors, index
spaces, devices) — previously only exercised indirectly."""

import numpy as np
import pytest

from repro.runtime import (
    ID,
    Accessor,
    Buffer,
    LocalAccessor,
    NDRange,
    Range,
    USMAllocator,
    delinearize,
    intel_data_center_gpu_max_1100,
    linearize,
    small_test_device,
)


class TestRange:
    def test_construction_forms(self):
        assert Range(4).sizes == (4,)
        assert Range(2, 3).sizes == (2, 3)
        assert Range((2, 3, 4)).sizes == (2, 3, 4)

    def test_size_and_indexing(self):
        r = Range(2, 3, 4)
        assert r.size() == 24
        assert r.dimensions == 3
        assert r[1] == 3 and r.get(2) == 4
        assert list(r) == [2, 3, 4]

    def test_validation(self):
        with pytest.raises(ValueError):
            Range(1, 2, 3, 4)
        with pytest.raises(ValueError):
            Range(-1)

    def test_id(self):
        i = ID(1, 2)
        assert i.indices == (1, 2)
        assert i.get(0) == 1 and i[1] == 2


class TestNDRange:
    def test_group_range_and_counts(self):
        nd = NDRange((8, 8), (4, 4))
        assert nd.group_range.sizes == (2, 2)
        assert nd.num_work_items() == 64
        assert nd.num_work_groups() == 4
        assert nd.work_group_size() == 16

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError):
            NDRange((8, 8), (4,))

    def test_indivisible_local_rejected(self):
        with pytest.raises(ValueError):
            NDRange((8,), (3,))
        with pytest.raises(ValueError):
            NDRange((8,), (0,))

    def test_linearize_roundtrip(self):
        extents = (3, 4, 5)
        for linear in range(3 * 4 * 5):
            indices = delinearize(linear, extents)
            assert linearize(indices, extents) == linear


class TestBuffer:
    def test_from_ndarray_copies(self):
        source = np.arange(6, dtype=np.float32).reshape(2, 3)
        buffer = Buffer(source)
        source[0, 0] = 99.0
        assert buffer.host_array()[0, 0] == 0.0
        assert buffer.shape == (2, 3)
        assert buffer.range.sizes == (2, 3)

    def test_from_shape_zero_filled(self):
        buffer = Buffer((4,), dtype=np.int64, name="z")
        assert buffer.name == "z"
        assert buffer.size() == 4
        assert buffer.size_bytes() == 32
        assert not buffer.host_array().any()

    def test_device_transfer_accounting(self):
        buffer = Buffer(np.ones(4, dtype=np.float32))
        device = buffer.device_array(writable=True)
        assert buffer.bytes_to_device == buffer.size_bytes()
        device[0] = 7.0
        assert buffer.host_array()[0] == 7.0
        assert buffer.bytes_to_host == buffer.size_bytes()

    def test_write_host_invalidates_device(self):
        buffer = Buffer((2,))
        buffer.device_array(writable=True)
        buffer.write_host(np.array([1.0, 2.0], dtype=np.float32))
        assert list(buffer.device_array(writable=False)) == [1.0, 2.0]

    def test_mark_constant(self):
        assert Buffer((1,)).mark_constant().is_constant


class TestAccessor:
    def test_defaults_from_buffer(self):
        buffer = Buffer((4, 6), name="data")
        accessor = Accessor(buffer)
        assert accessor.dimensions == 2
        assert accessor.mem_range.sizes == (4, 6)
        assert accessor.effective_range().sizes == (4, 6)
        assert accessor.effective_offset() == (0, 0)
        assert accessor.name == "acc_data"
        assert accessor.writes and not accessor.is_read_only

    def test_ranged_accessor(self):
        buffer = Buffer((8, 8))
        accessor = Accessor(buffer, "read", access_range=(2, 2),
                            offset=(1, 3))
        assert accessor.is_ranged
        assert accessor.effective_range().sizes == (2, 2)
        assert accessor.effective_offset() == (1, 3)
        assert accessor.is_read_only

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            Accessor(Buffer((1,)), "append")

    def test_element_size(self):
        assert Accessor(Buffer((1,), dtype=np.float64)).element_size() == 8

    def test_local_accessor_shapes(self):
        assert LocalAccessor(4).shape == (4,)
        tile = LocalAccessor((4, 4), dtype=np.float32)
        assert tile.dimensions == 2
        assert tile.size_bytes() == 64


class TestUSM:
    def test_allocator_tracks_live_allocations(self):
        allocator = USMAllocator()
        shared = allocator.malloc_shared(4)
        device = allocator.malloc_device((2, 2))
        host = allocator.malloc_host(1)
        assert {a.kind for a in (shared, device, host)} == \
            {"shared", "device", "host"}
        allocator.free(device)
        live = allocator.live_allocations()
        assert shared in live and host in live and device not in live


class TestDeviceSpecs:
    def test_small_test_device_peaks(self):
        spec = small_test_device()
        assert spec.peak_ops_per_second() == 4 * 4.0 * 1.0 * 1e9
        assert spec.global_bytes_per_second() == 16.0 * (1 << 30)

    def test_modelled_gpu_parameters(self):
        spec = intel_data_center_gpu_max_1100()
        assert spec.compute_units == 56
        assert spec.peak_ops_per_second() > 1e13
        assert spec.local_bytes_per_second() > \
            spec.global_bytes_per_second()
