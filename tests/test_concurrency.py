"""Determinism and safety of the parallel scheduler and the compile cache.

The contract under test (see ``docs/concurrency.md``):

* compiling with ``jobs=1`` and ``jobs=4`` produces byte-identical
  printed IR, identical statistics totals (and list order) and the same
  position-keyed timing buckets;
* a cache hit splices IR structurally equal to a cold compile and
  replays the cold run's statistics;
* a function pipeline that mutates IR outside its own anchored function
  raises :class:`ConcurrentWriteError` under ``jobs>1`` instead of
  silently corrupting use lists / order indexes, and
  ``Context.allow_unregistered_threading`` opts out of the guard.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.generate import GeneratorConfig, generate_module  # noqa: E402
from repro.dialects import arith  # noqa: E402
from repro.dialects.func import FuncOp  # noqa: E402
from repro.ir import (  # noqa: E402
    ConcurrentWriteError,
    Context,
    Printer,
    i64,
    verify,
)
from repro.transforms import (  # noqa: E402
    CompileCache,
    CompileReport,
    FunctionPass,
    PassManager,
    build_named_pipeline,
    parse_pass_pipeline,
)

from .helpers import (  # noqa: E402
    build_listing1_function,
    build_listing2_function,
    build_listing3_function,
    wrap_in_module,
)

PIPELINE = "builtin.module(func.func(canonicalize,cse,dce))"


def _listing_module():
    return wrap_in_module(*[build()[0] for build in (
        build_listing1_function,
        build_listing2_function,
        build_listing3_function,
    )])


def _synthetic_module():
    return generate_module(GeneratorConfig(num_ops=600, num_kernels=8,
                                           seed=11))


def _run(module, jobs, cache=None):
    manager = parse_pass_pipeline(PIPELINE)
    manager.jobs = jobs
    manager.cache = cache
    try:
        report = manager.run(module)
    finally:
        manager.close()
    return report


class TestParallelDeterminism:
    @pytest.mark.parametrize("build_module",
                             [_listing_module, _synthetic_module])
    def test_jobs4_output_byte_identical_to_serial(self, build_module):
        serial, parallel = build_module(), build_module()
        _run(serial, jobs=1)
        _run(parallel, jobs=4)
        assert Printer().print_module(serial) == \
            Printer().print_module(parallel)
        verify(parallel)

    def test_statistics_totals_and_order_identical(self):
        serial_report = _run(_synthetic_module(), jobs=1)
        parallel_report = _run(_synthetic_module(), jobs=4)
        assert [(s.pass_name, s.name, s.value)
                for s in serial_report.statistics] == \
            [(s.pass_name, s.name, s.value)
             for s in parallel_report.statistics]

    def test_timing_keys_stable_across_job_counts(self):
        serial_report = _run(_synthetic_module(), jobs=1)
        parallel_report = _run(_synthetic_module(), jobs=4)
        assert set(serial_report.timings) == set(parallel_report.timings)
        # Position-keyed: one bucket per scheduled slot, "N: name".
        assert all(": " in key for key in parallel_report.timings)

    def test_named_pipeline_parallel_matches_serial(self):
        serial, parallel = _synthetic_module(), _synthetic_module()
        build_named_pipeline("dpcpp").run(serial)
        manager = build_named_pipeline("dpcpp", jobs=4)
        try:
            manager.run(parallel)
        finally:
            manager.close()
        assert Printer().print_module(serial) == \
            Printer().print_module(parallel)

    def test_single_function_module_stays_serial(self):
        module = wrap_in_module(build_listing1_function()[0])
        reference = wrap_in_module(build_listing1_function()[0])
        _run(reference, jobs=1)
        _run(module, jobs=4)
        assert Printer().print_module(module) == \
            Printer().print_module(reference)


class TestCompileCache:
    def test_hit_is_structurally_equal_to_cold_compile(self):
        cache = CompileCache()
        cold, warm, reference = (_synthetic_module(), _synthetic_module(),
                                 _synthetic_module())
        _run(reference, jobs=1)
        _run(cold, jobs=1, cache=cache)
        _run(warm, jobs=1, cache=cache)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert Printer().print_module(warm) == \
            Printer().print_module(reference)
        assert Printer().print_module(cold) == \
            Printer().print_module(reference)
        verify(warm)

    def test_hit_replays_cold_statistics(self):
        cache = CompileCache()
        cold_report = _run(_synthetic_module(), jobs=1, cache=cache)
        warm_report = _run(_synthetic_module(), jobs=1, cache=cache)
        cold = {(s.pass_name, s.name): s.value
                for s in cold_report.statistics
                if s.pass_name != "compile-cache"}
        warm = {(s.pass_name, s.name): s.value
                for s in warm_report.statistics
                if s.pass_name != "compile-cache"}
        assert cold == warm
        assert warm_report.get_statistic("compile-cache", "hits") == 1
        assert cold_report.get_statistic("compile-cache", "misses") == 1

    def test_hit_records_its_own_timing_bucket(self):
        cache = CompileCache()
        _run(_synthetic_module(), jobs=1, cache=cache)
        warm_report = _run(_synthetic_module(), jobs=1, cache=cache)
        # Statistics replay the cold compile; the timing table accounts
        # for the warm segment through the dedicated hit bucket.
        assert "compile-cache: hit" in warm_report.timings
        assert warm_report.timings["compile-cache: hit"] > 0.0

    def test_key_distinguishes_pipelines(self):
        cache = CompileCache()
        module_a, module_b = _synthetic_module(), _synthetic_module()
        for module, spec in ((module_a, "builtin.module(func.func(cse))"),
                             (module_b, "builtin.module(func.func(dce))")):
            manager = parse_pass_pipeline(spec)
            manager.cache = cache
            manager.run(module)
        assert cache.stats.misses == 2
        assert cache.stats.hits == 0

    def test_lru_eviction_is_bounded(self):
        cache = CompileCache(max_entries=1)
        manager = parse_pass_pipeline(PIPELINE)
        manager.cache = cache
        manager.run(_synthetic_module())
        manager.run(_listing_module())
        assert len(cache) == 1
        assert cache.stats.evictions == 1

    def test_parallel_and_cached_runs_compose(self):
        cache = CompileCache()
        cold, warm, reference = (_synthetic_module(), _synthetic_module(),
                                 _synthetic_module())
        _run(reference, jobs=1)
        _run(cold, jobs=4, cache=cache)
        _run(warm, jobs=4, cache=cache)
        assert cache.stats.hits == 1
        assert Printer().print_module(warm) == \
            Printer().print_module(reference)


class _SiblingMutatingPass(FunctionPass):
    """Deliberately broken: mutates a *sibling* function's body."""

    NAME = "mutate-sibling"

    def run_on_function(self, function, report):
        module = function.parent_op()
        for sibling in module.walk(include_self=False):
            if isinstance(sibling, FuncOp) and sibling is not function:
                sibling.body.append(arith.ConstantOp.build(1, i64()))
                return


class _ModuleMutatingPass(FunctionPass):
    """Deliberately broken: appends to the module block from a worker."""

    NAME = "mutate-module"

    def run_on_function(self, function, report):
        module = function.parent_op()
        module.regions[0].blocks[0].append(
            FuncOp.build("injected", [i64()]))


def _rogue_manager(rogue_pass, jobs):
    manager = PassManager(jobs=jobs)
    manager.nest("func.func").add(rogue_pass)
    return manager


class TestWriteGuard:
    def _run_rogue(self, rogue_pass, jobs):
        manager = _rogue_manager(rogue_pass, jobs)
        try:
            manager.run(_listing_module())
        finally:
            manager.close()

    def test_sibling_mutation_raises_under_jobs(self):
        with pytest.raises(ConcurrentWriteError):
            self._run_rogue(_SiblingMutatingPass(), jobs=2)

    def test_module_mutation_raises_under_jobs(self):
        with pytest.raises(ConcurrentWriteError):
            self._run_rogue(_ModuleMutatingPass(), jobs=2)

    def test_serial_run_is_unguarded(self):
        # jobs=1 keeps the legacy single-writer behaviour: no guard, no
        # error — cross-function mutation is legal in a serial pipeline.
        self._run_rogue(_SiblingMutatingPass(), jobs=1)

    def test_allow_unregistered_threading_opts_out(self):
        Context.allow_unregistered_threading(True)
        try:
            self._run_rogue(_SiblingMutatingPass(), jobs=2)
        finally:
            Context.allow_unregistered_threading(False)
        with pytest.raises(ConcurrentWriteError):
            self._run_rogue(_SiblingMutatingPass(), jobs=2)

    def test_own_function_mutation_is_allowed(self):
        module = _listing_module()
        reference = _listing_module()
        _run(reference, jobs=1)
        _run(module, jobs=4)  # canonicalize/cse/dce mutate freely
        assert Printer().print_module(module) == \
            Printer().print_module(reference)


class _CloningPass(FunctionPass):
    """Clones a region-holding op inside its own function (the
    DetectReduction / LoopInternalization pattern): building the clone
    mutates *detached* IR, which the write guard must permit."""

    NAME = "clone-own-loop"

    def run_on_function(self, function, report):
        for op in function.walk(include_self=False):
            if op.regions and op.parent is not None:
                clone = op.clone({})
                op.parent.insert_after(op, clone)
                clone.erase()
                return


class TestWorkerLocalCloning:
    def test_cloning_region_ops_is_legal_under_jobs(self):
        # Regression: WriteGuard used to reject all mutation of detached
        # IR, so Region.clone_into inside a worker raised.
        manager = PassManager(jobs=2)
        manager.nest("func.func").add(_CloningPass())
        try:
            manager.run(_synthetic_module())
        finally:
            manager.close()

    def test_sycl_mlir_pipeline_with_reduction_listings(self):
        # The paper listing modules exercise the cloning passes
        # (DetectReduction rewrites reduction loops).
        serial, parallel = _listing_module(), _listing_module()
        build_named_pipeline("sycl-mlir").run(serial)
        manager = build_named_pipeline("sycl-mlir", jobs=4)
        try:
            manager.run(parallel)
        finally:
            manager.close()
        assert Printer().print_module(serial) == \
            Printer().print_module(parallel)


class TestCacheInstrumentationBypass:
    def test_cache_not_consulted_while_instrumented(self):
        from repro.transforms import PassInstrumentation

        cache = CompileCache()
        seen = []

        class Probe(PassInstrumentation):
            def run_before_pass(self, pass_, op):
                seen.append(pass_.NAME)

        for _ in range(2):
            manager = parse_pass_pipeline(PIPELINE)
            manager.cache = cache
            manager.add_instrumentation(Probe())
            manager.run(_listing_module())
        # Both runs executed for real (hooks fired twice per pipeline),
        # and the cache was never consulted.
        assert cache.stats.hits == 0 and cache.stats.misses == 0
        assert len(seen) == 2 * len(parse_pass_pipeline(PIPELINE).passes) * 3

    def test_print_ir_after_all_prints_every_segment(self, tmp_path,
                                                     capsys):
        from repro.tools.repro_opt import main as repro_opt

        text = Printer().print_module(
            wrap_in_module(build_listing1_function()[0])) + "\n"
        batch = tmp_path / "batch.mlir"
        batch.write_text(text + "// -----\n" + text, encoding="utf-8")
        rc = repro_opt([str(batch), "--split-input-file",
                        "--passes", "cse", "--print-ir-after-all",
                        "-o", str(tmp_path / "out.mlir")])
        assert rc == 0
        dumps = capsys.readouterr().err.count("IR Dump After")
        assert dumps == 2  # one per segment — the hit path would skip one

    def test_instrumented_batch_reports_no_dead_cache(self, tmp_path,
                                                      capsys):
        # --verify-each disables caching; --report must not print a
        # "0 hits, 0 misses" line implying a cache was active.
        from repro.tools.repro_opt import main as repro_opt

        text = Printer().print_module(
            wrap_in_module(build_listing1_function()[0])) + "\n"
        batch = tmp_path / "batch.mlir"
        batch.write_text(text + "// -----\n" + text, encoding="utf-8")
        rc = repro_opt([str(batch), "--split-input-file", "--verify-each",
                        "--passes", "cse", "--report",
                        "-o", str(tmp_path / "out.mlir")])
        assert rc == 0
        assert "compile cache" not in capsys.readouterr().err

    def test_hits_never_rewrite_ssa_names_of_later_segments(self,
                                                            tmp_path):
        # Structurally identical segments spelled with different value
        # names must keep their own names in the output, cache or not.
        from repro.tools.repro_opt import main as repro_opt

        first = Printer().print_module(
            wrap_in_module(build_listing1_function()[0])) + "\n"
        second = first.replace("%v1", "%renamed1").replace("%v2",
                                                           "%renamed2")
        assert "%renamed1" in second
        batch = tmp_path / "batch.mlir"
        batch.write_text(first + "// -----\n" + second, encoding="utf-8")
        outputs = {}
        for flag, label in (((), "cached"), (("--no-cache",), "nocache")):
            out = tmp_path / f"{label}.mlir"
            rc = repro_opt([str(batch), "--split-input-file",
                            "--passes", "cse", *flag, "-o", str(out)])
            assert rc == 0
            outputs[label] = out.read_text(encoding="utf-8")
        assert outputs["cached"] == outputs["nocache"]
        cached_segments = outputs["cached"].split("// -----")
        assert "%renamed1" in cached_segments[1]
        assert "%renamed1" not in cached_segments[0]


class TestBatchDriver:
    def test_split_input_file_shares_cache(self, tmp_path, capsys):
        from repro.tools.repro_opt import main as repro_opt

        text = Printer().print_module(_listing_module()) + "\n"
        batch = tmp_path / "batch.mlir"
        batch.write_text(text + "// -----\n" + text, encoding="utf-8")
        out = tmp_path / "out.mlir"
        rc = repro_opt([str(batch), "--split-input-file", "--jobs", "2",
                        "--passes", "canonicalize,cse", "-o", str(out),
                        "--report"])
        assert rc == 0
        stderr = capsys.readouterr().err
        assert "compile cache: 1 hits, 1 misses" in stderr
        segments = [segment for segment in
                    out.read_text(encoding="utf-8").split("// -----")
                    if segment.strip()]
        assert len(segments) == 2
        assert segments[0].strip() == segments[1].strip()

    def test_multiple_inputs_compile_in_order(self, tmp_path):
        from repro.tools.repro_opt import main as repro_opt

        first = tmp_path / "first.mlir"
        second = tmp_path / "second.mlir"
        first.write_text(
            Printer().print_module(
                wrap_in_module(build_listing1_function()[0])) + "\n",
            encoding="utf-8")
        second.write_text(
            Printer().print_module(
                wrap_in_module(build_listing2_function()[0])) + "\n",
            encoding="utf-8")
        out = tmp_path / "out.mlir"
        rc = repro_opt([str(first), str(second), "--passes", "canonicalize",
                        "-o", str(out)])
        assert rc == 0
        content = out.read_text(encoding="utf-8")
        assert content.count("// -----") == 1
        assert content.index('"foo"') < content.index('"non_uniform"')

    def test_single_input_skips_the_cache(self, tmp_path, capsys):
        # One segment can never hit, so the fingerprint + template-clone
        # cost is skipped entirely (no cache line in --report).
        from repro.tools.repro_opt import main as repro_opt

        source = tmp_path / "in.mlir"
        source.write_text(
            Printer().print_module(
                wrap_in_module(build_listing1_function()[0])) + "\n",
            encoding="utf-8")
        rc = repro_opt([str(source), "--passes", "cse", "--report",
                        "-o", str(tmp_path / "out.mlir")])
        assert rc == 0
        assert "compile cache" not in capsys.readouterr().err

    def test_jobs_rejects_nonpositive(self, capsys):
        from repro.tools.repro_opt import main as repro_opt

        assert repro_opt(["--jobs", "0", "--passes", "cse"]) == 2
        assert "--jobs" in capsys.readouterr().err


class TestReportMerge:
    def test_merge_without_renumbering_sums_same_buckets(self):
        target = CompileReport(timings={"0: canonicalize": 1.0})
        other = CompileReport(timings={"0: canonicalize": 2.0})
        target.merge(other, renumber_timings=False)
        assert target.timings == {"0: canonicalize": 3.0}

    def test_merge_default_still_renumbers(self):
        target = CompileReport(timings={"0: canonicalize": 1.0})
        other = CompileReport(timings={"0: canonicalize": 2.0})
        target.merge(other)
        assert target.timings == {"0: canonicalize": 1.0,
                                  "1: canonicalize": 2.0}
