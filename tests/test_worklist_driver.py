"""The worklist driver must reach the restart-sweep driver's fixed point.

``benchmarks.legacy`` preserves the pre-worklist drivers; these tests run
both over the same inputs (the paper-listing modules and synthetic
benchmark modules) and require identical printed IR, plus check the
driver's re-enqueue rules directly.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.generate import GeneratorConfig, generate_module  # noqa: E402
from benchmarks.legacy import (  # noqa: E402
    LegacyCanonicalizePass,
    apply_patterns_restart_sweep,
)
from repro.dialects import arith, builtin  # noqa: E402
from repro.ir import IntegerAttr, Printer, i64, parse_module, verify  # noqa: E402
from repro.transforms.canonicalize import CanonicalizePass  # noqa: E402
from repro.transforms.cse import CSEPass  # noqa: E402
from repro.transforms.pass_manager import PassManager  # noqa: E402
from repro.transforms.rewrite import (  # noqa: E402
    PatternRewriter,
    RewritePattern,
    apply_patterns_greedily,
)

from .helpers import (  # noqa: E402
    build_listing1_function,
    build_listing2_function,
    build_listing3_function,
    wrap_in_module,
)

LISTING_BUILDERS = {
    "listing1": build_listing1_function,
    "listing2": build_listing2_function,
    "listing3": build_listing3_function,
}


def _print(module) -> str:
    return Printer().print_module(module)


class TestFixedPointEquivalence:
    @pytest.mark.parametrize("name", sorted(LISTING_BUILDERS))
    def test_canonicalize_cse_matches_legacy_on_listing(self, name):
        worklist_module = wrap_in_module(LISTING_BUILDERS[name]()[0])
        legacy_module = wrap_in_module(LISTING_BUILDERS[name]()[0])
        PassManager([CanonicalizePass(), CSEPass()]).run(worklist_module)
        PassManager([LegacyCanonicalizePass(), CSEPass()]).run(legacy_module)
        assert _print(worklist_module) == _print(legacy_module)
        verify(worklist_module)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_canonicalize_cse_matches_legacy_on_synthetic(self, seed):
        config = GeneratorConfig(num_ops=150, nesting_depth=1,
                                 dead_chain_depth=16, num_kernels=1,
                                 seed=seed)
        worklist_module = generate_module(config)
        legacy_module = generate_module(config)
        PassManager([CanonicalizePass(), CSEPass()]).run(worklist_module)
        PassManager([LegacyCanonicalizePass(), CSEPass()]).run(legacy_module)
        assert _print(worklist_module) == _print(legacy_module)
        verify(worklist_module)

    @pytest.mark.parametrize("name", sorted(LISTING_BUILDERS))
    def test_roundtrip_still_exact_after_canonicalize(self, name):
        module = wrap_in_module(LISTING_BUILDERS[name]()[0])
        PassManager([CanonicalizePass(), CSEPass()]).run(module)
        text = _print(module)
        assert _print(parse_module(text)) == text


class _RecordingPattern(RewritePattern):
    """Counts how often each op (by its 'tag' attribute) is visited."""

    ROOT_OP = "arith.addi"

    def __init__(self):
        self.visits = []

    def match_and_rewrite(self, op, rewriter):
        self.visits.append(op.get_int_attr("tag", -1))
        return False


class _FoldAddPattern(RewritePattern):
    """Folds addi-of-constants through the rewriter (driver-visible)."""

    ROOT_OP = "arith.addi"

    def match_and_rewrite(self, op, rewriter):
        lhs = arith.constant_value_of(op.operands[0])
        rhs = arith.constant_value_of(op.operands[1])
        if lhs is None or rhs is None:
            return False
        constant = rewriter.insert(
            arith.ConstantOp.build(lhs + rhs, op.results[0].type))
        rewriter.replace_op(op, [constant.result])
        return True


class TestReenqueueRules:
    def test_replacement_cascades_to_users_in_one_call(self):
        # c1 + c2 feeds another add with c3: folding the first makes the
        # second foldable only after the driver re-enqueues the user.
        module = builtin.ModuleOp.build()
        c1 = module.append(arith.ConstantOp.build(1, i64()))
        c2 = module.append(arith.ConstantOp.build(2, i64()))
        c3 = module.append(arith.ConstantOp.build(4, i64()))
        first = module.append(arith.AddIOp.build(c1.result, c2.result))
        second = module.append(arith.AddIOp.build(first.result, c3.result))
        changed = apply_patterns_greedily(module, [_FoldAddPattern()])
        assert changed
        values = [op.get_int_attr("value") for op in module.body
                  if isinstance(op, arith.ConstantOp)]
        assert 7 in values  # the chained fold happened in a single call
        assert second.parent is None

    def test_only_pattern_roots_are_visited(self):
        module = builtin.ModuleOp.build()
        c = module.append(arith.ConstantOp.build(1, i64()))
        add = module.append(arith.AddIOp.build(c.result, c.result))
        add.set_attr("tag", IntegerAttr(5, i64()))
        module.append(arith.MulIOp.build(c.result, c.result))
        recorder = _RecordingPattern()
        apply_patterns_greedily(module, [recorder])
        assert recorder.visits == [5]  # muli and constants never dispatched

    def test_prune_dead_erases_chains_during_drain(self):
        module = builtin.ModuleOp.build()
        c = module.append(arith.ConstantOp.build(1, i64()))
        current = c.result
        links = []
        for _ in range(10):
            link = module.append(arith.AddIOp.build(current, c.result))
            links.append(link)
            current = link.result
        from repro.transforms.canonicalize import _is_trivially_dead

        changed = apply_patterns_greedily(
            module, [], prune_dead=_is_trivially_dead)
        assert changed
        assert all(link.parent is None for link in links)
        assert c.parent is None  # the seed constant dies with the chain

    def test_update_operand_reenqueues_dropped_producer(self):
        # Redirecting an operand away from %c1 must get %c1's producer
        # revisited so prune_dead collects it in the same drain.
        from repro.dialects import memref as memref_dialect
        from repro.ir import memref as memref_type
        from repro.transforms.canonicalize import _is_trivially_dead

        module = builtin.ModuleOp.build()
        c1 = module.append(arith.ConstantOp.build(1, i64()))
        c2 = module.append(arith.ConstantOp.build(2, i64()))
        add = module.append(arith.AddIOp.build(c1.result, c1.result))
        mul = module.append(arith.MulIOp.build(add.results[0], c2.result))
        # Anchor the chain so only c1 can die, and only via the
        # update_operand notification.
        cell = module.append(memref_dialect.AllocOp.build(
            memref_type((), i64())))
        module.append(memref_dialect.StoreOp.build(
            mul.results[0], cell.results[0]))

        class _Redirect(RewritePattern):
            ROOT_OP = "arith.addi"

            def match_and_rewrite(self, op, rewriter):
                if op.operands[0] is c1.result:
                    rewriter.update_operand(op, 0, c2.result)
                    rewriter.update_operand(op, 1, c2.result)
                    return True
                return False

        apply_patterns_greedily(module, [_Redirect()],
                                prune_dead=_is_trivially_dead)
        assert not c1.result.has_uses()
        assert c1.parent is None  # dropped producer collected in the drain
        assert add.operands[0] is c2.result

    def test_erasing_region_op_reenqueues_outside_producers(self):
        # %sum is used only inside a loop body; a pattern erasing the loop
        # must get %sum's producer re-enqueued so prune_dead collects it
        # in the same drain.
        from repro.dialects import scf
        from repro.ir import index
        from repro.transforms.canonicalize import _is_trivially_dead

        module = builtin.ModuleOp.build()
        c0 = module.append(arith.ConstantOp.build(0, index()))
        c8 = module.append(arith.ConstantOp.build(8, index()))
        c1 = module.append(arith.ConstantOp.build(1, i64()))
        summed = module.append(arith.AddIOp.build(c1.result, c1.result))
        loop = module.append(scf.ForOp.build(
            c0.result, c8.result,
            module.append(arith.ConstantOp.build(1, index())).result))
        loop.body.append(arith.MulIOp.build(summed.result, summed.result))
        loop.body.append(scf.YieldOp.build())

        class _EraseLoop(RewritePattern):
            ROOT_OP = "scf.for"

            def match_and_rewrite(self, op, rewriter):
                rewriter.erase_op(op)
                return True

        apply_patterns_greedily(module, [_EraseLoop()],
                                prune_dead=_is_trivially_dead)
        assert loop.parent is None
        assert summed.parent is None  # collected in the same drain
        assert c1.parent is None

    def test_insert_after_replacing_root_keeps_position(self):
        # A pattern may replace its root and then insert more ops; the
        # rewriter's insertion point must not dangle on the erased root.
        module = builtin.ModuleOp.build()
        c = module.append(arith.ConstantOp.build(3, i64()))
        module.append(arith.AddIOp.build(c.result, c.result))

        class _ReplaceThenInsert(RewritePattern):
            ROOT_OP = "arith.addi"

            def match_and_rewrite(self, op, rewriter):
                rewriter.replace_op(op, [op.operands[0]])
                rewriter.insert(arith.ConstantOp.build(99, i64()))
                return True

        changed = apply_patterns_greedily(module, [_ReplaceThenInsert()])
        assert changed
        values = [op.get_int_attr("value") for op in module.body]
        assert values == [3, 99]  # inserted at the replaced op's position

    def test_cse_keeps_negative_zero_distinct(self):
        from repro.ir import f32
        from repro.transforms.cse import CSEPass
        from repro.dialects import func as func_dialect

        f = func_dialect.FuncOp.build("z", [])
        pos = f.body.append(arith.ConstantOp.build(0.0, f32()))
        neg = f.body.append(arith.ConstantOp.build(-0.0, f32()))
        dup = f.body.append(arith.ConstantOp.build(-0.0, f32()))
        f.body.append(func_dialect.ReturnOp.build())
        module = builtin.ModuleOp.build()
        module.append(f)
        PassManager([CSEPass()]).run(module)
        # -0.0 must not merge into 0.0 (IEEE-754), but the -0.0 duplicate
        # must still CSE.
        assert pos.parent is not None
        assert neg.parent is not None
        assert dup.parent is None

    def test_matches_restart_sweep_driver_fixed_point(self):
        def build():
            module = builtin.ModuleOp.build()
            c1 = module.append(arith.ConstantOp.build(3, i64()))
            c2 = module.append(arith.ConstantOp.build(4, i64()))
            add = module.append(arith.AddIOp.build(c1.result, c2.result))
            module.append(arith.AddIOp.build(add.results[0], c2.result))
            return module

        worklist_module = build()
        legacy_module = build()
        apply_patterns_greedily(worklist_module, [_FoldAddPattern()])
        apply_patterns_restart_sweep(legacy_module, [_FoldAddPattern()])
        assert _print(worklist_module) == _print(legacy_module)
