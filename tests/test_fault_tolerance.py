"""Chaos suite: the fault-tolerance contract of the process tier.

Every fault class the supervisor claims to survive is injected
deterministically (:mod:`repro.faults`) at every injection point, under
``jobs=4``, and the test asserts the *compile still succeeds with output
byte-identical to a serial run* — recovery by bounded retry, by pool
rebuild, or by degradation down the ladder (process → thread → serial),
never by silent corruption and never by failing a compile serial would
pass.  Batch-mode error isolation and the graceful-Ctrl-C contract of
the CLIs ride along (see ``docs/robustness.md``).
"""

import sys
import time
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.faults import (  # noqa: E402
    FAULT_PLAN_ENV,
    FaultPlan,
    TransientFault,
    active_fault_plan,
    fault_plan,
    fault_point,
    install_fault_plan,
)
from repro.ir import Printer, parse_module, verify  # noqa: E402
from repro.transforms import (  # noqa: E402
    CompileCache,
    parse_pass_pipeline,
)
from repro.transforms.executor import ExecutorOptions  # noqa: E402
from repro.tools import repro_lint, repro_opt, repro_run  # noqa: E402

from .helpers import (  # noqa: E402
    build_listing1_function,
    build_listing2_function,
    build_listing3_function,
    wrap_in_module,
)

PIPELINE = "builtin.module(func.func(canonicalize,cse,dce))"

#: Snappy supervision policy for tests: small backoff, tight deadline
#: head-room (individual tests override the deadline where it matters).
FAST = dict(jobs=4, deadline=30.0, max_retries=2, backoff=0.01)


def _listing_module():
    return wrap_in_module(*[build()[0] for build in (
        build_listing1_function,
        build_listing2_function,
        build_listing3_function,
    )])


def _serial_print():
    module = _listing_module()
    manager = parse_pass_pipeline(PIPELINE)
    try:
        manager.run(module)
    finally:
        manager.close()
    return Printer().print_module(module)


def _process_manager(**overrides):
    manager = parse_pass_pipeline(PIPELINE)
    manager.jobs = 4
    manager.tier = "process"
    options = dict(FAST)
    options.update(overrides)
    manager.executor_options = ExecutorOptions(**options)
    return manager


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
    yield
    install_fault_plan(None)


@pytest.fixture(scope="module")
def serial_text():
    return _serial_print()


def _run_process(serial_text, spec=None, **overrides):
    """Compile the listing module on the process tier (under ``spec``
    as the active fault plan) and assert byte-identity with serial."""
    module = _listing_module()
    manager = _process_manager(**overrides)
    try:
        if spec is not None:
            install_fault_plan(FaultPlan.parse(spec))
        report = manager.run(module)
    finally:
        install_fault_plan(None)
        manager.close()
    assert Printer().print_module(module) == serial_text
    return report


def _stat(report, pass_name, name):
    return report.get_statistic(pass_name, name)


class TestFaultPlan:
    def test_parse_round_trips(self):
        spec = ("executor.worker@foo:2=hang/30;compile-cache.hit=corrupt;"
                "executor.worker:*=transient")
        plan = FaultPlan.parse(spec)
        assert plan.to_spec() == spec
        rule = plan.rules[0]
        assert (rule.point, rule.key, rule.occurrence, rule.kind,
                rule.arg) == ("executor.worker", "foo", 2, "hang", "30")
        assert plan.rules[2].occurrence is None

    def test_unknown_kind_and_missing_point_raise(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse("executor.worker=explode")
        with pytest.raises(ValueError, match="lacks '=kind'"):
            FaultPlan.parse("executor.worker")
        with pytest.raises(ValueError, match="lacks a point name"):
            FaultPlan.parse("=crash")

    def test_occurrence_counters_are_per_key(self):
        plan = FaultPlan.parse("p@b:1=transient")
        assert plan.check("p", key="a") is None       # a: occurrence 0
        assert plan.check("p", key="b") is None       # b: occurrence 0
        rule = plan.check("p", key="b")               # b: occurrence 1
        assert rule is not None and rule.kind == "transient"
        assert [(f.key, f.occurrence) for f in plan.fires] == [("b", 1)]

    def test_explicit_occurrence_overrides_counters(self):
        plan = FaultPlan.parse("p@k:3=corrupt")
        assert plan.check("p", key="k", occurrence=2) is None
        assert plan.check("p", key="k", occurrence=3) is not None

    def test_transient_raises_and_corrupt_returns(self):
        with fault_plan("a=transient;b=corrupt") as plan:
            with pytest.raises(TransientFault):
                fault_point("a")
            assert fault_point("b") == "corrupt"
            assert fault_point("b") is None  # occurrence 0 already spent
            assert [f.kind for f in plan.fires] == ["transient", "corrupt"]

    def test_env_activation_reparses_on_change(self, monkeypatch):
        assert active_fault_plan() is None
        monkeypatch.setenv(FAULT_PLAN_ENV, "p=transient")
        first = active_fault_plan()
        assert first is not None and first.rules[0].point == "p"
        monkeypatch.setenv(FAULT_PLAN_ENV, "q=crash")
        second = active_fault_plan()
        assert second is not first and second.rules[0].point == "q"
        assert second.rules[0].kind == "crash"
        monkeypatch.delenv(FAULT_PLAN_ENV)
        assert active_fault_plan() is None
        install_fault_plan(first)
        assert active_fault_plan() is first


class TestProcessTier:
    def test_byte_identical_to_serial(self, serial_text):
        report = _run_process(serial_text)
        assert _stat(report, "process-tier", "units") == 3

    def test_transient_fault_is_retried(self, serial_text):
        report = _run_process(serial_text,
                              spec="executor.worker@foo=transient")
        assert _stat(report, "process-tier", "transient_retries") == 1
        assert _stat(report, "process-tier", "recovered_units") == 1
        assert any("unit 'foo': recovered after 1 failed attempt(s)"
                   in remark for remark in report.remarks)
        assert any("retrying (attempt 2)" in remark
                   for remark in report.remarks)

    def test_worker_crash_rebuilds_pool(self, serial_text):
        report = _run_process(serial_text,
                              spec="executor.worker@foo=crash")
        assert _stat(report, "process-tier", "worker_crashes") >= 1
        assert _stat(report, "process-tier", "pool_rebuilds") == 1
        assert any("worker pool restarted after worker crash" in remark
                   for remark in report.remarks)

    def test_hang_is_bounded_by_deadline(self, serial_text):
        start = time.monotonic()
        report = _run_process(serial_text,
                              spec="executor.worker@foo=hang/60",
                              deadline=0.75)
        elapsed = time.monotonic() - start
        assert elapsed < 30.0  # nowhere near the injected 60s sleep
        assert _stat(report, "process-tier", "hangs") == 1
        assert _stat(report, "process-tier", "pool_rebuilds") == 1
        assert any("deadline exceeded" in remark
                   for remark in report.remarks)

    def test_corrupt_worker_result_is_detected(self, serial_text):
        report = _run_process(serial_text,
                              spec="executor.worker.result@foo=corrupt")
        assert _stat(report, "process-tier", "corrupt_results") == 1
        assert _stat(report, "process-tier", "recovered_units") == 1
        assert any("corrupt result" in remark for remark in report.remarks)

    def test_corrupt_at_splice_is_detected(self, serial_text):
        report = _run_process(serial_text,
                              spec="executor.splice@foo=corrupt")
        assert _stat(report, "process-tier", "corrupt_results") == 1

    def test_retry_exhaustion_degrades_unit_to_serial(self, serial_text):
        report = _run_process(serial_text,
                              spec="executor.worker@foo:*=transient")
        assert _stat(report, "process-tier", "degraded_units") == 1
        # The retry budget (max_retries=2) bounds the attempts: first
        # try plus two retries, then the serial fallback.
        assert _stat(report, "process-tier", "transient_retries") == 3
        assert any("degraded to in-process serial run" in remark
                   for remark in report.remarks)

    def test_ladder_process_to_thread(self, serial_text):
        report = _run_process(serial_text,
                              spec="process-tier.dispatch=transient")
        assert _stat(report, "process-tier", "degraded") == 1
        assert any("process-tier: degraded to thread tier" in remark
                   for remark in report.remarks)

    def test_ladder_thread_to_serial(self, serial_text):
        module = _listing_module()
        manager = parse_pass_pipeline(PIPELINE)
        manager.jobs = 4
        try:
            with fault_plan("thread-tier.dispatch=transient"):
                report = manager.run(module)
        finally:
            manager.close()
        assert Printer().print_module(module) == serial_text
        assert _stat(report, "thread-tier", "degraded") == 1
        assert any("thread-tier: degraded to serial" in remark
                   for remark in report.remarks)

    def test_full_ladder_process_to_thread_to_serial(self, serial_text):
        report = _run_process(
            serial_text,
            spec="process-tier.dispatch=transient;"
                 "thread-tier.dispatch=transient")
        remarks = "\n".join(report.remarks)
        assert "process-tier: degraded to thread tier" in remarks
        assert "thread-tier: degraded to serial" in remarks
        assert remarks.index("process-tier: degraded") \
            < remarks.index("thread-tier: degraded")


class TestCacheSelfHealing:
    def test_corrupt_hit_evicts_and_recompiles(self, serial_text):
        manager = parse_pass_pipeline(PIPELINE)
        manager.cache = CompileCache()
        try:
            manager.run(_listing_module())  # cold: populates the cache
            assert manager.cache.stats.misses == 1
            module = _listing_module()
            with fault_plan("compile-cache.hit=corrupt"):
                report = manager.run(module)
        finally:
            manager.close()
        assert Printer().print_module(module) == serial_text
        assert _stat(report, "compile-cache", "recovered") == 1
        assert any("compile-cache: recovered from corrupt entry" in remark
                   for remark in report.remarks)
        # The poisoned entry is gone and the recovery compile re-stored
        # a fresh one, which serves the next run cleanly.
        assert manager.cache.stats.evictions == 1
        assert len(manager.cache) == 1
        manager2 = parse_pass_pipeline(PIPELINE)
        manager2.cache = manager.cache
        try:
            module = _listing_module()
            clean = manager2.run(module)
        finally:
            manager2.close()
        assert Printer().print_module(module) == serial_text
        assert _stat(clean, "compile-cache", "hits") == 1
        assert _stat(clean, "compile-cache", "recovered") == 0


def _write_batch(tmp_path, segments, name="batch.mlir"):
    path = tmp_path / name
    path.write_text("// -----\n".join(segments), encoding="utf-8")
    return path


def _segment_texts():
    return [Printer().print_module(wrap_in_module(build()[0])) + "\n"
            for build in (build_listing1_function,
                          build_listing3_function)]


def _broken_verify_segment():
    """A segment that parses but fails verification (use-before-def)."""
    from repro.dialects import arith
    from repro.dialects.func import FuncOp, ReturnOp
    from repro.ir import Builder, InsertionPoint, i32

    f = FuncOp.build("bad", [])
    body = Builder(InsertionPoint.at_end(f.body))
    c = body.insert(arith.ConstantOp.build(1, i32()))
    add = body.insert(arith.AddIOp.build(c.result, c.result))
    body.insert(ReturnOp.build())
    add.move_before(c)
    return Printer().print_module(wrap_in_module(f)) + "\n"


class TestBatchIsolation:
    @pytest.mark.parametrize("tier_args", [
        [], ["--jobs", "4", "--parallel-tier", "process"],
    ], ids=["serial", "process"])
    def test_parse_error_does_not_abort_batch(self, tmp_path, capsys,
                                              tier_args):
        good1, good2 = _segment_texts()
        path = _write_batch(tmp_path, [good1, "not IR at all\n", good2])
        out_path = tmp_path / "out.mlir"
        rc = repro_opt.main([str(path), "--split-input-file",
                             "--passes", PIPELINE,
                             "-o", str(out_path)] + tier_args)
        captured = capsys.readouterr()
        assert rc == 1
        assert "segment 2): parse error" in captured.err
        out = out_path.read_text(encoding="utf-8")
        pieces = out.split("// -----\n")
        assert len(pieces) == 3
        assert "FAILED" in pieces[1]
        assert '"func.func"' in pieces[0] and '"func.func"' in pieces[2]

    def test_verification_failure_is_isolated(self, tmp_path, capsys):
        good1, good2 = _segment_texts()
        path = _write_batch(tmp_path,
                            [good1, _broken_verify_segment(), good2])
        out_path = tmp_path / "out.mlir"
        rc = repro_opt.main([str(path), "--split-input-file",
                             "--passes", PIPELINE, "-o", str(out_path)])
        captured = capsys.readouterr()
        assert rc == 1
        assert "segment 2): verification failed" in captured.err
        pieces = out_path.read_text(encoding="utf-8").split("// -----\n")
        assert len(pieces) == 3 and "FAILED" in pieces[1]

    def test_single_input_parse_error_still_aborts(self, tmp_path, capsys):
        path = tmp_path / "bad.mlir"
        path.write_text("not IR\n", encoding="utf-8")
        rc = repro_opt.main([str(path), "--passes", PIPELINE])
        captured = capsys.readouterr()
        assert rc == 1
        assert "FAILED" not in captured.out


class TestProcessBatchCLI:
    def _compile(self, tmp_path, capsys, extra, name="out.mlir"):
        good1, good2 = _segment_texts()
        path = _write_batch(tmp_path, [good1, good2, good1])
        out_path = tmp_path / name
        rc = repro_opt.main([str(path), "--split-input-file",
                             "--passes", PIPELINE,
                             "-o", str(out_path)] + extra)
        return rc, out_path.read_text(encoding="utf-8"), \
            capsys.readouterr().err

    def test_output_matches_serial_and_reports_tier(self, tmp_path,
                                                    capsys):
        rc, serial_out, _ = self._compile(tmp_path, capsys, [],
                                          name="serial.mlir")
        assert rc == 0
        rc, process_out, err = self._compile(
            tmp_path, capsys,
            ["--jobs", "4", "--parallel-tier", "process", "--report"],
            name="process.mlir")
        assert rc == 0
        assert process_out == serial_out
        assert "process-tier: segments = 2" in err
        assert "process-tier: deduped-segments = 1" in err

    def test_report_shows_recovery_events(self, tmp_path, capsys,
                                          monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "executor.worker=transient")
        rc, _out, err = self._compile(
            tmp_path, capsys,
            ["--jobs", "4", "--parallel-tier", "process", "--report"])
        assert rc == 0
        assert "transient_retries" in err
        assert "recovered after 1 failed attempt(s)" in err


class TestGracefulInterrupt:
    def test_repro_opt_interrupt_exits_130(self, tmp_path, capsys,
                                           monkeypatch):
        path = tmp_path / "in.mlir"
        path.write_text(_segment_texts()[0], encoding="utf-8")

        def boom(*_args, **_kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(repro_opt, "parse_module", boom)
        rc = repro_opt.main([str(path), "--passes", PIPELINE])
        assert rc == 130
        assert "repro-opt: interrupted" in capsys.readouterr().err

    def test_repro_run_interrupt_exits_130(self, tmp_path, capsys,
                                           monkeypatch):
        path = tmp_path / "in.mlir"
        path.write_text(_segment_texts()[0], encoding="utf-8")

        def boom(*_args, **_kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(repro_run, "parse_module", boom)
        rc = repro_run.main([str(path)])
        assert rc == 130
        assert "repro-run: interrupted" in capsys.readouterr().err

    def test_repro_lint_interrupt_exits_130(self, tmp_path, capsys,
                                            monkeypatch):
        path = tmp_path / "in.mlir"
        path.write_text(_segment_texts()[0], encoding="utf-8")

        def boom(*_args, **_kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(repro_lint, "parse_module", boom)
        rc = repro_lint.main([str(path)])
        assert rc == 130
        assert "repro-lint: interrupted" in capsys.readouterr().err


class TestWorkerErrorRendering:
    def test_deterministic_worker_error_reproduces_in_process(
            self, serial_text):
        # A pass error is not retried: the unit degrades to the serial
        # fallback, which reproduces the error with native semantics —
        # here there is none (the pipeline is sound), so exercise the
        # rendering through a worker that cannot parse its unit text.
        # Simplest deterministic error: ship a transient on every
        # attempt of one unit *and* verify the remaining units still
        # land — covered above; here assert the error path renders a
        # located diagnostic for a genuinely broken worker reply.
        from repro.transforms.executor import (
            SupervisedExecutor,
            WorkUnit,
        )

        executor = SupervisedExecutor(ExecutorOptions(**FAST))
        fallback_calls = []

        def fallback(unit, attempts, events):
            fallback_calls.append((unit.label, attempts))
            from repro.transforms.executor import WorkResult
            return WorkResult(unit=unit, text=None, attempts=attempts + 1,
                              degraded=True, events=events)

        try:
            unit = WorkUnit(uid=0, label="broken", kind="function",
                            text="this does not parse", spec="canonicalize")
            results = executor.run_units(
                [unit], lambda u, o: o["text"], fallback)
        finally:
            executor.close()
        result = results[0]
        assert result.degraded
        assert fallback_calls == [("broken", 0)]
        assert any("worker error" in event and "ParseError" in event
                   for event in result.events)


class TestDaemonSignalContract:
    """``repro-served`` follows the CLI signal rules as a subprocess:
    Ctrl-C (SIGINT) exits 130, a supervisor's SIGTERM exits 0 — and in
    both cases the daemon announces itself on stdout first, so the test
    only signals a server that is actually listening."""

    @staticmethod
    def _spawn_daemon():
        import os
        import re
        import subprocess

        env = {**os.environ,
               "PYTHONPATH": str(Path(__file__).resolve().parent.parent
                                 / "src")}
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.tools.repro_served",
             "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env)
        banner = process.stdout.readline()
        match = re.search(r"listening on .*:(\d+)$", banner.strip())
        assert match, banner
        return process, int(match.group(1))

    def test_sigint_exits_130(self):
        import signal

        process, _port = self._spawn_daemon()
        process.send_signal(signal.SIGINT)
        assert process.wait(timeout=30) == 130
        assert "repro-served: interrupted" in process.stderr.read()

    def test_sigterm_exits_0(self):
        import signal

        process, _port = self._spawn_daemon()
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=30) == 0
        assert "repro-served: terminated" in process.stderr.read()

    def test_client_shutdown_request_exits_0(self):
        import os
        import subprocess

        daemon, port = self._spawn_daemon()
        env = {**os.environ,
               "PYTHONPATH": str(Path(__file__).resolve().parent.parent
                                 / "src")}
        client = subprocess.run(
            [sys.executable, "-m", "repro.tools.repro_client",
             "--port", str(port), "--shutdown"],
            capture_output=True, text=True, env=env, timeout=60)
        assert client.returncode == 0, client.stderr
        assert daemon.wait(timeout=30) == 0
