"""The persistent disk cache: round trips, invalidation, recovery.

The contract under test (``docs/serving.md``): a compile served
warm-from-disk is byte-identical to a cold compile in *any* process; a
changed input or changed pipeline spec can never hit (content
addressing); and no corruption — torn writes, mangled entries, injected
read faults, unwritable disks — can ever make a compile fail or produce
wrong output (it degrades to a cold recompile that repairs the store).
"""

import json
import os
import stat
import subprocess
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.faults import fault_plan, install_fault_plan  # noqa: E402
from repro.ir import Printer  # noqa: E402
from repro.transforms import (  # noqa: E402
    CompileCache,
    DiskCache,
    parse_pass_pipeline,
)
from repro.transforms.disk_cache import ENTRY_VERSION  # noqa: E402

from .helpers import (  # noqa: E402
    build_listing1_function,
    build_listing2_function,
    build_listing3_function,
    wrap_in_module,
)

PIPELINE = "builtin.module(func.func(canonicalize,cse,dce))"
OTHER_PIPELINE = "builtin.module(func.func(canonicalize,cse))"


@pytest.fixture(autouse=True)
def _clean_fault_state():
    yield
    install_fault_plan(None)


def _module(*builders):
    builders = builders or (build_listing1_function,
                            build_listing2_function,
                            build_listing3_function)
    return wrap_in_module(*[build()[0] for build in builders])


def _compile(cache, spec=PIPELINE, *builders):
    """One compile through a fresh manager wired to ``cache``; returns
    the printed result (the bytes a CLI would emit)."""
    module = _module(*builders)
    manager = parse_pass_pipeline(spec)
    manager.cache = cache
    manager.run(module)
    return Printer().print_module(module)


def _entry_files(root):
    return sorted(Path(root).glob("*/*.json"))


class TestTwoTierReadThrough:
    def test_warm_from_disk_is_byte_identical(self, tmp_path):
        # Two CompileCache instances over one disk root model two
        # *processes*: the second has cold memory and hits only disk.
        cold = _compile(CompileCache(disk=DiskCache(tmp_path)))
        disk = DiskCache(tmp_path)
        warm = _compile(CompileCache(disk=disk))
        assert warm == cold
        assert disk.stats.hits == 1
        assert disk.stats.misses == 0

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        _compile(CompileCache(disk=DiskCache(tmp_path)))
        disk = DiskCache(tmp_path)
        cache = CompileCache(disk=disk)
        _compile(cache)
        _compile(cache)
        # Second lookup through the same cache hits memory, not disk.
        assert disk.stats.hits == 1
        assert cache.stats.hits == 1

    def test_hit_carries_statistics_and_remarks(self, tmp_path):
        module = _module()
        manager = parse_pass_pipeline(PIPELINE)
        manager.cache = CompileCache(disk=DiskCache(tmp_path))
        cold_report = manager.run(module)
        cold_stats = {(s.pass_name, s.name): s.value
                      for s in cold_report.statistics
                      if s.pass_name != "compile-cache"}

        warm_manager = parse_pass_pipeline(PIPELINE)
        warm_manager.cache = CompileCache(disk=DiskCache(tmp_path))
        warm_report = warm_manager.run(_module())
        warm_stats = {(s.pass_name, s.name): s.value
                      for s in warm_report.statistics
                      if s.pass_name != "compile-cache"}
        assert warm_stats == cold_stats
        assert warm_report.get_statistic("compile-cache", "hits") == 1

    def test_write_through_persists_one_entry(self, tmp_path):
        disk = DiskCache(tmp_path)
        _compile(CompileCache(disk=disk))
        files = _entry_files(tmp_path)
        assert len(files) == 1
        # Sharded layout: <root>/<2-hex>/<digest>.json
        assert files[0].parent.name == files[0].stem[:2]
        payload = json.loads(files[0].read_text())
        assert payload["version"] == ENTRY_VERSION


class TestInvalidation:
    def test_changed_input_misses(self, tmp_path):
        _compile(CompileCache(disk=DiskCache(tmp_path)))
        disk = DiskCache(tmp_path)
        _compile(CompileCache(disk=disk), PIPELINE,
                 build_listing1_function)  # different module
        assert disk.stats.hits == 0
        assert disk.stats.misses == 1

    def test_changed_pipeline_misses(self, tmp_path):
        _compile(CompileCache(disk=DiskCache(tmp_path)))
        disk = DiskCache(tmp_path)
        _compile(CompileCache(disk=disk), OTHER_PIPELINE)
        assert disk.stats.hits == 0
        assert disk.stats.misses == 1

    def test_poisoned_entry_for_changed_input_cannot_hit(self, tmp_path):
        """Cache poisoning: rebind an existing entry's file to the key
        of a *different* compile — the key-field check must reject it."""
        _compile(CompileCache(disk=DiskCache(tmp_path)))
        victim = _entry_files(tmp_path)[0]
        other_key = DiskCache.digest_for(("not-the-fingerprint", PIPELINE))
        stolen = victim.parent.parent / other_key[:2] / f"{other_key}.json"
        stolen.parent.mkdir(parents=True, exist_ok=True)
        stolen.write_bytes(victim.read_bytes())

        disk = DiskCache(tmp_path)
        assert disk.load(("not-the-fingerprint", PIPELINE)) is None
        assert disk.stats.corrupt_recoveries == 1
        assert not stolen.exists()  # evicted on the spot


class TestCorruptionRecovery:
    def test_mangled_text_recovers_cold(self, tmp_path):
        cold = _compile(CompileCache(disk=DiskCache(tmp_path)))
        victim = _entry_files(tmp_path)[0]
        payload = json.loads(victim.read_text())
        payload["text"] = payload["text"].replace("func", "fnuc", 1)
        victim.write_text(json.dumps(payload))

        disk = DiskCache(tmp_path)
        out = _compile(CompileCache(disk=disk))
        assert out == cold  # recompiled, not served corrupt
        assert disk.stats.corrupt_recoveries == 1
        assert disk.stats.stores == 1  # the cold run repaired the store

    def test_torn_write_truncated_json_recovers(self, tmp_path):
        cold = _compile(CompileCache(disk=DiskCache(tmp_path)))
        victim = _entry_files(tmp_path)[0]
        victim.write_text(victim.read_text()[: victim.stat().st_size // 2])

        disk = DiskCache(tmp_path)
        assert _compile(CompileCache(disk=disk)) == cold
        assert disk.stats.misses == 1
        assert disk.stats.corrupt_recoveries == 1  # evicted, not skipped

    def test_wrong_version_recovers(self, tmp_path):
        cold = _compile(CompileCache(disk=DiskCache(tmp_path)))
        victim = _entry_files(tmp_path)[0]
        payload = json.loads(victim.read_text())
        payload["version"] = ENTRY_VERSION + 1
        victim.write_text(json.dumps(payload))

        disk = DiskCache(tmp_path)
        assert _compile(CompileCache(disk=disk)) == cold
        assert disk.stats.corrupt_recoveries == 1

    def test_injected_read_corruption_recovers(self, tmp_path):
        cold = _compile(CompileCache(disk=DiskCache(tmp_path)))
        disk = DiskCache(tmp_path)
        with fault_plan("disk-cache.read=corrupt"):
            assert _compile(CompileCache(disk=disk)) == cold
        assert disk.stats.corrupt_recoveries == 1
        # The recovery evicted and the cold run re-stored the entry.
        assert len(_entry_files(tmp_path)) == 1

    def test_injected_transient_read_degrades_to_miss(self, tmp_path):
        cold = _compile(CompileCache(disk=DiskCache(tmp_path)))
        disk = DiskCache(tmp_path)
        with fault_plan("disk-cache.read=transient"):
            assert _compile(CompileCache(disk=disk)) == cold
        assert disk.stats.misses == 1
        assert disk.stats.corrupt_recoveries == 0

    def test_injected_write_failure_never_fails_compile(self, tmp_path):
        disk = DiskCache(tmp_path)
        with fault_plan("disk-cache.write:*=transient"):
            out = _compile(CompileCache(disk=disk))
        assert out
        assert disk.stats.write_errors == 1
        assert _entry_files(tmp_path) == []

    def test_unwritable_root_never_fails_compile(self, tmp_path):
        root = tmp_path / "cache"
        disk = DiskCache(root)
        os.chmod(root, stat.S_IRUSR | stat.S_IXUSR)
        try:
            if os.access(root, os.W_OK):  # running as root: no-op chmod
                pytest.skip("cannot drop write permission (euid 0)")
            out = _compile(CompileCache(disk=disk))
            assert out
            assert disk.stats.write_errors == 1
        finally:
            os.chmod(root, stat.S_IRWXU)


class TestEviction:
    def test_lru_eviction_respects_byte_budget(self, tmp_path):
        disk = DiskCache(tmp_path, max_bytes=1)  # everything over budget
        cache = CompileCache(disk=disk)
        _compile(cache, PIPELINE, build_listing1_function)
        _compile(cache, PIPELINE, build_listing2_function)
        # Each store sweeps; at most the just-written entry survives
        # transiently and the next sweep removes it too.
        assert len(_entry_files(tmp_path)) <= 1
        assert disk.stats.evictions >= 1

    def test_hit_refreshes_recency(self, tmp_path):
        disk = DiskCache(tmp_path, max_bytes=None)
        cache = CompileCache(disk=disk)
        _compile(cache, PIPELINE, build_listing1_function)
        _compile(cache, PIPELINE, build_listing2_function)
        entries = _entry_files(tmp_path)
        assert len(entries) == 2
        for path in entries:  # age both entries far into the past
            old = path.stat().st_mtime - 1000
            os.utime(path, (old, old))
        aged = {path: path.stat().st_mtime for path in entries}
        # A fresh-process hit on listing1's entry must bump only it.
        warm_disk = DiskCache(tmp_path, max_bytes=None)
        _compile(CompileCache(disk=warm_disk), PIPELINE,
                 build_listing1_function)
        assert warm_disk.stats.hits == 1
        refreshed = [path for path in entries
                     if path.stat().st_mtime > aged[path] + 500]
        assert len(refreshed) == 1

    def test_explicit_evict(self, tmp_path):
        disk = DiskCache(tmp_path)
        _compile(CompileCache(disk=disk))
        key_file = _entry_files(tmp_path)[0]
        assert key_file.exists()
        # Reconstruct the key from the stored payload.
        payload = json.loads(key_file.read_text())
        assert disk.evict((payload["fingerprint"], payload["spec"]))
        assert not key_file.exists()


class TestStats:
    def test_describe_shape(self, tmp_path):
        disk = DiskCache(tmp_path)
        cache = CompileCache(disk=disk)
        _compile(cache)
        summary = cache.describe()
        assert summary["disk"]["stores"] == 1
        assert summary["disk"]["entries"] == 1
        assert summary["disk"]["bytes_on_disk"] > 0
        for counter in ("hits", "misses", "evictions",
                        "corrupt_recoveries", "write_errors"):
            assert counter in summary["disk"]

    def test_no_disk_tier_keeps_historical_shape(self):
        assert "disk" not in CompileCache().describe()


class TestCrossProcess:
    def test_fresh_process_warm_hit_via_cli(self, tmp_path):
        """The genuine article: two ``repro-opt`` *processes* sharing a
        disk root produce byte-identical output, the second warm."""
        source = Printer().print_module(_module())
        input_path = tmp_path / "in.mlir"
        input_path.write_text(source, encoding="utf-8")
        cache_dir = tmp_path / "cache"
        command = [sys.executable, "-m", "repro.tools.repro_opt",
                   str(input_path), "--passes", PIPELINE,
                   "--cache-dir", str(cache_dir), "--report"]
        env = {**os.environ,
               "PYTHONPATH": str(Path(__file__).resolve().parent.parent
                                 / "src")}
        first = subprocess.run(command, capture_output=True, text=True,
                               env=env, timeout=120)
        second = subprocess.run(command, capture_output=True, text=True,
                                env=env, timeout=120)
        assert first.returncode == 0, first.stderr
        assert second.returncode == 0, second.stderr
        assert first.stdout == second.stdout
        assert "disk cache: 0 hits, 1 misses" in first.stderr
        assert "disk cache: 1 hits, 0 misses" in second.stderr
