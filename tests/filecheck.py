"""FileCheck-lite: ordered substring assertions over textual IR.

A tiny analogue of LLVM's FileCheck so transform tests can be written as
textual before/after cases::

    filecheck(optimized_ir, '''
        CHECK: "func.func"
        CHECK: %c = "arith.constant"
        CHECK-NOT: "arith.constant"
        CHECK-NEXT: "arith.addi"
    ''')

Supported directives (matched as plain substrings, in order):

* ``CHECK: <text>`` — some later line contains ``<text>``;
* ``CHECK-NEXT: <text>`` — the line immediately after the previous match
  contains ``<text>``;
* ``CHECK-SAME: <text>`` — the previously matched line also contains
  ``<text>`` after the previous match position;
* ``CHECK-NOT: <text>`` — ``<text>`` does not occur between the previous
  match and the next positive match (or the end of input).
"""

from __future__ import annotations

import re
from typing import List, Tuple

_DIRECTIVE_RE = re.compile(
    r"CHECK(?P<kind>-NEXT|-SAME|-NOT)?:\s?(?P<text>.*\S|)")


class FileCheckError(AssertionError):
    """Raised when the input text does not satisfy the check script."""


def parse_checks(script: str) -> List[Tuple[str, str]]:
    """Extract ``(kind, text)`` directives from a check script."""
    checks: List[Tuple[str, str]] = []
    for line in script.splitlines():
        m = _DIRECTIVE_RE.search(line)
        if m is None:
            continue
        kind = "CHECK" + (m.group("kind") or "")
        text = m.group("text").strip()
        if not text:
            raise FileCheckError(
                f"{kind}: directive has an empty pattern (line: "
                f"{line.strip()!r})")
        checks.append((kind, text))
    return checks


def filecheck(text: str, script: str) -> None:
    """Assert that ``text`` satisfies the directives in ``script``."""
    checks = parse_checks(script)
    if not checks:
        raise FileCheckError("check script contains no CHECK directives")
    lines = text.splitlines()
    cursor = 0  # index of the first line not yet consumed by a match
    last_line = -1
    last_col = 0
    pending_not: List[str] = []

    def check_nots(until: int, until_col: int = -1) -> None:
        """Forbid pending patterns in lines[cursor:until] and, when
        ``until_col`` is given, in the match line's prefix before the
        positive match."""
        for pattern in pending_not:
            for i in range(cursor, until):
                if pattern in lines[i]:
                    raise FileCheckError(
                        f"CHECK-NOT: {pattern!r} found on line {i + 1}: "
                        f"{lines[i].strip()!r}")
            if until_col >= 0 and until < len(lines) and \
                    pattern in lines[until][:until_col]:
                raise FileCheckError(
                    f"CHECK-NOT: {pattern!r} found on line {until + 1} "
                    f"before the next match: {lines[until].strip()!r}")
        pending_not.clear()

    for kind, pattern in checks:
        if kind == "CHECK-NOT":
            pending_not.append(pattern)
            continue
        if kind == "CHECK-SAME":
            if last_line < 0:
                raise FileCheckError("CHECK-SAME without a previous match")
            col = lines[last_line].find(pattern, last_col)
            if col == -1:
                raise FileCheckError(
                    f"CHECK-SAME: {pattern!r} not found on line "
                    f"{last_line + 1}: {lines[last_line].strip()!r}")
            last_col = col + len(pattern)
            continue
        if kind == "CHECK-NEXT":
            if last_line < 0:
                raise FileCheckError("CHECK-NEXT without a previous match")
            target = last_line + 1
            if target >= len(lines) or pattern not in lines[target]:
                found = lines[target].strip() if target < len(lines) else \
                    "<end of input>"
                raise FileCheckError(
                    f"CHECK-NEXT: {pattern!r} not on line {target + 1} "
                    f"(found {found!r})")
            check_nots(target, lines[target].find(pattern))
            last_line = target
            last_col = lines[target].find(pattern) + len(pattern)
            cursor = target + 1
            continue
        # Plain CHECK: scan forward from the cursor.
        for i in range(cursor, len(lines)):
            if pattern in lines[i]:
                check_nots(i, lines[i].find(pattern))
                last_line = i
                last_col = lines[i].find(pattern) + len(pattern)
                cursor = i + 1
                break
        else:
            raise FileCheckError(
                f"CHECK: {pattern!r} not found after line {cursor}")
    check_nots(len(lines))
