"builtin.module"() ({
  "func.func"() ({
   ^bb0(%cond: i1, %v1: i32, %v2: i32, %ptr1: memref<i32>, %ptr2: memref<i32>):
    "scf.if"(%cond) ({
      "memref.store"(%v1, %ptr1) {tag = "a"} : (i32, memref<i32>) -> ()
      "scf.yield"() : () -> ()
    }{
      "memref.store"(%v2, %ptr2) {tag = "b"} : (i32, memref<i32>) -> ()
      "scf.yield"() : () -> ()
    }) : (i1) -> ()
    %0 = "memref.load"(%ptr1) : (memref<i32>) -> (i32)
    "func.return"() : () -> ()
  }) {function_type = (i1, i32, i32, memref<i32>, memref<i32>) -> (), sym_name = "foo", sym_visibility = "public"} : () -> ()
}) {sym_name = "test"} : () -> ()
