"builtin.module"() ({
  "llvm.func"() ({
   ^bb0(%cond: i1, %v1: i32, %v2: i32, %ptr1: memref<i32>, %ptr2: memref<i32>):
    "cf.cond_br"(%cond)[^bb1, ^bb2] {num_true_args = 0 : i64} : (i1) -> ()
   ^bb1():
    %0 = "llvm.mlir.constant"() {value = 0 : index} : () -> (index)
    %1 = "builtin.unrealized_conversion_cast"(%ptr1) : (memref<i32>) -> (!llvm.ptr<i32>)
    %2 = "llvm.getelementptr"(%1, %0) {static_offsets = []} : (!llvm.ptr<i32>, index) -> (!llvm.ptr)
    "llvm.store"(%v1, %2) : (i32, !llvm.ptr) -> ()
    "cf.br"()[^bb3] : () -> ()
   ^bb2():
    %3 = "llvm.mlir.constant"() {value = 0 : index} : () -> (index)
    %4 = "builtin.unrealized_conversion_cast"(%ptr2) : (memref<i32>) -> (!llvm.ptr<i32>)
    %5 = "llvm.getelementptr"(%4, %3) {static_offsets = []} : (!llvm.ptr<i32>, index) -> (!llvm.ptr)
    "llvm.store"(%v2, %5) : (i32, !llvm.ptr) -> ()
    "cf.br"()[^bb3] : () -> ()
   ^bb3():
    "llvm.return"() : () -> ()
  }) {function_type = (i1, i32, i32, memref<i32>, memref<i32>) -> (), sym_name = "foo", sym_visibility = "public"} : () -> ()
}) {sym_name = "test"} : () -> ()
