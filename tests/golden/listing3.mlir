"builtin.module"() ({
  "func.func"() ({
   ^bb0(%acc: memref<?x!sycl_accessor_3_f32_read_write>, %item: memref<?x!sycl_item_2>):
    %0 = "arith.constant"() {value = 0 : i32} : () -> (i32)
    %1 = "arith.constant"() {value = 1 : i32} : () -> (i32)
    %2 = "arith.constant"() {value = 0 : index} : () -> (index)
    %3 = "arith.constant"() {value = 1 : index} : () -> (index)
    %4 = "arith.constant"() {value = 2 : index} : () -> (index)
    %5 = "arith.constant"() {value = 64 : index} : () -> (index)
    %6 = "memref.alloca"() : () -> (memref<1x!sycl_id_3>)
    %7 = "sycl.item.get_id"(%item, %0) : (memref<?x!sycl_item_2>, i32) -> (index)
    %8 = "sycl.item.get_id"(%item, %1) : (memref<?x!sycl_item_2>, i32) -> (index)
    "affine.for"(%2, %5) ({
     ^bb0(%iv: index):
      %9 = "arith.addi"(%7, %3) : (index, index) -> (index)
      %10 = "arith.muli"(%iv, %4) : (index, index) -> (index)
      %11 = "arith.addi"(%10, %4) : (index, index) -> (index)
      %12 = "arith.addi"(%11, %8) : (index, index) -> (index)
      "sycl.constructor"(%6, %9, %10, %12) {type = @id} : (memref<1x!sycl_id_3>, index, index, index) -> ()
      %13 = "sycl.accessor.subscript"(%acc, %6) : (memref<?x!sycl_accessor_3_f32_read_write>, memref<1x!sycl_id_3>) -> (memref<?xf32>)
      %14 = "affine.load"(%13, %2) : (memref<?xf32>, index) -> (f32)
      "affine.yield"() : () -> ()
    }) {step = 1 : i64} : (index, index) -> ()
    "func.return"() : () -> ()
  }) {function_type = (memref<?x!sycl_accessor_3_f32_read_write>, memref<?x!sycl_item_2>) -> (), sycl.kernel = unit, sym_name = "mem_acc", sym_visibility = "public"} : () -> ()
}) {sym_name = "test"} : () -> ()
