"builtin.module"() ({
  "func.func"() ({
   ^bb0(%nd_item: memref<?x!sycl_nd_item_2>, %idx: index):
    %0 = "arith.constant"() {value = 0 : i32} : () -> (i32)
    %1 = "arith.constant"() {value = 0 : i64} : () -> (i64)
    %2 = "arith.constant"() {value = 1 : i64} : () -> (i64)
    %3 = "arith.constant"() {value = 2 : i64} : () -> (i64)
    %4 = "memref.alloca"() : () -> (memref<10xi64>)
    %5 = "sycl.nd_item.get_global_id"(%nd_item, %0) : (memref<?x!sycl_nd_item_2>, i32) -> (index)
    %6 = "arith.cmpi"(%5, %1) {predicate = "sgt"} : (index, i64) -> (i1)
    "scf.if"(%6) ({
      "memref.store"(%2, %4, %idx) : (i64, memref<10xi64>, index) -> ()
      "scf.yield"() : () -> ()
    }{
      "memref.store"(%3, %4, %idx) : (i64, memref<10xi64>, index) -> ()
      "scf.yield"() : () -> ()
    }) : (i1) -> ()
    %7 = "memref.load"(%4, %idx) : (memref<10xi64>, index) -> (i64)
    %8 = "arith.cmpi"(%7, %1) {predicate = "sgt"} : (i64, i64) -> (i1)
    "scf.if"(%8) ({
      "scf.yield"() : () -> ()
    }) : (i1) -> ()
    "func.return"() : () -> ()
  }) {function_type = (memref<?x!sycl_nd_item_2>, index) -> (), sycl.kernel = unit, sym_name = "non_uniform", sym_visibility = "public"} : () -> ()
}) {sym_name = "test"} : () -> ()
