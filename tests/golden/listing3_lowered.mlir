"builtin.module"() ({
  "llvm.func"() ({
   ^bb0(%acc: memref<?x!sycl_accessor_3_f32_read_write>, %item: memref<?x!sycl_item_2>):
    %0 = "llvm.mlir.constant"() {value = 0 : index} : () -> (index)
    %1 = "llvm.mlir.constant"() {value = 64 : index} : () -> (index)
    %2 = "llvm.mlir.constant"() {value = 1 : index} : () -> (index)
    "cf.br"(%0)[^bb1] : (index) -> ()
   ^bb1(%iv: index):
    %3 = "llvm.icmp"(%iv, %1) {predicate = "slt"} : (index, index) -> (i1)
    "cf.cond_br"(%3, %iv)[^bb2, ^bb3] {num_true_args = 1 : i64} : (i1, index) -> ()
   ^bb2(%iv_0: index):
    %4 = "llvm.add"(%iv_0, %2) : (index, index) -> (index)
    "cf.br"(%4)[^bb1] : (index) -> ()
   ^bb3():
    "llvm.return"() : () -> ()
  }) {function_type = (memref<?x!sycl_accessor_3_f32_read_write>, memref<?x!sycl_item_2>) -> (), sycl.kernel = unit, sym_name = "mem_acc", sym_visibility = "public"} : () -> ()
}) {sym_name = "test"} : () -> ()
