"builtin.module"() ({
  "llvm.func"() ({
   ^bb0(%nd_item: memref<?x!sycl_nd_item_2>, %idx: index):
    %0 = "llvm.mlir.constant"() {value = 0 : i32} : () -> (i32)
    %1 = "llvm.mlir.constant"() {value = 0 : i64} : () -> (i64)
    %2 = "llvm.mlir.constant"() {value = 1 : i64} : () -> (i64)
    %3 = "llvm.mlir.constant"() {value = 2 : i64} : () -> (i64)
    %4 = "llvm.mlir.constant"() {value = 10 : index} : () -> (index)
    %5 = "llvm.alloca"(%4) : (index) -> (!llvm.ptr<i64>)
    %6 = "sycl.nd_item.get_global_id"(%nd_item, %0) : (memref<?x!sycl_nd_item_2>, i32) -> (index)
    %7 = "llvm.icmp"(%6, %1) {predicate = "sgt"} : (index, i64) -> (i1)
    "cf.cond_br"(%7)[^bb1, ^bb2] {num_true_args = 0 : i64} : (i1) -> ()
   ^bb1():
    %8 = "llvm.getelementptr"(%5, %idx) {static_offsets = []} : (!llvm.ptr<i64>, index) -> (!llvm.ptr)
    "llvm.store"(%2, %8) : (i64, !llvm.ptr) -> ()
    "cf.br"()[^bb3] : () -> ()
   ^bb2():
    %9 = "llvm.getelementptr"(%5, %idx) {static_offsets = []} : (!llvm.ptr<i64>, index) -> (!llvm.ptr)
    "llvm.store"(%3, %9) : (i64, !llvm.ptr) -> ()
    "cf.br"()[^bb3] : () -> ()
   ^bb3():
    %10 = "llvm.getelementptr"(%5, %idx) {static_offsets = []} : (!llvm.ptr<i64>, index) -> (!llvm.ptr)
    %11 = "llvm.load"(%10) : (!llvm.ptr) -> (i64)
    %12 = "llvm.icmp"(%11, %1) {predicate = "sgt"} : (i64, i64) -> (i1)
    "cf.cond_br"(%12)[^bb4, ^bb5] {num_true_args = 0 : i64} : (i1) -> ()
   ^bb4():
    "cf.br"()[^bb5] : () -> ()
   ^bb5():
    "llvm.return"() : () -> ()
  }) {function_type = (memref<?x!sycl_nd_item_2>, index) -> (), sycl.kernel = unit, sym_name = "non_uniform", sym_visibility = "public"} : () -> ()
}) {sym_name = "test"} : () -> ()
