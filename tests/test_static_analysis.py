"""The PR-6 static verification layer, end to end.

Covers the :class:`~repro.analysis.manager.AnalysisManager` contract
(caching, preservation, invalidation, fingerprint safety net, the
``jobs=N`` merge and the compile-cache interplay), the lint rule engine
that statically catches PR 5's miscompile classes, source locations
(parser, printer round-trip, kernel builder call-sites), the
``repro-lint`` / ``repro-opt --lint`` drivers and the
``--verify-diagnostics`` mode.
"""

import warnings

import pytest

from repro.analysis import (
    ALL_ANALYSES,
    AnalysisManager,
    MemoryAccessAnalysis,
    NonConvergenceWarning,
    ReachingDefinitionAnalysis,
    analysis_scope,
    current_analysis_manager,
    describe_lint_rules,
    run_lint,
)
from repro.analysis.lint import LINT_RULES
from repro.dialects import arith, func, memref, scf, sycl
from repro.frontend.kernel_builder import AccessorParam, KernelSource
from repro.ir import (
    Builder,
    StringAttr,
    DominanceInfo,
    InsertionPoint,
    Location,
    Printer,
    UNKNOWN,
    i1,
    i32,
    index,
    location_of,
    parse_module,
    verify,
)
from repro.ir.types import MemRefType
from repro.tools.repro_lint import main as repro_lint_main
from repro.tools.repro_opt import main as repro_opt_main
from repro.transforms import (
    CompileCache,
    FunctionPass,
    PassManager,
    build_named_pipeline,
    check_pass_pipeline,
    shipped_pipeline_names,
)

from .helpers import (
    build_listing1_function,
    build_listing2_function,
    build_listing3_function,
    wrap_in_module,
)

# ---------------------------------------------------------------------------
# Test IR
# ---------------------------------------------------------------------------

TRAP_HOIST_IR = """\
"builtin.module"() {sym_name = "demo"} : () -> () ({
  "func.func"() {function_type = (index, index, index, i32, i32) -> (), \
sym_name = "kernel", sym_visibility = "public"} : () -> () ({
   ^bb0(%lb: index, %ub: index, %step: index, %a: i32, %b: i32):
    %q = "arith.divsi"(%a, %b) : (i32, i32) -> (i32)
    "scf.for"(%lb, %ub, %step) : (index, index, index) -> () ({
     ^bb0(%i: index):
      %u = "arith.addi"(%q, %q) : (i32, i32) -> (i32)
      "scf.yield"() : () -> ()
    })
    "func.return"() : () -> ()
  })
})
"""

NON_DOMINATING_IR = """\
"builtin.module"() {sym_name = "demo"} : () -> () ({
  "func.func"() {function_type = (memref<i32>, i32) -> (), \
sym_name = "kernel", sym_visibility = "public"} : () -> () ({
   ^bb0(%ptr: memref<i32>, %v: i32):
    "memref.store"(%v, %p) : (i32, memref<i32>) -> ()
    %p = "sycl.accessor.get_pointer"(%ptr) : (memref<i32>) -> (memref<i32>)
    "func.return"() : () -> ()
  })
})
"""


def _simple_module():
    function, _ = build_listing1_function()
    return wrap_in_module(function)


class RequestingPass(FunctionPass):
    """Requests DominanceInfo per function; optionally preserves it."""

    NAME = "test-requesting"

    def __init__(self, preserve=False):
        super().__init__()
        self._preserve = preserve
        self.seen = []

    def run_on_function(self, function, report):
        self.seen.append(self.get_analysis(DominanceInfo, function))

    def preserves(self):
        return (DominanceInfo,) if self._preserve else ()


class MutatingPass(FunctionPass):
    """Appends a dead constant; declares nothing preserved."""

    NAME = "test-mutating"

    def run_on_function(self, function, report):
        block = function.body
        constant = arith.ConstantOp.build(7, i32())
        block.insert_before(block.operations[-1], constant)


# ---------------------------------------------------------------------------
# AnalysisManager
# ---------------------------------------------------------------------------

class TestAnalysisManager:
    def test_get_caches_per_anchor(self):
        module = _simple_module()
        function = module.regions[0].blocks[0].operations[0]
        am = AnalysisManager()
        first = am.get(DominanceInfo, function)
        second = am.get(DominanceInfo, function)
        assert first is second
        assert am.hits == 1 and am.misses == 1

    def test_fingerprint_mismatch_is_a_miss(self):
        module = _simple_module()
        function = module.regions[0].blocks[0].operations[0]
        am = AnalysisManager()
        first = am.get(DominanceInfo, function)
        # Mutate without telling the manager: the structural fingerprint
        # recorded at construction time no longer matches.
        block = function.body
        block.insert_before(block.operations[-1],
                            arith.ConstantOp.build(3, i32()))
        second = am.get(DominanceInfo, function)
        assert first is not second
        assert am.hits == 0 and am.misses == 2

    def test_invalidate_respects_preserved_classes(self):
        module = _simple_module()
        function = module.regions[0].blocks[0].operations[0]
        am = AnalysisManager()
        dom = am.get(DominanceInfo, function)
        am.get(MemoryAccessAnalysis, function)
        evicted = am.invalidate(function, preserved=(DominanceInfo,))
        assert evicted == 1
        assert am.get_cached(DominanceInfo, function) is dom
        assert am.get_cached(MemoryAccessAnalysis, function) is None

    def test_invalidate_all_analyses_sentinel_keeps_everything(self):
        module = _simple_module()
        function = module.regions[0].blocks[0].operations[0]
        am = AnalysisManager()
        am.get(DominanceInfo, function)
        assert am.invalidate(function, preserved=ALL_ANALYSES) == 0
        assert am.describe()["entries"] == 1

    def test_invalidate_covers_ancestors_and_descendants(self):
        module = _simple_module()
        function = module.regions[0].blocks[0].operations[0]
        am = AnalysisManager()
        am.get(DominanceInfo, module)
        am.get(DominanceInfo, function)
        # A pass ran on the function: the module-anchored view includes
        # the mutated subtree, so both entries go.
        assert am.invalidate(function) == 2

    def test_analysis_scope_is_thread_local_and_restored(self):
        am = AnalysisManager()
        assert current_analysis_manager() is None
        with analysis_scope(am):
            assert current_analysis_manager() is am
        assert current_analysis_manager() is None


class TestPassManagerIntegration:
    def test_preserving_pass_keeps_cache_warm_across_passes(self):
        pm = PassManager()
        fpm = pm.nest("func.func")
        first = RequestingPass(preserve=True)
        second = RequestingPass(preserve=True)
        fpm.add(first)
        fpm.add(second)
        pm.run(_simple_module())
        assert first.seen[0] is second.seen[0]
        assert pm.analysis_manager.hits >= 1

    def test_non_preserving_pass_invalidates(self):
        pm = PassManager()
        fpm = pm.nest("func.func")
        first = RequestingPass(preserve=False)
        second = RequestingPass(preserve=False)
        fpm.add(first)
        fpm.add(second)
        pm.run(_simple_module())
        assert first.seen[0] is not second.seen[0]
        assert pm.analysis_manager.invalidations >= 1

    def test_mutating_pass_never_serves_stale_results(self):
        pm = PassManager()
        fpm = pm.nest("func.func")
        first = RequestingPass(preserve=True)
        mutating = MutatingPass()
        second = RequestingPass(preserve=True)
        fpm.add(first)
        fpm.add(mutating)
        fpm.add(second)
        pm.run(_simple_module())
        # MutatingPass preserves nothing, so the dominance info computed
        # before it must not be served after it.
        assert first.seen[0] is not second.seen[0]

    def test_manager_persists_across_runs_for_warm_starts(self):
        pm = PassManager()
        fpm = pm.nest("func.func")
        fpm.add(RequestingPass(preserve=True))
        module = _simple_module()
        pm.run(module)
        cold = pm.analysis_manager.describe()
        pm.run(module)
        warm = pm.analysis_manager.describe()
        assert warm["hits"] > cold["hits"]

    def test_jobs4_merges_worker_stats_and_entries(self):
        functions = [build_listing1_function()[0] for _ in range(4)]
        for i, f in enumerate(functions):
            f.set_attr("sym_name", StringAttr(f"f{i}"))
        module = wrap_in_module(*functions)
        pm = PassManager(jobs=4)
        fpm = pm.nest("func.func")
        requesting = RequestingPass(preserve=True)
        fpm.add(requesting)
        try:
            pm.run(module)
        finally:
            pm.close()
        stats = pm.analysis_manager.describe()
        assert len(requesting.seen) == 4
        assert stats["misses"] >= 4
        assert stats["entries"] >= 4
        verify(module)

    def test_compile_cache_hit_carries_preserved_analyses(self):
        pm = PassManager()
        fpm = pm.nest("func.func")
        fpm.add(RequestingPass(preserve=True))
        pm.cache = CompileCache()
        pm.run(_simple_module())
        assert pm.cache.describe()["misses"] >= 1
        pm.run(_simple_module())  # structurally identical -> cache hit
        assert pm.cache.describe()["hits"] >= 1
        assert "DominanceInfo" in pm.analysis_manager.carried


# ---------------------------------------------------------------------------
# Lint rules
# ---------------------------------------------------------------------------

class TestLintRules:
    def test_all_shipped_rules_registered(self):
        assert set(LINT_RULES) == {
            "non-dominating-use", "speculated-trap", "barrier-divergence",
            "readonly-accessor-write", "dead-private-function"}
        listing = describe_lint_rules()
        for name in LINT_RULES:
            assert name in listing

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown lint rule"):
            run_lint(_simple_module(), rules=["no-such-rule"])

    def test_non_dominating_use_flagged_with_location(self):
        module = parse_module(NON_DOMINATING_IR, filename="bad.mlir")
        findings = run_lint(module, rules=["non-dominating-use"])
        assert len(findings) == 1
        assert findings[0].location.describe() == "bad.mlir:4:5"
        assert findings[0].notes[0].location.describe() == "bad.mlir:5:5"

    def test_speculated_trap_flagged_with_location(self):
        module = parse_module(TRAP_HOIST_IR, filename="trap.mlir")
        findings = run_lint(module, rules=["speculated-trap"])
        assert len(findings) == 1
        assert "may trap but was speculated" in findings[0].message
        assert findings[0].location.describe() == "trap.mlir:4:5"

    def test_trap_above_constant_trip_loop_is_legal(self):
        # Legal LICM output: the loop provably executes, so the hoisted
        # division is guarded by an execution of the body.
        f = func.FuncOp.build("legal", [i32(), i32()], arg_names=["a", "b"])
        a, b = f.arguments
        body = Builder(InsertionPoint.at_end(f.body))
        lb = body.insert(arith.ConstantOp.build(0, index()))
        ub = body.insert(arith.ConstantOp.build(4, index()))
        step = body.insert(arith.ConstantOp.build(1, index()))
        div = body.insert(arith.DivSIOp.build(a, b))
        loop = body.insert(scf.ForOp.build(lb.result, ub.result, step.result))
        loop_body = Builder(InsertionPoint.at_start(loop.body))
        loop_body.insert(arith.AddIOp.build(div.result, div.result))
        body.insert(func.ReturnOp.build())
        assert run_lint(wrap_in_module(f), rules=["speculated-trap"]) == []

    def test_barrier_divergence_flagged(self):
        f, handles = build_listing2_function()
        if_op = handles["if_op"]
        group = sycl.SYCLNDItemGetGroupOp.build(f.arguments[0], 2)
        barrier = sycl.SYCLGroupBarrierOp.build(group.result)
        then = if_op.then_block
        then.insert_before(then.operations[-1], group)
        then.insert_before(then.operations[-1], barrier)
        findings = run_lint(wrap_in_module(f), rules=["barrier-divergence"])
        assert len(findings) == 1
        assert "work-group deadlock" in findings[0].message

    def test_uniform_barrier_is_clean(self):
        nd_item_memref = sycl.memref_of(sycl.NDItemType(1))
        f = func.FuncOp.build("uniform", [nd_item_memref],
                              arg_names=["nd_item"])
        body = Builder(InsertionPoint.at_end(f.body))
        group = body.insert(sycl.SYCLNDItemGetGroupOp.build(
            f.arguments[0], 1))
        body.insert(sycl.SYCLGroupBarrierOp.build(group.result))
        body.insert(func.ReturnOp.build())
        assert run_lint(wrap_in_module(f),
                        rules=["barrier-divergence"]) == []

    def test_readonly_accessor_write_flagged(self):
        acc_type = sycl.AccessorType(1, i32(), access_mode="read")
        f = func.FuncOp.build(
            "k", [sycl.memref_of(acc_type), index(), i32()],
            arg_names=["acc", "i", "v"])
        acc, i, v = f.arguments
        body = Builder(InsertionPoint.at_end(f.body))
        view = body.insert(sycl.SYCLAccessorSubscriptOp.build(acc, i))
        zero = body.insert(arith.ConstantOp.build(0, index()))
        body.insert(memref.StoreOp.build(v, view.result, [zero.result]))
        body.insert(func.ReturnOp.build())
        findings = run_lint(wrap_in_module(f),
                            rules=["readonly-accessor-write"])
        assert len(findings) == 1
        assert "read-only accessor" in findings[0].message

    def test_dead_private_function_flagged(self):
        dead = func.FuncOp.build("helper", [])
        dead.set_attr("sym_visibility", StringAttr("private"))
        Builder(InsertionPoint.at_end(dead.body)).insert(
            func.ReturnOp.build())
        live, _ = build_listing1_function()
        findings = run_lint(wrap_in_module(live, dead),
                            rules=["dead-private-function"])
        assert len(findings) == 1
        assert "@helper" in findings[0].message

    def test_listing_modules_are_lint_clean(self):
        for builder in (build_listing1_function, build_listing2_function,
                        build_listing3_function):
            module = wrap_in_module(builder()[0])
            assert run_lint(module) == [], builder.__name__


class TestLintSweepAcrossPipelines:
    """The CI gate: every listing module stays clean under every shipped
    pipeline, with linting after every pass (``--lint-each``)."""

    @pytest.mark.parametrize("pipeline", sorted(shipped_pipeline_names()))
    def test_pipelines_keep_listings_clean(self, pipeline, tmp_path):
        functions = [builder()[0] for builder in (
            build_listing1_function, build_listing2_function,
            build_listing3_function)]
        path = tmp_path / "listings.mlir"
        text = (("// -----\n").join(
            Printer().print_module(wrap_in_module(f)) + "\n"
            for f in functions))
        path.write_text(text, encoding="utf-8")
        rc = repro_opt_main([
            str(path), "--split-input-file", "--pipeline", pipeline,
            "--lint-each", "-o", str(tmp_path / "out.mlir")])
        assert rc == 0


# ---------------------------------------------------------------------------
# Locations
# ---------------------------------------------------------------------------

class TestLocations:
    def test_parser_assigns_file_line_col(self):
        module = parse_module(TRAP_HOIST_IR, filename="trap.mlir")
        ops = {op.name: op for op in module.walk()}
        assert location_of(ops["arith.divsi"]).describe() == "trap.mlir:4:5"
        assert location_of(ops["builtin.module"]).describe() == "trap.mlir:1:1"

    def test_default_printing_omits_locations(self):
        module = parse_module(TRAP_HOIST_IR, filename="trap.mlir")
        assert "loc(" not in Printer().print_module(module)

    def test_location_round_trip_with_debuginfo(self):
        module = parse_module(TRAP_HOIST_IR, filename="trap.mlir")
        text = Printer(print_locations=True).print_module(module)
        assert 'loc("trap.mlir":4:5)' in text
        reparsed = parse_module(text, filename="<reprint>")
        ops = {op.name: op for op in reparsed.walk()}
        # The explicit trailer wins over the reparse position.
        assert location_of(ops["arith.divsi"]).describe() == "trap.mlir:4:5"
        assert Printer(print_locations=True).print_module(reparsed) == text

    def test_locations_survive_clone(self):
        module = parse_module(TRAP_HOIST_IR, filename="trap.mlir")
        clone = module.clone()
        ops = {op.name: op for op in clone.walk()}
        assert location_of(ops["arith.divsi"]).describe() == "trap.mlir:4:5"

    def test_unknown_location_prints_as_unknown(self):
        assert str(UNKNOWN) == "loc(unknown)"
        assert UNKNOWN.describe() == "<unknown>"
        assert Location("f.py", 3, 1).describe() == "f.py:3:1"

    def test_kernel_builder_blames_user_lines(self):
        def kernel_body(kb):
            gid = kb.global_id(0)
            kb.store("out", [gid], gid.to_int())

        source = KernelSource(
            "k", body=kernel_body, nd_range_dims=1,
            accessors=[AccessorParam("out", 1, i32(),
                                     access_mode="write")])
        function = source.build()
        locations = [location_of(op) for op in function.walk()
                     if op.name.startswith(("sycl.", "arith."))]
        assert locations, "expected sycl/arith ops in the built kernel"
        assert all(loc.is_known for loc in locations)
        assert all(loc.filename.endswith("test_static_analysis.py")
                   for loc in locations)


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------

class TestReproLintDriver:
    def test_flags_both_pr5_miscompile_classes(self, tmp_path, capsys):
        trap = tmp_path / "trap.mlir"
        trap.write_text(TRAP_HOIST_IR, encoding="utf-8")
        dom = tmp_path / "dom.mlir"
        dom.write_text(NON_DOMINATING_IR, encoding="utf-8")
        rc = repro_lint_main([str(trap), str(dom), "--no-verify"])
        err = capsys.readouterr().err
        assert rc == 1
        assert f"{trap}:4:5: warning: 'arith.divsi' may trap" in err
        assert f"{dom}:4:5: error: operand of 'memref.store'" in err
        assert "2 findings" in err

    def test_clean_module_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "clean.mlir"
        path.write_text(
            Printer().print_module(_simple_module()) + "\n",
            encoding="utf-8")
        rc = repro_lint_main([str(path), "--analysis-stats"])
        assert rc == 0
        assert "analysis manager:" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert repro_lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "speculated-trap" in out

    def test_rule_subset_selection(self, tmp_path, capsys):
        trap = tmp_path / "trap.mlir"
        trap.write_text(TRAP_HOIST_IR, encoding="utf-8")
        rc = repro_lint_main([str(trap), "--rules", "non-dominating-use"])
        assert rc == 0  # the trap module is clean under the other rule
        capsys.readouterr()

    def test_pipeline_runs_before_linting(self, tmp_path, capsys):
        path = tmp_path / "clean.mlir"
        path.write_text(
            Printer().print_module(_simple_module()) + "\n",
            encoding="utf-8")
        rc = repro_lint_main([str(path), "--pipeline", "sycl-mlir"])
        assert rc == 0
        capsys.readouterr()


class TestVerifyDiagnosticsMode:
    def test_expected_error_matches(self, tmp_path):
        path = tmp_path / "case.mlir"
        path.write_text(NON_DOMINATING_IR.replace(
            '    "memref.store"(%v, %p) : (i32, memref<i32>) -> ()\n',
            '    // expected-error @+1 {{does not dominate its use}}\n'
            '    "memref.store"(%v, %p) : (i32, memref<i32>) -> ()\n'),
            encoding="utf-8")
        assert repro_opt_main([str(path), "--verify-diagnostics"]) == 0

    def test_unexpected_diagnostic_fails(self, tmp_path, capsys):
        path = tmp_path / "case.mlir"
        path.write_text(NON_DOMINATING_IR, encoding="utf-8")
        rc = repro_opt_main([str(path), "--verify-diagnostics"])
        assert rc == 1
        assert "unexpected diagnostic" in capsys.readouterr().err

    def test_missing_expected_diagnostic_fails(self, tmp_path, capsys):
        path = tmp_path / "case.mlir"
        path.write_text(
            "// expected-error {{never happens}}\n" +
            Printer().print_module(_simple_module()) + "\n",
            encoding="utf-8")
        rc = repro_opt_main([str(path), "--verify-diagnostics"])
        assert rc == 1
        assert "was not produced" in capsys.readouterr().err


class TestPipelineChecker:
    def test_valid_specs_produce_no_diagnostics(self):
        assert check_pass_pipeline("canonicalize,cse") == []
        assert check_pass_pipeline(
            "builtin.module(cse,func.func(canonicalize))") == []

    def test_malformed_spec_gets_character_offset(self):
        (diagnostic,) = check_pass_pipeline("cse,,canonicalize")
        assert diagnostic.location.filename == "<pipeline>"
        assert diagnostic.location.column > 1

    def test_unknown_pass_is_reported(self):
        (diagnostic,) = check_pass_pipeline("definitely-not-a-pass")
        assert "definitely-not-a-pass" in diagnostic.message

    def test_driver_reports_spec_errors_statically(self, tmp_path, capsys):
        rc = repro_opt_main(["--passes", "cse,,x", str(tmp_path)])
        assert rc == 2
        assert "<pipeline>:1:" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Dataflow fixpoint diagnostics (satellite: the unsound cap fix)
# ---------------------------------------------------------------------------

class TestLoopFixpoint:
    def _loop_function(self):
        f = func.FuncOp.build("loop", [index(), index(), index()],
                              arg_names=["lb", "ub", "step"])
        lb, ub, step = f.arguments
        body = Builder(InsertionPoint.at_end(f.body))
        alloca = body.insert(memref.AllocaOp.build(MemRefType((), i32())))
        c = body.insert(arith.ConstantOp.build(1, i32()))
        loop = body.insert(scf.ForOp.build(lb, ub, step))
        loop_body = Builder(InsertionPoint.at_start(loop.body))
        loop_body.insert(memref.StoreOp.build(c.result, alloca.result))
        body.insert(func.ReturnOp.build())
        return f

    def test_loops_converge_within_the_raised_limit(self):
        f = self._loop_function()
        analysis = ReachingDefinitionAnalysis(f)
        assert analysis.converged

    def test_non_convergence_warns_instead_of_silently_stopping(self,
                                                                monkeypatch):
        import repro.analysis.dataflow as dataflow

        monkeypatch.setattr(dataflow, "LOOP_FIXPOINT_LIMIT", 0)
        f = self._loop_function()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            analysis = ReachingDefinitionAnalysis(f)
        assert not analysis.converged
        assert any(issubclass(w.category, NonConvergenceWarning)
                   for w in caught)


# ---------------------------------------------------------------------------
# Specialization quarantine (satellite)
# ---------------------------------------------------------------------------

class TestSpecializationQuarantine:
    def test_runtime_checked_alias_analysis_still_ships(self):
        from repro.transforms import RuntimeCheckedAliasAnalysis

        assert RuntimeCheckedAliasAnalysis is not None

    def test_dead_specialization_entry_points_removed(self):
        import repro.transforms as transforms
        import repro.transforms.specialization as specialization

        assert not hasattr(specialization, "specialize_kernel")
        assert not hasattr(transforms, "specialize_kernel")
