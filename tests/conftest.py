"""Pytest configuration: make ``repro`` importable without installation."""

import pathlib
import sys

_ROOT = pathlib.Path(__file__).resolve().parents[1]
_SRC = _ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
# The repo root, so tests (and tests/helpers.py) can import the
# benchmarks package without per-module sys.path edits.
if str(_ROOT) not in sys.path:
    sys.path.insert(1, str(_ROOT))
