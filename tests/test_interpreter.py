"""Tests for the IR interpreter (repro.interp).

Covers the evaluator registry, scalar/control-flow/memory semantics,
kernel launches over ranges and ND-ranges (including barrier-phased
work-group execution and shared local tiles), and the runtime wiring
(Buffer transfer accounting)."""

import numpy as np
import pytest

from repro.dialects import affine, arith, builtin, func, memref, scf, sycl
from repro.frontend.kernel_builder import (
    AccessorParam,
    KernelSource,
    ScalarParam,
)
from repro.interp import (
    Interpreter,
    InterpreterError,
    MemRefStorage,
    TrapError,
    lookup_evaluator,
    register_evaluator,
    registered_evaluators,
)
from repro.interp.registry import EvaluatorRegistrationError
from repro.ir import (
    Builder,
    DenseElementsAttr,
    InsertionPoint,
    MemRefType,
    Operation,
    f32,
    i32,
    index,
    register_op,
    symbol_ref,
    verify,
)
from repro.runtime import Accessor, Buffer, LocalAccessor

from .helpers import build_vecadd_source, wrap_in_module

_vecadd_source = build_vecadd_source


def _function(name, arg_types, result_types=(), arg_names=None):
    f = func.FuncOp.build(name, arg_types, result_types,
                          arg_names=arg_names)
    return f, Builder(InsertionPoint.at_end(f.body))


class TestRegistry:
    def test_core_dialects_registered(self):
        evaluators = registered_evaluators()
        for name in ("arith.addi", "arith.constant", "scf.for", "scf.if",
                     "affine.for", "memref.load", "memref.store",
                     "func.call", "func.return", "sycl.accessor.subscript",
                     "sycl.group_barrier"):
            assert name in evaluators

    def test_duplicate_registration_rejected(self):
        assert lookup_evaluator("arith.addi") is not None
        with pytest.raises(EvaluatorRegistrationError):
            register_evaluator("arith.addi", lambda ctx, op, args: [0])

    def test_unregistered_op_reports_name(self):
        @register_op
        class _OpaqueOp(Operation):
            OPERATION_NAME = "test.opaque_interp"

        f, b = _function("opaque", [])
        b.insert(_OpaqueOp(operands=(), result_types=()))
        b.insert(func.ReturnOp.build())
        interp = Interpreter(wrap_in_module(f))
        with pytest.raises(InterpreterError, match="test.opaque_interp"):
            interp.call("opaque", [])

    def test_interface_fallback_evaluates_math(self):
        # math unary ops have no registry entry; they run through
        # InterpretableOpInterface.interpret (PY_FUNC is the semantics).
        from repro.dialects import math as math_dialect

        assert lookup_evaluator("math.sqrt") is None
        f, b = _function("root", [f32()], [f32()])
        op = b.insert(math_dialect.SqrtOp.build(f.arguments[0]))
        b.insert(func.ReturnOp.build([op.result]))
        interp = Interpreter(wrap_in_module(f))
        assert interp.call("root", [9.0]) == [3.0]


class TestScalarSemantics:
    def test_arithmetic_and_compare(self):
        f, b = _function("f", [index(), index()], [index(), i32()])
        a, c = f.arguments
        mul = b.insert(arith.MulIOp.build(a, c))
        cmp = b.insert(arith.CmpIOp.build("slt", a, c))
        sel = b.insert(arith.SelectOp.build(
            cmp.result,
            b.insert(arith.ConstantOp.build(1, i32())).result,
            b.insert(arith.ConstantOp.build(0, i32())).result))
        b.insert(func.ReturnOp.build([mul.result, sel.result]))
        module = wrap_in_module(f)
        assert Interpreter(module).call("f", [3, 7]) == [21, 1]
        assert Interpreter(module).call("f", [7, 3]) == [21, 0]

    def test_division_by_zero_traps(self):
        f, b = _function("f", [index(), index()], [index()])
        div = b.insert(arith.DivSIOp.build(*f.arguments))
        b.insert(func.ReturnOp.build([div.result]))
        with pytest.raises(TrapError, match="division by zero"):
            Interpreter(wrap_in_module(f)).call("f", [1, 0])

    def test_casts(self):
        f, b = _function("f", [f32()], [i32(), f32()])
        to_int = b.insert(arith.FPToSIOp.build(f.arguments[0], i32()))
        back = b.insert(arith.SIToFPOp.build(to_int.result, f32()))
        b.insert(func.ReturnOp.build([to_int.result, back.result]))
        assert Interpreter(wrap_in_module(f)).call("f", [2.75]) == [2, 2.0]

    def test_cast_of_nan_or_inf_traps(self):
        import math

        f, b = _function("f", [f32()], [i32()])
        to_int = b.insert(arith.FPToSIOp.build(f.arguments[0], i32()))
        b.insert(func.ReturnOp.build([to_int.result]))
        module = wrap_in_module(f)
        with pytest.raises(TrapError, match="cannot convert"):
            Interpreter(module).call("f", [math.nan])
        with pytest.raises(TrapError, match="cannot convert"):
            Interpreter(module).call("f", [math.inf])


class TestControlFlow:
    def test_scf_for_with_iter_args(self):
        f, b = _function("sum_to", [index()], [index()])
        c0 = b.insert(arith.ConstantOp.build(0, index()))
        c1 = b.insert(arith.ConstantOp.build(1, index()))
        loop = b.insert(scf.ForOp.build(c0.result, f.arguments[0],
                                        c1.result, [c0.result]))
        lb = Builder(InsertionPoint.at_end(loop.body))
        add = lb.insert(arith.AddIOp.build(loop.region_iter_args[0],
                                           loop.induction_variable()))
        lb.insert(scf.YieldOp.build([add.result]))
        b.insert(func.ReturnOp.build([loop.results[0]]))
        assert Interpreter(wrap_in_module(f)).call("sum_to", [10]) == [45]

    def test_scf_if_returns_branch_value(self):
        f, b = _function("pick", [index(), index(), index()], [index()])
        cond_arg, x, y = f.arguments
        c0 = b.insert(arith.ConstantOp.build(0, index()))
        cond = b.insert(arith.CmpIOp.build("sgt", cond_arg, c0.result))
        if_op = b.insert(scf.IfOp.build(cond.result, [index()],
                                        with_else=True))
        if_op.then_block.append(scf.YieldOp.build([x]))
        if_op.else_block.append(scf.YieldOp.build([y]))
        b.insert(func.ReturnOp.build([if_op.results[0]]))
        module = wrap_in_module(f)
        assert Interpreter(module).call("pick", [1, 10, 20]) == [10]
        assert Interpreter(module).call("pick", [-1, 10, 20]) == [20]

    def test_scf_while_counts_down(self):
        f, b = _function("countdown", [index()], [index()])
        op = b.insert(scf.WhileOp.build([f.arguments[0]], [index()]))
        before = Builder(InsertionPoint.at_end(op.before_block))
        c0 = before.insert(arith.ConstantOp.build(0, index()))
        cond = before.insert(arith.CmpIOp.build(
            "sgt", op.before_block.arguments[0], c0.result))
        before.insert(scf.ConditionOp.build(
            cond.result, [op.before_block.arguments[0]]))
        after = Builder(InsertionPoint.at_end(op.after_block))
        c1 = after.insert(arith.ConstantOp.build(1, index()))
        sub = after.insert(arith.SubIOp.build(
            op.after_block.arguments[0], c1.result))
        after.insert(scf.YieldOp.build([sub.result]))
        b.insert(func.ReturnOp.build([op.results[0]]))
        assert Interpreter(wrap_in_module(f)).call("countdown", [5]) == [0]

    def test_affine_for_and_apply(self):
        f, b = _function("poly", [], [index()])
        c0 = b.insert(arith.ConstantOp.build(0, index()))
        c4 = b.insert(arith.ConstantOp.build(4, index()))
        loop = b.insert(affine.AffineForOp.build(c0.result, c4.result,
                                                 step=1,
                                                 iter_args=[c0.result]))
        lb = Builder(InsertionPoint.at_end(loop.body))
        # 3*iv + 1, accumulated.
        apply = lb.insert(affine.AffineApplyOp.build(
            [3], [loop.induction_variable()], constant=1))
        add = lb.insert(arith.AddIOp.build(loop.region_iter_args[0],
                                           apply.result))
        lb.insert(affine.AffineYieldOp.build([add.result]))
        b.insert(func.ReturnOp.build([loop.results[0]]))
        # sum over iv in 0..3 of 3*iv+1 = 1+4+7+10 = 22
        assert Interpreter(wrap_in_module(f)).call("poly", []) == [22]

    def test_call_between_functions(self):
        callee, cb = _function("double", [index()], [index()])
        add = cb.insert(arith.AddIOp.build(callee.arguments[0],
                                           callee.arguments[0]))
        cb.insert(func.ReturnOp.build([add.result]))
        caller, b = _function("main", [index()], [index()])
        call = b.insert(func.CallOp.build("double", [caller.arguments[0]],
                                          [index()]))
        b.insert(func.ReturnOp.build([call.results[0]]))
        module = wrap_in_module(callee, caller)
        interp = Interpreter(module)
        assert interp.call("main", [21]) == [42]
        assert interp.counters.calls == 1

    def test_step_budget_traps(self):
        f, b = _function("spin", [], [])
        c0 = b.insert(arith.ConstantOp.build(0, index()))
        c1 = b.insert(arith.ConstantOp.build(1, index()))
        big = b.insert(arith.ConstantOp.build(10_000_000, index()))
        loop = b.insert(scf.ForOp.build(c0.result, big.result, c1.result))
        lb = Builder(InsertionPoint.at_end(loop.body))
        lb.insert(scf.YieldOp.build())
        b.insert(func.ReturnOp.build())
        interp = Interpreter(wrap_in_module(f), max_steps=1000)
        with pytest.raises(TrapError, match="step budget"):
            interp.call("spin", [])


class TestMemory:
    def test_alloca_store_load(self):
        f, b = _function("mem", [index()], [index()])
        alloca = b.insert(memref.AllocaOp.build(MemRefType((4,), index())))
        c2 = b.insert(arith.ConstantOp.build(2, index()))
        b.insert(memref.StoreOp.build(f.arguments[0], alloca.result,
                                      [c2.result]))
        load = b.insert(memref.LoadOp.build(alloca.result, [c2.result]))
        b.insert(func.ReturnOp.build([load.result]))
        interp = Interpreter(wrap_in_module(f))
        assert interp.call("mem", [99]) == [99]
        assert interp.counters.loads == 1
        assert interp.counters.stores == 1

    def test_out_of_bounds_traps(self):
        f, b = _function("oob", [index()], [index()])
        alloca = b.insert(memref.AllocaOp.build(MemRefType((4,), index())))
        load = b.insert(memref.LoadOp.build(alloca.result, [f.arguments[0]]))
        b.insert(func.ReturnOp.build([load.result]))
        with pytest.raises(TrapError, match="out of bounds"):
            Interpreter(wrap_in_module(f)).call("oob", [7])

    def test_memref_global_initial_value(self):
        module = builtin.ModuleOp.build("m")
        module.append(memref.GlobalOp.build(
            "weights", MemRefType((3,), index()),
            DenseElementsAttr((5, 6, 7), (3,), index())))
        f, b = _function("read", [index()], [index()])
        get = b.insert(memref.GetGlobalOp.build(
            "weights", MemRefType((3,), index())))
        load = b.insert(memref.LoadOp.build(get.result, [f.arguments[0]]))
        b.insert(func.ReturnOp.build([load.result]))
        module.append(f)
        assert Interpreter(module).call("read", [1]) == [6]

    def test_copy_through_accessor_views(self):
        # memref.copy must accept subscript-produced views, not just
        # whole storages.
        from repro.interp import MemRefView

        f, b = _function("cp", [MemRefType((4,), index()),
                                MemRefType((4,), index())])
        b.insert(memref.CopyOp.build(f.arguments[0], f.arguments[1]))
        b.insert(func.ReturnOp.build())
        src = MemRefStorage((6,), index())
        for i in range(6):
            src.store_flat(i, i * 10)
        dst = MemRefStorage((4,), index())
        Interpreter(wrap_in_module(f)).call(
            "cp", [MemRefView(src, 2), dst])
        assert dst.snapshot() == [20, 30, 40, 50]

    def test_shift_out_of_range_traps(self):
        f, b = _function("sh", [i32(), i32()], [i32()])
        op = b.insert(arith.ShLIOp.build(*f.arguments))
        b.insert(func.ReturnOp.build([op.result]))
        module = wrap_in_module(f)
        assert Interpreter(module).call("sh", [1, 4]) == [16]
        with pytest.raises(TrapError, match="shift amount"):
            Interpreter(module).call("sh", [1, 64])
        with pytest.raises(TrapError, match="shift amount"):
            Interpreter(module).call("sh", [1, -2])

    def test_float_division_by_zero_is_ieee(self):
        import math

        f, b = _function("d", [f32(), f32()], [f32()])
        op = b.insert(arith.DivFOp.build(*f.arguments))
        b.insert(func.ReturnOp.build([op.result]))
        interp = Interpreter(wrap_in_module(f))
        assert interp.call("d", [1.0, 0.0]) == [math.inf]
        assert interp.call("d", [-2.0, 0.0]) == [-math.inf]
        assert math.isnan(interp.call("d", [0.0, 0.0])[0])

    def test_storage_argument_roundtrip(self):
        f, b = _function("fill", [MemRefType((3,), index())])
        c0 = b.insert(arith.ConstantOp.build(0, index()))
        c7 = b.insert(arith.ConstantOp.build(7, index()))
        b.insert(memref.StoreOp.build(c7.result, f.arguments[0],
                                      [c0.result]))
        b.insert(func.ReturnOp.build())
        storage = MemRefStorage((3,), index())
        Interpreter(wrap_in_module(f)).call("fill", [storage])
        assert storage.snapshot() == [7, 0, 0]


class TestKernelLaunch:
    def test_vecadd_over_range(self):
        module = wrap_in_module(_vecadd_source().build())
        verify(module)
        a = Buffer(np.arange(8, dtype=np.float32))
        b = Buffer(np.full(8, 10.0, dtype=np.float32))
        c = Buffer((8,))
        interp = Interpreter(module)
        result = interp.launch("vecadd", [Accessor(a, "read"),
                                          Accessor(b, "read"),
                                          Accessor(c, "write")], (8,))
        assert result.num_work_items == 8
        assert interp.counters.work_items == 8
        np.testing.assert_allclose(
            c.host_array(), np.arange(8, dtype=np.float32) + 10.0)

    def test_launch_moves_data_through_runtime_buffers(self):
        module = wrap_in_module(_vecadd_source().build())
        a = Buffer(np.ones(4, dtype=np.float32))
        b = Buffer(np.ones(4, dtype=np.float32))
        c = Buffer((4,))
        Interpreter(module).launch(
            "vecadd", [Accessor(a, "read"), Accessor(b, "read"),
                       Accessor(c, "write")], (4,))
        # device_array() transfers were accounted on the buffers.
        assert a.bytes_to_device == a.size_bytes()
        assert c.host_array()[0] == 2.0
        assert c.bytes_to_host == c.size_bytes()

    def test_barrier_outside_nd_launch_traps(self):
        def body(k):
            k.group_barrier()

        source = KernelSource("bar", body=body, nd_range_dims=1)
        module = wrap_in_module(source.build())
        with pytest.raises(TrapError, match="local range"):
            Interpreter(module).launch("bar", [], (4,))

    def test_barrier_phases_within_group(self):
        # Work item 0 of each group sums the slots its whole group wrote
        # before the barrier — only correct under barrier-phased
        # execution, not under sequential whole-item execution.
        def body(k):
            i = k.global_id(0)
            k.store("c", [i], k.load("a", [i]))
            k.group_barrier()
            with k.if_then(k.local_id(0).eq(0)):
                base = k.group_id(0) * 4
                total = k.load("c", [base]) + k.load("c", [base + 1]) \
                    + k.load("c", [base + 2]) + k.load("c", [base + 3])
                k.store("c", [base], total)

        source = KernelSource(
            "groupsum", body=body, nd_range_dims=1,
            accessors=[AccessorParam("a", 1, f32(), "read"),
                       AccessorParam("c", 1, f32(), "read_write")])
        module = wrap_in_module(source.build())
        a = Buffer(np.arange(8, dtype=np.float32))
        c = Buffer((8,))
        interp = Interpreter(module)
        interp.launch("groupsum", [Accessor(a, "read"),
                                   Accessor(c, "read_write")], (8,), (4,))
        assert interp.counters.barriers == 8
        result = c.host_array()
        assert result[0] == 0 + 1 + 2 + 3
        assert result[4] == 4 + 5 + 6 + 7

    def test_local_accessor_shared_within_group(self):
        # Each item writes its value into the local tile; after the
        # barrier item 0 stores the tile's sum — exercising per-group
        # local-accessor storage.
        def body(k):
            local = k.parameter("tile")
            li = k.local_id(0)
            k.private_store(local.value, li, k.load("a", [k.global_id(0)]))
            k.group_barrier()
            with k.if_then(li.eq(0)):
                total = k.private_load(local.value, 0) \
                    + k.private_load(local.value, 1)
                k.store("c", [k.group_id(0)], total)

        source = KernelSource(
            "tilesum", body=body, nd_range_dims=1,
            accessors=[AccessorParam("a", 1, f32(), "read"),
                       AccessorParam(
                           "tile", 1, f32(), "read_write", target="local"),
                       AccessorParam("c", 1, f32(), "write")])
        module = wrap_in_module(source.build())
        a = Buffer(np.arange(4, dtype=np.float32) + 1.0)
        c = Buffer((2,))
        Interpreter(module).launch(
            "tilesum",
            [Accessor(a, "read"), LocalAccessor(2), Accessor(c, "write")],
            (4,), (2,))
        np.testing.assert_allclose(c.host_array(), [1.0 + 2.0, 3.0 + 4.0])

    def test_ranged_accessor_offset_applied(self):
        module = wrap_in_module(_vecadd_source().build())
        backing = Buffer(np.arange(8, dtype=np.float32))
        ones = Buffer(np.zeros(4, dtype=np.float32))
        out = Buffer((8,))
        # A ranged view of elements [2..6): reads must start at 2.
        from repro.runtime import ID, Range

        ranged = Accessor(backing, "read", access_range=Range(4),
                          offset=ID(2))
        Interpreter(module).launch(
            "vecadd", [ranged, Accessor(ones, "read"),
                       Accessor(out, "write")], (4,))
        np.testing.assert_allclose(out.host_array()[:4], [2, 3, 4, 5])

    def test_ranged_accessor_survives_accessor_lowering(self):
        # get_pointer must be based at the accessor offset, or IR
        # lowered by lower-sycl-accessors addresses the wrong elements.
        from repro.transforms import build_named_pipeline

        module = wrap_in_module(_vecadd_source().build())
        lowered = module.clone({})
        build_named_pipeline("adaptivecpp-aot").run(lowered)

        def run(target):
            backing = Buffer(np.arange(8, dtype=np.float32))
            zeros = Buffer(np.zeros(4, dtype=np.float32))
            out = Buffer((8,))
            from repro.runtime import ID, Range

            Interpreter(target).launch(
                "vecadd",
                [Accessor(backing, "read", access_range=Range(4),
                          offset=ID(2)),
                 Accessor(zeros, "read"), Accessor(out, "write")], (4,))
            return list(out.host_array())

        assert run(module) == run(lowered)

    def test_launch_counters_are_per_launch(self):
        module = wrap_in_module(_vecadd_source().build())

        def buffers():
            return [Accessor(Buffer(np.ones(4, dtype=np.float32)), "read"),
                    Accessor(Buffer(np.ones(4, dtype=np.float32)), "read"),
                    Accessor(Buffer((4,)), "write")]

        interp = Interpreter(module)
        first = interp.launch("vecadd", buffers(), (4,))
        first_ops = first.counters.ops
        second = interp.launch("vecadd", buffers(), (4,))
        # Each LaunchResult reports only its own work; the interpreter
        # keeps the cumulative totals.
        assert first.counters.ops == first_ops
        assert second.counters.ops == first_ops
        assert interp.counters.ops == 2 * first_ops

    def test_scalar_kernel_arguments(self):
        def body(k):
            i = k.global_id(0)
            k.store("c", [i], k.load("c", [i]) * k.parameter("factor"))

        source = KernelSource(
            "scale", body=body, nd_range_dims=1,
            accessors=[AccessorParam("c", 1, f32(), "read_write")],
            scalars=[ScalarParam("factor", f32())])
        module = wrap_in_module(source.build())
        c = Buffer(np.ones(4, dtype=np.float32))
        Interpreter(module).launch("scale", [Accessor(c), 2.5], (4,))
        np.testing.assert_allclose(c.host_array(), np.full(4, 2.5))

    def test_powf_negative_base_traps(self):
        from repro.dialects import math as math_dialect

        f, b = _function("p", [f32(), f32()], [f32()])
        op = b.insert(math_dialect.PowFOp.build(*f.arguments))
        b.insert(func.ReturnOp.build([op.result]))
        interp = Interpreter(wrap_in_module(f))
        assert interp.call("p", [4.0, 0.5]) == [2.0]
        with pytest.raises(TrapError, match="powf"):
            interp.call("p", [-4.0, 0.5])

    def test_local_accessor_without_workgroup_traps(self):
        def body(k):
            k.parameter("tile")

        source = KernelSource(
            "needslocal", body=body, nd_range_dims=1,
            accessors=[AccessorParam("tile", 1, f32(), "read_write",
                                     target="local")])
        module = wrap_in_module(source.build())
        with pytest.raises(TrapError, match="local_size"):
            Interpreter(module).launch("needslocal", [LocalAccessor(2)],
                                       (4,))

    def test_dimension_query_out_of_rank_traps(self):
        # Launching a 2-D kernel over a 1-D range: get_global_id(1) must
        # trap, not escape with a raw IndexError.
        from .helpers import build_gemm_module

        module, _ = build_gemm_module(size=4, work_group=2)
        from repro.runtime import Accessor as Acc

        buffers = [Acc(Buffer((4, 4))) for _ in range(3)]
        with pytest.raises(TrapError, match="dimension 1 out of range"):
            Interpreter(module).launch("gemm", buffers, (4,))

    def test_item_kernel_local_queries_trap(self):
        def body(k):
            k.local_id(0)

        source = KernelSource("itemk", body=body, nd_range_dims=1)
        module = wrap_in_module(source.build())
        with pytest.raises(TrapError, match="local range"):
            Interpreter(module).launch("itemk", [], (2,))

    def test_host_ops_are_rejected_with_reason(self):
        f, b = _function("host", [sycl.memref_of(sycl.QueueType())])
        b.insert(sycl.SYCLHostSubmitOp.build(f.arguments[0],
                                             symbol_ref("cgf")))
        b.insert(func.ReturnOp.build())
        interp = Interpreter(wrap_in_module(f))
        with pytest.raises(TrapError, match="host-side"):
            interp.call("host", [MemRefStorage((1,), index())])
