"""Tests for the ``repro-run`` driver (parse -> optimize -> execute)."""

import pytest

from repro.dialects import builtin
from repro.ir import Printer, index
from repro.tools.repro_run import main as repro_run

from .helpers import build_gemm_module


@pytest.fixture
def scalar_module_path(tmp_path):
    # @sum_to(%n: index) -> index, plus a second function so --entry is
    # required.
    from repro.dialects import arith, func, scf
    from repro.ir import Builder, InsertionPoint

    module = builtin.ModuleOp.build("m")
    f = func.FuncOp.build("sum_to", [index()], [index()],
                          arg_names=["n"])
    b = Builder(InsertionPoint.at_end(f.body))
    c0 = b.insert(arith.ConstantOp.build(0, index()))
    c1 = b.insert(arith.ConstantOp.build(1, index()))
    loop = b.insert(scf.ForOp.build(c0.result, f.arguments[0], c1.result,
                                    [c0.result]))
    lb = Builder(InsertionPoint.at_end(loop.body))
    add = lb.insert(arith.AddIOp.build(loop.region_iter_args[0],
                                       loop.induction_variable()))
    lb.insert(scf.YieldOp.build([add.result]))
    b.insert(func.ReturnOp.build([loop.results[0]]))
    module.append(f)
    g = func.FuncOp.build("other", [], [])
    Builder(InsertionPoint.at_end(g.body)).insert(func.ReturnOp.build())
    module.append(g)
    path = tmp_path / "scalars.mlir"
    path.write_text(Printer().print_module(module) + "\n",
                    encoding="utf-8")
    return path


@pytest.fixture
def kernel_module_path(tmp_path):
    module, _ = build_gemm_module(size=4, work_group=2)
    path = tmp_path / "gemm.mlir"
    path.write_text(Printer().print_module(module) + "\n",
                    encoding="utf-8")
    return path


class TestScalarExecution:
    def test_entry_with_named_arg(self, scalar_module_path, capsys):
        rc = repro_run([str(scalar_module_path), "--entry", "sum_to",
                        "--arg", "n=10"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "@sum_to" in out
        assert "result[0] = 45" in out

    def test_entry_required_with_two_functions(self, scalar_module_path,
                                               capsys):
        assert repro_run([str(scalar_module_path)]) == 2
        assert "--entry is required" in capsys.readouterr().err

    def test_unknown_entry_lists_candidates(self, scalar_module_path,
                                            capsys):
        assert repro_run([str(scalar_module_path), "--entry", "nope"]) == 2
        err = capsys.readouterr().err
        assert "sum_to" in err and "other" in err

    def test_list_functions(self, scalar_module_path, capsys):
        assert repro_run([str(scalar_module_path),
                          "--list-functions"]) == 0
        out = capsys.readouterr().out
        assert "@sum_to(%n: index) -> (index)" in out
        assert "@other" in out

    def test_buffer_shape_for_scalar_argument_is_rejected(
            self, scalar_module_path, capsys):
        rc = repro_run([str(scalar_module_path), "--entry", "sum_to",
                        "--buffer", "n=2x2"])
        assert rc == 1
        assert "use a scalar value" in capsys.readouterr().err

    def test_parse_error_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.mlir"
        bad.write_text("not ir", encoding="utf-8")
        assert repro_run([str(bad)]) == 1
        assert "parse error" in capsys.readouterr().err

    def test_conflicting_pipeline_flags(self, scalar_module_path, capsys):
        rc = repro_run([str(scalar_module_path), "--entry", "sum_to",
                        "--passes", "cse", "--pipeline", "sycl-mlir"])
        assert rc == 2


class TestKernelExecution:
    ARGS = ["--entry", "gemm", "--global-size", "4x4",
            "--local-size", "2x2", "--buffer", "A=4x4",
            "--buffer", "B=4x4", "--buffer", "C=4x4"]

    def test_launch_and_print_buffers(self, kernel_module_path, capsys):
        rc = repro_run([str(kernel_module_path), *self.ARGS,
                        "--print-buffers"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "@gemm launched over 4x4 (local: 2x2)" in out
        assert "C = [" in out

    def test_pipeline_then_execute(self, kernel_module_path, capsys):
        rc = repro_run([str(kernel_module_path), *self.ARGS,
                        "--pipeline", "sycl-mlir", "--print-buffers"])
        assert rc == 0
        assert "C = [" in capsys.readouterr().out

    def test_cost_report_uses_device_model(self, kernel_module_path,
                                           capsys):
        rc = repro_run([str(kernel_module_path), *self.ARGS,
                        "--cost-report", "--device", "small"])
        assert rc == 0
        err = capsys.readouterr().err
        assert "cost report (device: Unit-test GPU)" in err
        assert "roofline estimate" in err
        assert "-bound" in err

    def test_identical_results_with_and_without_pipeline(
            self, kernel_module_path, capsys):
        # repro-run's synthesized inputs are deterministic, so the
        # optimized and unoptimized executions must print identical
        # buffer contents — the CLI face of the differential harness.
        assert repro_run([str(kernel_module_path), *self.ARGS,
                          "--print-buffers"]) == 0
        plain = capsys.readouterr().out
        assert repro_run([str(kernel_module_path), *self.ARGS,
                          "--pipeline", "sycl-mlir",
                          "--print-buffers"]) == 0
        optimized = capsys.readouterr().out
        assert plain == optimized

    def test_malformed_size_is_usage_error(self, kernel_module_path,
                                           capsys):
        rc = repro_run([str(kernel_module_path), "--entry", "gemm",
                        "--global-size", "4xtwo"])
        assert rc == 2
        assert "malformed" in capsys.readouterr().err

    def test_misspelled_buffer_name_is_rejected(self, kernel_module_path,
                                                capsys):
        # A typo'd name must not silently fall back to synthesized data.
        rc = repro_run([str(kernel_module_path), "--entry", "gemm",
                        "--global-size", "4x4", "--local-size", "2x2",
                        "--buffer", "a=4x4"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "unknown argument" in err
        assert "A, B, C" in err  # lists the real argument names

    def test_scalar_arg_for_memory_argument_is_rejected(
            self, kernel_module_path, capsys):
        rc = repro_run([str(kernel_module_path), "--entry", "gemm",
                        "--global-size", "4x4", "--local-size", "2x2",
                        "--arg", "A=3"])
        assert rc == 1
        assert "buffer shape" in capsys.readouterr().err

    def test_rank_mismatched_local_size_exits_one(self, kernel_module_path,
                                                  capsys):
        rc = repro_run([str(kernel_module_path), "--entry", "gemm",
                        "--global-size", "4x4", "--local-size", "2"])
        assert rc == 1
        assert "execution failed" in capsys.readouterr().err

    def test_step_budget_flag(self, kernel_module_path, capsys):
        rc = repro_run([str(kernel_module_path), *self.ARGS,
                        "--max-steps", "10"])
        assert rc == 1
        assert "step budget" in capsys.readouterr().err
