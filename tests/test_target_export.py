"""Tests for the upstream-MLIR textual exporter (``--emit=mlir``).

The export contract has three parts:

* **Round trip** — the exported text parses back through our own parser
  and re-prints (classic form) identically to the source module, and
  re-exports byte-identically (``emit_mlir(parse(emit_mlir(m))) ==
  emit_mlir(m)``), so the exported form is a lossless serialization.
* **Golden stability** — exports of the paper listings match committed
  golden files byte for byte; a printer change that alters the exported
  syntax must update the goldens consciously.
* **Location policy** — with ``print_locations`` the exported text only
  ever contains the plain ``loc("file":line:col)`` / ``loc(unknown)``
  forms, never extended (fused/callsite/named) location syntax.
"""

import pathlib
import subprocess
import sys

import pytest

from repro.ir import Printer, parse_module
from repro.ir.printer import print_op
from repro.ir.verifier import verify
from repro.target import MLIRPrinter, emit_mlir
from repro.transforms import build_named_pipeline, shipped_pipeline_names

from .filecheck import filecheck
from .helpers import (
    build_gemm_module,
    build_listing1_function,
    build_listing2_function,
    build_listing3_function,
    wrap_in_module,
)

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

LISTING_BUILDERS = {
    "listing1": build_listing1_function,
    "listing2": build_listing2_function,
    "listing3": build_listing3_function,
}


def _listing_module(name):
    function = LISTING_BUILDERS[name]()[0]
    return wrap_in_module(function)


def _all_modules():
    modules = {name: _listing_module(name) for name in LISTING_BUILDERS}
    modules["gemm"] = build_gemm_module()[0]
    return modules


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(LISTING_BUILDERS) + ["gemm"])
    def test_export_round_trips_through_parser(self, name):
        module = _all_modules()[name]
        reference = print_op(module)
        text = emit_mlir(module)
        back = parse_module(text)
        verify(back)
        assert print_op(back) == reference
        assert emit_mlir(back) == text

    @pytest.mark.parametrize("name", sorted(LISTING_BUILDERS) + ["gemm"])
    @pytest.mark.parametrize("pipeline", shipped_pipeline_names())
    def test_export_round_trips_after_every_pipeline(self, name, pipeline):
        module = _all_modules()[name]
        build_named_pipeline(
            pipeline, None if pipeline == "lower-to-llvm" else None,
            1).run(module)
        text = emit_mlir(module)
        back = parse_module(text)
        verify(back)
        assert print_op(back) == print_op(module)
        assert emit_mlir(back) == text

    def test_parser_accepts_both_orders(self):
        module = _listing_module("listing1")
        classic = print_op(module)
        upstream = emit_mlir(module)
        assert classic != upstream  # genuinely different syntaxes
        assert print_op(parse_module(upstream)) == classic
        assert emit_mlir(parse_module(classic)) == upstream


class TestGoldenFiles:
    @pytest.mark.parametrize("name", sorted(LISTING_BUILDERS))
    def test_export_matches_golden(self, name):
        text = emit_mlir(_listing_module(name)) + "\n"
        golden = (GOLDEN_DIR / f"{name}.mlir").read_text()
        assert text == golden, (
            f"export of {name} drifted from tests/golden/{name}.mlir; "
            f"if the change is intentional, regenerate the golden file")

    @pytest.mark.parametrize("name", sorted(LISTING_BUILDERS))
    def test_lowered_export_matches_golden(self, name):
        module = _listing_module(name)
        build_named_pipeline("lower-to-llvm", None, 1).run(module)
        text = emit_mlir(module) + "\n"
        golden = (GOLDEN_DIR / f"{name}_lowered.mlir").read_text()
        assert text == golden

    def test_goldens_parse_and_verify(self):
        for path in sorted(GOLDEN_DIR.glob("*.mlir")):
            module = parse_module(path.read_text(),
                                  filename=str(path))
            verify(module)

    def test_upstream_clause_order(self):
        """Successors/regions precede the attribute dictionary and the
        signature — the upstream generic order, not the classic one."""
        module = _listing_module("listing1")
        build_named_pipeline("lower-to-llvm", None, 1).run(module)
        filecheck(emit_mlir(module), '''
            CHECK: "builtin.module"() ({
            CHECK: "llvm.func"() ({
            CHECK: "cf.cond_br"(%cond)[^bb1, ^bb2] {num_true_args = 0 : i64} : (i1) -> ()
            CHECK: "llvm.getelementptr"
            CHECK-SAME: {static_offsets = []} : (!llvm.ptr<i32>, index) -> (!llvm.ptr)
            CHECK: "cf.br"()[^bb3] : () -> ()
            CHECK: "llvm.return"() : () -> ()
            CHECK: }) {function_type = (i1, i32, i32, memref<i32>, memref<i32>) -> (), sym_name = "foo"
        ''')


class TestLocationPolicy:
    def _exported_locs(self, module):
        import re

        text = emit_mlir(module, print_locations=True)
        return text, re.findall(r"loc\([^\n]*\)", text)

    @pytest.mark.parametrize("name", sorted(LISTING_BUILDERS) + ["gemm"])
    def test_only_plain_location_forms(self, name):
        import re

        module = _all_modules()[name]
        text, locs = self._exported_locs(module)
        assert locs, "print_locations produced no loc(...) trailers"
        plain = re.compile(r'loc\((unknown|"[^"]*":\d+:\d+)\)$')
        for loc in locs:
            assert plain.match(loc), f"extended location syntax: {loc}"

    def test_parsed_locations_survive_the_round_trip(self):
        text = ('"builtin.module"() ({\n'
                '  "func.func"() ({\n'
                '  }) {function_type = () -> (), sym_name = "f"} '
                ': () -> () loc("a.py":3:7)\n'
                '}) : () -> ()\n')
        module = parse_module(text)
        exported = emit_mlir(module, print_locations=True)
        assert 'loc("a.py":3:7)' in exported

    def test_locations_off_by_default(self):
        module = _listing_module("listing1")
        assert "loc(" not in emit_mlir(module)


class TestCLI:
    def _run(self, args, stdin_text):
        return subprocess.run(
            [sys.executable, "-m", "repro.tools.repro_opt", *args],
            input=stdin_text, capture_output=True, text=True,
            cwd=str(pathlib.Path(__file__).parent.parent))

    def test_emit_mlir_flag(self):
        source = print_op(_listing_module("listing1"))
        result = self._run(["--emit=mlir"], source)
        assert result.returncode == 0, result.stderr
        assert result.stdout.startswith('"builtin.module"() ({')
        # Byte-stable under a second pass through the tool.
        again = self._run(["--emit=mlir"], result.stdout)
        assert again.returncode == 0, again.stderr
        assert again.stdout == result.stdout

    def test_emit_mlir_with_pipeline(self):
        source = print_op(_listing_module("listing2"))
        result = self._run(
            ["--emit=mlir", "--pipeline", "lower-to-llvm"], source)
        assert result.returncode == 0, result.stderr
        filecheck(result.stdout, '''
            CHECK: "llvm.func"
            CHECK: "cf.cond_br"
            CHECK-NOT: "scf.if"
        ''')

    def test_emit_defaults_to_classic_form(self):
        source = print_op(_listing_module("listing1"))
        result = self._run([], source)
        assert result.returncode == 0, result.stderr
        assert result.stdout.rstrip("\n") == source


class TestMLIRPrinterClass:
    def test_value_naming_matches_classic_printer(self):
        """Both printers unique names the same way, so diffs between the
        two forms of one module differ only in clause order."""
        module = _listing_module("listing3")
        classic = Printer().print_module(module)
        upstream = MLIRPrinter().print_op_to_string(module)
        classic_names = set(
            tok for tok in classic.replace(",", " ").split()
            if tok.startswith("%"))
        upstream_names = set(
            tok for tok in upstream.replace(",", " ").split()
            if tok.startswith("%"))
        assert classic_names == upstream_names
