"""Tests for the tiered execution engine (interp / jit / vector).

The heart of the file is the tier-equivalence matrix: every paper
listing kernel and the internalizing GEMM must produce identical
results on the scalar interpreter, the compile-to-Python JIT and the
vectorized ND-range tier — before and after every shipped pipeline.
"""

import subprocess
import sys
import warnings

import pytest

from repro.faults import fault_plan
from repro.interp.differential import (
    DifferentialError,
    compare_executions,
    execute_function,
    execute_module,
    run_differential,
    synthesize_spec,
)
from repro.interp.engine import (
    Backend,
    ExecutionEngine,
    ExecutorRegistrationError,
    TierFallback,
    _EXECUTORS,
    _reset_deprecation_warnings,
    register_executor,
    registered_executors,
)
from repro.interp.jit import ExecutableCache, _Emitter, compile_executable
from repro.interp.vectorize import vector_legality
from repro.transforms.disk_cache import DiskCache

from .helpers import (
    build_gemm_module,
    build_listing1_function,
    build_listing2_function,
    build_listing3_function,
    listing_execution_specs,
    wrap_in_module,
)

TIERS = ("interp", "jit", "vector")
PIPELINES = ("sycl-mlir", "dpcpp", "adaptivecpp-aot", "adaptivecpp-jit")


def _listing_module():
    return wrap_in_module(build_listing1_function()[0],
                          build_listing2_function()[0],
                          build_listing3_function()[0])


def _execute_all(module, specs, tier):
    engine = ExecutionEngine(module, tier=tier)
    executions, skipped = engine.execute_module(specs)
    assert not skipped, skipped
    return executions, engine


# ---------------------------------------------------------------------------
# Tier-equivalence matrix
# ---------------------------------------------------------------------------

class TestTierEquivalence:
    @pytest.mark.parametrize("tier", ("jit", "vector", "auto"))
    def test_listings_match_interpreter(self, tier):
        module = _listing_module()
        specs = listing_execution_specs()
        baseline, _ = _execute_all(module, specs, "interp")
        tiered, _ = _execute_all(module, specs, tier)
        assert set(tiered) == set(baseline)
        for name, before in baseline.items():
            compare_executions(before, tiered[name])

    @pytest.mark.parametrize("tier", ("jit", "vector", "auto"))
    def test_gemm_matches_interpreter(self, tier):
        module, specs = build_gemm_module(size=4, work_group=2)
        baseline, _ = _execute_all(module, specs, "interp")
        tiered, _ = _execute_all(module, specs, tier)
        compare_executions(baseline["gemm"], tiered["gemm"])

    @pytest.mark.parametrize("pipeline", PIPELINES)
    @pytest.mark.parametrize("tier", TIERS)
    def test_gemm_differential_per_pipeline(self, pipeline, tier):
        module, specs = build_gemm_module(size=4, work_group=2)
        report = run_differential(module, pipeline, specs=specs, tier=tier)
        assert "gemm" in report.executed

    @pytest.mark.parametrize("pipeline", PIPELINES)
    @pytest.mark.parametrize("tier", TIERS)
    def test_listings_differential_per_pipeline(self, pipeline, tier):
        module = _listing_module()
        specs = listing_execution_specs()
        report = run_differential(module, pipeline, specs=specs, tier=tier)
        assert report.executed  # at least one listing executed both sides

    def test_explicit_tier_is_reported(self):
        module, specs = build_gemm_module(size=4, work_group=2)
        for tier in TIERS:
            executions, _ = _execute_all(module, specs, tier)
            assert executions["gemm"].tier == tier


# ---------------------------------------------------------------------------
# Vector-tier legality and fallback
# ---------------------------------------------------------------------------

class TestVectorFallback:
    def test_divergent_kernel_falls_back_with_remark(self):
        module = _listing_module()
        specs = listing_execution_specs()
        engine = ExecutionEngine(module, tier="vector")
        executions, _ = engine.execute_module(specs)
        # Listing 2 branches on the global id: lanes would diverge.
        assert executions["non_uniform"].tier == "interp"
        assert any("divergent" in remark for remark in engine.remarks)
        # Listing 3 is straight-line: it vectorizes.
        assert executions["mem_acc"].tier == "vector"

    def test_vector_legality_reasons(self):
        module = _listing_module()
        divergent = module.lookup_symbol("non_uniform")
        assert "divergent" in vector_legality(divergent)
        straight = module.lookup_symbol("mem_acc")
        assert vector_legality(straight) is None

    def test_plain_function_never_vectorizes(self):
        module = _listing_module()
        engine = ExecutionEngine(module, tier="vector")
        executions, _ = engine.execute_module(listing_execution_specs())
        assert executions["foo"].tier == "interp"


# ---------------------------------------------------------------------------
# Executable cache
# ---------------------------------------------------------------------------

class TestExecutableCache:
    def test_memory_hit_and_miss(self):
        module, _ = build_gemm_module(size=4, work_group=2)
        function = module.lookup_symbol("gemm")
        cache = ExecutableCache()
        first = compile_executable(function, "nd", cache=cache)
        second = compile_executable(function, "nd", cache=cache)
        assert second.entry is first.entry
        assert second.origin == "memory"
        assert cache.stats["misses"] == 1
        assert cache.stats["hits"] == 1
        # A different mode is a different key.
        compile_executable(function, "nd-barrier", cache=cache)
        assert cache.stats["misses"] == 2

    def test_fingerprint_keyed_across_clones(self):
        module, _ = build_gemm_module(size=4, work_group=2)
        cache = ExecutableCache()
        compile_executable(module.lookup_symbol("gemm"), "nd", cache=cache)
        clone = module.clone({})
        compile_executable(clone.lookup_symbol("gemm"), "nd", cache=cache)
        assert cache.stats == {"hits": 1, "misses": 1, "stores": 1,
                               "disk_hits": 0, "disk_stores": 0}

    def test_disk_round_trip(self, tmp_path):
        module, specs = build_gemm_module(size=4, work_group=2)
        function = module.lookup_symbol("gemm")
        disk = DiskCache(str(tmp_path / "cache"))
        warm = ExecutableCache(disk=disk)
        compile_executable(function, "nd", cache=warm)
        assert warm.stats["disk_stores"] == 1
        # A cold in-memory cache sharing the directory rehydrates the
        # generated source instead of re-emitting it.
        cold = ExecutableCache(disk=DiskCache(str(tmp_path / "cache")))
        executable = compile_executable(function, "nd", cache=cold)
        assert cold.stats["disk_hits"] == 1
        # The rehydrated executable actually runs.
        engine = ExecutionEngine(module, tier="jit",
                                 executable_cache=cold)
        executions, _ = engine.execute_module(specs)
        assert executions["gemm"].tier == "jit"
        assert executable.entry is not None


# ---------------------------------------------------------------------------
# The oracle catches a miscompiling emitter
# ---------------------------------------------------------------------------

class TestSeededMiscompile:
    def test_wrong_codegen_is_caught(self, monkeypatch):
        # Seed a deliberate bug: float addition emitted as subtraction.
        monkeypatch.setitem(_Emitter.BIN_FLOAT, "arith.addf", "-")
        module, specs = build_gemm_module(size=4, work_group=2)
        function = module.lookup_symbol("gemm")
        resolved = synthesize_spec(function, specs["gemm"])
        before = ExecutionEngine(module, tier="interp").execute(
            function, resolved)
        after = ExecutionEngine(module, tier="jit").execute(
            function, resolved)
        assert after.tier == "jit"
        with pytest.raises(DifferentialError):
            compare_executions(before, after)


# ---------------------------------------------------------------------------
# Fault injection: jit.compile / jit.exec degrade to the interpreter
# ---------------------------------------------------------------------------

class TestFaultDegradation:
    def _baseline(self, module, function, resolved):
        return ExecutionEngine(module, tier="interp").execute(
            function, resolved)

    def test_corrupt_compile_degrades_with_remark(self):
        module, specs = build_gemm_module(size=4, work_group=2)
        function = module.lookup_symbol("gemm")
        resolved = synthesize_spec(function, specs["gemm"])
        baseline = self._baseline(module, function, resolved)
        with fault_plan("jit.compile=corrupt"):
            engine = ExecutionEngine(module, tier="jit")
            execution = engine.execute(function, resolved)
        assert execution.tier == "interp"
        assert any("jit" in r for r in engine.remarks)
        compare_executions(baseline, execution)

    def test_transient_exec_falls_back_with_remark(self):
        module, specs = build_gemm_module(size=4, work_group=2)
        function = module.lookup_symbol("gemm")
        resolved = synthesize_spec(function, specs["gemm"])
        baseline = self._baseline(module, function, resolved)
        with fault_plan("jit.exec@gemm=transient"):
            engine = ExecutionEngine(module, tier="jit")
            execution = engine.execute(function, resolved)
        assert execution.tier == "interp"
        assert any("injected" in r for r in engine.remarks)
        compare_executions(baseline, execution)


# ---------------------------------------------------------------------------
# The executor registry
# ---------------------------------------------------------------------------

class TestExecutorRegistry:
    def test_builtin_tiers_registered(self):
        names = registered_executors()
        for name in TIERS:
            assert name in names

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ExecutorRegistrationError):
            register_executor("jit", Backend())

    def test_unknown_tier_rejected(self):
        module = _listing_module()
        with pytest.raises(ValueError, match="unknown execution tier"):
            ExecutionEngine(module, tier="cuda")

    def test_custom_tier_participates_in_plan(self):
        class Declining(Backend):
            NAME = "declining"

            def launch(self, engine, function, values, global_size,
                       local_size=None, interpreter=None):
                raise TierFallback("declines everything")

            def call(self, engine, function, values, interpreter=None):
                raise TierFallback("declines everything")

        register_executor("declining", Declining())
        try:
            module = _listing_module()
            engine = ExecutionEngine(module, tier="declining")
            assert engine.tier_plan() == ("declining", "interp")
            executions, _ = engine.execute_module(
                listing_execution_specs())
            assert all(e.tier == "interp" for e in executions.values())
            assert engine.remarks
        finally:
            _EXECUTORS.pop("declining", None)


# ---------------------------------------------------------------------------
# Deprecated entry-point shims
# ---------------------------------------------------------------------------

class TestDeprecationShims:
    def _one_warning(self, invoke):
        _reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning):
            invoke()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            invoke()  # the shim warns once per process, not per call

    def test_execute_function_shim(self):
        module, specs = build_gemm_module(size=4, work_group=2)
        function = module.lookup_symbol("gemm")
        resolved = synthesize_spec(function, specs["gemm"])
        self._one_warning(
            lambda: execute_function(module, function, resolved))

    def test_execute_module_shim(self):
        module, specs = build_gemm_module(size=4, work_group=2)
        self._one_warning(lambda: execute_module(module, specs))

    def test_interpreter_launch_shim(self):
        from repro.interp.interpreter import Interpreter
        from repro.runtime.accessor import Accessor
        from repro.runtime.buffer import Buffer

        module, _ = build_gemm_module(size=4, work_group=2)

        def invoke():
            interp = Interpreter(module)
            args = [Accessor(Buffer((4, 4)), "read"),
                    Accessor(Buffer((4, 4)), "read"),
                    Accessor(Buffer((4, 4)), "read_write")]
            interp.launch("gemm", args, (4, 4), (2, 2))

        self._one_warning(invoke)

    def test_shim_results_match_engine(self):
        module, specs = build_gemm_module(size=4, work_group=2)
        function = module.lookup_symbol("gemm")
        resolved = synthesize_spec(function, specs["gemm"])
        _reset_deprecation_warnings()
        with pytest.warns(DeprecationWarning):
            shimmed = execute_function(module, function, resolved)
        direct = ExecutionEngine(module, tier="interp").execute(
            function, resolved)
        compare_executions(shimmed, direct)


# ---------------------------------------------------------------------------
# Lazy imports
# ---------------------------------------------------------------------------

class TestLazyImport:
    def test_engine_resolves_without_eager_dialects(self):
        script = (
            "import sys\n"
            "import repro.interp\n"
            "eager = [m for m in sys.modules"
            " if m.startswith('repro.dialects')]\n"
            "assert not eager, eager\n"
            "assert repro.interp.ExecutionEngine is not None\n"
        )
        subprocess.run([sys.executable, "-c", script], check=True)


# ---------------------------------------------------------------------------
# repro-run wiring
# ---------------------------------------------------------------------------

class TestReproRunTiers:
    @pytest.fixture
    def gemm_path(self, tmp_path):
        from repro.ir import Printer

        module, _ = build_gemm_module(size=4, work_group=2)
        path = tmp_path / "gemm.mlir"
        path.write_text(Printer().print_module(module) + "\n",
                        encoding="utf-8")
        return path

    def test_list_tiers(self, capsys):
        from repro.tools.repro_run import main

        assert main(["--list-tiers"]) == 0
        out = capsys.readouterr().out.split()
        assert "auto" in out and "interp" in out
        assert "jit" in out and "vector" in out

    @pytest.mark.parametrize("tier", TIERS)
    def test_tier_flag_reported_in_header(self, tier, gemm_path, capsys):
        from repro.tools.repro_run import main

        rc = main([str(gemm_path), "--entry", "gemm", "--tier", tier])
        assert rc == 0
        assert f"[tier: {tier}]" in capsys.readouterr().out

    def test_unknown_tier_is_usage_error(self, gemm_path, capsys):
        from repro.tools.repro_run import main

        rc = main([str(gemm_path), "--entry", "gemm", "--tier", "cuda"])
        assert rc == 2
        assert "unknown execution tier" in capsys.readouterr().err
