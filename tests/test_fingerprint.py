"""Structural fingerprint tests: stability, sensitivity, cache keys."""

from repro.dialects import all_dialects  # noqa: F401 - registers ops/types
from repro.dialects import arith
from repro.dialects.builtin import ModuleOp
from repro.dialects.func import FuncOp, ReturnOp
from repro.ir import (
    Printer,
    fingerprint,
    function_fingerprint,
    i64,
    module_fingerprint,
    parse_module,
)

from .helpers import build_listing1_function, wrap_in_module


def _simple_module(name="f", constant=7, hints=("x", "y")):
    module = ModuleOp.build()
    function = FuncOp.build(name, [i64()], arg_names=[hints[0]])
    module.append(function)
    body = function.body
    const = body.append(arith.ConstantOp.build(constant, i64()))
    const.result.name_hint = hints[1]
    body.append(arith.AddIOp.build(function.arguments[0], const.result))
    body.append(ReturnOp.build())
    return module


class TestFingerprintStability:
    def test_deterministic_across_calls(self):
        module = _simple_module()
        assert module_fingerprint(module) == module_fingerprint(module)

    def test_equal_for_structurally_identical_modules(self):
        assert module_fingerprint(_simple_module()) == \
            module_fingerprint(_simple_module())

    def test_name_hints_do_not_participate_structurally(self):
        # %x vs %a: same structure, different SSA spellings.
        a = _simple_module(hints=("x", "y"))
        b = _simple_module(hints=("a", "b"))
        assert Printer().print_module(a) != Printer().print_module(b)
        assert module_fingerprint(a) == module_fingerprint(b)

    def test_cache_key_is_name_sensitive(self):
        # The cache key must distinguish textually different spellings:
        # a hit splices a *printable* result, so structurally equal but
        # differently named inputs sharing a key would rewrite the later
        # segment's SSA names to the cached segment's.
        from repro.transforms.compile_cache import CompileCache

        a = _simple_module(hints=("x", "y"))
        b = _simple_module(hints=("a", "b"))
        c = _simple_module(hints=("x", "y"))
        spec = "builtin.module(func.func(cse))"
        assert CompileCache.key_for(a, spec) != CompileCache.key_for(b, spec)
        assert CompileCache.key_for(a, spec) == CompileCache.key_for(c, spec)

    def test_opt_in_name_hint_hashing(self):
        a = _simple_module(hints=("x", "y"))
        b = _simple_module(hints=("a", "b"))
        assert fingerprint(a, include_name_hints=True) != \
            fingerprint(b, include_name_hints=True)

    def test_survives_print_parse_round_trip(self):
        module = wrap_in_module(build_listing1_function()[0])
        reparsed = parse_module(Printer().print_module(module))
        assert module_fingerprint(module) == module_fingerprint(reparsed)


class TestFingerprintSensitivity:
    def test_attribute_value_changes_hash(self):
        assert module_fingerprint(_simple_module(constant=7)) != \
            module_fingerprint(_simple_module(constant=8))

    def test_symbol_name_changes_hash(self):
        assert module_fingerprint(_simple_module(name="f")) != \
            module_fingerprint(_simple_module(name="g"))

    def test_operation_order_changes_hash(self):
        a = _simple_module()
        b = _simple_module()
        ops = b.regions[0].blocks[0].operations[0].body.operations
        # Swap the constant and the add (still two ops, same multiset).
        ops[0].move_after(ops[1])
        assert module_fingerprint(a) != module_fingerprint(b)

    def test_use_before_def_wiring_changes_hash(self):
        # Regression: with use-before-def encoding order, swapping which
        # def feeds which operand used to produce identical encodings
        # (operands were numbered at first mention and definitions only
        # emitted their types).
        def build(swapped):
            module = ModuleOp.build()
            function = FuncOp.build("f", [i64()])
            module.append(function)
            body = function.body
            d1 = arith.ConstantOp.build(1, i64())
            d2 = arith.ConstantOp.build(2, i64())
            operands = ((d2.result, d1.result) if swapped
                        else (d1.result, d2.result))
            body.append(arith.AddIOp.build(*operands))
            body.append(d1)
            body.append(d2)
            body.append(ReturnOp.build())
            return module

        assert module_fingerprint(build(False)) == \
            module_fingerprint(build(False))
        assert module_fingerprint(build(False)) != \
            module_fingerprint(build(True))

    def test_operand_wiring_changes_hash(self):
        a = _simple_module()
        b = _simple_module()
        add = b.regions[0].blocks[0].operations[0].body.operations[1]
        # Same operand multiset, different wiring: (arg, const) -> (arg, arg).
        add.set_operand(1, add.operands[0])
        assert module_fingerprint(a) != module_fingerprint(b)


class TestFunctionFingerprint:
    def test_ignores_symbol_name_by_default(self):
        fa = _simple_module(name="f").regions[0].blocks[0].operations[0]
        fb = _simple_module(name="g").regions[0].blocks[0].operations[0]
        assert function_fingerprint(fa) == function_fingerprint(fb)
        assert function_fingerprint(fa, ignore_name=False) != \
            function_fingerprint(fb, ignore_name=False)

    def test_ignore_attrs_widens_equivalence(self):
        fa = _simple_module(name="f").regions[0].blocks[0].operations[0]
        fb = _simple_module(name="g").regions[0].blocks[0].operations[0]
        assert fingerprint(fa) != fingerprint(fb)
        assert fingerprint(fa, ignore_attrs=("sym_name",)) == \
            fingerprint(fb, ignore_attrs=("sym_name",))
