"""Smoke tests for the benchmark harness (tiny sizes, CI-friendly)."""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.generate import (  # noqa: E402
    GeneratorConfig,
    count_ops,
    generate_module,
)
from benchmarks.runner import bench_config, main as runner_main  # noqa: E402
from repro.ir import Printer, parse_module, verify  # noqa: E402


class TestGenerator:
    def test_generated_module_is_valid_and_sized(self):
        config = GeneratorConfig(num_ops=200, num_kernels=2, seed=3)
        module = generate_module(config)
        verify(module)
        assert abs(count_ops(module) - 200) < 60

    def test_generation_is_deterministic(self):
        config = GeneratorConfig(num_ops=120, seed=7)
        first = Printer().print_module(generate_module(config))
        second = Printer().print_module(generate_module(config))
        assert first == second

    def test_generated_module_round_trips(self):
        config = GeneratorConfig(num_ops=100, num_kernels=1)
        text = Printer().print_module(generate_module(config))
        assert Printer().print_module(parse_module(text)) == text


class TestRunner:
    def test_bench_config_record_shape(self):
        record = bench_config(GeneratorConfig(num_ops=80, num_kernels=1),
                              repeats=1, compare_legacy=True, check=True)
        assert record["num_ops"] > 0
        for phase in ("print", "parse", "canonicalize", "cse",
                      "canonicalize+cse", "pipeline:adaptivecpp-aot"):
            assert record["timings_s"][phase] >= 0.0
        # Pass timings are keyed by pipeline position ("0: canonicalize")
        # so duplicate passes stay distinguishable.
        assert any(key.endswith("canonicalize")
                   for key in record["pass_timings_s"])
        assert record["legacy_timings_s"]["canonicalize+cse"] >= 0.0

    def test_smoke_run_emits_json(self, tmp_path):
        out = tmp_path / "bench.json"
        assert runner_main(["--smoke", "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro-bench/1"
        assert payload["records"][0]["num_ops"] > 0
