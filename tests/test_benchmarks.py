"""Smoke tests for the benchmark harness (tiny sizes, CI-friendly)."""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.generate import (  # noqa: E402
    GeneratorConfig,
    count_ops,
    generate_module,
)
from benchmarks import compare as bench_compare  # noqa: E402
from benchmarks.runner import bench_config, main as runner_main  # noqa: E402
from repro.ir import Printer, parse_module, verify  # noqa: E402


class TestGenerator:
    def test_generated_module_is_valid_and_sized(self):
        config = GeneratorConfig(num_ops=200, num_kernels=2, seed=3)
        module = generate_module(config)
        verify(module)
        assert abs(count_ops(module) - 200) < 60

    def test_generation_is_deterministic(self):
        config = GeneratorConfig(num_ops=120, seed=7)
        first = Printer().print_module(generate_module(config))
        second = Printer().print_module(generate_module(config))
        assert first == second

    def test_generated_module_round_trips(self):
        config = GeneratorConfig(num_ops=100, num_kernels=1)
        text = Printer().print_module(generate_module(config))
        assert Printer().print_module(parse_module(text)) == text


class TestRunner:
    def test_bench_config_record_shape(self):
        record = bench_config(GeneratorConfig(num_ops=80, num_kernels=1),
                              repeats=1, compare_legacy=True, check=True)
        assert record["num_ops"] > 0
        for phase in ("print", "parse", "canonicalize", "cse",
                      "canonicalize+cse", "pipeline:adaptivecpp-aot"):
            assert record["timings_s"][phase] >= 0.0
        # Pass timings are keyed by pipeline position ("0: canonicalize")
        # so duplicate passes stay distinguishable.
        assert any(key.endswith("canonicalize")
                   for key in record["pass_timings_s"])
        assert record["legacy_timings_s"]["canonicalize+cse"] >= 0.0

    def test_smoke_run_emits_json(self, tmp_path):
        out = tmp_path / "bench.json"
        assert runner_main(["--smoke", "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro-bench/1"
        assert payload["records"][0]["num_ops"] > 0

    def test_parallel_speedups_keyed_against_first_job_count(self, tmp_path):
        # Regression: a custom --jobs-list not starting at 1 must not
        # record a serial-vs-itself ratio.
        out = tmp_path / "bench.json"
        assert runner_main(["--smoke", "--concurrency",
                            "--jobs-list", "2,4", "--functions", "4",
                            "--out", str(out)]) == 0
        parallel = json.loads(out.read_text())["concurrency"]["parallel"]
        assert set(parallel["speedup_vs_serial"]) == {"4"}

    def test_concurrency_suite_shape(self, tmp_path):
        out = tmp_path / "bench.json"
        assert runner_main(["--smoke", "--concurrency",
                            "--jobs-list", "1,2", "--functions", "4",
                            "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        parallel = payload["concurrency"]["parallel"]
        assert parallel["num_functions"] >= 4
        assert set(parallel["jobs_timings_s"]) == {"1", "2"}
        assert "2" in parallel["speedup_vs_serial"]
        cache = payload["concurrency"]["cache"]
        assert cache["cold_s"] > 0 and cache["warm_s"] > 0
        assert cache["cache"]["hits"] >= 1


class TestCompareGate:
    def _payload(self, scale=1.0):
        return {
            "records": [{
                "config": {"num_ops": 500},
                "timings_s": {"canonicalize+cse": 0.1 * scale,
                              "parse": 0.2 * scale},
            }],
            "concurrency": {
                "parallel": {"jobs_timings_s": {"1": 0.4 * scale,
                                                "4": 0.3 * scale}},
                "cache": {"cold_s": 0.5 * scale, "warm_s": 0.05 * scale},
            },
        }

    def test_flatten_tracks_all_scenario_families(self):
        scenarios = bench_compare.flatten_scenarios(self._payload())
        assert set(scenarios) == {
            "500ops/canonicalize+cse", "500ops/parse",
            "parallel/jobs=1", "parallel/jobs=4",
            "cache/cold", "cache/warm",
        }

    def test_identical_runs_pass(self, tmp_path, capsys):
        rc = self._run_main(tmp_path, self._payload(), self._payload())
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_slowdown_beyond_threshold_fails(self, tmp_path, capsys):
        rc = self._run_main(tmp_path, self._payload(),
                            self._payload(scale=1.5))
        assert rc == 1
        captured = capsys.readouterr()
        assert "regression" in captured.out
        assert "FAIL" in captured.err

    def test_speedup_passes(self, tmp_path):
        assert self._run_main(tmp_path, self._payload(),
                              self._payload(scale=0.5)) == 0

    def test_sub_threshold_timings_are_skipped(self, tmp_path, capsys):
        baseline = {"records": [{"config": {"num_ops": 10},
                                 "timings_s": {"parse": 0.0001}}]}
        candidate = {"records": [{"config": {"num_ops": 10},
                                  "timings_s": {"parse": 0.01}}]}
        rc = self._run_main(tmp_path, baseline, candidate)
        assert rc == 0
        assert "skipped" in capsys.readouterr().out

    def test_no_common_scenarios_is_a_usage_error(self, tmp_path):
        assert self._run_main(tmp_path, {"records": []},
                              {"records": []}) == 2

    def test_flatten_tracks_interp_scenarios(self):
        payload = self._payload()
        payload["interp"] = {"records": [
            {"name": "vecadd-exec", "seconds": 0.02, "ops": 1000},
            {"name": "differential-gemm", "seconds": 0.05},
        ]}
        scenarios = bench_compare.flatten_scenarios(payload)
        assert scenarios["interp/vecadd-exec"] == 0.02
        assert scenarios["interp/differential-gemm"] == 0.05

    def test_baseline_missing_candidate_scenario_is_a_clear_error(
            self, tmp_path, capsys):
        # A fresh run that gained a scenario family (e.g. --interp) must
        # not be silently half-gated against a stale baseline.
        candidate = self._payload()
        candidate["interp"] = {"records": [
            {"name": "vecadd-exec", "seconds": 0.02}]}
        rc = self._run_main(tmp_path, self._payload(), candidate)
        assert rc == 2
        err = capsys.readouterr().err
        assert "interp/vecadd-exec" in err
        assert "regenerate the baseline" in err

    def test_allow_new_scenarios_downgrades_to_note(self, tmp_path, capsys):
        candidate = self._payload()
        candidate["interp"] = {"records": [
            {"name": "vecadd-exec", "seconds": 0.02}]}
        rc = self._run_main(tmp_path, self._payload(), candidate,
                            "--allow-new-scenarios")
        assert rc == 0
        out = capsys.readouterr().out
        assert "note" in out and "interp/vecadd-exec" in out

    def test_unproduced_baseline_scenarios_are_noted(self, tmp_path,
                                                     capsys):
        # Baseline scenarios the candidate run didn't produce stay
        # ungated (partial re-runs are legitimate) but must be visible.
        baseline = self._payload()
        baseline["interp"] = {"records": [
            {"name": "vecadd-exec", "seconds": 0.02}]}
        rc = self._run_main(tmp_path, baseline, self._payload())
        assert rc == 0
        out = capsys.readouterr().out
        assert "did not produce" in out and "interp/vecadd-exec" in out

    def test_interp_smoke_run_emits_records(self, tmp_path):
        out = tmp_path / "bench.json"
        assert runner_main(["--smoke", "--interp", "--sizes", "60",
                            "--out", str(out)]) == 0
        records = json.loads(out.read_text())["interp"]["records"]
        names = {record["name"] for record in records}
        assert {"vecadd-exec", "gemm-exec", "differential-gemm"} <= names
        by_name = {record["name"]: record for record in records}
        assert by_name["vecadd-exec"]["ops"] > 0
        assert by_name["vecadd-exec"]["ops_per_second"] > 0

    def test_normalize_cancels_uniform_machine_drift(self, tmp_path):
        # A uniformly 1.5x-slower machine passes under --normalize ...
        rc = self._run_main(tmp_path, self._payload(),
                            self._payload(scale=1.5), "--normalize")
        assert rc == 0

    def test_normalize_still_catches_relative_regressions(self, tmp_path,
                                                          capsys):
        # ... but a scenario slowed far beyond the suite median fails.
        slow = self._payload(scale=1.5)
        slow["records"][0]["timings_s"]["parse"] = 0.2 * 1.5 * 2.0
        rc = self._run_main(tmp_path, self._payload(), slow, "--normalize")
        assert rc == 1
        assert "500ops/parse" in capsys.readouterr().err

    @staticmethod
    def _run_main(tmp_path, baseline, candidate, *extra):
        baseline_path = tmp_path / "baseline.json"
        candidate_path = tmp_path / "candidate.json"
        baseline_path.write_text(json.dumps(baseline), encoding="utf-8")
        candidate_path.write_text(json.dumps(candidate), encoding="utf-8")
        return bench_compare.main([str(baseline_path), str(candidate_path),
                                   *extra])
