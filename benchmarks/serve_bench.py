"""BENCH_8 scenario family: the compile service and the disk cache.

Three questions, each answered by a scenario pair the regression gate
tracks:

* Does the disk cache pay across *processes*?  ``disk/cold-fresh-process``
  runs ``repro-opt`` in a fresh subprocess against an empty cache root;
  ``disk/warm-fresh-process`` runs the identical command against a
  primed root.  Both pay interpreter startup and parsing, so the delta
  is exactly the pipeline work the persisted artifact saves — the
  honest measurement of "warm compiles survive restarts".
* What does the daemon save over one-shot CLI calls?
  ``serve/one-shot-process`` times a full ``repro-opt`` subprocess per
  compile; ``serve/round-trip`` times the same compile as a request to
  an in-process daemon with warm caches — the steady-state each model
  reaches after the first compile.
* Does the daemon scale with clients?  ``serve/concurrent-{N}clients``
  hammers one daemon from N threads and records wall time for the whole
  burst (requests/second derives from it).
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import tempfile
import threading
from pathlib import Path
from typing import Dict, List, Optional

from repro.ir import Printer
from repro.serve import CompileService, ReproServer, ServeClient

from .generate import GeneratorConfig, generate_module
from .runner import CONCURRENCY_PIPELINE, _time

REPO_ROOT = Path(__file__).resolve().parent.parent


def _subprocess_env() -> Dict[str, str]:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def _run_repro_opt(input_path: str,
                   cache_dir: Optional[str] = None) -> None:
    command = [sys.executable, "-m", "repro.tools.repro_opt", input_path,
               "--passes", CONCURRENCY_PIPELINE, "-o", os.devnull]
    if cache_dir:
        command += ["--cache-dir", cache_dir]
    subprocess.run(command, check=True, capture_output=True,
                   env=_subprocess_env())


def bench_serve(repeats: int = 3, num_ops: int = 2000,
                num_kernels: int = 8, clients: int = 4,
                requests_per_client: int = 3, seed: int = 0) -> Dict:
    config = GeneratorConfig(num_ops=num_ops, num_kernels=num_kernels,
                             nesting_depth=1, seed=seed)
    text = Printer().print_module(generate_module(config))

    workdir = tempfile.mkdtemp(prefix="repro-serve-bench-")
    records: List[Dict] = []
    try:
        input_path = os.path.join(workdir, "input.mlir")
        with open(input_path, "w", encoding="utf-8") as handle:
            handle.write(text)
        cache_dir = os.path.join(workdir, "cache")

        # -- disk tier, fresh process per run --------------------------------
        def wipe_cache():
            shutil.rmtree(cache_dir, ignore_errors=True)

        cold = _time(lambda _=None: _run_repro_opt(input_path, cache_dir),
                     repeats, setup=wipe_cache)
        records.append({"name": "disk/cold-fresh-process", "seconds": cold})

        wipe_cache()
        _run_repro_opt(input_path, cache_dir)  # prime the store
        warm = _time(lambda: _run_repro_opt(input_path, cache_dir), repeats)
        records.append({"name": "disk/warm-fresh-process", "seconds": warm})

        # -- daemon round trip vs one-shot subprocess ------------------------
        one_shot = _time(lambda: _run_repro_opt(input_path), repeats)
        records.append({"name": "serve/one-shot-process",
                        "seconds": one_shot})

        service = CompileService()
        server = ReproServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=server.serve_forever,
                                  kwargs={"poll_interval": 0.05},
                                  daemon=True)
        thread.start()
        try:
            with ServeClient(host=server.host, port=server.port,
                             timeout=300.0) as client:
                client.compile(text, CONCURRENCY_PIPELINE)  # warm the pool
                round_trip = _time(
                    lambda: client.compile(text, CONCURRENCY_PIPELINE),
                    repeats)
            records.append({"name": "serve/round-trip",
                            "seconds": round_trip})

            # -- concurrent-client throughput --------------------------------
            def burst() -> None:
                errors: List[BaseException] = []

                def hammer() -> None:
                    try:
                        with ServeClient(host=server.host, port=server.port,
                                         timeout=300.0) as worker:
                            for _ in range(requests_per_client):
                                worker.compile(text, CONCURRENCY_PIPELINE)
                    except BaseException as exc:  # noqa: BLE001
                        errors.append(exc)

                threads = [threading.Thread(target=hammer)
                           for _ in range(clients)]
                for item in threads:
                    item.start()
                for item in threads:
                    item.join()
                if errors:
                    raise errors[0]

            concurrent = _time(burst, repeats)
            records.append({"name": f"serve/concurrent-{clients}clients",
                            "seconds": concurrent})
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

        total_requests = clients * requests_per_client
        return {
            "num_ops": num_ops,
            "pipeline": CONCURRENCY_PIPELINE,
            "clients": clients,
            "requests_per_client": requests_per_client,
            "records": records,
            "disk_warm_speedup": (cold / warm) if warm > 0 else 0.0,
            "daemon_speedup_vs_one_shot":
                (one_shot / round_trip) if round_trip > 0 else 0.0,
            "concurrent_requests_per_second":
                (total_requests / concurrent) if concurrent > 0 else 0.0,
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
