"""Synthetic IR generator for the benchmark harness.

Builds valid modules whose shape is controlled by a :class:`GeneratorConfig`:

* ``num_ops`` — approximate total operation count;
* ``nesting_depth`` — depth of ``scf.for`` nests wrapping compute segments;
* ``duplicate_density`` — fraction of binary ops re-emitted with identical
  operands (CSE fodder);
* ``foldable_density`` — fraction of ops that are constant-foldable or
  algebraic identities like ``x + 0`` / ``x * 1`` (canonicalize fodder);
* ``dead_density`` — fraction of ops whose results are never used
  (DCE fodder);
* ``num_kernels`` — number of SYCL-style kernel functions (marked with
  ``sycl.kernel``, memref "accessor" arguments, load/compute/store loop
  nests), modelling the paper's kernel shapes structurally.

Everything is seeded, so a config always generates the same module; the
runner relies on this to time different phases over identical inputs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.dialects import all_dialects  # noqa: F401 - registers ops/types
from repro.dialects import arith
from repro.dialects import memref as memref_dialect
from repro.dialects import scf as scf_dialect
from repro.dialects.builtin import ModuleOp
from repro.dialects.func import FuncOp, ReturnOp
from repro.ir import Block, BoolAttr, Value, f32, i64, index, memref


@dataclass
class GeneratorConfig:
    """Parameters controlling the synthetic module shape."""

    num_ops: int = 1000
    nesting_depth: int = 2
    duplicate_density: float = 0.25
    foldable_density: float = 0.2
    dead_density: float = 0.1
    chain_density: float = 0.6
    #: Depth of dedicated dead def-use chains (each op used only by the
    #: next, final result unused).  This is what IR looks like after a
    #: lowering pass strips the consumers of address-arithmetic chains —
    #: e.g. ``lower_sycl`` rewriting accessor subscripts — and it is the
    #: shape that punishes sweep-based DCE (one erasure per sweep per
    #: chain).  0 disables chain generation.
    dead_chain_depth: int = 128
    num_kernels: int = 1
    seed: int = 0

    def describe(self) -> dict:
        return {
            "num_ops": self.num_ops,
            "nesting_depth": self.nesting_depth,
            "duplicate_density": self.duplicate_density,
            "foldable_density": self.foldable_density,
            "dead_density": self.dead_density,
            "chain_density": self.chain_density,
            "dead_chain_depth": self.dead_chain_depth,
            "num_kernels": self.num_kernels,
            "seed": self.seed,
        }


_BINOPS = (arith.AddIOp, arith.MulIOp, arith.SubIOp)


class _Budget:
    """Shared op budget so generation stops near ``num_ops``."""

    def __init__(self, limit: int):
        self.remaining = limit

    def take(self, count: int = 1) -> bool:
        if self.remaining <= 0:
            return False
        self.remaining -= count
        return True


def _emit_compute(block: Block, pool: List[Value], rng: random.Random,
                  config: GeneratorConfig, budget: _Budget,
                  depth: int) -> None:
    """Fill ``block`` with arithmetic, recursing into loop nests."""
    emitted: List = []
    while budget.remaining > 0:
        roll = rng.random()
        if depth < config.nesting_depth and roll < 0.02 and budget.remaining > 8:
            _emit_loop(block, pool, rng, config, budget, depth)
            continue
        if config.dead_chain_depth and roll < 0.01 and budget.remaining > 4:
            _emit_dead_chain(block, pool, rng, config, budget)
            continue
        if roll < config.foldable_density and budget.take(3):
            # Constant-foldable pair plus an identity (x + 0).
            lhs = block.append(arith.ConstantOp.build(rng.randrange(64), i64()))
            zero = block.append(arith.ConstantOp.build(0, i64()))
            folded = block.append(arith.AddIOp.build(lhs.result, zero.result))
            pool.append(folded.result)
            continue
        if emitted and rng.random() < config.duplicate_density and budget.take(1):
            # Exact duplicate of an earlier op: CSE fodder.
            original = rng.choice(emitted)
            dup = block.append(type(original).build(*original.operands))
            pool.append(dup.result)
            continue
        if not budget.take(1):
            break
        op_class = rng.choice(_BINOPS)
        # Deep def-use chains (the realistic case: each op feeds the next)
        # versus a wide DAG with uniformly chosen operands.
        if rng.random() < config.chain_density:
            lhs = pool[-1]
            rhs = rng.choice(pool)
        else:
            lhs = rng.choice(pool)
            rhs = rng.choice(pool)
        op = block.append(op_class.build(lhs, rhs))
        emitted.append(op)
        if rng.random() >= config.dead_density:
            pool.append(op.result)
        if rng.random() < 0.002:
            break


def _emit_dead_chain(block: Block, pool: List[Value], rng: random.Random,
                     config: GeneratorConfig, budget: _Budget) -> None:
    """A def-use chain whose final result is unused: deep-DCE fodder."""
    depth = min(config.dead_chain_depth, max(2, budget.remaining))
    budget.take(depth)
    current = rng.choice(pool)
    for _ in range(depth):
        link = block.append(arith.AddIOp.build(current, rng.choice(pool)))
        current = link.result


def _emit_loop(block: Block, pool: List[Value], rng: random.Random,
               config: GeneratorConfig, budget: _Budget, depth: int) -> None:
    budget.take(5)
    lower = block.append(arith.ConstantOp.build(0, index()))
    upper = block.append(arith.ConstantOp.build(rng.randrange(8, 64), index()))
    step = block.append(arith.ConstantOp.build(1, index()))
    loop = block.append(scf_dialect.ForOp.build(
        lower.result, upper.result, step.result))
    body = loop.body
    iv = loop.induction_variable()
    cast = body.append(arith.IndexCastOp.build(iv, i64()))
    inner_pool = list(pool) + [cast.result]
    # Cap what this nest may consume so generation spreads across segments.
    inner_budget = _Budget(min(budget.remaining, max(8, budget.remaining // 3)))
    before = inner_budget.remaining
    _emit_compute(body, inner_pool, rng, config, inner_budget, depth + 1)
    budget.remaining = max(0, budget.remaining - (before - inner_budget.remaining))
    body.append(scf_dialect.YieldOp.build())


def _emit_kernel(module: ModuleOp, name: str, rng: random.Random,
                 config: GeneratorConfig, budget: _Budget) -> None:
    """A SYCL-style kernel: accessor-like memref args, loop nest, load/store."""
    elem = f32()
    acc_type = memref((64, 64), elem)
    kernel = FuncOp.build(name, [acc_type, acc_type, acc_type, index()],
                          arg_names=["accA", "accB", "accC", "n"])
    kernel.set_attr("sycl.kernel", BoolAttr(True))
    module.append(kernel)
    body = kernel.body
    a, b, c, n = kernel.arguments

    budget.take(12)
    zero = body.append(arith.ConstantOp.build(0, index()))
    step = body.append(arith.ConstantOp.build(1, index()))
    outer = body.append(scf_dialect.ForOp.build(zero.result, n, step.result))
    inner = outer.body.append(scf_dialect.ForOp.build(
        zero.result, n, step.result))
    i = outer.induction_variable()
    j = inner.induction_variable()
    loop_body = inner.body
    load_a = loop_body.append(memref_dialect.LoadOp.build(a, [i, j]))
    load_b = loop_body.append(memref_dialect.LoadOp.build(b, [i, j]))
    product = loop_body.append(arith.MulFOp.build(load_a.result, load_b.result))
    acc = product.result
    # Duplicate address/compute chains: what CSE cleans up in real kernels.
    extra = max(0, min(budget.remaining // 2,
                       int(config.duplicate_density * 20)))
    for _ in range(extra):
        if not budget.take(2):
            break
        dup = loop_body.append(arith.MulFOp.build(load_a.result, load_b.result))
        acc_op = loop_body.append(arith.AddFOp.build(acc, dup.result))
        acc = acc_op.result
    loop_body.append(memref_dialect.StoreOp.build(acc, c, [i, j]))
    loop_body.append(scf_dialect.YieldOp.build())
    outer.body.append(scf_dialect.YieldOp.build())
    body.append(ReturnOp.build())


def generate_module(config: GeneratorConfig) -> ModuleOp:
    """Generate a deterministic synthetic module for ``config``."""
    rng = random.Random(config.seed)
    module = ModuleOp.build()
    budget = _Budget(config.num_ops)

    for k in range(config.num_kernels):
        _emit_kernel(module, f"bench_kernel_{k}", rng, config, budget)

    function = FuncOp.build("bench_main", [i64(), i64(), i64()],
                            arg_names=["x", "y", "z"])
    module.append(function)
    body = function.body
    pool: List[Value] = list(function.arguments)
    seed_const = body.append(arith.ConstantOp.build(7, i64()))
    pool.append(seed_const.result)
    while budget.remaining > 0:
        _emit_compute(body, pool, rng, config, budget, depth=0)
    body.append(ReturnOp.build())
    return module


def count_ops(module: ModuleOp) -> int:
    return sum(1 for _ in module.walk(include_self=False))
