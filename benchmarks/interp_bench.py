"""Interpreter benchmark scenarios (the BENCH_5 scenario family).

Times the :mod:`repro.interp` execution engine on representative
kernels:

* ``interp/vecadd-exec`` — a memory-bound 1-D kernel over many work
  items (dispatch-loop throughput; ``ops_per_second`` is the headline
  number);
* ``interp/gemm-exec``   — a compute-bound ND-range kernel with a loop
  nest and work-group semantics;
* ``interp/differential-gemm`` — a full differential check (pre-run +
  ``sycl-mlir`` pipeline on a clone + post-run + comparison), so the
  overhead of "prove the pipeline preserved semantics" is itself a
  tracked regression scenario.

Each record carries ``seconds`` (best of N), the interpreted op count
and ``ops_per_second``; ``benchmarks.compare`` gates on the seconds.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from repro.interp import ExecutionSpec, run_differential
from repro.interp.differential import synthesize_spec
from repro.interp.engine import ExecutionEngine

from .kernels import build_gemm_module, build_vecadd_module


def _vecadd_module(size: int):
    return build_vecadd_module(size)


def _gemm_module(size: int, work_group: int):
    module, specs = build_gemm_module(size, work_group)
    return module, "gemm", specs["gemm"]


def _time_best(callable_: Callable[[], int], repeats: int):
    """Best-of-``repeats`` (seconds, ops-of-best-run)."""
    best = float("inf")
    ops = 0
    for _ in range(repeats):
        start = time.perf_counter()
        run_ops = callable_()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
            ops = run_ops
    return best, ops


def _exec_scenario(name: str, module, entry: str, spec: ExecutionSpec,
                   repeats: int) -> Dict:
    function = module.lookup_symbol(entry)
    resolved = synthesize_spec(function, spec)
    # Pinned to the scalar interpreter tier: these are the BENCH_5
    # denominators the jit/vector scenarios (benchmarks.jit_bench)
    # report their speedups against.
    engine = ExecutionEngine(module, tier="interp")

    def run() -> int:
        execution = engine.execute(function, resolved)
        return execution.counters["ops"]

    seconds, ops = _time_best(run, repeats)
    return _record(name, seconds, ops)


def _differential_scenario(name: str, module, entry: str,
                           spec: ExecutionSpec, pipeline: str,
                           repeats: int) -> Dict:
    def run() -> int:
        # run_differential raises if nothing executed or results differ.
        run_differential(module, pipeline, specs={entry: spec})
        return 0

    seconds, _ = _time_best(run, repeats)
    record = _record(name, seconds, 0)
    record["pipeline"] = pipeline
    return record


def _record(name: str, seconds: float, ops: int) -> Dict:
    record: Dict = {"name": name, "seconds": seconds, "ops": ops}
    if ops and seconds > 0:
        record["ops_per_second"] = ops / seconds
    return record


def run_interp_suite(repeats: int = 3, smoke: bool = False) -> Dict:
    """The interpreter scenario family for ``BENCH_*.json``.

    ``smoke`` shrinks the workloads for CI sanity runs; the tracked
    baseline (and the benchmark gate) uses the full sizes.
    """
    vec_size = 256 if smoke else 2048
    gemm_size = 4 if smoke else 8
    work_group = 2 if smoke else 4

    records: List[Dict] = []
    vec_module, vec_entry, vec_spec = _vecadd_module(vec_size)
    records.append(_exec_scenario("vecadd-exec", vec_module, vec_entry,
                                  vec_spec, repeats))
    gemm_module, gemm_entry, gemm_spec = _gemm_module(gemm_size, work_group)
    records.append(_exec_scenario("gemm-exec", gemm_module, gemm_entry,
                                  gemm_spec, repeats))
    records.append(_differential_scenario(
        "differential-gemm", gemm_module, gemm_entry, gemm_spec,
        "sycl-mlir", repeats))
    # Differential overhead relative to one plain execution of the same
    # kernel (informational; the gate tracks the absolute seconds).
    exec_seconds = records[1]["seconds"]
    if exec_seconds > 0:
        records[2]["overhead_vs_exec"] = \
            records[2]["seconds"] / exec_seconds
    return {
        "config": {"vecadd_items": vec_size, "gemm_size": gemm_size,
                   "work_group": work_group, "smoke": smoke},
        "records": records,
    }


def summarize(results: Dict) -> Optional[str]:
    interp = results.get("interp")
    if not interp:
        return None
    parts = []
    for record in interp.get("records", ()):
        text = f"{record['name']} {record['seconds']:.4f}s"
        if "ops_per_second" in record:
            text += f" ({record['ops_per_second']:.0f} ops/s)"
        parts.append(text)
    return "interp: " + ", ".join(parts)
