"""Benchmark regression gate: compare a fresh run against a committed
``BENCH_*.json`` baseline.

Tracked scenarios are flattened to ``name -> seconds``:

* per-size phase timings: ``"<num_ops>ops/<phase>"`` (print, parse, the
  pass combinations, the full pipeline);
* the parallel scenario: ``"parallel/jobs=<N>"``;
* the cache scenario: ``"cache/cold"`` and ``"cache/warm"``;
* the interpreter scenarios: ``"interp/<name>"``;
* the tiered-execution scenarios: ``"jit/<name>"`` / ``"vector/<name>"``;
* the lowering scenarios: ``"lower/<name>"`` (pipeline, lowered-CFG
  execution, exporter round trip);
* the static-analysis scenarios: ``"lint/listing-sweep"`` (cold) and
  ``"lint/listing-sweep-warm"`` (analysis-manager hits).

A scenario regresses when ``candidate > baseline * (1 + threshold)``.
Timings below ``--min-seconds`` in the *baseline* are skipped — at
micro-benchmark scale the gate would only measure scheduler noise.  The
exit status is the contract: 0 clean, 1 regression, 2 usage error — CI
fails the build on 1.

``--normalize`` corrects for *machine drift*: a committed baseline was
recorded on one host, CI re-times on another, and hosted runners vary
well beyond any useful threshold.  Each scenario's ratio is divided by
the **median ratio across all gated scenarios** before thresholding, so
a uniformly slower machine cancels out and only scenarios that regressed
*relative to the rest of the suite* fail.  The trade-off is explicit: a
change that slows every scenario by the same factor is invisible to the
normalized gate (the suite spans print/parse/pass/cache scenarios, so a
real regression is very rarely that uniform); the raw median drift is
printed so it can be eyeballed.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from typing import Dict, List, Optional

#: Default tolerated slowdown before the gate fails (25%).
DEFAULT_THRESHOLD = 0.25

#: Baseline timings shorter than this are too noisy to gate on.
DEFAULT_MIN_SECONDS = 0.005


def flatten_scenarios(results: Dict) -> Dict[str, float]:
    """``scenario name -> seconds`` for every tracked timing in a
    ``BENCH_*.json`` payload."""
    scenarios: Dict[str, float] = {}
    for record in results.get("records", ()):
        size = record.get("config", {}).get("num_ops", record.get("num_ops"))
        for phase, seconds in record.get("timings_s", {}).items():
            scenarios[f"{size}ops/{phase}"] = seconds
    concurrency = results.get("concurrency", {})
    parallel = concurrency.get("parallel", {})
    for jobs, seconds in parallel.get("jobs_timings_s", {}).items():
        scenarios[f"parallel/jobs={jobs}"] = seconds
    cache = concurrency.get("cache", {})
    for phase in ("cold", "warm"):
        if f"{phase}_s" in cache:
            scenarios[f"cache/{phase}"] = cache[f"{phase}_s"]
    interp = results.get("interp", {})
    for record in interp.get("records", ()):
        name = record.get("name")
        seconds = record.get("seconds")
        if name is not None and seconds is not None:
            scenarios[f"interp/{name}"] = seconds
    # Families whose record names already carry their prefix
    # ("lint/listing-sweep", "process/splice-jobs4",
    # "disk/warm-fresh-process", "serve/round-trip",
    # "jit/vecadd-exec", "vector/gemm-exec", "lower/pipeline-gemm").
    for family in ("static", "process", "serve", "jit", "lower"):
        for record in results.get(family, {}).get("records", ()):
            name = record.get("name")
            seconds = record.get("seconds")
            if name is not None and seconds is not None:
                scenarios[name] = seconds
    return scenarios


def scenarios_missing_from_baseline(baseline: Dict,
                                    candidate: Dict) -> List[str]:
    """Tracked scenarios the candidate has but the baseline lacks.

    A non-empty result means the committed ``BENCH_*.json`` predates a
    scenario family (e.g. a fresh run with ``--interp`` compared against
    a pre-interpreter baseline) — the gate reports that clearly instead
    of silently not gating the new scenarios.
    """
    baseline_names = set(flatten_scenarios(baseline))
    return sorted(name for name in flatten_scenarios(candidate)
                  if name not in baseline_names)


def scenarios_missing_from_candidate(baseline: Dict,
                                     candidate: Dict) -> List[str]:
    """Tracked baseline scenarios the candidate run did not produce.

    These stay ungated (partial re-runs are a legitimate workflow), but
    the gate prints them so a runner invocation that silently dropped a
    scenario family (e.g. a missing ``--interp``) is visible in the log.
    """
    candidate_names = set(flatten_scenarios(candidate))
    return sorted(name for name in flatten_scenarios(baseline)
                  if name not in candidate_names)


def compare(baseline: Dict, candidate: Dict,
            threshold: float = DEFAULT_THRESHOLD,
            min_seconds: float = DEFAULT_MIN_SECONDS,
            normalize: bool = False) -> List[Dict]:
    """Rows for every scenario present in both payloads.

    Each row carries ``name``, ``baseline_s``, ``candidate_s``, ``ratio``,
    ``gated_ratio`` (drift-corrected when ``normalize``) and ``status``
    (``ok`` / ``regression`` / ``skipped``).
    """
    baseline_scenarios = flatten_scenarios(baseline)
    candidate_scenarios = flatten_scenarios(candidate)
    rows: List[Dict] = []
    for name, base_seconds in sorted(baseline_scenarios.items()):
        cand_seconds = candidate_scenarios.get(name)
        if cand_seconds is None:
            continue
        ratio = (cand_seconds / base_seconds) if base_seconds > 0 else 0.0
        rows.append({
            "name": name,
            "baseline_s": base_seconds,
            "candidate_s": cand_seconds,
            "ratio": ratio,
            "gated": base_seconds >= min_seconds,
        })
    gated_ratios = [row["ratio"] for row in rows if row["gated"]]
    drift = (statistics.median(gated_ratios)
             if normalize and gated_ratios else 1.0)
    for row in rows:
        row["drift"] = drift
        row["gated_ratio"] = row["ratio"] / drift if drift > 0 else 0.0
        if not row["gated"]:
            row["status"] = "skipped"
        elif row["gated_ratio"] > 1.0 + threshold:
            row["status"] = "regression"
        else:
            row["status"] = "ok"
        del row["gated"]
    return rows


def format_table(rows: List[Dict], normalized: bool = False) -> str:
    width = max([len(row["name"]) for row in rows] + [8])
    header = (f"{'scenario':<{width}}  {'baseline':>10}  {'candidate':>10}"
              f"  {'ratio':>7}")
    if normalized:
        header += f"  {'adj':>7}"
    lines = [header + "  status"]
    for row in rows:
        line = (f"{row['name']:<{width}}  {row['baseline_s']:>9.4f}s"
                f"  {row['candidate_s']:>9.4f}s  {row['ratio']:>6.2f}x")
        if normalized:
            line += f"  {row['gated_ratio']:>6.2f}x"
        lines.append(line + f"  {row['status']}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.compare",
        description="Fail on >threshold slowdown vs a BENCH_*.json "
                    "baseline.")
    parser.add_argument("baseline", help="committed BENCH_*.json")
    parser.add_argument("candidate", help="freshly produced results JSON")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="tolerated fractional slowdown "
                             "(default 0.25 = 25%%)")
    parser.add_argument("--min-seconds", type=float,
                        default=DEFAULT_MIN_SECONDS,
                        help="skip scenarios whose baseline is shorter "
                             "than this (default 0.005)")
    parser.add_argument("--normalize", action="store_true",
                        help="divide each ratio by the median ratio across "
                             "gated scenarios before thresholding, "
                             "cancelling machine drift between the "
                             "baseline host and this one")
    parser.add_argument("--allow-new-scenarios", action="store_true",
                        help="tolerate candidate scenarios absent from the "
                             "baseline (they are reported but not gated); "
                             "without this flag a stale baseline is a "
                             "usage error")
    args = parser.parse_args(argv)

    try:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        with open(args.candidate, "r", encoding="utf-8") as handle:
            candidate = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"benchmarks.compare: {exc}", file=sys.stderr)
        return 2

    missing = scenarios_missing_from_baseline(baseline, candidate)
    if missing:
        message = (
            f"benchmarks.compare: baseline {args.baseline!r} lacks "
            f"{len(missing)} scenario(s) present in the fresh run: "
            f"{', '.join(missing)} — regenerate the baseline "
            "(commit a new BENCH_<pr>.json) or pass "
            "--allow-new-scenarios to leave them ungated")
        if not args.allow_new_scenarios:
            print(message, file=sys.stderr)
            return 2
        print(message.replace("benchmarks.compare:",
                              "benchmarks.compare: note:"))
    unproduced = scenarios_missing_from_candidate(baseline, candidate)
    if unproduced:
        print("benchmarks.compare: note: candidate did not produce "
              f"{len(unproduced)} baseline scenario(s), left ungated: "
              f"{', '.join(unproduced)}")

    rows = compare(baseline, candidate, threshold=args.threshold,
                   min_seconds=args.min_seconds, normalize=args.normalize)
    if not rows:
        print("benchmarks.compare: no common scenarios between baseline "
              "and candidate", file=sys.stderr)
        return 2
    print(format_table(rows, normalized=args.normalize))
    if args.normalize:
        print(f"\nmedian machine drift: {rows[0]['drift']:.2f}x "
              "(ratios above are thresholded after dividing by this)")
    regressions = [row for row in rows if row["status"] == "regression"]
    if regressions:
        names = ", ".join(row["name"] for row in regressions)
        print(f"\nFAIL: {len(regressions)} scenario(s) regressed more than "
              f"{args.threshold:.0%}: {names}", file=sys.stderr)
        return 1
    print(f"\nOK: no scenario regressed more than {args.threshold:.0%} "
          f"({sum(1 for row in rows if row['status'] == 'skipped')} "
          "skipped as sub-threshold)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
