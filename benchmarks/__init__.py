"""Benchmark harness for the reproduction's compiler infrastructure.

``benchmarks.generate`` builds synthetic-but-valid IR modules with tunable
op count, loop nesting depth, CSE-duplicate density and SYCL-style kernel
shapes; ``benchmarks.runner`` times parse / print / canonicalize / CSE /
full-pipeline runs over them and emits a ``BENCH_<n>.json`` trajectory
file.  ``benchmarks.legacy`` keeps the pre-worklist restart-sweep drivers
alive so speedups can be attributed to the driver strategy, not to noise.

Run it with::

    PYTHONPATH=src:. python -m benchmarks.runner --out BENCH_2.json
    PYTHONPATH=src:. python -m benchmarks.runner --smoke   # CI-sized
"""

from .generate import GeneratorConfig, generate_module

__all__ = ["GeneratorConfig", "generate_module"]
