"""Lowering benchmark scenarios (the BENCH_10 scenario family).

Prices the target subsystem (``docs/lowering.md``) on the BENCH_5
kernels so the conversion passes and the exporter are tracked by the
same regression gate as every other phase:

* ``lower/pipeline-vecadd`` / ``lower/pipeline-gemm`` — the full
  ``lower-to-llvm`` pipeline (accessor lowering, affine lowering,
  scf→cf expansion, arith/memref/func→llvm conversion) on a fresh
  module per repeat;
* ``lower/exec-vecadd`` / ``lower/exec-gemm`` — executing the fully
  lowered CFG module through the engine, with a structured-module
  reference timed alongside (``structured_seconds`` /
  ``overhead_vs_structured``) — the price of running branch-dispatch
  IR instead of structured regions;
* ``lower/emit-mlir`` / ``lower/parse-mlir`` — exporting the lowered
  GEMM in upstream-MLIR clause order and parsing it back, the
  round-trip contract the export tests enforce byte-for-byte.

Record ``seconds`` are what ``benchmarks/compare.py`` gates.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List

from repro.interp.differential import synthesize_spec
from repro.interp.engine import ExecutionEngine
from repro.ir import parse_module
from repro.target import emit_mlir
from repro.transforms.pipelines import build_named_pipeline

from .kernels import build_gemm_module, build_vecadd_module


def _time_best(callable_: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _lower(module):
    """``lower-to-llvm`` on a clone; the input module stays structured."""
    lowered = module.clone({})
    build_named_pipeline("lower-to-llvm", None, 1).run(lowered)
    return lowered


def _exec_scenario(name: str, module, entry: str, resolved,
                   repeats: int, tier: str = "interp") -> Dict:
    # Mirrors jit_bench._tier_scenario: one engine, an untimed warmup
    # populating any caches, then a best-of-N warm loop.  Both sides of
    # the structured-vs-lowered comparison run the scalar tier (the JIT
    # and vector tiers decline CFG functions anyway), so the overhead
    # ratio prices block dispatch, not a tier change.
    engine = ExecutionEngine(module, tier=tier)
    function = module.lookup_symbol(entry)
    warmup = engine.execute(function, resolved)
    seconds = _time_best(lambda: engine.execute(function, resolved),
                         repeats)
    record: Dict = {"name": name, "seconds": seconds,
                    "tier": warmup.tier,
                    "ops": warmup.counters["ops"]}
    if seconds > 0:
        record["ops_per_second"] = record["ops"] / seconds
    return record


def run_lower_suite(repeats: int = 3, smoke: bool = False) -> Dict:
    """The lowering scenario family for ``BENCH_*.json``.

    Sizes mirror :func:`benchmarks.jit_bench.run_jit_suite` so the
    lowered-execution numbers share denominators with the tier family.
    """
    vec_size = 256 if smoke else 2048
    gemm_size = 4 if smoke else 8
    work_group = 2 if smoke else 4

    vec_module, vec_entry, vec_spec = build_vecadd_module(vec_size)
    gemm_module, gemm_specs = build_gemm_module(gemm_size, work_group)
    workloads = [
        ("vecadd", vec_module, vec_entry, vec_spec),
        ("gemm", gemm_module, "gemm", gemm_specs["gemm"]),
    ]

    records: List[Dict] = []
    for label, module, entry, spec in workloads:
        records.append({
            "name": f"lower/pipeline-{label}",
            "seconds": _time_best(lambda m=module: _lower(m), repeats),
        })

        # Launch configuration resolved once from the structured module
        # and reused for the lowered one — the differential harness's
        # contract, so both executions see identical inputs.
        resolved = synthesize_spec(module.lookup_symbol(entry), spec)
        reference = _exec_scenario(f"structured-ref/{label}", module,
                                   entry, resolved, repeats)
        lowered = _lower(module)
        record = _exec_scenario(f"lower/exec-{label}", lowered, entry,
                                resolved, repeats)
        record["structured_seconds"] = reference["seconds"]
        if reference["seconds"] > 0:
            record["overhead_vs_structured"] = (
                record["seconds"] / reference["seconds"])
        records.append(record)

    # Exporter cost on the richest output: the lowered GEMM CFG.
    lowered_gemm = _lower(gemm_module)
    records.append({
        "name": "lower/emit-mlir",
        "seconds": _time_best(lambda: emit_mlir(lowered_gemm), repeats),
    })
    exported = emit_mlir(lowered_gemm)
    records.append({
        "name": "lower/parse-mlir",
        "seconds": _time_best(lambda: parse_module(exported), repeats),
        "ir_bytes": len(exported),
    })

    return {
        "config": {"vecadd_items": vec_size, "gemm_size": gemm_size,
                   "work_group": work_group, "smoke": smoke},
        "records": records,
    }


def summarize(results: Dict) -> str:
    """One human line for the runner's ``--out`` summary."""
    records = {record["name"]: record
               for record in results.get("lower", {}).get("records", ())}
    parts = []
    for name in ("lower/pipeline-gemm", "lower/exec-gemm",
                 "lower/emit-mlir"):
        record = records.get(name)
        if record is None:
            continue
        overhead = record.get("overhead_vs_structured")
        suffix = f" ({overhead:.1f}x vs structured)" if overhead else ""
        parts.append(f"{name} {record['seconds']:.5f}s{suffix}")
    return f"lowering: {', '.join(parts)}" if parts else ""
