"""Shared interpreter workload kernels.

One home for the vecadd / GEMM builders so the BENCH_5 benchmark
scenarios, the interpreter/differential tests (via ``tests/helpers.py``)
and the CI differential-smoke job all execute the *same* kernels — a
shape or ``sycl.work_group_size`` change here propagates everywhere.
"""

from __future__ import annotations

from repro.dialects import builtin
from repro.frontend.kernel_builder import AccessorParam, KernelSource
from repro.interp import ExecutionSpec
from repro.ir import f32, i64, int_array_attr, verify


def build_vecadd_source() -> KernelSource:
    """``c[i] = a[i] + b[i]`` over a 1-D range."""

    def body(k):
        i = k.global_id(0)
        k.store("c", [i], k.load("a", [i]) + k.load("b", [i]))

    return KernelSource(
        "vecadd", body=body, nd_range_dims=1,
        accessors=[AccessorParam("a", 1, f32(), "read"),
                   AccessorParam("b", 1, f32(), "read"),
                   AccessorParam("c", 1, f32(), "write")])


def build_vecadd_module(size: int):
    """``(module, entry name, spec)`` for a ``size``-item vecadd launch."""
    module = builtin.ModuleOp.build("kernels")
    module.append(build_vecadd_source().build())
    verify(module)
    spec = ExecutionSpec(global_size=(size,),
                         buffers={name: (size,) for name in "abc"})
    return module, "vecadd", spec


def build_gemm_module(size: int = 8, work_group: int = 4):
    """An nd_item GEMM whose ``sycl.work_group_size`` attribute makes
    Loop Internalization fire; returns ``(module, {"gemm": spec})``."""

    def body(k):
        i = k.global_id(0)
        j = k.global_id(1)
        with k.loop(0, size) as kk:
            value = k.load("C", [i, j]) \
                + k.load("A", [i, kk]) * k.load("B", [kk, j])
            k.store("C", [i, j], value)

    source = KernelSource(
        "gemm", body=body, nd_range_dims=2,
        accessors=[AccessorParam("A", 2, f32(), "read"),
                   AccessorParam("B", 2, f32(), "read"),
                   AccessorParam("C", 2, f32(), "read_write")])
    function = source.build()
    function.set_attr("sycl.work_group_size",
                      int_array_attr([work_group, work_group], i64()))
    module = builtin.ModuleOp.build("kernels")
    module.append(function)
    verify(module)
    spec = ExecutionSpec(global_size=(size, size),
                         local_size=(work_group, work_group),
                         buffers={name: (size, size) for name in "ABC"})
    return module, {"gemm": spec}
