"""Benchmark runner: times the compiler's hot phases over synthetic IR.

For every configuration the runner generates a module (deterministic per
seed), then times, each on a freshly generated copy:

* ``print``   — :class:`repro.ir.Printer` on the module;
* ``parse``   — :func:`repro.ir.parse_module` of the printed text;
* ``canonicalize`` / ``cse`` / ``canonicalize+cse`` — the optimization
  passes through :class:`repro.transforms.PassManager`, so the per-pass
  numbers come from ``CompileReport.timings`` (keyed by pipeline
  position, ``"0: canonicalize"``, so duplicate passes stay distinct);
* ``pipeline:adaptivecpp-aot`` — a full named pipeline end to end.

With ``--compare-legacy`` the restart-sweep drivers preserved in
:mod:`benchmarks.legacy` run on the same inputs, attributing speedups to
the worklist rewrite engine rather than to machine noise.

Results are written as JSON (``BENCH_2.json`` by convention — the number
is the PR that produced it) so later PRs can extend the trajectory.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Callable, Dict, List, Optional

from repro.dialects import all_dialects  # noqa: F401 - registers ops/types
from repro.ir import Printer, parse_module, verify
from repro.transforms.canonicalize import CanonicalizePass
from repro.transforms.compile_cache import CompileCache
from repro.transforms.cse import CSEPass
from repro.transforms.pass_manager import CompileReport, PassManager
from repro.transforms.pipelines import build_named_pipeline, parse_pass_pipeline

from .generate import GeneratorConfig, count_ops, generate_module

#: Default size ladder; ``--smoke`` keeps only the first entry.
DEFAULT_SIZES = (500, 2000, 5000)

#: Job counts exercised by the parallel-speedup scenario.
DEFAULT_JOBS = (1, 2, 4)

#: The per-function pipeline used by the concurrency scenarios.
CONCURRENCY_PIPELINE = "builtin.module(func.func(canonicalize,cse,dce))"


def _time(callable_: Callable[[], object], repeats: int,
          setup: Optional[Callable[[], object]] = None) -> float:
    """Best-of-``repeats`` wall time in seconds.

    ``setup`` runs outside the timed region before every repeat and its
    return value is passed to ``callable_`` — pass timings must not charge
    for regenerating the input module.
    """
    best = float("inf")
    for _ in range(repeats):
        argument = setup() if setup is not None else None
        start = time.perf_counter()
        if setup is not None:
            callable_(argument)
        else:
            callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _time_passes(config: GeneratorConfig, passes,
                 repeats: int) -> float:
    return _time(lambda module: PassManager(list(passes)).run(module),
                 repeats, setup=lambda: generate_module(config))


def _run_passes(config: GeneratorConfig, passes) -> CompileReport:
    module = generate_module(config)
    return PassManager(list(passes)).run(module)


def bench_config(config: GeneratorConfig, repeats: int = 3,
                 compare_legacy: bool = False,
                 check: bool = False) -> Dict:
    """Benchmark one generator configuration; returns a JSON-able record."""
    module = generate_module(config)
    if check:
        verify(module)
    num_ops = count_ops(module)
    text = Printer().print_module(module)

    timings: Dict[str, float] = {}
    timings["print"] = _time(lambda: Printer().print_module(module), repeats)
    timings["parse"] = _time(lambda: parse_module(text), repeats)
    timings["canonicalize"] = _time_passes(
        config, [CanonicalizePass()], repeats)
    timings["cse"] = _time_passes(config, [CSEPass()], repeats)
    timings["canonicalize+cse"] = _time_passes(
        config, [CanonicalizePass(), CSEPass()], repeats)
    timings["pipeline:adaptivecpp-aot"] = _time(
        lambda module: build_named_pipeline("adaptivecpp-aot").run(module),
        repeats, setup=lambda: generate_module(config))

    # Per-pass breakdown for the combined run (CompileReport.timings).
    report = _run_passes(config, [CanonicalizePass(), CSEPass()])
    pass_timings = dict(report.timings)
    statistics = {f"{s.pass_name}.{s.name}": s.value
                  for s in report.statistics}

    record: Dict = {
        "config": config.describe(),
        "num_ops": num_ops,
        "ir_bytes": len(text),
        "timings_s": timings,
        "pass_timings_s": pass_timings,
        "statistics": statistics,
    }

    if compare_legacy:
        from . import legacy

        legacy_timings: Dict[str, float] = {}
        legacy_timings["canonicalize+cse"] = _time(
            legacy.run_legacy_canonicalize_cse,
            repeats, setup=lambda: generate_module(config))
        record["legacy_timings_s"] = legacy_timings
        worklist = timings["canonicalize+cse"]
        if worklist > 0:
            record["legacy_speedup"] = (
                legacy_timings["canonicalize+cse"] / worklist)
    return record


def bench_parallel(config: GeneratorConfig,
                   jobs_list=DEFAULT_JOBS, repeats: int = 3) -> Dict:
    """Parallel-speedup scenario: the same per-function pipeline at
    increasing ``jobs``, on a many-function module.

    CPython's GIL serializes the pure-Python pass bodies, so thread-pool
    speedups here measure scheduling overhead rather than multi-core
    scaling; the scenario exists to keep ``--jobs`` overhead bounded (a
    tracked regression scenario) and to light up on free-threaded builds.
    """
    module = generate_module(config)
    num_functions = sum(1 for op in module.walk(include_self=False)
                        if op.name == "func.func")
    jobs_timings: Dict[str, float] = {}
    for jobs in jobs_list:
        manager = parse_pass_pipeline(CONCURRENCY_PIPELINE)
        manager.jobs = jobs
        try:
            jobs_timings[str(jobs)] = _time(
                lambda m, manager=manager: manager.run(m),
                repeats, setup=lambda: generate_module(config))
        finally:
            manager.close()
    serial_key = str(jobs_list[0])
    serial = jobs_timings[serial_key]
    speedups = {key: (serial / value if value > 0 else 0.0)
                for key, value in jobs_timings.items() if key != serial_key}
    return {
        "config": config.describe(),
        "pipeline": CONCURRENCY_PIPELINE,
        "num_functions": num_functions,
        "jobs_timings_s": jobs_timings,
        "speedup_vs_serial": speedups,
    }


def bench_cache(config: GeneratorConfig, repeats: int = 3,
                jobs: int = 1) -> Dict:
    """Cache scenario: cold compile (miss + store) vs warm compile (hit).

    Every repeat regenerates the input module, so the warm timing is a
    true fingerprint-keyed lookup + splice on fresh, structurally
    identical IR — the batch-driver situation ``repro-opt
    --split-input-file`` hits.
    """
    def manager_with(cache: CompileCache) -> PassManager:
        manager = parse_pass_pipeline(CONCURRENCY_PIPELINE)
        manager.jobs = jobs
        manager.cache = cache
        return manager

    def cold_setup():
        # Fresh cache per repeat: always a miss.
        return (manager_with(CompileCache()), generate_module(config))

    cold = _time(lambda pair: pair[0].run(pair[1]), repeats,
                 setup=cold_setup)

    warm_cache = CompileCache()
    primer = manager_with(warm_cache)
    primer.run(generate_module(config))
    warm_manager = manager_with(warm_cache)
    warm = _time(lambda m: warm_manager.run(m), repeats,
                 setup=lambda: generate_module(config))
    warm_manager.close()
    primer.close()
    return {
        "config": config.describe(),
        "pipeline": CONCURRENCY_PIPELINE,
        "cold_s": cold,
        "warm_s": warm,
        "speedup": (cold / warm) if warm > 0 else 0.0,
        "cache": warm_cache.describe(),
    }


def bench_static(repeats: int = 3, num_ops: int = 8000,
                 num_kernels: int = 32, seed: int = 0) -> Dict:
    """The BENCH_6 scenario family: the full lint-rule sweep over the
    kernel listings plus a synthetic module, cold vs warm.

    Cold runs give every sweep a fresh :class:`AnalysisManager`; the warm
    run reuses one whose entries were primed on the same (unchanged)
    modules, so the delta is exactly the analysis-manager hit path the
    pass managers and ``repro-lint`` depend on.
    """
    from repro.analysis import AnalysisManager, run_lint

    from .kernels import build_gemm_module, build_vecadd_module

    modules = [build_vecadd_module(256)[0], build_gemm_module(8, 4)[0]]
    config = GeneratorConfig(num_ops=num_ops, num_kernels=num_kernels,
                             nesting_depth=1, seed=seed)
    modules.append(generate_module(config))

    def sweep(manager: "AnalysisManager") -> int:
        return sum(len(run_lint(module, am=manager)) for module in modules)

    records: List[Dict] = []
    records.append({
        "name": "lint/listing-sweep",
        "seconds": _time(lambda manager: sweep(manager), repeats,
                         setup=AnalysisManager),
    })

    warm_manager = AnalysisManager()
    findings = sweep(warm_manager)  # prime the cache
    records.append({
        "name": "lint/listing-sweep-warm",
        "seconds": _time(lambda: sweep(warm_manager), repeats),
    })

    cold, warm = (record["seconds"] for record in records)
    return {
        "modules": len(modules),
        "findings": findings,
        "records": records,
        "warm_speedup": (cold / warm) if warm > 0 else 0.0,
        "analysis_manager": warm_manager.describe(),
    }


def bench_process(repeats: int = 3, jobs: int = 4,
                  num_functions: int = 64, num_ops: int = 4000,
                  num_segments: int = 6, segment_ops: int = 1500,
                  seed: int = 0) -> Dict:
    """The BENCH_7 scenario family: the supervised process tier.

    Four scenarios, all on the BENCH_4 concurrency shapes:

    * ``process/serial`` — the serial baseline (same module, jobs=1);
    * ``process/splice-jobs{N}`` — function-splice mode: per-function
      text ships to worker processes, results re-parse and splice back
      (byte-identical to serial by contract);
    * ``process/batch-serial`` vs ``process/batch-jobs{N}`` — whole
      segments compiled in workers, the parent only stitching printed
      text (the ``repro-opt --split-input-file --parallel-tier
      process`` path, and the first target for real multi-core wins);
    * ``process/splice-faulty`` — splice mode with one injected
      transient worker fault, pricing a supervised recovery.

    ``cpu_count`` is recorded alongside: on a single-CPU host the
    process tier cannot beat serial (transport is pure overhead), and
    the honest sub-1x numbers only mean something next to the core
    count they were measured on.
    """
    import os

    from repro.faults import fault_plan
    from repro.transforms.executor import (
        ExecutorOptions,
        SupervisedExecutor,
        WorkUnit,
        validate_segment_result,
    )

    config = GeneratorConfig(num_ops=num_ops, num_kernels=num_functions,
                             nesting_depth=1, seed=seed)
    records: List[Dict] = []

    serial_manager = parse_pass_pipeline(CONCURRENCY_PIPELINE)
    try:
        serial = _time(lambda m: serial_manager.run(m), repeats,
                       setup=lambda: generate_module(config))
    finally:
        serial_manager.close()
    records.append({"name": "process/serial", "seconds": serial})

    def process_manager():
        manager = parse_pass_pipeline(CONCURRENCY_PIPELINE)
        manager.jobs = jobs
        manager.tier = "process"
        return manager

    manager = process_manager()
    try:
        splice = _time(lambda m: manager.run(m), repeats,
                       setup=lambda: generate_module(config))
    finally:
        manager.close()
    records.append({"name": f"process/splice-jobs{jobs}",
                    "seconds": splice})

    # Batch-segment mode: one printed module per segment, compiled
    # whole in a worker; serial reference is the same parse/run/print
    # loop in-process.
    segment_texts = [
        Printer().print_module(generate_module(GeneratorConfig(
            num_ops=segment_ops, num_kernels=4, nesting_depth=1,
            seed=seed + index))) + "\n"
        for index in range(num_segments)
    ]

    def compile_batch_serial() -> None:
        manager = parse_pass_pipeline(CONCURRENCY_PIPELINE)
        try:
            for text in segment_texts:
                module = parse_module(text)
                manager.run(module)
                Printer().print_module(module)
        finally:
            manager.close()

    batch_serial = _time(compile_batch_serial, repeats)
    records.append({"name": "process/batch-serial",
                    "seconds": batch_serial})

    spec = CONCURRENCY_PIPELINE

    def compile_batch_process() -> None:
        executor = SupervisedExecutor(ExecutorOptions(jobs=jobs))
        try:
            units = [WorkUnit(uid=index, label=f"segment{index}",
                              kind="segment", text=text, spec=spec)
                     for index, text in enumerate(segment_texts)]
            executor.run_units(
                units, validate_segment_result,
                lambda unit, attempts, events: (_ for _ in ()).throw(
                    RuntimeError("benchmark unit degraded")))
        finally:
            executor.close()

    batch_process = _time(compile_batch_process, repeats)
    records.append({"name": f"process/batch-jobs{jobs}",
                    "seconds": batch_process})

    manager = process_manager()
    try:
        with fault_plan("executor.worker=transient"):
            faulty = _time(lambda m: manager.run(m), 1,
                           setup=lambda: generate_module(config))
    finally:
        manager.close()
    records.append({"name": "process/splice-faulty", "seconds": faulty})

    return {
        "config": config.describe(),
        "pipeline": CONCURRENCY_PIPELINE,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "num_segments": num_segments,
        "records": records,
        "speedup_vs_serial": {
            f"splice-jobs{jobs}": (serial / splice) if splice > 0 else 0.0,
            f"batch-jobs{jobs}": (batch_serial / batch_process)
            if batch_process > 0 else 0.0,
        },
    }


def run_concurrency_suite(repeats: int = 3, jobs_list=DEFAULT_JOBS,
                          num_functions: int = 64,
                          num_ops: int = 4000, seed: int = 0) -> Dict:
    """The BENCH_4 scenario family: parallel speedup + cache hits."""
    config = GeneratorConfig(num_ops=num_ops, num_kernels=num_functions,
                             nesting_depth=1, seed=seed)
    return {
        "parallel": bench_parallel(config, jobs_list=jobs_list,
                                   repeats=repeats),
        "cache": bench_cache(config, repeats=repeats),
    }


def run_suite(sizes=DEFAULT_SIZES, repeats: int = 3,
              compare_legacy: bool = False, check: bool = False,
              nesting_depth: int = 2, duplicate_density: float = 0.25,
              num_kernels: int = 2, seed: int = 0,
              concurrency: bool = False, jobs_list=DEFAULT_JOBS,
              concurrency_functions: int = 64,
              concurrency_ops: int = 4000,
              interp: bool = False, interp_smoke: bool = False,
              jit: bool = False, lower: bool = False,
              static: bool = False, process: bool = False,
              process_jobs: int = 4, process_segments: int = 6,
              process_segment_ops: int = 1500,
              serve: bool = False, serve_ops: int = 2000,
              serve_clients: int = 4,
              serve_requests_per_client: int = 3) -> Dict:
    records: List[Dict] = []
    for size in sizes:
        config = GeneratorConfig(
            num_ops=size, nesting_depth=nesting_depth,
            duplicate_density=duplicate_density,
            num_kernels=num_kernels, seed=seed)
        records.append(bench_config(config, repeats=repeats,
                                    compare_legacy=compare_legacy,
                                    check=check))
    results = {
        "schema": "repro-bench/1",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "records": records,
    }
    if concurrency:
        results["concurrency"] = run_concurrency_suite(
            repeats=repeats, jobs_list=jobs_list,
            num_functions=concurrency_functions,
            num_ops=concurrency_ops, seed=seed)
    if interp:
        from .interp_bench import run_interp_suite

        results["interp"] = run_interp_suite(repeats=repeats,
                                             smoke=interp_smoke)
    if jit:
        from .jit_bench import run_jit_suite

        results["jit"] = run_jit_suite(repeats=repeats,
                                       smoke=interp_smoke)
    if lower:
        from .lower_bench import run_lower_suite

        results["lower"] = run_lower_suite(repeats=repeats,
                                           smoke=interp_smoke)
    if static:
        results["static"] = bench_static(repeats=repeats, seed=seed)
    if process:
        results["process"] = bench_process(
            repeats=repeats, jobs=process_jobs,
            num_functions=concurrency_functions,
            num_ops=concurrency_ops, num_segments=process_segments,
            segment_ops=process_segment_ops, seed=seed)
    if serve:
        from .serve_bench import bench_serve

        results["serve"] = bench_serve(
            repeats=repeats, num_ops=serve_ops, clients=serve_clients,
            requests_per_client=serve_requests_per_client, seed=seed)
    return results


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.runner",
        description="Time parse/print/canonicalize/CSE/pipeline phases.")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write JSON results to FILE (default: stdout)")
    parser.add_argument("--sizes", default=None,
                        help="comma-separated op counts "
                             f"(default: {','.join(map(str, DEFAULT_SIZES))})")
    parser.add_argument("--repeats", type=int, default=3,
                        help="take the best of N runs (default 3)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes + 1 repeat + verification, for CI")
    parser.add_argument("--compare-legacy", action="store_true",
                        help="also time the pre-worklist restart-sweep "
                             "drivers (benchmarks.legacy)")
    parser.add_argument("--concurrency", action="store_true",
                        help="also run the parallel-speedup and cache-hit "
                             "scenario family (the BENCH_4 scenarios)")
    parser.add_argument("--interp", action="store_true",
                        help="also run the interpreter execution and "
                             "differential scenario family (the BENCH_5 "
                             "scenarios)")
    parser.add_argument("--jit", action="store_true",
                        help="also run the tiered-execution scenario "
                             "family: jit and vector tiers on the "
                             "BENCH_5 kernels (the BENCH_9 scenarios)")
    parser.add_argument("--lower", action="store_true",
                        help="also run the lowering scenario family: "
                             "the lower-to-llvm pipeline, lowered-CFG "
                             "execution and the --emit=mlir exporter "
                             "(the BENCH_10 scenarios)")
    parser.add_argument("--static", action="store_true",
                        help="also run the lint-sweep / analysis-manager "
                             "warm-vs-cold scenario family (the BENCH_6 "
                             "scenarios)")
    parser.add_argument("--process", action="store_true",
                        help="also run the supervised process-tier "
                             "scenario family (the BENCH_7 scenarios)")
    parser.add_argument("--serve", action="store_true",
                        help="also run the compile-service / disk-cache "
                             "scenario family (the BENCH_8 scenarios)")
    parser.add_argument("--jobs-list", default=None, metavar="N,N,...",
                        help="job counts for the parallel scenario "
                             f"(default: {','.join(map(str, DEFAULT_JOBS))})")
    parser.add_argument("--functions", type=int, default=64,
                        help="function count for the concurrency scenarios "
                             "(default 64)")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="embed FILE's results under 'baseline' "
                             "(a previous BENCH_*.json)")
    args = parser.parse_args(argv)

    if args.smoke:
        sizes: List[int] = [200]
        repeats = 1
        check = True
        concurrency_functions = min(args.functions, 8)
        concurrency_ops = 600
        process_segments = 2
        process_segment_ops = 300
        serve_ops = 400
        serve_requests = 2
    else:
        sizes = ([int(s) for s in args.sizes.split(",")]
                 if args.sizes else list(DEFAULT_SIZES))
        repeats = args.repeats
        check = False
        concurrency_functions = args.functions
        concurrency_ops = 4000
        process_segments = 6
        process_segment_ops = 1500
        serve_ops = 2000
        serve_requests = 3
    jobs_list = ([int(j) for j in args.jobs_list.split(",")]
                 if args.jobs_list else list(DEFAULT_JOBS))

    results = run_suite(sizes=sizes, repeats=repeats,
                        compare_legacy=args.compare_legacy, check=check,
                        concurrency=args.concurrency, jobs_list=jobs_list,
                        concurrency_functions=concurrency_functions,
                        concurrency_ops=concurrency_ops,
                        interp=args.interp, interp_smoke=args.smoke,
                        jit=args.jit, lower=args.lower,
                        static=args.static, process=args.process,
                        process_segments=process_segments,
                        process_segment_ops=process_segment_ops,
                        serve=args.serve, serve_ops=serve_ops,
                        serve_requests_per_client=serve_requests)
    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            results["baseline"] = json.load(handle)

    payload = json.dumps(results, indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload)
        summary = []
        for record in results["records"]:
            line = (f"{record['num_ops']} ops: "
                    f"canonicalize+cse {record['timings_s']['canonicalize+cse']:.4f}s")
            if "legacy_speedup" in record:
                line += (f" (legacy "
                         f"{record['legacy_timings_s']['canonicalize+cse']:.4f}s, "
                         f"{record['legacy_speedup']:.1f}x speedup)")
            summary.append(line)
        if "concurrency" in results:
            parallel = results["concurrency"]["parallel"]
            jobs = ", ".join(
                f"jobs={key}: {value:.4f}s"
                for key, value in parallel["jobs_timings_s"].items())
            summary.append(
                f"parallel ({parallel['num_functions']} functions): {jobs}")
            cached = results["concurrency"]["cache"]
            summary.append(
                f"cache: cold {cached['cold_s']:.4f}s, "
                f"warm {cached['warm_s']:.4f}s "
                f"({cached['speedup']:.1f}x on hit)")
        if "interp" in results:
            from .interp_bench import summarize

            line = summarize(results)
            if line:
                summary.append(line)
        if "jit" in results:
            from .jit_bench import summarize as summarize_jit

            line = summarize_jit(results)
            if line:
                summary.append(line)
        if "lower" in results:
            from .lower_bench import summarize as summarize_lower

            line = summarize_lower(results)
            if line:
                summary.append(line)
        if "process" in results:
            process = results["process"]
            timings = {record["name"]: record["seconds"]
                       for record in process["records"]}
            speedups = process["speedup_vs_serial"]
            jobs = process["jobs"]
            summary.append(
                f"process tier (jobs={jobs}, "
                f"{process['cpu_count']} cpu): "
                f"serial {timings['process/serial']:.4f}s, "
                f"splice {timings[f'process/splice-jobs{jobs}']:.4f}s "
                f"({speedups[f'splice-jobs{jobs}']:.2f}x), "
                f"batch {timings[f'process/batch-jobs{jobs}']:.4f}s "
                f"({speedups[f'batch-jobs{jobs}']:.2f}x)")
        if "serve" in results:
            serve = results["serve"]
            timings = {record["name"]: record["seconds"]
                       for record in serve["records"]}
            summary.append(
                f"serve: disk cold {timings['disk/cold-fresh-process']:.4f}s, "
                f"warm {timings['disk/warm-fresh-process']:.4f}s "
                f"({serve['disk_warm_speedup']:.2f}x); "
                f"one-shot {timings['serve/one-shot-process']:.4f}s, "
                f"daemon {timings['serve/round-trip']:.4f}s "
                f"({serve['daemon_speedup_vs_one_shot']:.1f}x); "
                f"{serve['concurrent_requests_per_second']:.1f} req/s "
                f"at {serve['clients']} clients")
        if "static" in results:
            static = results["static"]
            timings = {record["name"]: record["seconds"]
                       for record in static["records"]}
            summary.append(
                f"lint sweep ({static['modules']} modules): "
                f"cold {timings['lint/listing-sweep']:.4f}s, "
                f"warm {timings['lint/listing-sweep-warm']:.4f}s "
                f"({static['warm_speedup']:.1f}x on analysis hits)")
        print("\n".join(summary), file=sys.stderr)
    else:
        sys.stdout.write(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
