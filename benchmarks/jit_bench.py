"""Execution-tier benchmark scenarios (the BENCH_9 scenario family).

Times the tiered :class:`~repro.interp.engine.ExecutionEngine` on the
BENCH_5 kernels, so the JIT and vector tiers are tracked against the
same denominators as the scalar interpreter:

* ``jit/vecadd-exec`` / ``jit/gemm-exec`` — the compile-to-Python JIT
  tier on the BENCH_5 workloads (the headline ``speedup_vs_interp``
  fields price the whole tier, cached-executable lookup included: the
  engine is constructed once and the timing loop re-executes through
  its warm :class:`~repro.interp.jit.ExecutableCache`);
* ``vector/vecadd-exec`` / ``vector/gemm-exec`` — the lockstep NumPy
  tier on the same kernels;
* ``jit/compile-cold`` — one cold compile (fingerprint + codegen +
  ``compile()``), the cost the cache amortizes away.

An in-run ``interp/<name>`` reference is timed alongside, so
``speedup_vs_interp`` is machine-independent; record ``seconds`` are
what the regression gate tracks.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List

from repro.interp.differential import synthesize_spec
from repro.interp.engine import ExecutionEngine
from repro.interp.jit import ExecutableCache, compile_executable

from .kernels import build_gemm_module, build_vecadd_module


def _time_best(callable_: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _tier_scenario(name: str, module, entry: str, resolved,
                   tier: str, repeats: int) -> Dict:
    # One engine for the whole scenario: the first (untimed) execution
    # compiles and populates the executable cache, the timed loop pays
    # only the warm path — exactly how a daemon or a repeated
    # ``repro-run`` invocation with a disk cache behaves.
    engine = ExecutionEngine(module, tier=tier)
    function = module.lookup_symbol(entry)
    warmup = engine.execute(function, resolved)
    seconds = _time_best(lambda: engine.execute(function, resolved),
                         repeats)
    record: Dict = {"name": name, "seconds": seconds,
                    "tier": warmup.tier,
                    "ops": warmup.counters["ops"]}
    if seconds > 0:
        record["ops_per_second"] = record["ops"] / seconds
    return record


def run_jit_suite(repeats: int = 3, smoke: bool = False) -> Dict:
    """The tiered-execution scenario family for ``BENCH_*.json``.

    Sizes mirror :func:`benchmarks.interp_bench.run_interp_suite` so the
    ``interp/*`` baselines of BENCH_5 are the denominators of these
    scenarios' speedups.
    """
    vec_size = 256 if smoke else 2048
    gemm_size = 4 if smoke else 8
    work_group = 2 if smoke else 4

    vec_module, vec_entry, vec_spec = build_vecadd_module(vec_size)
    gemm_module, gemm_specs = build_gemm_module(gemm_size, work_group)
    workloads = [
        ("vecadd-exec", vec_module, vec_entry,
         synthesize_spec(vec_module.lookup_symbol(vec_entry), vec_spec)),
        ("gemm-exec", gemm_module, "gemm",
         synthesize_spec(gemm_module.lookup_symbol("gemm"),
                         gemm_specs["gemm"])),
    ]

    records: List[Dict] = []
    for label, module, entry, resolved in workloads:
        reference = _tier_scenario(f"interp-ref/{label}", module, entry,
                                   resolved, "interp", repeats)
        for tier in ("jit", "vector"):
            record = _tier_scenario(f"{tier}/{label}", module, entry,
                                    resolved, tier, repeats)
            record["interp_seconds"] = reference["seconds"]
            if record["seconds"] > 0:
                record["speedup_vs_interp"] = (
                    reference["seconds"] / record["seconds"])
            records.append(record)

    # Cold-compile cost: what the executable cache saves per kernel.
    gemm_fn = gemm_module.lookup_symbol("gemm")
    records.append({
        "name": "jit/compile-cold",
        "seconds": _time_best(
            lambda: compile_executable(gemm_fn, "nd",
                                       cache=ExecutableCache()),
            repeats),
    })

    return {
        "config": {"vecadd_items": vec_size, "gemm_size": gemm_size,
                   "work_group": work_group, "smoke": smoke},
        "records": records,
    }


def summarize(results: Dict) -> str:
    """One human line for the runner's ``--out`` summary."""
    records = {record["name"]: record
               for record in results.get("jit", {}).get("records", ())}
    parts = []
    for name in ("jit/vecadd-exec", "jit/gemm-exec",
                 "vector/vecadd-exec", "vector/gemm-exec"):
        record = records.get(name)
        if record is None:
            continue
        speedup = record.get("speedup_vs_interp")
        suffix = f" ({speedup:.0f}x vs interp)" if speedup else ""
        parts.append(f"{name} {record['seconds']:.5f}s{suffix}")
    return f"tiers: {', '.join(parts)}" if parts else ""
