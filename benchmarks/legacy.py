"""Pre-worklist driver strategies, preserved for benchmarking and testing.

These are faithful ports of the drivers this repository used before the
worklist rewrite engine landed:

* :func:`apply_patterns_restart_sweep` — the old greedy driver: re-walk the
  whole module under the root after every sweep that made a change;
* :func:`erase_dead_ops_sweep` — the old DCE: full re-walks until a walk
  erases nothing, which erases exactly one op per walk from the tail of a
  dead def-use chain;
* :class:`LegacyCanonicalizePass` — the old canonicalization loop (bounded
  restart sweeps of fold/simplify + sweep DCE).

They run on the current IR data structures, so benchmark deltas against
them isolate the *driver strategy* (worklist + O(changes) re-enqueueing
versus restart sweeps); the absolute pre-refactor numbers, which also
include the old O(n) list-backed mutation costs, are recorded in
``BENCH_2.json`` under the top-level ``baseline`` key.

The fixed-point equivalence tests (``tests/test_worklist_driver.py``)
also use these to check that the worklist driver reaches the same printed
IR as the restart-sweep strategy.
"""

from __future__ import annotations

import warnings
from typing import Iterable, List

from repro.ir import IRError, Operation, Trait, has_trait
from repro.transforms.canonicalize import (
    _effects_are_unobservable,
    _erase_write_only_allocations,
    _simplify_identities,
    fold_operation,
)
from repro.transforms.cse import CSEPass
from repro.transforms.pass_manager import CompileReport, FunctionPass, PassManager
from repro.transforms.rewrite import (
    MAX_PATTERN_ITERATIONS,
    NonConvergenceWarning,
    PatternRewriter,
    RewritePattern,
)
from repro.dialects.func import FuncOp

_MAX_SWEEPS = 16


def apply_patterns_restart_sweep(root: Operation,
                                 patterns: Iterable[RewritePattern],
                                 max_iterations: int = MAX_PATTERN_ITERATIONS,
                                 on_nonconvergence: str = "warn") -> bool:
    """The old greedy driver: restart a full sweep after every change."""
    if on_nonconvergence not in ("warn", "error"):
        raise ValueError(
            f"on_nonconvergence must be 'warn' or 'error', "
            f"got {on_nonconvergence!r}")
    pattern_list: List[RewritePattern] = list(patterns)
    changed_any = False
    converged = False
    for _ in range(max_iterations):
        rewriter = PatternRewriter()
        sweep_changed = False
        for op in list(root.walk(include_self=False)):
            if op.parent is None:
                continue  # already erased during this sweep
            for pattern in pattern_list:
                if pattern.ROOT_OP is not None and op.name != pattern.ROOT_OP:
                    continue
                rewriter.set_insertion_point_before(op)
                try:
                    applied = pattern.match_and_rewrite(op, rewriter)
                except IRError:
                    applied = False
                if applied:
                    sweep_changed = True
                    break
        if not sweep_changed:
            converged = True
            break
        changed_any = True
    if not converged:
        names = ", ".join(sorted({type(p).__name__ for p in pattern_list}))
        message = (
            f"greedy pattern application on '{root.name}' did not converge "
            f"within {max_iterations} iterations; the IR may not be fully "
            f"normalized (patterns: {names})")
        if on_nonconvergence == "error":
            raise IRError(message)
        warnings.warn(message, NonConvergenceWarning, stacklevel=2)
    return changed_any


def _is_dead_in_sweep(op: Operation) -> bool:
    from repro.ir import is_side_effect_free

    if op.parent is None or has_trait(op, Trait.TERMINATOR):
        return False
    if has_trait(op, Trait.SYMBOL) or op.regions:
        return False
    if op.has_uses() or not op.results:
        return False
    return is_side_effect_free(op) or _effects_are_unobservable(op)


def erase_dead_ops_sweep(root: Operation) -> int:
    """The old DCE: keep re-walking the whole tree until nothing changes."""
    erased = 0
    changed = True
    while changed:
        changed = False
        for op in list(root.walk(include_self=False)):
            if not _is_dead_in_sweep(op):
                continue
            op.erase()
            erased += 1
            changed = True
        erased_allocs = len(_erase_write_only_allocations(root))
        if erased_allocs:
            erased += erased_allocs
            changed = True
    return erased


class LegacyCanonicalizePass(FunctionPass):
    """The old canonicalization: bounded restart sweeps + sweep DCE."""

    NAME = "canonicalize-legacy"

    def run_on_function(self, function: FuncOp, report: CompileReport) -> None:
        for _ in range(_MAX_SWEEPS):
            changed = False
            for op in list(function.walk(include_self=False)):
                if op.parent is None:
                    continue
                if fold_operation(op):
                    report.add_statistic(self.NAME, "ops_folded")
                    changed = True
                    continue
                if _simplify_identities(op):
                    report.add_statistic(self.NAME, "identities_simplified")
                    changed = True
            erased = erase_dead_ops_sweep(function)
            if erased:
                report.add_statistic(self.NAME, "dead_ops_erased", erased)
                changed = True
            if not changed:
                break


class LegacyDCEPass(FunctionPass):
    """Standalone sweep-based dead-code elimination."""

    NAME = "dce-legacy"

    def run_on_function(self, function: FuncOp, report: CompileReport) -> None:
        erased = erase_dead_ops_sweep(function)
        if erased:
            report.add_statistic(self.NAME, "dead_ops_erased", erased)


def run_legacy_canonicalize_cse(module: Operation) -> CompileReport:
    """Legacy canonicalize + CSE, the benchmark's comparison pipeline."""
    return PassManager([LegacyCanonicalizePass(), CSEPass()]).run(module)
