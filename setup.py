"""Setuptools entry point (kept for environments without PEP 660 support)."""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Python reproduction of 'Experiences Building an MLIR-Based SYCL "
        "Compiler' (CGO 2024)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    entry_points={
        "console_scripts": [
            "repro-opt = repro.tools.repro_opt:main",
            "repro-run = repro.tools.repro_run:main",
            "repro-lint = repro.tools.repro_lint:main",
            "repro-served = repro.tools.repro_served:main",
            "repro-client = repro.tools.repro_client:main",
        ],
    },
)
