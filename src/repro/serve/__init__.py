"""Persistent compile service (PR 8).

``repro-served`` keeps one process alive across many compiles so the
expensive state — a warm two-tier compile cache, a shared analysis
manager, and a pool of constructed pass managers — outlives any single
request.  The wire protocol (:mod:`repro.serve.protocol`) is
newline-delimited JSON over TCP; :mod:`repro.serve.server` hosts it and
:mod:`repro.serve.client` speaks it (both from Python and via the
``repro-client`` console script).
"""

from .client import ServeClient, ServeError
from .protocol import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    PROTOCOL_VERSION,
    ProtocolError,
    read_message,
    write_message,
)
from .server import CompileService, ReproServer

__all__ = [
    "ServeClient", "ServeError",
    "DEFAULT_HOST", "DEFAULT_PORT", "PROTOCOL_VERSION", "ProtocolError",
    "read_message", "write_message",
    "CompileService", "ReproServer",
]
