"""Python client for the ``repro-served`` daemon.

:class:`ServeClient` owns one TCP connection and speaks the NDJSON
protocol: send a request, read ``progress`` events until the matching
``done``.  Failures the server marks ``retryable: true`` (injected or
environmental transients) are resent automatically with exponential
backoff — the same retry ladder the PR 7 supervisor applies to worker
processes, moved to the client side of a network boundary.
"""

from __future__ import annotations

import socket
import time
from typing import Callable, Optional

from .protocol import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    ProtocolError,
    read_message,
    write_message,
)

#: Progress callback: receives each ``progress`` event dict.
Progress = Callable[[dict], None]


class ServeError(RuntimeError):
    """A request the daemon rejected (terminal ``ok: false``)."""

    def __init__(self, message: str, kind: str = "request-error",
                 retryable: bool = False):
        super().__init__(message)
        self.kind = kind
        self.retryable = retryable


class ServeClient:
    """One connection to a ``repro-served`` daemon.

    Usable as a context manager; request methods are synchronous and
    must not be called from multiple threads (open one client per
    thread — connections are cheap, the daemon pools the real state).
    """

    def __init__(self, host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
                 timeout: Optional[float] = 60.0,
                 max_retries: int = 2, backoff: float = 0.05):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")
        self._next_id = 0

    def close(self) -> None:
        for closer in (self._rfile.close, self._wfile.close,
                       self._sock.close):
            try:
                closer()
            except OSError:
                pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request machinery ---------------------------------------------------
    def _request_once(self, message: dict,
                      progress: Optional[Progress] = None) -> dict:
        write_message(self._wfile, message)
        while True:
            response = read_message(self._rfile)
            if response is None:
                raise ServeError("connection closed mid-request",
                                 kind="connection-error")
            if response.get("event") == "progress":
                if progress is not None:
                    progress(response)
                continue
            if response.get("ok"):
                return response
            raise ServeError(response.get("error", "request failed"),
                             kind=response.get("kind", "request-error"),
                             retryable=bool(response.get("retryable")))

    def request(self, method: str, on_progress: Optional[Progress] = None,
                **fields) -> dict:
        """Send one request; retries responses marked retryable."""
        attempt = 0
        while True:
            self._next_id += 1
            message = {"id": self._next_id, "method": method, **fields}
            try:
                return self._request_once(message, progress=on_progress)
            except ServeError as error:
                if not error.retryable or attempt >= self.max_retries:
                    raise
                attempt += 1
                time.sleep(self.backoff * (2 ** (attempt - 1)))
            except ProtocolError as exc:
                raise ServeError(str(exc), kind="protocol-error") from None

    # -- convenience methods -------------------------------------------------
    def ping(self) -> dict:
        return self.request("ping")

    def status(self) -> dict:
        return self.request("status")

    def shutdown(self) -> dict:
        return self.request("shutdown")

    def compile(self, ir: str, passes: str,
                progress: Optional[Progress] = None,
                verify: bool = True, print_locations: bool = False) -> dict:
        """Compile ``ir`` through pipeline spec ``passes``.

        Returns the ``done`` event: ``text`` is the optimized module,
        ``statistics``/``remarks`` mirror ``repro-opt --report``, and
        ``cached`` tells whether the compile was served from cache.
        Passing a ``progress`` callback streams per-pass events — and,
        like ``repro-opt --print-ir-*``, bypasses the compile cache.
        """
        return self.request(
            "compile", on_progress=progress, ir=ir, passes=passes,
            progress=progress is not None, verify=verify,
            print_locations=print_locations,
        )
