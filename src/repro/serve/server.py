"""The ``repro-served`` daemon: a compile/execute service over NDJSON/TCP.

Architecture: a :class:`CompileService` owns the state worth keeping
alive — one two-tier :class:`~repro.transforms.CompileCache` (optionally
backed by an on-disk :class:`~repro.transforms.DiskCache`), one
daemon-wide :class:`~repro.interp.jit.ExecutableCache` serving the
``execute`` method's JIT tier, one shared
:class:`~repro.analysis.AnalysisManager` (internally locked, so every
request thread talks to the same instance), and a pool of constructed
:class:`~repro.transforms.PassManager` instances keyed by canonical
pipeline spec.  A :class:`ReproServer` (a ``ThreadingTCPServer``) gives
each connection its own thread; all threads share the one service.

Pass managers are *checked out* for the duration of a request — a
manager is mutable (instrumentations, per-run state), so exclusive use
during a compile is the concurrency contract; the shared cache and
analysis manager are the thread-safe rendezvous between requests.
Checked-in managers are reused, so a warm daemon never re-parses a
pipeline spec it has seen before.

Progress streaming attaches a per-request
:class:`StreamingInstrumentation` to the checked-out manager.  An
instrumented manager deliberately bypasses the compile cache (a hit
would swallow the very events the client asked for), so ``progress:
true`` trades cache hits for observability — this mirrors the
``--print-ir-*`` rule in ``repro-opt``.

Fault injection: every request passes ``serve.request`` (keyed by
method).  ``transient`` fails the request with ``retryable: true`` —
the client's retry loop resends it; ``corrupt`` is treated as the
request arriving mangled and is rejected the same way.  Neither can
produce wrong output: the compile either runs normally or not at all.
"""

from __future__ import annotations

import socketserver
import threading
import time
from typing import Callable, Dict, List, Optional

from ..analysis import AnalysisManager
from ..faults import TransientFault, fault_point
from ..ir import ParseError, Printer, VerificationError, parse_module, verify
from ..transforms import (
    CompileCache,
    DiskCache,
    PassInstrumentation,
    PassManager,
    check_pass_pipeline,
    parse_pass_pipeline,
)
from .protocol import (
    METHODS,
    PROTOCOL_VERSION,
    ProtocolError,
    error_response,
    read_message,
    write_message,
)

#: An ``emit`` callback: receives one response event (a JSON-able dict).
Emit = Callable[[dict], None]


class StreamingInstrumentation(PassInstrumentation):
    """Streams per-pass progress events to one request's client."""

    def __init__(self, request_id, emit: Emit):
        self.request_id = request_id
        self.emit = emit

    def _event(self, phase: str, pass_) -> None:
        self.emit({
            "id": self.request_id,
            "event": "progress",
            "phase": phase,
            "pass": pass_.NAME,
            "anchor": getattr(pass_, "ANCHOR", None),
        })

    def run_before_pass(self, pass_, op) -> None:
        self._event("pass-begin", pass_)

    def run_after_pass(self, pass_, op) -> None:
        self._event("pass-end", pass_)

    def run_after_failed_verify(self, pass_, op, error) -> None:
        self.emit({
            "id": self.request_id,
            "event": "progress",
            "phase": "verify-failed",
            "pass": pass_.NAME,
            "error": str(error),
        })


class CompileService:
    """The daemon's shared brain: cache, analyses, and a manager pool."""

    def __init__(self, cache_dir: Optional[str] = None,
                 max_entries: Optional[int] = 256,
                 max_bytes: Optional[int] = None):
        disk = None
        if cache_dir:
            kwargs = {} if max_bytes is None else {"max_bytes": max_bytes}
            disk = DiskCache(cache_dir, **kwargs)
        self.cache = CompileCache(max_entries=max_entries, disk=disk)
        # Daemon-wide executable cache for the "execute" method: keyed
        # by structural fingerprint, so re-executing the same kernel
        # text across requests (and connections) skips Python codegen.
        from ..interp.jit import ExecutableCache

        self.executables = ExecutableCache(disk=disk)
        self.analysis_manager = AnalysisManager()
        self._pool: Dict[str, List[PassManager]] = {}
        self._pool_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._started = time.monotonic()
        self.requests = 0
        self.compiles = 0
        self.executions = 0
        self.errors = 0

    # -- manager pool --------------------------------------------------------
    def _checkout(self, spec: str) -> PassManager:
        """An exclusively-owned manager for ``spec`` (pooled or fresh)."""
        problems = check_pass_pipeline(spec)
        if problems:
            raise ValueError("; ".join(d.render() for d in problems))
        manager = None
        with self._pool_lock:
            idle = self._pool.get(spec)
            if idle:
                manager = idle.pop()
        if manager is None:
            manager = parse_pass_pipeline(spec)
            manager.cache = self.cache
            manager.analysis_manager = self.analysis_manager
        return manager

    def _checkin(self, manager: PassManager) -> None:
        # Per-request instrumentations must not leak into the next
        # request (they would silently disable its cache).
        manager.instrumentations.clear()
        with self._pool_lock:
            self._pool.setdefault(manager.to_spec(), []).append(manager)

    def pool_sizes(self) -> Dict[str, int]:
        with self._pool_lock:
            return {spec: len(idle) for spec, idle in self._pool.items()}

    # -- dispatch ------------------------------------------------------------
    def handle(self, request: dict, emit: Emit) -> dict:
        """Process one request; progress goes through ``emit``, the
        returned dict is the terminal ``done`` event.  Never raises —
        every failure becomes an error response so one bad request
        cannot take down the connection, let alone the daemon.
        """
        request_id = request.get("id")
        method = request.get("method")
        with self._stats_lock:
            self.requests += 1
        if method not in METHODS:
            return self._error(request_id, f"unknown method {method!r}")
        try:
            kind = fault_point("serve.request", key=method)
            if kind == "corrupt":
                raise TransientFault("injected mangled request")
        except TransientFault as exc:
            return self._error(request_id, f"transient service fault: {exc}",
                               kind="transient", retryable=True)
        if method == "ping":
            return {"id": request_id, "event": "done", "ok": True,
                    "pong": True, "protocol": PROTOCOL_VERSION}
        if method == "status":
            return self._status(request_id)
        if method == "shutdown":
            return {"id": request_id, "event": "done", "ok": True,
                    "shutdown": True}
        if method == "execute":
            return self._execute(request_id, request)
        return self._compile(request_id, request, emit)

    def _error(self, request_id, message: str, kind: str = "request-error",
               retryable: bool = False) -> dict:
        with self._stats_lock:
            self.errors += 1
        return error_response(request_id, message, kind=kind,
                              retryable=retryable)

    def _status(self, request_id) -> dict:
        with self._stats_lock:
            counters = {"requests": self.requests, "compiles": self.compiles,
                        "executions": self.executions,
                        "errors": self.errors}
        return {
            "id": request_id,
            "event": "done",
            "ok": True,
            "protocol": PROTOCOL_VERSION,
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "cache": self.cache.describe(),
            "executables": self.executables.describe(),
            "analyses": self.analysis_manager.describe(),
            "pool": self.pool_sizes(),
            **counters,
        }

    # -- compile -------------------------------------------------------------
    def _compile(self, request_id, request: dict, emit: Emit) -> dict:
        ir = request.get("ir")
        if not isinstance(ir, str) or not ir.strip():
            return self._error(request_id, "compile request carries no IR")
        spec = request.get("passes") or request.get("pipeline")
        if not isinstance(spec, str) or not spec.strip():
            return self._error(
                request_id, "compile request names no pipeline "
                "(pass 'passes' or 'pipeline')")
        run_verify = request.get("verify", True)
        try:
            module = parse_module(ir, filename="<request>")
        except ParseError as exc:
            return self._error(request_id, f"parse error: {exc}",
                               kind="parse-error")
        try:
            manager = self._checkout(spec)
        except ValueError as exc:
            return self._error(request_id, str(exc), kind="pipeline-error")
        try:
            if request.get("progress"):
                manager.add_instrumentation(
                    StreamingInstrumentation(request_id, emit))
            if run_verify:
                verify(module)
            report = manager.run(module)
            if run_verify:
                verify(module)
            text = Printer(
                print_locations=bool(request.get("print_locations"))
            ).print_module(module) + "\n"
        except VerificationError as exc:
            return self._error(request_id, f"verification failed: {exc}",
                               kind="verify-error")
        except ValueError as exc:
            return self._error(request_id, str(exc), kind="compile-error")
        finally:
            self._checkin(manager)
        with self._stats_lock:
            self.compiles += 1
        return {
            "id": request_id,
            "event": "done",
            "ok": True,
            "text": text,
            "statistics": [[s.pass_name, s.name, s.value]
                           for s in report.statistics],
            "remarks": list(report.remarks),
            "cached": report.get_statistic("compile-cache", "hits") > 0,
        }

    # -- execute -------------------------------------------------------------
    def _execute(self, request_id, request: dict) -> dict:
        from ..interp.differential import (
            ExecutionSpec,
            _executable_functions,
            synthesize_spec,
        )
        from ..interp.engine import ExecutionEngine
        from ..interp.memory import InterpreterError, TrapError

        ir = request.get("ir")
        if not isinstance(ir, str) or not ir.strip():
            return self._error(request_id, "execute request carries no IR")
        try:
            module = parse_module(ir, filename="<request>")
        except ParseError as exc:
            return self._error(request_id, f"parse error: {exc}",
                               kind="parse-error")
        spec_text = request.get("passes") or request.get("pipeline")
        try:
            if request.get("verify", True):
                verify(module)
            if isinstance(spec_text, str) and spec_text.strip():
                manager = self._checkout(spec_text)
                try:
                    manager.run(module)
                finally:
                    self._checkin(manager)
        except VerificationError as exc:
            return self._error(request_id, f"verification failed: {exc}",
                               kind="verify-error")
        except ValueError as exc:
            return self._error(request_id, str(exc), kind="pipeline-error")

        functions = _executable_functions(module)
        entry_name = request.get("entry")
        if entry_name:
            entry = next((f for f in functions
                          if f.sym_name == entry_name), None)
            if entry is None:
                names = ", ".join(f.sym_name for f in functions) or "none"
                return self._error(
                    request_id, f"no executable function named "
                    f"'{entry_name}' (available: {names})")
        elif len(functions) == 1:
            entry = functions[0]
        else:
            return self._error(
                request_id, "execute request must name an 'entry' when "
                f"the module defines {len(functions)} functions")

        spec = ExecutionSpec(
            global_size=tuple(request["global_size"])
            if request.get("global_size") else None,
            local_size=tuple(request["local_size"])
            if request.get("local_size") else None,
            buffers={name: tuple(shape) for name, shape
                     in (request.get("buffers") or {}).items()},
            scalars=dict(request.get("scalars") or {}))
        try:
            engine = ExecutionEngine(
                module, tier=request.get("tier", "auto"),
                max_steps=int(request.get("max_steps", 10_000_000)),
                executable_cache=self.executables)
            execution = engine.execute(entry, synthesize_spec(entry, spec))
        except (InterpreterError, TrapError, ValueError) as exc:
            return self._error(request_id, str(exc), kind="execute-error")
        with self._stats_lock:
            self.executions += 1
        return {
            "id": request_id,
            "event": "done",
            "ok": True,
            "entry": execution.name,
            "kind": execution.kind,
            "tier": execution.tier,
            "results": list(execution.results),
            "memory": {name: list(values)
                       for name, values in execution.memory.items()},
            "counters": dict(execution.counters),
            "remarks": list(engine.remarks),
        }


class _ConnectionHandler(socketserver.StreamRequestHandler):
    """One thread per connection; requests on it are served in order."""

    def handle(self) -> None:
        service: CompileService = self.server.service  # type: ignore[attr-defined]
        while True:
            try:
                request = read_message(self.rfile)
            except ProtocolError as exc:
                # Framing is gone: report once and drop the connection.
                write_message(self.wfile, error_response(
                    None, str(exc), kind="protocol-error"))
                return
            if request is None:
                return
            emit = lambda event: write_message(self.wfile, event)  # noqa: E731
            response = service.handle(request, emit)
            try:
                write_message(self.wfile, response)
            except (BrokenPipeError, ConnectionResetError):
                return
            if response.get("shutdown"):
                # Stop accepting; in-flight connections on other
                # threads finish their current request (daemon threads
                # die with the process on close).
                threading.Thread(target=self.server.shutdown,
                                 daemon=True).start()
                return


class ReproServer(socketserver.ThreadingTCPServer):
    """The TCP front of one :class:`CompileService`."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, service: CompileService):
        super().__init__(address, _ConnectionHandler)
        self.service = service

    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        return self.server_address[1]
