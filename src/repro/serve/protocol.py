"""The ``repro-served`` wire protocol: newline-delimited JSON.

One TCP connection carries any number of requests.  Each request is a
single JSON object on one line; the server answers with zero or more
``progress`` events followed by exactly one terminal ``done`` event,
all tagged with the request's ``id`` so a client can pipeline requests
and still match responses.

Request shape::

    {"id": 1, "method": "compile", "ir": "...", "passes": "spec",
     "progress": true, "verify": true, "print_locations": false}
    {"id": 2, "method": "status"}
    {"id": 3, "method": "ping"}
    {"id": 4, "method": "shutdown"}
    {"id": 5, "method": "execute", "ir": "...", "entry": "gemm",
     "tier": "auto", "passes": "spec", "global_size": [8, 8],
     "local_size": [4, 4], "buffers": {"A": [8, 8]}, "scalars": {}}

Response shapes::

    {"id": 1, "event": "progress", "phase": "pass-begin",
     "pass": "canonicalize", "anchor": "func.func"}
    {"id": 1, "event": "done", "ok": true, "text": "...",
     "statistics": [["cse", "eliminated", 3]], "remarks": [...],
     "cached": false}
    {"id": 1, "event": "done", "ok": false, "error": "...",
     "kind": "parse-error", "retryable": false}
    {"id": 5, "event": "done", "ok": true, "entry": "gemm",
     "tier": "vector", "results": [], "memory": {"A": [...]},
     "counters": {"ops": 640}, "remarks": [...]}

``execute`` runs an entry function of the supplied IR through the
tiered :class:`~repro.interp.engine.ExecutionEngine` (``tier`` defaults
to ``"auto"``) after optionally applying a pass pipeline, and reports
the results, final buffer contents, execution counters, the tier that
actually ran, and any tier-fallback remarks.  Compiled executables are
cached daemon-wide by structural fingerprint, so repeated execution of
the same kernel text skips Python codegen entirely.

``retryable`` marks failures the client may simply resend (an injected
or environmental transient); everything else is a property of the
request itself and retrying cannot help.

Newline-delimited JSON keeps the framing trivial (``readline`` is the
whole decoder), keeps the protocol debuggable (``nc`` + a text editor
is a working client) and matches how IR already travels between
processes in the PR 7 executor: as text.  Embedded newlines in the IR
are JSON-escaped by construction, so one message is always one line.
"""

from __future__ import annotations

import json
from typing import IO, Optional

#: Bumped on incompatible message-shape changes; ``ping`` reports it so
#: clients can refuse to talk across versions.
PROTOCOL_VERSION = 1

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8791

#: Methods the service dispatches; anything else is a request error.
METHODS = ("compile", "execute", "status", "ping", "shutdown")


class ProtocolError(ValueError):
    """A line that is not a valid protocol message."""


def write_message(stream: IO[bytes], message: dict) -> None:
    """Encode one message onto ``stream`` (one line, flushed)."""
    encoded = json.dumps(message, sort_keys=True) + "\n"
    stream.write(encoded.encode("utf-8"))
    stream.flush()


def read_message(stream: IO[bytes]) -> Optional[dict]:
    """Decode the next message from ``stream``; ``None`` at EOF.

    Raises :class:`ProtocolError` for non-JSON or non-object lines —
    the connection is unusable past a framing error because message
    boundaries can no longer be trusted.
    """
    line = stream.readline()
    if not line:
        return None
    text = line.decode("utf-8", errors="replace").strip()
    if not text:
        raise ProtocolError("empty protocol line")
    try:
        message = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"undecodable protocol line: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"protocol message must be an object, got {type(message).__name__}")
    return message


def error_response(request_id, message: str, kind: str = "request-error",
                   retryable: bool = False) -> dict:
    """A terminal failure event for ``request_id``."""
    return {
        "id": request_id,
        "event": "done",
        "ok": False,
        "error": message,
        "kind": kind,
        "retryable": retryable,
    }
