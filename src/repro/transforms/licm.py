"""SYCL-aware Loop Invariant Code Motion (paper, Section VI-A).

The upstream MLIR utility only hoists operations that are free of memory
effects.  The LICM implemented here additionally hoists operations that read
or write memory when the SYCL-specialized alias analysis can prove the loop
contains no conflicting access:

* read-only operations are hoisted when nothing in the loop may write to the
  locations they read;
* allocations are hoisted when their operands are invariant;
* write operations (e.g. ``sycl.constructor`` building an id from invariant
  components) are hoisted when nothing else in the loop reads or writes a
  location that may alias the written one.

Hoisting side-effecting operations out of a loop is only sound when the loop
executes at least once; the pass either proves this from constant bounds or
versions the loop with a guard (``scf.if lb < ub``), matching the paper's
description.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional

from ..ir import (
    EffectKind,
    Operation,
    Trait,
    Value,
    get_memory_effects,
    has_trait,
    is_side_effect_free,
)
from ..dialects import affine as affine_dialect
from ..dialects import arith
from ..dialects import scf as scf_dialect
from ..dialects.func import FuncOp
from ..analysis.alias import AliasAnalysis
from ..analysis.sycl_alias import SYCLAliasAnalysis
from ..analysis.manager import current_analysis_manager
from .pass_manager import (
    CompileReport,
    FunctionPass,
    PassOptions,
    register_pass,
    register_pass_alias,
)

_LOOP_TYPES = (affine_dialect.AffineForOp, scf_dialect.ForOp)

#: Textual names of the alias analyses a spec can select.
ALIAS_CHOICES = ("sycl", "generic", "runtime-checked")


def make_alias_analysis(name: str) -> AliasAnalysis:
    """Instantiate the alias analysis selected by an ``alias=`` option."""
    if name == "sycl":
        return SYCLAliasAnalysis()
    if name == "generic":
        return AliasAnalysis()
    if name == "runtime-checked":
        from .specialization import RuntimeCheckedAliasAnalysis

        return RuntimeCheckedAliasAnalysis()
    raise ValueError(
        f"unknown alias analysis {name!r}; expected one of "
        f"{', '.join(ALIAS_CHOICES)}")


def alias_spec_name(analysis: AliasAnalysis) -> str:
    """Best-effort inverse of :func:`make_alias_analysis`, for dumping."""
    from .specialization import RuntimeCheckedAliasAnalysis

    if isinstance(analysis, RuntimeCheckedAliasAnalysis):
        return "runtime-checked"
    if isinstance(analysis, SYCLAliasAnalysis):
        return "sycl"
    return "generic"


def _loop_trip_count(loop: Operation) -> Optional[int]:
    if isinstance(loop, affine_dialect.AffineForOp):
        return loop.constant_trip_count()
    if isinstance(loop, scf_dialect.ForOp):
        return loop.constant_trip_count()
    return None


@register_pass
class LoopInvariantCodeMotion(FunctionPass):
    """Hoists loop-invariant operations, including memory accesses."""

    NAME = "sycl-licm"

    STATISTICS = (
        ("ops_hoisted", "loop-invariant operations moved out of loops"),
    )

    @dataclass
    class Options(PassOptions):
        #: Alias analysis consulted when hoisting memory accesses.
        alias: str = field(default="sycl",
                           metadata={"choices": ALIAS_CHOICES})
        #: Hoist side-effecting ops when the analysis proves it safe.
        allow_side_effecting_hoist: bool = True

    def __init__(self, alias_analysis: Optional[AliasAnalysis] = None,
                 allow_side_effecting_hoist: Optional[bool] = None,
                 options: Optional["LoopInvariantCodeMotion.Options"] = None):
        options = options if options is not None else self.Options()
        if allow_side_effecting_hoist is not None:
            options = dataclasses.replace(
                options,
                allow_side_effecting_hoist=allow_side_effecting_hoist)
        if alias_analysis is not None:
            # Keep the dumped spec faithful to the injected analysis.
            options = dataclasses.replace(
                options, alias=alias_spec_name(alias_analysis))
        super().__init__(options=options)
        #: ``None`` unless a concrete analysis was injected; the spec-named
        #: default resolves per function run (through the analysis manager
        #: when one is active, so repeated passes share one instance).
        self._injected_alias = alias_analysis
        self.alias_analysis = alias_analysis if alias_analysis is not None \
            else make_alias_analysis(options.alias)
        self.allow_side_effecting_hoist = options.allow_side_effecting_hoist

    # ------------------------------------------------------------------
    def _alias_for(self, function: FuncOp) -> AliasAnalysis:
        """The alias analysis to consult for ``function``.

        Resolved through the run's analysis manager (cached per function,
        invalidation-aware) unless a concrete analysis was injected or
        the pass runs outside a pipeline.  Kept off ``self`` at run time:
        the parallel scheduler shares one pass instance across workers.
        """
        if self._injected_alias is not None:
            return self._injected_alias
        manager = current_analysis_manager()
        if manager is None:
            return self.alias_analysis
        return manager.get(type(self.alias_analysis), function)

    # ------------------------------------------------------------------
    def run_on_function(self, function: FuncOp, report: CompileReport) -> None:
        alias = self._alias_for(function)
        # Innermost loops first so invariants bubble outwards.
        loops = [op for op in function.walk() if isinstance(op, _LOOP_TYPES)]
        for loop in reversed(loops):
            if loop.parent is None:
                continue
            hoisted = self._process_loop(loop, alias)
            if hoisted:
                report.add_statistic(self.NAME, "ops_hoisted", hoisted)

    # ------------------------------------------------------------------
    def _process_loop(self, loop: Operation,
                      alias: Optional[AliasAnalysis] = None) -> int:
        alias = alias if alias is not None else self.alias_analysis
        trip_count = _loop_trip_count(loop)
        may_not_execute = trip_count is None or trip_count == 0
        hoisted_total = 0
        changed = True
        while changed:
            changed = False
            for op in loop.loop_body().ops_without_terminator():
                if op.parent is None or op.regions:
                    continue
                if not self._operands_defined_outside(op, loop):
                    continue
                if is_side_effect_free(op):
                    # Pure but possibly-trapping ops (integer division,
                    # shifts, math domain errors) must not be speculated
                    # above a loop that may execute zero times.
                    if may_not_execute and has_trait(op, Trait.MAY_TRAP):
                        continue
                    self._hoist(op, loop)
                    hoisted_total += 1
                    changed = True
                    continue
                if not self.allow_side_effecting_hoist or may_not_execute:
                    continue
                if self._can_hoist_effectful(op, loop, alias):
                    self._hoist(op, loop)
                    hoisted_total += 1
                    changed = True
        return hoisted_total

    # ------------------------------------------------------------------
    def _operands_defined_outside(self, op: Operation, loop: Operation) -> bool:
        for operand in op.operands:
            defining = operand.defining_op()
            if defining is not None and loop.is_ancestor_of(defining):
                return False
            if defining is None:
                block = operand.owner_block()
                if block is not None and block.parent_op() is not None and \
                        loop.is_ancestor_of(block.parent_op()):
                    return False
        return True

    def _can_hoist_effectful(self, op: Operation, loop: Operation,
                             alias: AliasAnalysis) -> bool:
        effects = get_memory_effects(op)
        if effects is None:
            return False
        read_targets: List[Value] = []
        write_targets: List[Value] = []
        for effect in effects:
            if effect.kind == EffectKind.READ:
                if effect.value is None:
                    return False
                read_targets.append(effect.value)
            elif effect.kind == EffectKind.WRITE:
                if effect.value is None:
                    return False
                write_targets.append(effect.value)
            elif effect.kind == EffectKind.ALLOCATE:
                continue
            else:
                return False

        for other in loop.loop_body().ops_without_terminator():
            if other is op:
                continue
            other_effects = self._effects_in_tree(other)
            if other_effects is None:
                return False
            for effect in other_effects:
                if effect.kind == EffectKind.WRITE:
                    # A write in the loop kills hoisting of reads of an
                    # aliasing location, and of writes to an aliasing
                    # location.
                    if self._conflicts(effect.value, read_targets, alias) or \
                            self._conflicts(effect.value, write_targets,
                                            alias):
                        return False
                elif effect.kind == EffectKind.READ:
                    # A read in the loop prevents hoisting a write that may
                    # alias it, unless the read always observes the hoisted
                    # write's (invariant) value: the candidate is the only
                    # write to that location and precedes the read in the
                    # loop body.
                    if self._conflicts(effect.value, write_targets, alias) \
                            and not op.is_before_in_block(other):
                        return False
        return True

    def _effects_in_tree(self, op: Operation):
        """Memory effects of ``op`` and all nested operations (None = unknown)."""
        all_effects = []
        for nested in op.walk():
            effects = get_memory_effects(nested)
            if effects is None:
                return None
            all_effects.extend(effects)
        return all_effects

    def _conflicts(self, value: Optional[Value], targets: List[Value],
                   alias: AliasAnalysis) -> bool:
        if not targets:
            return False
        if value is None:
            return True
        return any(alias.may_alias(value, target) for target in targets)

    @staticmethod
    def _hoist(op: Operation, loop: Operation) -> None:
        op.move_before(loop)


@register_pass
class VersionedLICM(LoopInvariantCodeMotion):
    """LICM variant that versions loops when bounds are not known constant.

    When the loop may execute zero times, side-effecting hoists are wrapped
    together with the loop in a guard ``scf.if (lb < ub)``, preserving the
    original semantics.  Used when kernels have runtime trip counts.
    """

    NAME = "sycl-licm-versioned"

    def _process_loop(self, loop: Operation,
                      alias: Optional[AliasAnalysis] = None) -> int:
        trip_count = _loop_trip_count(loop)
        if trip_count is not None:
            return super()._process_loop(loop, alias)
        if not isinstance(loop, (affine_dialect.AffineForOp, scf_dialect.ForOp)):
            return 0
        guarded = self._guard_loop(loop)
        if guarded is None:
            return 0
        return super()._process_loop(guarded, alias)

    def _guard_loop(self, loop: Operation) -> Optional[Operation]:
        parent_block = loop.parent
        if parent_block is None:
            return None
        lower = loop.lower_bound
        upper = loop.upper_bound
        cmp = arith.CmpIOp.build("slt", lower, upper)
        parent_block.insert_before(loop, cmp)
        if_op = scf_dialect.IfOp.build(cmp.result)
        parent_block.insert_after(cmp, if_op)
        loop.detach()
        if_op.then_block.append(loop)
        if_op.then_block.append(scf_dialect.YieldOp.build())
        return loop


register_pass_alias(
    "licm", LoopInvariantCodeMotion,
    description="Alias of sycl-licm (the paper's default LICM).")
register_pass_alias(
    "licm-generic", LoopInvariantCodeMotion,
    description="LICM with the dialect-independent alias analysis "
                "(the DPC++/LLVM-IR baseline behaviour).",
    alias="generic")
