"""Premature lowering of SYCL accessor semantics (baseline modeling).

LLVM-IR based SYCL compilers (DPC++, AdaptiveCpp's SSCP flow) lower accessor
accesses to raw pointer arithmetic long before the optimization pipeline
runs; the structured, SYCL-level information — which accessor an access
belongs to, the access matrix, accessor non-overlap facts — is lost
(paper, Sections I and II-B).

This pass performs that lowering on our device IR so the baseline compiler
models in :mod:`repro.frontend.driver` optimize the same kernels *without*
SYCL semantics:

* ``sycl.accessor.subscript`` + the ``sycl.constructor`` building its index
  are replaced by explicit row-major address arithmetic on the raw data
  pointer (``sycl.accessor.get_pointer``), using ``sycl.accessor.get_mem_range``
  for the strides;
* loads/stores through the subscript result become plain ``memref.load`` /
  ``memref.store`` on the raw pointer.

The work-item queries remain (they model SPIR-V builtins and are executable
by the simulator); what is lost is exactly what the paper says is lost.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir import Operation, Value, index
from ..dialects import affine as affine_dialect
from ..dialects import arith
from ..dialects import memref as memref_dialect
from ..dialects.func import FuncOp
from ..dialects.sycl import (
    SYCLAccessorGetMemRangeOp,
    SYCLAccessorGetPointerOp,
    SYCLAccessorSubscriptOp,
    SYCLConstructorOp,
    accessor_type_of,
)
from .canonicalize import erase_dead_ops
from .pass_manager import CompileReport, FunctionPass, register_pass


@register_pass
class LowerAccessorSubscripts(FunctionPass):
    """Expands accessor subscripts into raw pointer arithmetic."""

    NAME = "lower-sycl-accessors"

    STATISTICS = (
        ("subscripts_lowered", "accessor subscripts expanded to pointers"),
    )

    def run_on_function(self, function: FuncOp, report: CompileReport) -> None:
        #: Raw pointer per accessor value, so repeated subscripts share it.
        pointers: Dict[int, Value] = {}
        subscripts = [op for op in function.walk()
                      if isinstance(op, SYCLAccessorSubscriptOp)]
        for subscript in subscripts:
            if subscript.parent is None:
                continue
            if self._lower_subscript(subscript, pointers):
                report.add_statistic(self.NAME, "subscripts_lowered")
        erase_dead_ops(function)

    # ------------------------------------------------------------------
    def _lower_subscript(self, subscript: SYCLAccessorSubscriptOp,
                         pointers: Dict[int, Value]) -> bool:
        accessor = subscript.accessor
        accessor_type = accessor_type_of(accessor)
        if accessor_type is None:
            return False
        index_components = self._index_components(subscript)
        if index_components is None:
            return False

        block = subscript.parent
        insert_before = subscript

        def emit(op: Operation) -> Operation:
            block.insert_before(insert_before, op)
            return op

        # Row-major linearization: offset = ((i0 * d1 + i1) * d2 + i2) ...
        linear: Optional[Value] = None
        rank = accessor_type.dimensions
        for dim, component in enumerate(index_components):
            if linear is None:
                linear = component
            else:
                extent = emit(SYCLAccessorGetMemRangeOp.build(
                    accessor, emit(arith.ConstantOp.build(dim, index())).result))
                scaled = emit(arith.MulIOp.build(linear, extent.result))
                linear = emit(arith.AddIOp.build(scaled.result, component)).result
        if linear is None:
            linear = emit(arith.ConstantOp.build(0, index())).result

        pointer = pointers.get(id(accessor))
        if pointer is None:
            pointer_op = SYCLAccessorGetPointerOp.build(accessor)
            # The pointer is shared by every subscript of the accessor, so
            # it must dominate all of them: materialize it where the
            # accessor itself is defined (right after its defining op, or
            # at the top of the entry block for function arguments) — not
            # at the first subscript, which may sit inside a branch that
            # does not dominate later subscripts.
            defining = accessor.defining_op()
            if defining is not None and defining.parent is not None:
                defining.parent.insert_after(defining, pointer_op)
            else:
                entry = accessor.owner_block() or block
                if entry.first_op is not None:
                    entry.insert_before(entry.first_op, pointer_op)
                else:
                    entry.append(pointer_op)
            pointer = pointer_op.results[0]
            pointers[id(accessor)] = pointer

        # Rewrite every load/store going through the subscript result.
        for user in subscript.results[0].users():
            if isinstance(user, (affine_dialect.AffineLoadOp,
                                 memref_dialect.LoadOp)):
                replacement = memref_dialect.LoadOp.build(pointer, [linear])
                user.parent.insert_before(user, replacement)
                user.replace_all_uses_with([replacement.result])
                user.erase()
            elif isinstance(user, (affine_dialect.AffineStoreOp,
                                   memref_dialect.StoreOp)):
                replacement = memref_dialect.StoreOp.build(
                    user.value, pointer, [linear])
                user.parent.insert_before(user, replacement)
                user.erase()
            else:
                return False
        subscript.erase()
        return True

    # ------------------------------------------------------------------
    @staticmethod
    def _index_components(subscript: SYCLAccessorSubscriptOp) -> Optional[List[Value]]:
        id_value = subscript.index
        for user in id_value.users():
            if isinstance(user, SYCLConstructorOp) and user.destination is id_value:
                return list(user.arguments)
        # Direct scalar index (1-D accessor subscripted with an index value).
        return [id_value]
