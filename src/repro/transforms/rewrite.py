"""Rewrite pattern infrastructure (greedy pattern application).

A small analogue of MLIR's pattern rewriter: patterns match a single
operation and use the :class:`PatternRewriter` to mutate the IR.  The greedy
driver repeatedly applies patterns until a fixed point (bounded).
"""

from __future__ import annotations

import warnings
from typing import Iterable, List, Optional, Sequence

from ..ir import Builder, InsertionPoint, IRError, Operation, Value


class PatternRewriter(Builder):
    """Builder with replace/erase notifications used by patterns."""

    def __init__(self):
        super().__init__()
        self.changed = False

    def replace_op(self, op: Operation, new_values: Sequence[Value]) -> None:
        op.replace_all_uses_with(list(new_values))
        op.erase()
        self.changed = True

    def replace_op_with(self, op: Operation, new_op: Operation) -> Operation:
        new_op.detach()
        op.parent.insert_before(op, new_op)
        self.replace_op(op, new_op.results)
        return new_op

    def erase_op(self, op: Operation) -> None:
        op.erase()
        self.changed = True

    def notify_changed(self) -> None:
        self.changed = True


class RewritePattern:
    """Base class for rewrite patterns."""

    #: Optional operation name filter; None means "try on every operation".
    ROOT_OP: Optional[str] = None

    def match_and_rewrite(self, op: Operation,
                          rewriter: PatternRewriter) -> bool:  # pragma: no cover
        """Return True if the pattern applied."""
        raise NotImplementedError


#: Upper bound on greedy driver iterations, to guarantee termination even for
#: misbehaving patterns.
MAX_PATTERN_ITERATIONS = 32


class NonConvergenceWarning(RuntimeWarning):
    """Emitted when greedy pattern application hits its iteration bound."""


def apply_patterns_greedily(root: Operation,
                            patterns: Iterable[RewritePattern],
                            max_iterations: int = MAX_PATTERN_ITERATIONS,
                            on_nonconvergence: str = "warn") -> bool:
    """Apply ``patterns`` to all operations nested under ``root``.

    Returns True if the IR changed.  Matching restarts after every sweep that
    made a change so patterns can build on each other's results.

    If the driver still makes changes after ``max_iterations`` sweeps the
    pattern set did not reach a fixed point (e.g. two patterns undoing each
    other).  Depending on ``on_nonconvergence`` this raises ``IRError``
    (``"error"``) or emits a :class:`NonConvergenceWarning` (``"warn"``,
    the default) instead of silently returning possibly-unnormalized IR.
    """
    if on_nonconvergence not in ("warn", "error"):
        raise ValueError(
            f"on_nonconvergence must be 'warn' or 'error', "
            f"got {on_nonconvergence!r}")
    pattern_list: List[RewritePattern] = list(patterns)
    changed_any = False
    converged = False
    for _ in range(max_iterations):
        rewriter = PatternRewriter()
        sweep_changed = False
        for op in list(root.walk(include_self=False)):
            if op.parent is None:
                continue  # already erased during this sweep
            for pattern in pattern_list:
                if pattern.ROOT_OP is not None and op.name != pattern.ROOT_OP:
                    continue
                rewriter.set_insertion_point_before(op)
                try:
                    applied = pattern.match_and_rewrite(op, rewriter)
                except IRError:
                    applied = False
                if applied:
                    sweep_changed = True
                    break
        if not sweep_changed:
            converged = True
            break
        changed_any = True
    if not converged:
        names = ", ".join(sorted({type(p).__name__ for p in pattern_list}))
        message = (
            f"greedy pattern application on '{root.name}' did not converge "
            f"within {max_iterations} iterations; the IR may not be fully "
            f"normalized (patterns: {names})")
        if on_nonconvergence == "error":
            raise IRError(message)
        warnings.warn(message, NonConvergenceWarning, stacklevel=2)
    return changed_any
