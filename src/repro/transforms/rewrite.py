"""Rewrite pattern infrastructure (worklist-driven greedy application).

A small analogue of MLIR's greedy pattern rewrite driver: patterns match a
single operation and use the :class:`PatternRewriter` to mutate the IR.
Instead of restarting a whole-module sweep after every change, the driver
keeps a worklist of operations to visit.  The rewriter notifies the driver
about every replace/erase/insert, so after a rewrite only the operations
the change could affect are re-enqueued:

* the root itself after an in-place update (its match state changed);
* users of the results of a replaced/updated operation (their operands
  changed or may now fold);
* defining operations of the operands of an erased operation (they may
  have become trivially dead);
* newly inserted operations (never matched before).

Cost per change is therefore O(affected ops), not O(module).  Patterns are
indexed by ``ROOT_OP`` so each visit tries only the patterns that can match
that operation name, in the order the patterns were supplied.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..ir import Builder, InsertionPoint, IRError, Operation, Value


class _Worklist:
    """LIFO worklist with O(1) push, pop, membership and removal.

    Removal is lazy: entries are dropped from the membership map and their
    stale stack slots are skipped on pop.
    """

    __slots__ = ("_stack", "_live")

    def __init__(self):
        self._stack: List[Operation] = []
        self._live: Dict[int, Operation] = {}

    def push(self, op: Operation) -> None:
        key = id(op)
        if key in self._live:
            return
        self._live[key] = op
        self._stack.append(op)

    def pop(self) -> Optional[Operation]:
        while self._stack:
            op = self._stack.pop()
            if self._live.pop(id(op), None) is not None:
                return op
        return None

    def remove(self, op: Operation) -> None:
        self._live.pop(id(op), None)

    def __bool__(self) -> bool:
        return bool(self._live)

    def __len__(self) -> int:
        return len(self._live)


class _PatternIndex:
    """Patterns bucketed by ``ROOT_OP``, preserving supplied order."""

    def __init__(self, patterns: Sequence["RewritePattern"]):
        self._rooted: Dict[str, List[Tuple[int, RewritePattern]]] = {}
        self._generic: List[Tuple[int, RewritePattern]] = []
        self._merged: Dict[str, List[RewritePattern]] = {}
        for position, pattern in enumerate(patterns):
            if pattern.ROOT_OP is None:
                self._generic.append((position, pattern))
            else:
                self._rooted.setdefault(pattern.ROOT_OP, []).append(
                    (position, pattern))

    def for_name(self, name: str) -> List["RewritePattern"]:
        merged = self._merged.get(name)
        if merged is None:
            entries = self._rooted.get(name, []) + self._generic
            entries.sort(key=lambda entry: entry[0])
            merged = [pattern for _, pattern in entries]
            self._merged[name] = merged
        return merged


class PatternRewriter(Builder):
    """Builder with replace/erase notifications used by patterns.

    When attached to a worklist driver, every mutation made through the
    rewriter re-enqueues exactly the operations the change could affect.
    Patterns must mutate the IR through the rewriter (not through raw
    ``Block`` methods) for the driver to see the changes.
    """

    def __init__(self, driver: Optional["_WorklistDriver"] = None):
        super().__init__()
        self.changed = False
        self._driver = driver

    # -- driver notifications ------------------------------------------------
    def _notify_inserted(self, op: Operation) -> None:
        if self._driver is not None:
            self._driver.notify_inserted(op)

    def _notify_replacing(self, op: Operation) -> None:
        if self._driver is not None:
            self._driver.notify_replacing(op)

    def _notify_erasing(self, op: Operation) -> None:
        if self._driver is not None:
            self._driver.notify_erasing(op)

    def _retarget_point_past(self, op: Operation) -> None:
        """Keep the insertion point valid when its anchor op goes away.

        Anchored points (unlike the old integer indices) dangle when the
        anchor is erased; re-anchoring on the anchor's successor preserves
        the old behaviour of "keep inserting at that position" for
        patterns that replace their root and then insert more ops.
        """
        point = self.insertion_point
        if point is not None:
            point.advance_past(op)

    # -- mutation API --------------------------------------------------------
    def insert(self, op: Operation) -> Operation:
        inserted = super().insert(op)
        self._notify_inserted(inserted)
        return inserted

    def replace_op(self, op: Operation, new_values: Sequence[Value]) -> None:
        self._notify_replacing(op)
        op.replace_all_uses_with(list(new_values))
        self._notify_erasing(op)
        self._retarget_point_past(op)
        op.erase()
        self.changed = True

    def replace_op_with(self, op: Operation, new_op: Operation) -> Operation:
        new_op.detach()
        op.parent.insert_before(op, new_op)
        self._notify_inserted(new_op)
        self.replace_op(op, new_op.results)
        return new_op

    def erase_op(self, op: Operation) -> None:
        self._notify_erasing(op)
        self._retarget_point_past(op)
        op.erase()
        self.changed = True

    def update_operand(self, op: Operation, index: int, value: Value) -> None:
        """Redirect operand ``index`` of ``op`` to ``value``.

        Patterns must use this (not raw ``Operation.set_operand``) for
        in-place operand updates: the driver revisits the producer of the
        dropped operand, which may have just become dead.
        """
        old = op.operands[index]
        op.set_operand(index, value)
        if self._driver is not None and old is not value:
            defining = old.defining_op()
            if defining is not None:
                self._driver.worklist.push(defining)
        self.changed = True

    def notify_changed(self) -> None:
        self.changed = True


class RewritePattern:
    """Base class for rewrite patterns."""

    #: Optional operation name filter; None means "try on every operation".
    ROOT_OP: Optional[str] = None

    def match_and_rewrite(self, op: Operation,
                          rewriter: PatternRewriter) -> bool:  # pragma: no cover
        """Return True if the pattern applied."""
        raise NotImplementedError


#: Convergence bound: the driver allows ``max_iterations`` rewrites per
#: operation initially under the root before declaring non-convergence,
#: mirroring the old restart-sweep bound of ``max_iterations`` sweeps.
MAX_PATTERN_ITERATIONS = 32


class NonConvergenceWarning(RuntimeWarning):
    """Emitted when greedy pattern application hits its rewrite bound."""


class _WorklistDriver:
    """Owns the worklist and receives mutation notifications."""

    def __init__(self, patterns: Sequence[RewritePattern]):
        self.worklist = _Worklist()
        self.index = _PatternIndex(patterns)

    def seed(self, root: Operation) -> int:
        """Enqueue all ops under ``root``; returns how many were enqueued.

        Ops are pushed in reverse pre-order so the LIFO pop visits the
        module top-down, matching the old sweep's application order.
        """
        ops = list(root.walk(include_self=False))
        for op in reversed(ops):
            self.worklist.push(op)
        return len(ops)

    # -- notifications -------------------------------------------------------
    def notify_inserted(self, op: Operation) -> None:
        if op.regions:
            for nested in op.walk(include_self=False):
                self.worklist.push(nested)
        self.worklist.push(op)

    def notify_replacing(self, op: Operation) -> None:
        # The users of the old results are about to see new operands.
        for result in op.results:
            for user in result.users():
                self.worklist.push(user)

    def notify_erasing(self, op: Operation) -> None:
        # Defining ops of the operands may become trivially dead.  Ops
        # nested in the erased op's regions also drop their operand uses,
        # so values defined *outside* the subtree can become dead too;
        # their producers must be revisited as well (producers inside the
        # subtree get pushed harmlessly — they are skipped on pop once
        # their parent link is cleared by the erase).
        for operand in op.operands:
            defining = operand.defining_op()
            if defining is not None:
                self.worklist.push(defining)
        if op.regions:
            for nested in op.walk(include_self=False):
                for operand in nested.operands:
                    defining = operand.defining_op()
                    if defining is not None:
                        self.worklist.push(defining)
        self.worklist.remove(op)

    def push_root_and_users(self, op: Operation) -> None:
        """After an in-place update: revisit the op and its users."""
        self.worklist.push(op)
        for result in op.results:
            for user in result.users():
                self.worklist.push(user)


def apply_patterns_greedily(root: Operation,
                            patterns: Iterable[RewritePattern],
                            max_iterations: int = MAX_PATTERN_ITERATIONS,
                            on_nonconvergence: str = "warn",
                            prune_dead: Optional[
                                Callable[[Operation], bool]] = None) -> bool:
    """Apply ``patterns`` to all operations nested under ``root``.

    Returns True if the IR changed.  The worklist keeps draining until no
    pattern applies anywhere, so patterns can build on each other's results
    exactly like the old restart-sweep driver, at O(changes) instead of
    O(module) re-matching cost per change.

    ``prune_dead`` (optional) is a predicate called on every visited
    operation before pattern matching; when it returns True the driver
    erases the operation and re-enqueues the defining ops of its operands,
    folding dead-code elimination into the same worklist drain (MLIR's
    greedy driver does the same).  The predicate must only approve
    operations that are safe to erase (no remaining uses).

    A misbehaving pattern set (e.g. two patterns undoing each other) would
    keep the worklist busy forever; after ``max_iterations`` rewrites per
    initially present operation the driver gives up.  Depending on
    ``on_nonconvergence`` this raises ``IRError`` (``"error"``) or emits a
    :class:`NonConvergenceWarning` (``"warn"``, the default) instead of
    silently returning possibly-unnormalized IR.
    """
    if on_nonconvergence not in ("warn", "error"):
        raise ValueError(
            f"on_nonconvergence must be 'warn' or 'error', "
            f"got {on_nonconvergence!r}")
    pattern_list: List[RewritePattern] = list(patterns)
    driver = _WorklistDriver(pattern_list)
    num_seeded = driver.seed(root)
    max_rewrites = max(1, num_seeded) * max_iterations
    rewriter = PatternRewriter(driver)
    # One insertion point object re-anchored per visit, instead of a fresh
    # allocation for every (op, pattern) attempt.
    point: Optional[InsertionPoint] = None
    changed_any = False
    num_rewrites = 0
    converged = True
    while True:
        op = driver.worklist.pop()
        if op is None:
            break
        if op.parent is None:
            continue  # erased after being enqueued
        if prune_dead is not None and prune_dead(op):
            driver.notify_erasing(op)
            op.erase()
            changed_any = True
            continue
        candidates = driver.index.for_name(op.name)
        if not candidates:
            continue
        if point is None:
            point = InsertionPoint.before(op)
        else:
            point.move_before(op)
        rewriter.insertion_point = point
        for pattern in candidates:
            try:
                applied = pattern.match_and_rewrite(op, rewriter)
            except IRError:
                applied = False
            if applied:
                changed_any = True
                num_rewrites += 1
                if op.parent is not None:
                    driver.push_root_and_users(op)
                break
        if num_rewrites > max_rewrites:
            converged = False
            break
    if not converged:
        names = ", ".join(sorted({type(p).__name__ for p in pattern_list}))
        message = (
            f"greedy pattern application on '{root.name}' did not converge "
            f"within {max_rewrites} rewrites ({max_iterations} per "
            f"initially-seeded op); the IR may not be fully "
            f"normalized (patterns: {names})")
        if on_nonconvergence == "error":
            raise IRError(message)
        warnings.warn(message, NonConvergenceWarning, stacklevel=2)
    return changed_any
