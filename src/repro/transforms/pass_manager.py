"""Pass infrastructure: passes, options, pass managers and instrumentation.

Mirrors MLIR's pass infrastructure at the granularity this project needs:

* a :class:`Pass` declares a ``NAME``, an *anchor op* (``builtin.module``
  vs ``func.func``), typed :class:`PassOptions` (a dataclass parsed from
  ``canonicalize{max-iterations=10}`` specs) and the ``STATISTICS`` it may
  report;
* a :class:`PassManager` is a tree of :class:`OpPassManager`\\ s —
  ``pm.nest("func.func").add(...)`` — where function-anchored pipelines run
  once per isolated :class:`~repro.dialects.func.FuncOp` (the enabler for
  per-function parallel scheduling);
* :class:`PassInstrumentation` hooks observe every pass execution; timing,
  IR printing and verification ship as the first three clients;
* passes self-register with the :func:`register_pass` decorator, which
  feeds :func:`repro.transforms.pipelines.parse_pass_pipeline` and
  ``repro-opt --list-passes``;
* every run records what happened in a :class:`CompileReport` so the
  evaluation harness can attribute speedups to individual optimizations
  (paper, Section VIII).
"""

from __future__ import annotations

import dataclasses
import re
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Type,
    Union,
)

from ..faults import TransientFault, fault_point
from ..ir import Operation, Trait, has_trait
from ..ir.concurrency import (
    WriteGuard,
    guarded_region,
    unregistered_threading_allowed,
)
from ..analysis.manager import (
    AnalysisManager,
    analysis_scope,
    current_analysis_manager,
)
from ..dialects.func import FuncOp

#: Operation names a pipeline may anchor on.  ``builtin.module`` pipelines
#: may nest ``func.func`` pipelines, never the other way around (a function
#: cannot contain a module).
MODULE_ANCHOR = "builtin.module"
FUNCTION_ANCHOR = "func.func"
ANCHOR_OPS = (MODULE_ANCHOR, FUNCTION_ANCHOR)


# ---------------------------------------------------------------------------
# Compile report
# ---------------------------------------------------------------------------

@dataclass
class PassStatistic:
    """One named counter reported by a pass."""

    pass_name: str
    name: str
    value: int = 0


#: Timing keys are ``"<pipeline position>: <pass name>"`` so two instances
#: of the same pass in one pipeline never share a bucket.
_TIMING_POSITION_RE = re.compile(r"^(\d+): (.*)$")


@dataclass
class CompileReport:
    """Aggregated record of what the optimization pipeline did.

    ``statistics`` stays a list (the public view used by ``summary()`` and
    existing callers), but lookups go through a ``(pass_name, name)`` index
    so ``add_statistic``/``get_statistic`` are O(1) — passes bump counters
    once per rewrite, which made the old linear scans a hot path.

    ``timings`` is keyed by pipeline position (``"3: canonicalize"``), so
    two instances of the same pass stay distinguishable in ``repro-opt
    --timing`` output.
    """

    statistics: List[PassStatistic] = field(default_factory=list)
    remarks: List[str] = field(default_factory=list)
    timings: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._stat_index: Dict[Tuple[str, str], PassStatistic] = {
            (stat.pass_name, stat.name): stat for stat in self.statistics
        }

    def add_statistic(self, pass_name: str, name: str, value: int = 1) -> None:
        key = (pass_name, name)
        stat = self._stat_index.get(key)
        if stat is not None:
            stat.value += value
            return
        stat = PassStatistic(pass_name, name, value)
        self._stat_index[key] = stat
        self.statistics.append(stat)

    def get_statistic(self, pass_name: str, name: str) -> int:
        stat = self._stat_index.get((pass_name, name))
        return stat.value if stat is not None else 0

    def remark(self, message: str) -> None:
        self.remarks.append(message)

    def merge(self, other: "CompileReport",
              renumber_timings: bool = True) -> None:
        for stat in other.statistics:
            self.add_statistic(stat.pass_name, stat.name, stat.value)
        self.remarks.extend(other.remarks)
        if not renumber_timings:
            # ``other`` describes the *same* pipeline (e.g. a per-function
            # worker report from the parallel scheduler): its position keys
            # already match ours, so buckets must sum, not shift.
            for key, value in other.timings.items():
                self.timings[key] = self.timings.get(key, 0.0) + value
            return
        # Position-keyed timings from another report describe a *different*
        # pipeline run; renumber them past this report's positions so two
        # "0: canonicalize" buckets from unrelated pipelines stay distinct
        # instead of silently summing.
        shift = 0
        for key in self.timings:
            match = _TIMING_POSITION_RE.match(key)
            if match:
                shift = max(shift, int(match.group(1)) + 1)
        for key, value in other.timings.items():
            match = _TIMING_POSITION_RE.match(key)
            if match:
                key = f"{int(match.group(1)) + shift}: {match.group(2)}"
            self.timings[key] = self.timings.get(key, 0.0) + value

    def summary(self) -> str:
        lines = ["Compile report:"]
        for stat in self.statistics:
            lines.append(f"  {stat.pass_name}: {stat.name} = {stat.value}")
        for remark in self.remarks:
            lines.append(f"  remark: {remark}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Pass options
# ---------------------------------------------------------------------------

def _spec_key(field_name: str) -> str:
    """Dataclass field name -> textual option key (``max_iterations`` ->
    ``max-iterations``)."""
    return field_name.replace("_", "-")


def _format_option_value(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


@dataclass
class PassOptions:
    """Base class of every pass's typed option block.

    Subclasses are plain dataclasses; each field becomes a textual option
    whose spec key replaces underscores with dashes.  Supported field types
    are ``bool``, ``int``, ``float`` and ``str``; a ``str`` field may
    restrict its values with ``field(metadata={"choices": (...)})``.
    """

    @classmethod
    def spec_fields(cls) -> Dict[str, "dataclasses.Field"]:
        """Textual option key -> dataclass field, in declaration order."""
        return {_spec_key(f.name): f for f in dataclasses.fields(cls)}

    @classmethod
    def coerce(cls, option_field: "dataclasses.Field", text: str) -> object:
        """Parse ``text`` into the field's type; raises ``ValueError``."""
        key = _spec_key(option_field.name)
        if option_field.type in ("bool", bool):
            lowered = text.lower()
            if lowered in ("true", "1"):
                return True
            if lowered in ("false", "0"):
                return False
            raise ValueError(
                f"option '{key}' expects a boolean "
                f"(true/false/1/0), got {text!r}")
        if option_field.type in ("int", int):
            try:
                return int(text)
            except ValueError:
                raise ValueError(
                    f"option '{key}' expects an integer, got {text!r}")
        if option_field.type in ("float", float):
            try:
                return float(text)
            except ValueError:
                raise ValueError(
                    f"option '{key}' expects a number, got {text!r}")
        choices = option_field.metadata.get("choices")
        if choices and text not in choices:
            raise ValueError(
                f"option '{key}' expects one of {', '.join(choices)}; "
                f"got {text!r}")
        return text

    @classmethod
    def from_spec_dict(cls, options: Dict[str, str]) -> "PassOptions":
        """Build from textual ``{spec-key: text-value}`` pairs."""
        fields_by_key = cls.spec_fields()
        values: Dict[str, object] = {}
        for key, text in options.items():
            option_field = fields_by_key.get(key)
            if option_field is None:
                known = ", ".join(fields_by_key) or "none"
                raise ValueError(
                    f"unknown option '{key}' (available options: {known})")
            values[option_field.name] = cls.coerce(option_field, text)
        return cls(**values)

    def to_spec(self) -> str:
        """Non-default options as ``{k=v,...}``; empty string if none."""
        parts = []
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if value != f.default:
                parts.append(f"{_spec_key(f.name)}="
                             f"{_format_option_value(value)}")
        return "{" + ",".join(parts) + "}" if parts else ""

    @classmethod
    def schema(cls) -> List[str]:
        """Human-readable one-per-option lines for ``--list-passes``."""
        lines = []
        for key, f in cls.spec_fields().items():
            type_name = f.type if isinstance(f.type, str) else f.type.__name__
            line = f"{key} : {type_name} = {_format_option_value(f.default)}"
            choices = f.metadata.get("choices")
            if choices:
                line += f" (one of: {', '.join(choices)})"
            lines.append(line)
        return lines


# ---------------------------------------------------------------------------
# Pass base classes
# ---------------------------------------------------------------------------

class Pass:
    """Base class of all passes."""

    #: Human-readable pass name (used in reports, statistics and specs).
    NAME = "pass"

    #: Operation the pass anchors on (see :data:`ANCHOR_OPS`).
    ANCHOR = MODULE_ANCHOR

    #: The pass's typed option block; override with a dataclass subclass.
    Options: Type[PassOptions] = PassOptions

    #: ``(statistic name, description)`` pairs the pass may report.
    STATISTICS: Tuple[Tuple[str, str], ...] = ()

    #: Filled by :meth:`PassManager.run` with the pass's position in the
    #: flattened pipeline; keys the timing instrumentation.
    pipeline_position: Optional[int] = None

    def __init__(self, options: Optional[PassOptions] = None, **overrides):
        if options is not None and overrides:
            raise TypeError(
                "pass either an Options instance or keyword overrides")
        self.options = options if options is not None \
            else self.Options(**overrides)

    def run(self, op: Operation, report: CompileReport) -> None:  # pragma: no cover
        raise NotImplementedError

    def preserves(self) -> Iterable[type]:
        """Analysis classes still valid after this pass ran.

        The pass manager invalidates every cached analysis touching the
        anchor after each pass *except* the classes returned here
        (MLIR's ``markAnalysesPreserved``).  Return
        :data:`repro.analysis.manager.ALL_ANALYSES` from passes that never
        mutate the IR.  The default — nothing preserved — is always safe.
        """
        return ()

    def get_analysis(self, analysis_cls: type, op: Operation):
        """Request an analysis via the run's analysis manager.

        Inside a pipeline run results are cached per anchor op and
        invalidated according to :meth:`preserves`; outside a run the
        analysis is constructed directly.
        """
        from ..analysis.manager import get_analysis

        return get_analysis(analysis_cls, op)

    def can_schedule_on(self, anchor: str) -> bool:
        """Whether this pass may be added to a pipeline anchored on
        ``anchor``."""
        return anchor == self.ANCHOR

    def to_spec(self) -> str:
        """Textual form, e.g. ``canonicalize{max-iterations=10}``."""
        options = getattr(self, "options", None)
        return self.NAME + (options.to_spec() if options is not None else "")

    def __repr__(self) -> str:
        return f"<Pass {self.to_spec()}>"


class FunctionPass(Pass):
    """A pass anchored on ``func.func``.

    When scheduled on a function pipeline it runs once per isolated
    function; scheduled directly on a module pipeline (the legacy flat
    form) it iterates every function itself.
    """

    ANCHOR = FUNCTION_ANCHOR

    def run(self, op: Operation, report: CompileReport) -> None:
        for function in self._functions(op):
            self.run_on_function(function, report)

    def run_on_function(self, function: FuncOp,
                        report: CompileReport) -> None:  # pragma: no cover
        raise NotImplementedError

    def can_schedule_on(self, anchor: str) -> bool:
        return anchor in (FUNCTION_ANCHOR, MODULE_ANCHOR)

    @staticmethod
    def _functions(op: Operation) -> Iterable[FuncOp]:
        if isinstance(op, FuncOp):
            return [op]
        return [f for f in op.walk() if isinstance(f, FuncOp)]


class ModulePass(Pass):
    """A pass that needs to see the whole module at once."""

    ANCHOR = MODULE_ANCHOR

    def run(self, op: Operation, report: CompileReport) -> None:
        self.run_on_module(op, report)

    def run_on_module(self, module: Operation,
                      report: CompileReport) -> None:  # pragma: no cover
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Declarative pass registration
# ---------------------------------------------------------------------------

@dataclass
class PassRegistration:
    """Registry entry produced by :func:`register_pass`."""

    name: str
    pass_class: Type[Pass]
    options_class: Type[PassOptions]
    description: str = ""
    #: Set for aliases: the primary registered name this one re-exports.
    alias_of: Optional[str] = None
    #: Field-name keyed option presets an alias bakes in.
    preset_options: Dict[str, object] = field(default_factory=dict)
    #: Optional factory overriding ``pass_class(options=...)``.
    factory: Optional[Callable[[PassOptions], Pass]] = None

    def build(self, option_values: Optional[Dict[str, object]] = None) -> Pass:
        """Instantiate the pass with ``option_values`` (field-name keyed)
        on top of the alias presets."""
        values = dict(self.preset_options)
        values.update(option_values or {})
        options = self.options_class(**values)
        if self.factory is not None:
            return self.factory(options)
        return self.pass_class(options=options)


#: All registered passes, keyed by spec name.  Populated at import time by
#: the :func:`register_pass` decorators on each pass module.
PASS_REGISTRATIONS: Dict[str, PassRegistration] = {}


def _first_doc_line(cls: type) -> str:
    doc = (cls.__doc__ or "").strip()
    return doc.splitlines()[0] if doc else ""


def register_pass(cls: Optional[Type[Pass]] = None, *,
                  name: Optional[str] = None):
    """Class decorator registering a pass under its ``NAME``.

    ::

        @register_pass
        class CanonicalizePass(FunctionPass):
            NAME = "canonicalize"
    """

    def wrap(pass_class: Type[Pass]) -> Type[Pass]:
        spec_name = name or pass_class.NAME
        if spec_name in PASS_REGISTRATIONS:
            raise ValueError(f"pass {spec_name!r} is already registered")
        PASS_REGISTRATIONS[spec_name] = PassRegistration(
            name=spec_name,
            pass_class=pass_class,
            options_class=pass_class.Options,
            description=_first_doc_line(pass_class))
        return pass_class

    return wrap(cls) if cls is not None else wrap


def register_pass_alias(name: str, base: Type[Pass],
                        description: str = "", **preset_options) -> None:
    """Register ``name`` as an alias of ``base`` with option presets.

    ::

        register_pass_alias("licm-generic", LoopInvariantCodeMotion,
                            alias="generic")
    """
    if name in PASS_REGISTRATIONS:
        raise ValueError(f"pass {name!r} is already registered")
    PASS_REGISTRATIONS[name] = PassRegistration(
        name=name,
        pass_class=base,
        options_class=base.Options,
        description=description or _first_doc_line(base),
        alias_of=base.NAME,
        preset_options=preset_options)


def lookup_pass(name: str) -> Optional[PassRegistration]:
    return PASS_REGISTRATIONS.get(name)


# ---------------------------------------------------------------------------
# Instrumentation
# ---------------------------------------------------------------------------

class PassInstrumentation:
    """Observer hooks around pipeline and pass execution.

    ``run_before_pass`` hooks fire in registration order, ``run_after_pass``
    hooks in reverse registration order (so instrumentations nest like a
    stack around each pass).  When an after-pass hook raises a
    verification error, every instrumentation's ``run_after_failed_verify``
    is notified before the error propagates.
    """

    def run_before_pipeline(self, op: Operation) -> None:
        pass

    def run_after_pipeline(self, op: Operation) -> None:
        pass

    def run_before_pass(self, pass_: Pass, op: Operation) -> None:
        pass

    def run_after_pass(self, pass_: Pass, op: Operation) -> None:
        pass

    def run_after_failed_verify(self, pass_: Pass, op: Operation,
                                error: Exception) -> None:
        pass


def timing_key(pass_: Pass) -> str:
    """Timing bucket for a scheduled pass: ``"<position>: <name>"``.

    Keyed by pipeline position so two instances of the same pass in one
    pipeline never share a bucket (``repro-opt --timing`` can tell them
    apart); falls back to the bare name for passes run outside a manager.
    """
    position = getattr(pass_, "pipeline_position", None)
    if position is None:
        return pass_.NAME
    return f"{position}: {pass_.NAME}"


class TimingInstrumentation(PassInstrumentation):
    """Accumulates wall time per scheduled pass into ``self.timings``.

    A function-anchored pass runs once per function under one pipeline
    position; its bucket aggregates across those runs.
    """

    def __init__(self):
        self.timings: Dict[str, float] = {}
        self._starts: List[float] = []

    def run_before_pass(self, pass_: Pass, op: Operation) -> None:
        self._starts.append(time.perf_counter())

    def run_after_pass(self, pass_: Pass, op: Operation) -> None:
        if not self._starts:
            return
        elapsed = time.perf_counter() - self._starts.pop()
        key = timing_key(pass_)
        self.timings[key] = self.timings.get(key, 0.0) + elapsed


class IRPrintingInstrumentation(PassInstrumentation):
    """Prints the anchored IR around selected passes (mlir-opt's
    ``-print-ir-before/after`` analogue).

    ``print_before`` / ``print_after`` are either ``True`` (every pass) or
    a collection of pass names; IR is also dumped when verification fails
    after a pass, so the broken IR is visible.
    """

    def __init__(self,
                 print_before: Union[bool, Iterable[str]] = (),
                 print_after: Union[bool, Iterable[str]] = (),
                 stream=None):
        self.print_before = self._selector(print_before)
        self.print_after = self._selector(print_after)
        self.stream = stream

    @staticmethod
    def _selector(value: Union[bool, Iterable[str]]):
        if value is True:
            return True
        return frozenset(value or ())

    def _matches(self, selector, pass_: Pass) -> bool:
        return selector is True or pass_.NAME in selector

    def _dump(self, label: str, pass_: Pass, op: Operation) -> None:
        from ..ir import Printer

        stream = self.stream if self.stream is not None else sys.stderr
        stream.write(f"// -----// {label} {pass_.to_spec()} "
                     f"({timing_key(pass_)}) //----- //\n")
        stream.write(Printer().print_module(op) + "\n")

    def run_before_pass(self, pass_: Pass, op: Operation) -> None:
        if self._matches(self.print_before, pass_):
            self._dump("IR Dump Before", pass_, op)

    def run_after_pass(self, pass_: Pass, op: Operation) -> None:
        if self._matches(self.print_after, pass_):
            self._dump("IR Dump After", pass_, op)

    def run_after_failed_verify(self, pass_: Pass, op: Operation,
                                error: Exception) -> None:
        self._dump("IR Dump After Failed Verify of", pass_, op)


class VerifierInstrumentation(PassInstrumentation):
    """Verifies the anchored IR after every pass (``--verify-each``)."""

    def run_after_pass(self, pass_: Pass, op: Operation) -> None:
        from ..ir import verify

        verify(op)


class LintInstrumentation(PassInstrumentation):
    """Runs the lint rules after every pass (``--lint-each``).

    Findings accumulate in :attr:`findings` tagged with the pass that
    produced the offending IR, so a miscompiling pass is identified the
    moment it fires rather than at end of pipeline.  Analyses are
    requested through the run's active :class:`AnalysisManager`, so a
    pass that ``preserves()`` its analyses lints from warm caches.
    """

    def __init__(self, rules: Optional[List[str]] = None,
                 engine=None):
        self.rules = rules
        self.engine = engine
        #: ``(pass name, diagnostic)`` pairs in discovery order.
        self.findings: List[tuple] = []

    def run_after_pass(self, pass_: Pass, op: Operation) -> None:
        from ..analysis.lint import run_lint

        manager = current_analysis_manager()
        for diagnostic in run_lint(op, rules=self.rules, am=manager,
                                   engine=self.engine):
            self.findings.append((pass_.NAME, diagnostic))


# ---------------------------------------------------------------------------
# Pass managers
# ---------------------------------------------------------------------------

class OpPassManager:
    """An ordered pipeline anchored on one operation kind.

    Elements are passes or nested ``OpPassManager``\\ s; nesting a
    ``func.func`` pipeline under a ``builtin.module`` one makes the nested
    passes run once per function.
    """

    def __init__(self, anchor: str = MODULE_ANCHOR):
        if anchor not in ANCHOR_OPS:
            raise ValueError(
                f"unknown pipeline anchor {anchor!r}; expected one of "
                f"{', '.join(ANCHOR_OPS)}")
        self.anchor = anchor
        self.elements: List[Union[Pass, "OpPassManager"]] = []

    def add(self, pass_: Pass) -> "OpPassManager":
        if not pass_.can_schedule_on(self.anchor):
            raise ValueError(
                f"cannot schedule pass '{pass_.NAME}' (anchored on "
                f"'{pass_.ANCHOR}') in a '{self.anchor}' pipeline")
        self.elements.append(pass_)
        return self

    def nest(self, anchor: str) -> "OpPassManager":
        """Append and return a nested pipeline anchored on ``anchor``."""
        if anchor not in ANCHOR_OPS:
            raise ValueError(
                f"unknown pipeline anchor {anchor!r}; expected one of "
                f"{', '.join(ANCHOR_OPS)}")
        if self.anchor == FUNCTION_ANCHOR and anchor == MODULE_ANCHOR:
            raise ValueError(
                "cannot nest a 'builtin.module' pipeline under 'func.func'")
        nested = OpPassManager(anchor)
        self.elements.append(nested)
        return nested

    # -- views ---------------------------------------------------------------
    def _walk_passes(self) -> Iterator[Pass]:
        for element in self.elements:
            if isinstance(element, OpPassManager):
                yield from element._walk_passes()
            else:
                yield element

    @property
    def passes(self) -> List[Pass]:
        """All passes in execution order, flattened across nesting."""
        return list(self._walk_passes())

    def to_spec(self) -> str:
        """Canonical textual form, e.g. ``builtin.module(cse,...)``."""
        parts = [element.to_spec() for element in self.elements]
        return f"{self.anchor}({','.join(parts)})"

    def __len__(self) -> int:
        return len(self.passes)

    def __repr__(self) -> str:
        return f"<OpPassManager {self.to_spec()}>"


@dataclass
class _RunState:
    """Per-``run`` scheduling context threaded through pipeline execution."""

    #: Serializes instrumentation hook batches across workers (the PR 3
    #: ordering contract: before-hooks in registration order, after-hooks
    #: reversed, never interleaved within one pass execution).
    hook_lock: Optional[threading.Lock] = None
    #: The shared worker pool; ``None`` disables parallel dispatch.
    executor: Optional[ThreadPoolExecutor] = None
    #: The root run's timing instrumentation (replaced by a per-worker
    #: instance inside workers — its start/stop stack is not thread-safe).
    timing: Optional[TimingInstrumentation] = None
    #: True inside a worker thread: nested dispatch stays serial.
    in_worker: bool = False
    #: The run's root analysis manager; workers get children and fold
    #: their stats/entries back in (:meth:`AnalysisManager.absorb`).
    analysis_manager: Optional[AnalysisManager] = None


class PassManager(OpPassManager):
    """The root pipeline: runs the pass tree and collects a report.

    Accepts a flat pass list for backwards compatibility; nested pipelines
    are built with :meth:`OpPassManager.nest`.  Instrumentations added with
    :meth:`add_instrumentation` observe every pass execution; wall-clock
    timing is always recorded into ``report.timings`` keyed by pipeline
    position.

    ``jobs=N`` enables the parallel scheduler: nested ``func.func``
    pipelines run once per function *concurrently* across a shared
    ``ThreadPoolExecutor`` (functions are isolated from above, so workers
    cannot reach each other's IR; a :class:`~repro.ir.WriteGuard` enforces
    that).  ``tier="process"`` upgrades that dispatch to the supervised
    process tier (:mod:`repro.transforms.executor`): per-function textual
    work units across a ``ProcessPoolExecutor``, with the full
    crash/hang/corrupt/transient failure matrix supervised and a
    graceful-degradation ladder process → thread → serial, so no fault
    class can fail a compile that serial would pass (see
    ``docs/robustness.md``).  ``cache`` attaches a
    :class:`~repro.transforms.compile_cache.CompileCache`: a run whose
    ``(module fingerprint, pipeline spec)`` key is cached short-circuits
    the whole pipeline.
    """

    #: Parallel dispatch tiers a run may use.
    TIERS = ("thread", "process")

    def __init__(self, passes: Optional[Iterable[Pass]] = None,
                 verify_after_each: bool = False,
                 anchor: str = MODULE_ANCHOR,
                 jobs: int = 1,
                 cache: Optional["CompileCache"] = None,
                 tier: str = "thread",
                 executor_options=None):
        super().__init__(anchor)
        if tier not in self.TIERS:
            raise ValueError(
                f"unknown parallel tier {tier!r}; expected one of "
                f"{', '.join(self.TIERS)}")
        for pass_ in passes or []:
            self.add(pass_)
        self.instrumentations: List[PassInstrumentation] = []
        self.verify_after_each = verify_after_each
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.tier = tier
        #: :class:`~repro.transforms.executor.ExecutorOptions` override
        #: for the process tier (deadline, retry and rebuild budgets);
        #: ``None`` uses defaults with ``jobs`` worker processes.
        self.executor_options = executor_options
        #: Persistent across runs so batch drivers and benchmarks can
        #: observe warm-vs-cold analysis costs; fingerprint validation
        #: keeps stale entries from ever being served.
        self.analysis_manager = AnalysisManager()
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_jobs = 0
        self._process_tier = None
        self._process_tier_jobs = 0
        if verify_after_each:
            self.add_instrumentation(VerifierInstrumentation())

    def add_instrumentation(
            self, instrumentation: PassInstrumentation) -> "PassManager":
        self.instrumentations.append(instrumentation)
        return self

    def close(self) -> None:
        """Shut down the shared worker pools (idempotent).

        The process tier's workers are *terminated*, never waited on —
        a hung worker must not be able to wedge shutdown (the Ctrl-C
        path of every CLI runs through here).
        """
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
            self._executor_jobs = 0
        if self._process_tier is not None:
            self._process_tier.close()
            self._process_tier = None
            self._process_tier_jobs = 0

    def process_tier(self):
        """The supervised process executor, created on first use (and
        recreated when ``jobs`` changed)."""
        from .executor import ExecutorOptions, SupervisedExecutor

        if self._process_tier is None or self._process_tier_jobs != self.jobs:
            if self._process_tier is not None:
                self._process_tier.close()
            options = self.executor_options
            if options is None:
                options = ExecutorOptions(jobs=self.jobs)
            elif options.jobs != self.jobs:
                options = dataclasses.replace(options, jobs=self.jobs)
            self._process_tier = SupervisedExecutor(options)
            self._process_tier_jobs = self.jobs
        return self._process_tier

    def _ensure_executor(self) -> Optional[ThreadPoolExecutor]:
        """The shared pool for ``jobs>1``, recreated if ``jobs`` changed.

        One pool serves every ``run`` of this manager — batch drivers
        compile many modules through the same warm pool.
        """
        if self.jobs <= 1:
            self.close()
            return None
        if self._executor is None or self._executor_jobs != self.jobs:
            self.close()
            self._executor = ThreadPoolExecutor(
                max_workers=self.jobs,
                thread_name_prefix="repro-pass-worker")
            self._executor_jobs = self.jobs
        return self._executor

    # -- execution -----------------------------------------------------------
    def run(self, op: Operation,
            report: Optional[CompileReport] = None) -> CompileReport:
        report = report if report is not None else CompileReport()
        cache_key = None
        # A cache hit skips pass execution entirely, so it must not be
        # taken while instrumentations are attached — --verify-each and
        # the IR-printing hooks observe *runs*, and silently dropping
        # their output on repeated inputs would be wrong.
        if self.cache is not None and not self.instrumentations \
                and op.name == MODULE_ANCHOR:
            # Key on the *input* fingerprint, before the pipeline mutates it.
            start = time.perf_counter()
            cache_key = self.cache.key_for(op, self.to_spec())
            hit = self.cache.lookup(cache_key)
            if hit is not None:
                # Self-healing: a corrupt entry (failed clone/splice)
                # must never fail a compile a cold run would pass —
                # evict it and fall through to the cold path.
                try:
                    materialized = hit.materialize()
                    if fault_point("compile-cache.hit",
                                   key=cache_key[0]) == "corrupt":
                        raise RuntimeError("injected corrupt cache entry")
                    self._splice_cached(op, materialized)
                except Exception as error:  # noqa: BLE001 - self-healing
                    self.cache.evict(cache_key)
                    report.add_statistic("compile-cache", "recovered", 1)
                    report.remark(
                        "compile-cache: recovered from corrupt entry "
                        f"({type(error).__name__}: {error})")
                    hit = None
            if hit is not None:
                for pass_name, name, value in hit.statistics:
                    report.add_statistic(pass_name, name, value)
                report.remarks.extend(hit.remarks)
                report.add_statistic("compile-cache", "hits", 1)
                # The hit carries the analyses the original compile left
                # valid: they hold for the spliced (structurally
                # identical) result, so clients can warm them knowingly.
                if hit.preserved_analyses:
                    self.analysis_manager.note_carried(hit.preserved_analyses)
                    report.add_statistic("compile-cache", "analyses_carried",
                                         len(hit.preserved_analyses))
                # The hit's real cost (fingerprint + lookup + splice), so
                # --timing tables account for warm segments instead of
                # silently omitting them while statistics sum.
                elapsed = time.perf_counter() - start
                report.timings["compile-cache: hit"] = \
                    report.timings.get("compile-cache: hit", 0.0) + elapsed
                return report
        fresh = CompileReport() if cache_key is not None else report
        self._execute(op, fresh)
        if cache_key is not None:
            from .compile_cache import CachedCompile

            self.cache.store(cache_key, CachedCompile(
                module=op.clone({}),
                statistics=[(s.pass_name, s.name, s.value)
                            for s in fresh.statistics],
                remarks=list(fresh.remarks),
                preserved_analyses=tuple(
                    self.analysis_manager.preserved_names_for(op))))
            report.merge(fresh, renumber_timings=False)
            report.add_statistic("compile-cache", "misses", 1)
        return report

    def _execute(self, op: Operation, report: CompileReport) -> None:
        # The built-in timing instrumentation is per-run and innermost
        # (last in before-order, first in after-order), so user hooks are
        # not charged to the pass they wrap.
        timing = TimingInstrumentation()
        instrumentations = list(self.instrumentations) + [timing]
        positions = self._slot_positions()
        state = _RunState(hook_lock=threading.Lock(),
                          executor=self._ensure_executor(),
                          timing=timing,
                          analysis_manager=self.analysis_manager)
        for instrumentation in instrumentations:
            instrumentation.run_before_pipeline(op)
        try:
            with analysis_scope(self.analysis_manager):
                self._run_pipeline(self, op, report, instrumentations,
                                   positions, state)
        finally:
            for key, value in timing.timings.items():
                report.timings[key] = report.timings.get(key, 0.0) + value
            for instrumentation in reversed(instrumentations):
                instrumentation.run_after_pipeline(op)

    @staticmethod
    def _splice_cached(op: Operation, materialized: Operation) -> None:
        """Replace ``op``'s body with a materialized cached result.

        ``materialized`` is a private deep clone of the cached template,
        so the spliced body is structurally identical to what a cold
        compile would have produced and shares no state with the cache.
        Children are detached from the clone *before* the target is
        emptied, so every failure-prone step happens while ``op`` is
        still untouched (the cache self-healing path relies on that).
        """
        staged = [child.detach() for child
                  in list(materialized.regions[0].blocks[0].operations)]
        target = op.regions[0].blocks[0]
        target.erase_all_ops()
        for child in staged:
            target.append(child)

    def _slot_positions(self) -> Dict[Tuple[int, int], int]:
        """Pipeline position per ``(id(pipeline), element index)`` slot.

        Keyed by slot rather than by pass object so one pass instance
        scheduled in two slots still gets two distinct positions (and two
        distinct timing buckets).
        """
        positions: Dict[Tuple[int, int], int] = {}
        counter = [0]

        def assign(pipeline: OpPassManager) -> None:
            for index, element in enumerate(pipeline.elements):
                if isinstance(element, OpPassManager):
                    assign(element)
                else:
                    positions[(id(pipeline), index)] = counter[0]
                    counter[0] += 1

        assign(self)
        return positions

    def _run_pipeline(self, pipeline: OpPassManager, op: Operation,
                      report: CompileReport,
                      instrumentations: List[PassInstrumentation],
                      positions: Dict[Tuple[int, int], int],
                      state: Optional[_RunState] = None) -> None:
        for index, element in enumerate(pipeline.elements):
            if isinstance(element, OpPassManager):
                anchored_ops = self._anchored_ops(op, element.anchor)
                if self._should_parallelize(element, anchored_ops, state):
                    # The graceful-degradation ladder: process tier →
                    # thread tier → serial.  Each tier failure is
                    # recorded as a remark and the next tier retried on
                    # the untouched IR, so no tier-level fault can fail
                    # a compile serial would pass.
                    if self._process_eligible(state):
                        from .executor import TierError

                        try:
                            self._run_pipeline_process(
                                element, anchored_ops, report,
                                positions, state)
                            continue
                        except TierError as error:
                            report.remark("process-tier: degraded to "
                                          f"thread tier: {error}")
                            report.add_statistic(
                                "process-tier", "degraded", 1)
                    try:
                        fault_point("thread-tier.dispatch")
                        self._run_pipeline_parallel(
                            element, anchored_ops, report,
                            instrumentations, positions, state)
                        continue
                    except TransientFault as error:
                        report.remark(
                            f"thread-tier: degraded to serial: {error}")
                        report.add_statistic(
                            "thread-tier", "degraded", 1)
                for anchored in anchored_ops:
                    if anchored.parent is None and anchored is not op:
                        continue  # erased by an earlier sibling run
                    self._run_pipeline(element, anchored, report,
                                       instrumentations, positions, state)
            else:
                # (Re-)label the pass with this slot's position right
                # before the hooks fire; a shared instance is thus always
                # reported under the slot it is currently running in.
                element.pipeline_position = \
                    positions[(id(pipeline), index)]
                self._run_pass(element, op, report, instrumentations, state)

    @staticmethod
    def _anchored_ops(root: Operation, anchor: str) -> List[Operation]:
        if root.name == anchor:
            return [root]
        return [op for op in root.walk(include_self=False)
                if op.name == anchor]

    def _should_parallelize(self, pipeline: OpPassManager,
                            anchored_ops: List[Operation],
                            state: Optional[_RunState]) -> bool:
        """Whether this nested pipeline dispatch may fan out to the pool.

        Requires: an active pool, not already inside a worker, at least
        two anchors, every anchor isolated from above (so workers cannot
        reach each other's IR through SSA uses), and a distinct pass
        instance per slot (a shared instance would race on its
        ``pipeline_position`` label).
        """
        if state is None or state.executor is None or state.in_worker:
            return False
        if pipeline.anchor != FUNCTION_ANCHOR or len(anchored_ops) < 2:
            return False
        if not all(has_trait(anchored, Trait.ISOLATED_FROM_ABOVE)
                   for anchored in anchored_ops):
            return False
        passes = pipeline.passes
        return len({id(pass_) for pass_ in passes}) == len(passes)

    def _process_eligible(self, state: Optional[_RunState]) -> bool:
        """Whether a parallelizable dispatch may use the process tier.

        Requires ``tier="process"`` and no user instrumentations —
        hooks observe in-process pass executions and cannot see into a
        worker process, so ``--verify-each`` / ``--print-ir-*`` runs
        stay on the thread tier (workers verify their own units
        instead).
        """
        return (self.tier == "process"
                and state is not None and not state.in_worker
                and not self.instrumentations)

    @staticmethod
    def _subtree_slots(pipeline: OpPassManager) -> List[Tuple[int, int]]:
        """Every pass slot key under ``pipeline`` (see
        :meth:`_slot_positions`)."""
        slots: List[Tuple[int, int]] = []

        def visit(nested: OpPassManager) -> None:
            for index, element in enumerate(nested.elements):
                if isinstance(element, OpPassManager):
                    visit(element)
                else:
                    slots.append((id(nested), index))

        visit(pipeline)
        return slots

    def _run_pipeline_process(self, pipeline: OpPassManager,
                              anchored_ops: List[Operation],
                              report: CompileReport,
                              positions: Dict[Tuple[int, int], int],
                              state: _RunState) -> None:
        """Run ``pipeline`` once per function across worker *processes*.

        Work units are (per-function textual IR with ``loc`` trailers,
        the pipeline's canonical spec) — both lossless — and validated
        results are spliced back in anchor order, so output, statistics
        totals and timing keys are byte-identical to a serial run.
        Supervision (crash/hang/corrupt/transient) lives in
        :class:`~repro.transforms.executor.SupervisedExecutor`; units
        whose retries are exhausted fall back to an in-process serial
        run, and tier-level failures raise
        :class:`~repro.transforms.executor.TierError` for the caller's
        degradation ladder.
        """
        from ..ir import Printer
        from ..ir.location import location_of
        from .executor import TierError, WorkResult, WorkUnit, \
            validate_function_result
        from .pipelines import parse_pass_pipeline

        spec = pipeline.to_spec()
        root_spec = f"builtin.module({spec})"
        try:
            if parse_pass_pipeline(root_spec).to_spec() != root_spec:
                raise TierError(
                    "pipeline spec does not round-trip losslessly")
        except ValueError as exc:
            raise TierError(f"pipeline spec does not round-trip: {exc}")
        slots = self._subtree_slots(pipeline)
        if not slots:
            return
        base = min(positions[slot] for slot in slots)

        live = [anchored for anchored in anchored_ops
                if anchored.parent is not None]
        printer = Printer(print_locations=True)
        units = [
            WorkUnit(uid=index, label=function.sym_name or f"func{index}",
                     kind="function", text=printer.print_module(function),
                     spec=spec,
                     filename=location_of(function).filename or "<module>")
            for index, function in enumerate(live)
        ]

        def serial_fallback(unit: WorkUnit, attempts: int,
                            events: List[str]) -> WorkResult:
            # Exactly the serial path, in-process and in place: a
            # deterministic pass error reproduces with native semantics
            # (it raises out of here), and a successful run needs no
            # splice.
            anchored = live[unit.uid]
            local_report = CompileReport()
            local_timing = TimingInstrumentation()
            serial_state = dataclasses.replace(state, in_worker=True)
            with analysis_scope(state.analysis_manager):
                self._run_pipeline(pipeline, anchored, local_report,
                                   [local_timing], positions, serial_state)
            local_report.merge(
                CompileReport(timings=dict(local_timing.timings)),
                renumber_timings=False)
            return WorkResult(
                unit=unit, text=None,
                statistics=[(s.pass_name, s.name, s.value)
                            for s in local_report.statistics],
                remarks=list(local_report.remarks),
                timings=dict(local_report.timings),
                timing_keys_local=False, attempts=attempts + 1,
                degraded=True, events=events)

        executor = self.process_tier()
        stats_before = dict(executor.stats)
        events_before = len(executor.events)
        results = executor.run_units(units, validate_function_result,
                                     serial_fallback)

        # Splice validated results back, preserving anchor order; units
        # the serial fallback completed are already in place.
        for unit in units:
            result = results[unit.uid]
            if result.text is None:
                continue
            old = live[unit.uid]
            old.parent.insert_before(old, result.payload)
            old.erase()
        # Workers mutated (replaced) every function: conservatively
        # invalidate analyses from the run root down.
        if state.analysis_manager is not None and live:
            root = live[0]
            while root.parent_op() is not None:
                root = root.parent_op()
            state.analysis_manager.invalidate(root, ())

        # Merge in anchor order — statistics totals, remark order and
        # (base-shifted) timing keys come out identical to serial.
        for unit in units:
            result = results[unit.uid]
            for pass_name, name, value in result.statistics:
                report.add_statistic(pass_name, name, value)
            report.remarks.extend(result.remarks)
            for key, value in result.timings.items():
                if result.timing_keys_local:
                    match = _TIMING_POSITION_RE.match(key)
                    if match:
                        key = f"{int(match.group(1)) + base}: " \
                              f"{match.group(2)}"
                report.timings[key] = report.timings.get(key, 0.0) + value
            for event in result.events:
                report.remark(f"process-tier: {event}")
        for event in executor.events[events_before:]:
            report.remark(f"process-tier: {event}")
        report.add_statistic("process-tier", "units", len(units))
        for name in sorted(set(stats_before) | set(executor.stats)):
            delta = executor.stats.get(name, 0) - stats_before.get(name, 0)
            if delta:
                report.add_statistic("process-tier", name, delta)

    def _run_pipeline_parallel(self, pipeline: OpPassManager,
                               anchored_ops: List[Operation],
                               report: CompileReport,
                               instrumentations: List[PassInstrumentation],
                               positions: Dict[Tuple[int, int], int],
                               state: _RunState) -> None:
        """Run ``pipeline`` once per anchored function, across the pool.

        Each worker compiles one function into a private
        :class:`CompileReport` with a private timing instrumentation (the
        shared one's start/stop stack is not thread-safe); user hooks are
        shared but serialized through ``state.hook_lock``.  Worker reports
        merge into ``report`` in anchor order, so statistics totals, list
        order and timing keys are identical to a serial run.
        """
        guard = None if unregistered_threading_allowed() else WriteGuard()
        if guard is not None:
            # Protect the attached run root (the module): shared IR under
            # it is read-only for workers, while detached subtrees (clones,
            # builder fragments) remain freely mutable.
            root = anchored_ops[0]
            while root.parent_op() is not None:
                root = root.parent_op()
            guard.protect(root)
        shared_hooks = [instr for instr in instrumentations
                        if instr is not state.timing]

        def compile_function(anchored: Operation) -> CompileReport:
            if guard is not None:
                guard.claim(anchored)
            try:
                local_report = CompileReport()
                local_timing = TimingInstrumentation()
                # A fresh per-worker manager: workers mutate disjoint
                # functions, so entries cannot be shared while in flight;
                # stats and surviving entries fold back in afterwards.
                parent_manager = state.analysis_manager
                worker_manager = parent_manager.child() \
                    if parent_manager is not None else None
                worker_state = dataclasses.replace(
                    state, in_worker=True, analysis_manager=worker_manager)
                with analysis_scope(worker_manager):
                    self._run_pipeline(pipeline, anchored, local_report,
                                       shared_hooks + [local_timing],
                                       positions, worker_state)
                if parent_manager is not None:
                    parent_manager.absorb(worker_manager)
                local_report.merge(
                    CompileReport(timings=dict(local_timing.timings)),
                    renumber_timings=False)
                return local_report
            finally:
                if guard is not None:
                    guard.release(anchored)

        with guarded_region(guard):
            futures = [state.executor.submit(compile_function, anchored)
                       for anchored in anchored_ops
                       if anchored.parent is not None]
            local_reports: List[Optional[CompileReport]] = []
            first_error: Optional[BaseException] = None
            for future in futures:
                try:
                    local_reports.append(future.result())
                except BaseException as error:  # noqa: BLE001 - re-raised
                    local_reports.append(None)
                    if first_error is None:
                        first_error = error
            if first_error is not None:
                raise first_error
        for local_report in local_reports:
            if local_report is not None:
                report.merge(local_report, renumber_timings=False)

    def _run_pass(self, pass_: Pass, op: Operation, report: CompileReport,
                  instrumentations: List[PassInstrumentation],
                  state: Optional[_RunState] = None) -> None:
        from ..ir import VerificationError

        # Hook batches are serialized across workers; the pass body itself
        # runs outside the lock — that is where the parallelism is.
        hook_lock = (state.hook_lock
                     if state is not None and state.in_worker
                     and state.hook_lock is not None else nullcontext())
        with hook_lock:
            for instrumentation in instrumentations:
                instrumentation.run_before_pass(pass_, op)
        pass_.run(op, report)
        # The pass may have mutated the anchor (and anything below it):
        # evict stale analyses unless the pass declared them preserved.
        manager = current_analysis_manager()
        if manager is not None:
            manager.invalidate(op, pass_.preserves())
        try:
            with hook_lock:
                for instrumentation in reversed(instrumentations):
                    instrumentation.run_after_pass(pass_, op)
        except VerificationError as error:
            with hook_lock:
                for instrumentation in instrumentations:
                    instrumentation.run_after_failed_verify(pass_, op, error)
            raise

    def __repr__(self) -> str:
        return f"<PassManager {self.to_spec()}>"
