"""Pass infrastructure: passes, pipelines and compile reports.

Mirrors MLIR's pass manager at the granularity this project needs: passes
run on a module or on every function, can be grouped into pipelines, and
record what they did in a :class:`CompileReport` so the evaluation harness
can attribute speedups to individual optimizations (paper, Section VIII).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..ir import Operation
from ..dialects.builtin import ModuleOp
from ..dialects.func import FuncOp


@dataclass
class PassStatistic:
    """One named counter reported by a pass."""

    pass_name: str
    name: str
    value: int = 0


@dataclass
class CompileReport:
    """Aggregated record of what the optimization pipeline did.

    ``statistics`` stays a list (the public view used by ``summary()`` and
    existing callers), but lookups go through a ``(pass_name, name)`` index
    so ``add_statistic``/``get_statistic`` are O(1) — passes bump counters
    once per rewrite, which made the old linear scans a hot path.
    """

    statistics: List[PassStatistic] = field(default_factory=list)
    remarks: List[str] = field(default_factory=list)
    timings: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._stat_index: Dict[Tuple[str, str], PassStatistic] = {
            (stat.pass_name, stat.name): stat for stat in self.statistics
        }

    def add_statistic(self, pass_name: str, name: str, value: int = 1) -> None:
        key = (pass_name, name)
        stat = self._stat_index.get(key)
        if stat is not None:
            stat.value += value
            return
        stat = PassStatistic(pass_name, name, value)
        self._stat_index[key] = stat
        self.statistics.append(stat)

    def get_statistic(self, pass_name: str, name: str) -> int:
        stat = self._stat_index.get((pass_name, name))
        return stat.value if stat is not None else 0

    def remark(self, message: str) -> None:
        self.remarks.append(message)

    def merge(self, other: "CompileReport") -> None:
        for stat in other.statistics:
            self.add_statistic(stat.pass_name, stat.name, stat.value)
        self.remarks.extend(other.remarks)
        for key, value in other.timings.items():
            self.timings[key] = self.timings.get(key, 0.0) + value

    def summary(self) -> str:
        lines = ["Compile report:"]
        for stat in self.statistics:
            lines.append(f"  {stat.pass_name}: {stat.name} = {stat.value}")
        for remark in self.remarks:
            lines.append(f"  remark: {remark}")
        return "\n".join(lines)


class Pass:
    """Base class of all passes."""

    #: Human-readable pass name (used in reports and statistics).
    NAME = "pass"

    def run(self, op: Operation, report: CompileReport) -> None:  # pragma: no cover
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<Pass {self.NAME}>"


class FunctionPass(Pass):
    """A pass applied to every function in a module (or a bare function)."""

    def run(self, op: Operation, report: CompileReport) -> None:
        for function in self._functions(op):
            self.run_on_function(function, report)

    def run_on_function(self, function: FuncOp,
                        report: CompileReport) -> None:  # pragma: no cover
        raise NotImplementedError

    @staticmethod
    def _functions(op: Operation) -> Iterable[FuncOp]:
        if isinstance(op, FuncOp):
            return [op]
        return [f for f in op.walk() if isinstance(f, FuncOp)]


class ModulePass(Pass):
    """A pass that needs to see the whole module at once."""

    def run(self, op: Operation, report: CompileReport) -> None:
        self.run_on_module(op, report)

    def run_on_module(self, module: Operation,
                      report: CompileReport) -> None:  # pragma: no cover
        raise NotImplementedError


class PassManager:
    """Runs a sequence of passes and collects a compile report."""

    def __init__(self, passes: Optional[List[Pass]] = None,
                 verify_after_each: bool = False):
        self.passes: List[Pass] = list(passes or [])
        self.verify_after_each = verify_after_each

    def add(self, pass_: Pass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def run(self, op: Operation,
            report: Optional[CompileReport] = None) -> CompileReport:
        report = report if report is not None else CompileReport()
        for pass_ in self.passes:
            start = time.perf_counter()
            pass_.run(op, report)
            elapsed = time.perf_counter() - start
            report.timings[pass_.NAME] = report.timings.get(pass_.NAME, 0.0) + elapsed
            if self.verify_after_each:
                from ..ir import verify

                verify(op)
        return report

    def __len__(self) -> int:
        return len(self.passes)

    def __repr__(self) -> str:
        names = ", ".join(p.NAME for p in self.passes)
        return f"<PassManager [{names}]>"
