"""Host raising (paper, Section VII-A).

The host side of the program reaches the compiler as LLVM-dialect IR
obtained from LLVM IR (Fig. 1).  That representation is too low-level for
analysis — every SYCL runtime interaction is an opaque call into mangled
C++ runtime entry points.  This pass pattern-matches the DPC++ runtime call
sequences and *raises* them to SYCL dialect host operations:

* constructor calls for ``range``/``id``/``nd_range``/``buffer``/
  ``accessor``/``local_accessor`` become ``sycl.host.constructor``;
* ``handler::parallel_for`` calls become ``sycl.host.schedule_kernel`` with
  a symbol reference into the device kernels module.

As the paper notes, this matching is inherently coupled to the runtime's
symbol names: if the runtime changes, the patterns must be updated.  The
recognized name patterns live in :data:`RUNTIME_PATTERNS` to keep that
coupling in one place.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..ir import Operation, SymbolRefAttr
from ..dialects.llvm import LLVMCallOp, LLVMFuncOp
from ..dialects.sycl import SYCLHostConstructorOp, SYCLHostScheduleKernelOp
from .pass_manager import CompileReport, ModulePass, register_pass

#: Name of the nested module holding device kernels in a combined module.
DEVICE_MODULE_NAME = "kernels"

#: Regular expressions recognizing DPC++ runtime entry points.  The mangled
#: names encode the SYCL class and the constructor/method being invoked.
RUNTIME_PATTERNS: List[Tuple[str, str]] = [
    (r"sycl.*nd_range.*C[12]", "nd_range"),
    (r"sycl.*local_accessor.*C[12]", "local_accessor"),
    (r"sycl.*accessor.*C[12]", "accessor"),
    (r"sycl.*buffer.*C[12]", "buffer"),
    (r"sycl.*range.*C[12]", "range"),
    (r"sycl.*\bid.*C[12]", "id"),
    (r"sycl.*queue.*C[12]", "queue"),
]

#: Pattern extracting the kernel name from a ``parallel_for`` instantiation.
PARALLEL_FOR_PATTERN = re.compile(r"parallel_forI(?P<kernel>[A-Za-z0-9_]+)E")

#: Pattern recognizing ``handler::parallel_for`` calls.
PARALLEL_FOR_CALL = re.compile(r"sycl.*handler.*parallel_for")


def classify_runtime_call(callee: str) -> Optional[str]:
    """Return the SYCL object kind constructed by ``callee``, if any."""
    for pattern, kind in RUNTIME_PATTERNS:
        if re.search(pattern, callee):
            return kind
    return None


def extract_kernel_name(callee: str) -> Optional[str]:
    match = PARALLEL_FOR_PATTERN.search(callee)
    return match.group("kernel") if match else None


@register_pass
class HostRaisingPass(ModulePass):
    """Raises DPC++ runtime call patterns to SYCL host operations."""

    NAME = "host-raising"

    STATISTICS = tuple(
        [("kernels_raised", "parallel_for launches raised to sycl.launch")] +
        [(f"{kind}_constructors_raised",
          f"{kind} constructor calls raised to sycl.constructor")
         for _, kind in RUNTIME_PATTERNS])

    def run_on_module(self, module: Operation, report: CompileReport) -> None:
        for function in list(module.walk()):
            if isinstance(function, LLVMFuncOp) and not function.is_declaration:
                self._raise_function(function, report)

    # ------------------------------------------------------------------
    def _raise_function(self, function: LLVMFuncOp,
                        report: CompileReport) -> None:
        for op in list(function.walk(include_self=False)):
            if not isinstance(op, LLVMCallOp) or op.parent is None:
                continue
            callee = op.callee_name() or ""
            if PARALLEL_FOR_CALL.search(callee):
                if self._raise_parallel_for(op, callee):
                    report.add_statistic(self.NAME, "kernels_raised")
                else:
                    report.remark(
                        f"{self.NAME}: failed to raise parallel_for call "
                        f"{callee!r}")
                continue
            kind = classify_runtime_call(callee)
            if kind is None:
                continue
            self._raise_constructor(op, kind)
            report.add_statistic(self.NAME, f"{kind}_constructors_raised")

    # ------------------------------------------------------------------
    def _raise_constructor(self, call: LLVMCallOp, kind: str) -> None:
        destination = call.operands[0]
        args = list(call.operands[1:])
        raised = SYCLHostConstructorOp.build(kind, destination, args)
        # Preserve attributes the host frontend attached to the call (e.g.
        # access mode, dimensionality, constant initializer provenance).
        for name, attr in call.attributes.items():
            if name == "callee":
                raised.set_attr("runtime_callee", attr)
            else:
                raised.set_attr(name, attr)
        call.parent.insert_before(call, raised)
        call.replace_all_uses_with(list(raised.results))
        call.erase()

    def _raise_parallel_for(self, call: LLVMCallOp, callee: str) -> bool:
        kernel_name = extract_kernel_name(callee) or \
            call.get_str_attr("kernel_name")
        if kernel_name is None:
            return False
        operands = list(call.operands)
        if not operands:
            return False
        handler = operands[0]
        num_range_operands = call.get_int_attr("num_range_operands", 1)
        range_operands = operands[1:1 + num_range_operands]
        kernel_args = operands[1 + num_range_operands:]
        global_range = range_operands[0] if range_operands else None
        local_range = range_operands[1] if len(range_operands) > 1 else None
        raised = SYCLHostScheduleKernelOp.build(
            handler,
            SymbolRefAttr(DEVICE_MODULE_NAME, (kernel_name,)),
            kernel_args,
            global_range=global_range,
            local_range=local_range,
        )
        for name, attr in call.attributes.items():
            if name in ("callee",):
                raised.set_attr("runtime_callee", attr)
            elif name not in raised.attributes:
                raised.set_attr(name, attr)
        call.parent.insert_before(call, raised)
        call.replace_all_uses_with(list(raised.results))
        call.erase()
        return True
