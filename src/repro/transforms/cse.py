"""Common subexpression elimination for side-effect free operations."""

from __future__ import annotations

from typing import Dict, Tuple

from ..ir import Block, Operation, Trait, has_trait, is_side_effect_free
from ..ir.attributes import ArrayAttr, DenseElementsAttr, DictAttr, FloatAttr
from ..dialects.func import FuncOp
from .pass_manager import CompileReport, FunctionPass, register_pass

#: Attributes whose dataclass equality is coarser than their printed form
#: (floats: -0.0 == 0.0 under IEEE/Python equality) or that can contain
#: such floats; these are interned by their printed string instead of by
#: value equality so CSE never merges semantically distinct constants.
_STR_KEYED_ATTRS = (FloatAttr, ArrayAttr, DenseElementsAttr, DictAttr)


class _KeyCache:
    """Interning cache for the structural-key components.

    Types and attributes are immutable value objects, so two equal
    instances can share one small integer id; keys built from those ids
    hash faster than tuples of formatted strings.  ``hits`` feeds the
    ``cse.key_cache_hits`` statistic so benchmarks can attribute wins.
    A fresh cache is created per ``run_on_function``, which bounds
    retention and keeps the statistic deterministic for a given module
    (a process-global cache would pin every type/attribute ever seen and
    pre-warm hits across unrelated compiles).
    """

    __slots__ = ("type_ids", "attr_ids", "hits")

    def __init__(self):
        self.type_ids: Dict[object, int] = {}
        self.attr_ids: Dict[object, int] = {}
        self.hits = 0

    def _intern(self, table: Dict[object, int], key) -> object:
        try:
            interned = table.get(key)
            if interned is not None:
                self.hits += 1
                return interned
            table[key] = interned = len(table)
            return interned
        except TypeError:  # unhashable (exotic) value: fall back to str
            return str(key)

    def type_id(self, type_) -> object:
        return self._intern(self.type_ids, type_)

    def attr_id(self, attr) -> object:
        if isinstance(attr, _STR_KEYED_ATTRS):
            # The printed form distinguishes -0.0 from 0.0 (the old
            # str()-based key's behaviour, which value equality loses).
            return self._intern(self.attr_ids, (attr.__class__, str(attr)))
        return self._intern(self.attr_ids, attr)


def _operation_key(op: Operation, cache: _KeyCache) -> Tuple:
    """Structural identity of a side-effect free operation.

    Semantics-bearing state (e.g. affine.apply coefficients, GEP static
    offsets) lives in ``op.attributes`` and is covered by the attribute
    component.  Equal types/attributes compare equal as value objects, so
    interned ids (see :class:`_KeyCache`) preserve key equality.
    """
    attrs = op.attributes
    if attrs:
        attr_key = tuple(sorted(
            (name, cache.attr_id(attr)) for name, attr in attrs.items()))
    else:
        attr_key = ()
    return (op.name, tuple(id(v) for v in op._operands), attr_key,
            tuple(cache.type_id(r.type) for r in op.results))


@register_pass
class CSEPass(FunctionPass):
    """Eliminates duplicate pure operations within each block scope.

    Operations are deduplicated per block, with the available-expression map
    inherited by nested regions (a duplicate inside a loop can reuse a value
    computed before the loop, but not vice versa).
    """

    NAME = "cse"

    STATISTICS = (
        ("ops_eliminated", "duplicate pure operations replaced and erased"),
        ("key_cache_hits", "structural-key intern cache hits"),
    )

    def run_on_function(self, function: FuncOp, report: CompileReport) -> None:
        cache = _KeyCache()
        for region in function.regions:
            for block in region.blocks:
                self._process_block(block, {}, report, cache)
        if cache.hits:
            report.add_statistic(self.NAME, "key_cache_hits", cache.hits)

    def _process_block(self, block: Block, available: Dict[Tuple, Operation],
                       report: CompileReport, cache: _KeyCache) -> None:
        scope: Dict[Tuple, Operation] = dict(available)
        for op in block.operations:
            if op.parent is None:
                continue
            if op.regions:
                for region in op.regions:
                    for nested in region.blocks:
                        self._process_block(nested, scope, report, cache)
                continue
            if not op.results or not is_side_effect_free(op):
                continue
            if has_trait(op, Trait.TERMINATOR):
                continue
            key = _operation_key(op, cache)
            existing = scope.get(key)
            if existing is not None and existing is not op:
                op.replace_all_uses_with(list(existing.results))
                op.erase()
                report.add_statistic(self.NAME, "ops_eliminated")
            else:
                scope[key] = op
