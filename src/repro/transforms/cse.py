"""Common subexpression elimination for side-effect free operations."""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..ir import Block, Operation, Trait, has_trait, is_side_effect_free
from ..dialects.func import FuncOp
from .pass_manager import CompileReport, FunctionPass


def _operation_key(op: Operation) -> Tuple:
    """Structural identity of a side-effect free operation.

    Semantics-bearing state (e.g. affine.apply coefficients, GEP static
    offsets) lives in ``op.attributes`` and is covered by ``attr_key``.
    """
    attr_key = tuple(sorted((k, str(v)) for k, v in op.attributes.items()))
    return (op.name, tuple(id(v) for v in op.operands), attr_key,
            tuple(str(r.type) for r in op.results))


class CSEPass(FunctionPass):
    """Eliminates duplicate pure operations within each block scope.

    Operations are deduplicated per block, with the available-expression map
    inherited by nested regions (a duplicate inside a loop can reuse a value
    computed before the loop, but not vice versa).
    """

    NAME = "cse"

    def run_on_function(self, function: FuncOp, report: CompileReport) -> None:
        for region in function.regions:
            for block in region.blocks:
                self._process_block(block, {}, report)

    def _process_block(self, block: Block, available: Dict[Tuple, Operation],
                       report: CompileReport) -> None:
        scope: Dict[Tuple, Operation] = dict(available)
        for op in list(block.operations):
            if op.parent is None:
                continue
            if op.regions:
                for region in op.regions:
                    for nested in region.blocks:
                        self._process_block(nested, scope, report)
                continue
            if not op.results or not is_side_effect_free(op):
                continue
            if has_trait(op, Trait.TERMINATOR):
                continue
            key = _operation_key(op)
            existing = scope.get(key)
            if existing is not None and existing is not op:
                op.replace_all_uses_with(list(existing.results))
                op.erase()
                report.add_statistic(self.NAME, "ops_eliminated")
            else:
                scope[key] = op
