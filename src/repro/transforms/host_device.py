"""Host-device optimizations (paper, Section VII-B).

Working on the combined host+device module produced by the compilation flow
(Fig. 1), this pass analyses the raised host code around every
``sycl.host.schedule_kernel`` and propagates information into the device
kernel:

* **Constant ND-range propagation** — when the global/local ranges are
  built from compile-time constants, device-side queries
  (``get_global_range``, ``get_local_range``, ``get_group_range``,
  ``item.get_range``) are replaced by constants, and the work-group size is
  recorded on the kernel (``sycl.work_group_size``) for Loop
  Internalization.
* **Accessor member propagation** — for non-ranged accessors the access
  range equals the buffer range and the offset is zero; corresponding
  device queries are folded, constant ranges are propagated, and accessors
  built on distinct buffers are recorded as non-aliasing
  (``sycl.noalias_args``), refining the SYCL alias analysis.
* **Scalar constant propagation** — captured scalar arguments passed as
  host constants are materialized as constants in the kernel.
* **SYCL dead argument elimination** — kernel arguments that end up unused
  are recorded (``sycl.dead_args`` on the kernel, ``dead_args`` on the
  schedule op) so the runtime does not pass them, making kernel launches
  cheaper.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir import (
    ArrayAttr,
    Builder,
    InsertionPoint,
    IntegerAttr,
    Operation,
    Value,
    i64,
)
from ..dialects import arith
from ..dialects.builtin import ModuleOp
from ..dialects.func import FuncOp
from ..dialects.llvm import LLVMConstantOp
from ..dialects.sycl import (
    SYCLHostConstructorOp,
    SYCLHostScheduleKernelOp,
)
from .pass_manager import CompileReport, ModulePass, PassOptions, register_pass


@dataclass
class AccessorInfo:
    """Host-side facts about one accessor kernel argument."""

    constructor: SYCLHostConstructorOp
    buffer: Optional[Value] = None
    ranged: bool = False
    access_range: Optional[Tuple[int, ...]] = None
    constant_data: bool = False


@dataclass
class KernelLaunchInfo:
    """Host-side facts about one kernel launch."""

    schedule: SYCLHostScheduleKernelOp
    kernel: FuncOp
    global_size: Optional[Tuple[int, ...]] = None
    local_size: Optional[Tuple[int, ...]] = None
    accessor_args: Dict[int, AccessorInfo] = field(default_factory=dict)
    scalar_constants: Dict[int, object] = field(default_factory=dict)


def host_constructor_of(value: Value) -> Optional[SYCLHostConstructorOp]:
    """Find the ``sycl.host.constructor`` writing into ``value``."""
    for use in value.uses:
        op = use.owner
        if isinstance(op, SYCLHostConstructorOp) and op.destination is value:
            return op
    return None


def _constant_operands(op: Operation) -> Optional[Tuple[int, ...]]:
    values = []
    for operand in op.operands[1:]:
        const = arith.constant_value_of(operand)
        if const is None and isinstance(operand.defining_op(), LLVMConstantOp):
            const = operand.defining_op().value
        if const is None:
            return None
        values.append(int(const))
    return tuple(values)


def _range_constant(value: Optional[Value]) -> Optional[Tuple[int, ...]]:
    if value is None:
        return None
    constructor = host_constructor_of(value)
    if constructor is None or constructor.constructed_type not in ("range", "id"):
        return None
    return _constant_operands(constructor)


@register_pass
class HostDeviceOptimizationPass(ModulePass):
    """Joint host/device constant propagation and accessor analysis."""

    NAME = "host-device-propagation"

    STATISTICS = (
        ("range_queries_folded", "device range queries folded to constants"),
        ("accessor_members_folded", "accessor member queries folded"),
        ("scalar_constants_propagated", "host scalar constants propagated"),
        ("constant_buffers_propagated", "constant buffer contents propagated"),
        ("noalias_accessors", "accessors proven disjoint on the host"),
        ("dead_arguments", "kernel arguments marked dead"),
    )

    @dataclass
    class Options(PassOptions):
        propagate_nd_range: bool = True
        propagate_accessor_members: bool = True
        propagate_scalars: bool = True
        mark_dead_arguments: bool = True

    #: Device-side query operations replaced by the propagated local range.
    _LOCAL_RANGE_QUERIES = ("sycl.nd_item.get_local_range",
                            "sycl.group.get_local_range")
    _GLOBAL_RANGE_QUERIES = ("sycl.nd_item.get_global_range",
                             "sycl.item.get_range")
    _GROUP_RANGE_QUERIES = ("sycl.nd_item.get_group_range",
                            "sycl.group.get_group_range")

    def __init__(self, propagate_nd_range: Optional[bool] = None,
                 propagate_accessor_members: Optional[bool] = None,
                 propagate_scalars: Optional[bool] = None,
                 mark_dead_arguments: Optional[bool] = None,
                 options: Optional["HostDeviceOptimizationPass.Options"] = None):
        options = options if options is not None else self.Options()
        overrides = {
            "propagate_nd_range": propagate_nd_range,
            "propagate_accessor_members": propagate_accessor_members,
            "propagate_scalars": propagate_scalars,
            "mark_dead_arguments": mark_dead_arguments,
        }
        set_overrides = {k: v for k, v in overrides.items() if v is not None}
        if set_overrides:
            options = dataclasses.replace(options, **set_overrides)
        super().__init__(options=options)
        self.propagate_nd_range = options.propagate_nd_range
        self.propagate_accessor_members = options.propagate_accessor_members
        self.propagate_scalars = options.propagate_scalars
        self.mark_dead_arguments = options.mark_dead_arguments

    # ------------------------------------------------------------------
    def run_on_module(self, module: Operation, report: CompileReport) -> None:
        if not isinstance(module, ModuleOp):
            return
        launches = self._collect_launches(module)
        for launch in launches:
            self._analyze_launch(launch)
            if self.propagate_nd_range:
                self._propagate_nd_range(launch, report)
            if self.propagate_accessor_members:
                self._propagate_accessor_members(launch, report)
            if self.propagate_scalars:
                self._propagate_scalars(launch, report)
            if self.mark_dead_arguments:
                self._mark_dead_arguments(launch, report)

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def _collect_launches(self, module: ModuleOp) -> List[KernelLaunchInfo]:
        launches: List[KernelLaunchInfo] = []
        for op in module.walk():
            if not isinstance(op, SYCLHostScheduleKernelOp):
                continue
            kernel = module.lookup_symbol(op.kernel_name)
            if isinstance(kernel, FuncOp):
                launches.append(KernelLaunchInfo(op, kernel))
        return launches

    def _analyze_launch(self, launch: KernelLaunchInfo) -> None:
        schedule = launch.schedule
        range_value = schedule.global_range
        if range_value is not None:
            constructor = host_constructor_of(range_value)
            if constructor is not None and \
                    constructor.constructed_type == "nd_range":
                args = list(constructor.arguments)
                launch.global_size = _range_constant(args[0]) if args else None
                launch.local_size = _range_constant(args[1]) if len(args) > 1 else None
            else:
                launch.global_size = _range_constant(range_value)
        if schedule.local_range is not None:
            launch.local_size = _range_constant(schedule.local_range)

        for position, argument in enumerate(schedule.kernel_arguments):
            constructor = host_constructor_of(argument)
            if constructor is not None and constructor.constructed_type in (
                    "accessor", "local_accessor"):
                info = AccessorInfo(constructor)
                ctor_args = list(constructor.arguments)
                info.buffer = ctor_args[0] if ctor_args else None
                info.ranged = bool(constructor.get_int_attr("ranged", 0))
                range_arg = None
                for candidate in ctor_args[1:]:
                    maybe_range = host_constructor_of(candidate)
                    if maybe_range is not None and \
                            maybe_range.constructed_type == "range":
                        range_arg = candidate
                        break
                info.access_range = _range_constant(range_arg)
                info.constant_data = "constant_init" in constructor.attributes
                launch.accessor_args[position] = info
                continue
            const = arith.constant_value_of(argument)
            if const is None and isinstance(argument.defining_op(), LLVMConstantOp):
                const = argument.defining_op().value
            if const is not None:
                launch.scalar_constants[position] = const

    # ------------------------------------------------------------------
    # Device-side rewrites
    # ------------------------------------------------------------------
    @staticmethod
    def _device_argument(launch: KernelLaunchInfo, position: int) -> Optional[Value]:
        """Kernel argument matching host argument ``position``.

        Device kernels receive the item/nd_item as their first argument,
        followed by the captured arguments in host order.
        """
        index = position + 1
        if index < len(launch.kernel.arguments):
            return launch.kernel.arguments[index]
        return None

    def _replace_query_with_constant(self, kernel: FuncOp, op_names: Sequence[str],
                                     sizes: Tuple[int, ...],
                                     report: CompileReport) -> int:
        replaced = 0
        for op in list(kernel.walk()):
            if op.parent is None or op.OPERATION_NAME not in op_names:
                continue
            dim_value = op.dimension
            if dim_value is None:
                continue
            dim = arith.constant_value_of(dim_value)
            if dim is None or int(dim) >= len(sizes):
                continue
            constant = arith.ConstantOp.build(sizes[int(dim)],
                                              op.results[0].type)
            op.parent.insert_before(op, constant)
            op.replace_all_uses_with([constant.result])
            op.erase()
            replaced += 1
        if replaced:
            report.add_statistic(self.NAME, "range_queries_folded", replaced)
        return replaced

    def _propagate_nd_range(self, launch: KernelLaunchInfo,
                            report: CompileReport) -> None:
        kernel = launch.kernel
        if launch.global_size:
            kernel.set_attr("sycl.global_size", ArrayAttr(tuple(
                IntegerAttr(v, i64()) for v in launch.global_size)))
            self._replace_query_with_constant(
                kernel, self._GLOBAL_RANGE_QUERIES, launch.global_size, report)
        if launch.local_size:
            kernel.set_attr("sycl.work_group_size", ArrayAttr(tuple(
                IntegerAttr(v, i64()) for v in launch.local_size)))
            self._replace_query_with_constant(
                kernel, self._LOCAL_RANGE_QUERIES, launch.local_size, report)
        if launch.global_size and launch.local_size and \
                len(launch.global_size) == len(launch.local_size):
            group_range = tuple(g // l for g, l in
                                zip(launch.global_size, launch.local_size))
            self._replace_query_with_constant(
                kernel, self._GROUP_RANGE_QUERIES, group_range, report)

    def _propagate_accessor_members(self, launch: KernelLaunchInfo,
                                    report: CompileReport) -> None:
        kernel = launch.kernel
        # Accessors on distinct buffers never overlap.
        buffer_map: Dict[int, List[int]] = {}
        for position, info in launch.accessor_args.items():
            if info.buffer is None:
                continue
            buffer_map.setdefault(id(info.buffer), []).append(position)
        noalias_positions = [positions[0] for positions in buffer_map.values()
                             if len(positions) == 1]
        if noalias_positions:
            indices = sorted(position + 1 for position in noalias_positions)
            kernel.set_attr("sycl.noalias_args", ArrayAttr(tuple(
                IntegerAttr(i, i64()) for i in indices)))
            report.add_statistic(self.NAME, "noalias_accessors",
                                 len(noalias_positions))

        constant_args: List[int] = []
        for position, info in launch.accessor_args.items():
            device_arg = self._device_argument(launch, position)
            if device_arg is None:
                continue
            if info.constant_data:
                constant_args.append(position + 1)
            if info.ranged:
                continue
            # Non-ranged accessor: offset is zero, access range == mem range.
            folded = 0
            for op in list(kernel.walk()):
                if op.parent is None:
                    continue
                if op.OPERATION_NAME == "sycl.accessor.get_offset" and \
                        op.source is device_arg:
                    zero = arith.ConstantOp.build(0, op.results[0].type)
                    op.parent.insert_before(op, zero)
                    op.replace_all_uses_with([zero.result])
                    op.erase()
                    folded += 1
                elif op.OPERATION_NAME in ("sycl.accessor.get_range",
                                           "sycl.accessor.get_mem_range") and \
                        op.source is device_arg and info.access_range:
                    dim = arith.constant_value_of(op.dimension) \
                        if op.dimension is not None else None
                    if dim is None or int(dim) >= len(info.access_range):
                        continue
                    constant = arith.ConstantOp.build(
                        info.access_range[int(dim)], op.results[0].type)
                    op.parent.insert_before(op, constant)
                    op.replace_all_uses_with([constant.result])
                    op.erase()
                    folded += 1
            if folded:
                report.add_statistic(self.NAME, "accessor_members_folded", folded)
        if constant_args:
            kernel.set_attr("sycl.constant_args", ArrayAttr(tuple(
                IntegerAttr(i, i64()) for i in sorted(constant_args))))
            report.add_statistic(self.NAME, "constant_buffers_propagated",
                                 len(constant_args))

    def _propagate_scalars(self, launch: KernelLaunchInfo,
                           report: CompileReport) -> None:
        kernel = launch.kernel
        propagated = 0
        for position, value in launch.scalar_constants.items():
            device_arg = self._device_argument(launch, position)
            if device_arg is None or not device_arg.has_uses():
                continue
            builder = Builder(InsertionPoint(kernel.body, 0))
            constant = builder.insert(
                arith.ConstantOp.build(value, device_arg.type))
            device_arg.replace_all_uses_with(constant.result)
            propagated += 1
        if propagated:
            report.add_statistic(self.NAME, "scalar_constants_propagated",
                                 propagated)

    def _mark_dead_arguments(self, launch: KernelLaunchInfo,
                             report: CompileReport) -> None:
        kernel = launch.kernel
        dead: List[int] = []
        for index, argument in enumerate(kernel.arguments):
            if index == 0:
                continue  # the item/nd_item argument is provided by the runtime
            if not argument.has_uses():
                dead.append(index)
        if not dead:
            return
        kernel.set_attr("sycl.dead_args", ArrayAttr(tuple(
            IntegerAttr(i, i64()) for i in dead)))
        launch.schedule.set_attr("dead_args", ArrayAttr(tuple(
            IntegerAttr(i - 1, i64()) for i in dead)))
        report.add_statistic(self.NAME, "dead_arguments", len(dead))
        report.remark(
            f"{self.NAME}: {len(dead)} dead kernel argument(s) in "
            f"{kernel.sym_name}")
