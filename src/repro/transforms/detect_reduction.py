"""Detect Reduction (paper, Section VI-B, Listings 4-5).

The pass looks for the array-reduction pattern inside counted loops::

    affine.for %iv = %lb to %ub {
      %val = affine.load %ptr[c]
      ...
      affine.store %res, %ptr[c]
    }

and rewrites it so that the running value is carried in a loop-carried scalar
(``iter_args``) instead of going through memory on every iteration::

    %init = affine.load %ptr[c]
    %result = affine.for %iv = %lb to %ub iter_args(%red = %init) {
      ...
      affine.yield %res
    }
    affine.store %result, %ptr[c]

Safety relies on the (SYCL-specialized) alias analysis: no other memory
access in the loop may alias the reduced location.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir import (
    EffectKind,
    Operation,
    Value,
    get_memory_effects,
)
from ..dialects import affine as affine_dialect
from ..dialects import arith
from ..dialects import scf as scf_dialect
from ..dialects.func import FuncOp
from ..analysis.alias import AliasAnalysis
from .licm import ALIAS_CHOICES, alias_spec_name, make_alias_analysis
from .pass_manager import (
    CompileReport,
    FunctionPass,
    PassOptions,
    register_pass,
    register_pass_alias,
)


@dataclass
class ReductionCandidate:
    """A load/store pair forming one array reduction in a loop."""

    load: Operation
    store: Operation
    memref: Value
    indices: Tuple[Value, ...]


def _access_indices(op: Operation) -> Tuple[Value, ...]:
    return tuple(op.indices)


def _same_indices(a: Sequence[Value], b: Sequence[Value]) -> bool:
    if len(a) != len(b):
        return False
    for lhs, rhs in zip(a, b):
        if lhs is rhs:
            continue
        lhs_const = arith.constant_value_of(lhs)
        rhs_const = arith.constant_value_of(rhs)
        if lhs_const is None or rhs_const is None or lhs_const != rhs_const:
            return False
    return True


def _value_defined_outside(value: Value, loop: Operation) -> bool:
    defining = value.defining_op()
    if defining is not None:
        return not loop.is_ancestor_of(defining)
    block = value.owner_block()
    parent = block.parent_op() if block is not None else None
    return parent is None or not loop.is_ancestor_of(parent)


def _depends_on(value: Value, source: Value, limit: int = 64) -> bool:
    """True if ``value`` (transitively) uses ``source``."""
    if value is source:
        return True
    defining = value.defining_op()
    if defining is None or limit <= 0:
        return False
    return any(_depends_on(operand, source, limit - 1)
               for operand in defining.operands)


@register_pass
class DetectReduction(FunctionPass):
    """Turns array reductions into loop-carried scalar reductions."""

    NAME = "detect-reduction"

    STATISTICS = (
        ("reductions_detected", "array reductions converted to loop-carried "
                                "scalar reductions"),
    )

    @dataclass
    class Options(PassOptions):
        #: Alias analysis proving the reduced location is unaliased.
        alias: str = field(default="sycl",
                           metadata={"choices": ALIAS_CHOICES})

    #: Loop kinds handled by the pass.
    _LOOP_TYPES = (affine_dialect.AffineForOp, scf_dialect.ForOp)

    def __init__(self, alias_analysis: Optional[AliasAnalysis] = None,
                 options: Optional["DetectReduction.Options"] = None):
        options = options if options is not None else self.Options()
        if alias_analysis is not None:
            options = dataclasses.replace(
                options, alias=alias_spec_name(alias_analysis))
        super().__init__(options=options)
        self.alias_analysis = alias_analysis if alias_analysis is not None \
            else make_alias_analysis(options.alias)

    # ------------------------------------------------------------------
    def run_on_function(self, function: FuncOp, report: CompileReport) -> None:
        # Collect loops first: the rewrite replaces loop operations.
        loops = [op for op in function.walk() if isinstance(op, self._LOOP_TYPES)]
        for loop in loops:
            if loop.parent is None:
                continue
            candidates = self._find_candidates(loop)
            if not candidates:
                continue
            self._rewrite_loop(loop, candidates)
            report.add_statistic(self.NAME, "reductions_detected", len(candidates))
            report.remark(
                f"{self.NAME}: converted {len(candidates)} array reduction(s) "
                f"in {function.sym_name}")

    # ------------------------------------------------------------------
    # Candidate discovery
    # ------------------------------------------------------------------
    def _find_candidates(self, loop: Operation) -> List[ReductionCandidate]:
        from ..dialects import memref as memref_dialect

        body_ops = loop.loop_body().ops_without_terminator()
        loads = [op for op in body_ops
                 if isinstance(op, (affine_dialect.AffineLoadOp,
                                    memref_dialect.LoadOp))]
        stores = [op for op in body_ops
                  if isinstance(op, (affine_dialect.AffineStoreOp,
                                     memref_dialect.StoreOp))]
        candidates: List[ReductionCandidate] = []
        used_stores: set = set()
        for load in loads:
            if not _value_defined_outside(load.memref, loop):
                continue
            if not all(_value_defined_outside(i, loop) for i in load.indices):
                continue
            match = None
            for store in stores:
                if id(store) in used_stores:
                    continue
                if store.memref is not load.memref and \
                        not self.alias_analysis.alias(store.memref,
                                                      load.memref).is_must():
                    continue
                if not _same_indices(_access_indices(load), _access_indices(store)):
                    continue
                if not load.is_before_in_block(store):
                    continue
                if not _depends_on(store.value, load.result):
                    continue
                match = store
                break
            if match is None:
                continue
            candidate = ReductionCandidate(load, match, load.memref,
                                           _access_indices(load))
            if self._is_safe(loop, candidate):
                used_stores.add(id(match))
                candidates.append(candidate)
        return candidates

    def _is_safe(self, loop: Operation, candidate: ReductionCandidate) -> bool:
        """No other access in the loop may touch the reduced location."""
        for op in loop.walk(include_self=False):
            if op is candidate.load or op is candidate.store:
                continue
            effects = get_memory_effects(op)
            if effects is None:
                return False
            for effect in effects:
                if effect.kind not in (EffectKind.READ, EffectKind.WRITE):
                    continue
                if effect.value is None:
                    return False
                if self.alias_analysis.may_alias(effect.value, candidate.memref):
                    return False
        return True

    # ------------------------------------------------------------------
    # Rewrite
    # ------------------------------------------------------------------
    def _rewrite_loop(self, loop: Operation,
                      candidates: List[ReductionCandidate]) -> None:
        parent_block = loop.parent
        assert parent_block is not None

        from ..dialects import memref as memref_dialect

        # 1. Initial loads of the reduced locations, placed before the loop.
        init_values: List[Value] = []
        for candidate in candidates:
            load_class = (affine_dialect.AffineLoadOp
                          if isinstance(candidate.load, affine_dialect.AffineLoadOp)
                          else memref_dialect.LoadOp)
            init_load = load_class.build(candidate.memref, list(candidate.indices))
            parent_block.insert_before(loop, init_load)
            init_values.append(init_load.result)

        # 2. A new loop carrying the reduction values.
        existing_inits = list(loop.init_args)
        if isinstance(loop, affine_dialect.AffineForOp):
            new_loop = affine_dialect.AffineForOp.build(
                loop.lower_bound, loop.upper_bound, loop.step,
                iter_args=existing_inits + init_values)
        else:
            new_loop = scf_dialect.ForOp.build(
                loop.lower_bound, loop.upper_bound, loop.step,
                iter_args=existing_inits + init_values)
        parent_block.insert_before(loop, new_loop)

        mapping: Dict[Value, Value] = {}
        old_body = loop.loop_body()
        new_body = new_loop.loop_body()
        mapping[old_body.arguments[0]] = new_body.arguments[0]
        for old_arg, new_arg in zip(old_body.arguments[1:],
                                    new_body.arguments[1:]):
            mapping[old_arg] = new_arg
        reduction_args = new_body.arguments[1 + len(existing_inits):]
        for candidate, red_arg in zip(candidates, reduction_args):
            mapping[candidate.load.result] = red_arg

        skip = {id(c.load) for c in candidates} | {id(c.store) for c in candidates}
        old_terminator = old_body.terminator
        stored_values: List[Value] = []
        for op in old_body.operations:
            if id(op) in skip or op is old_terminator:
                continue
            cloned = op.clone(mapping)
            new_body.append(cloned)
        # Yield: original yields (if any) followed by the reduction values.
        original_yields = [mapping.get(v, v) for v in loop.yielded_values()]
        for candidate in candidates:
            stored_values.append(mapping.get(candidate.store.value,
                                             candidate.store.value))
        if isinstance(new_loop, affine_dialect.AffineForOp):
            new_body.append(affine_dialect.AffineYieldOp.build(
                original_yields + stored_values))
        else:
            new_body.append(scf_dialect.YieldOp.build(
                original_yields + stored_values))

        # 3. Store the final reduction values after the loop.
        for index, candidate in enumerate(candidates):
            result = new_loop.results[len(existing_inits) + index]
            store_class = (affine_dialect.AffineStoreOp
                           if isinstance(candidate.store,
                                         affine_dialect.AffineStoreOp)
                           else memref_dialect.StoreOp)
            final_store = store_class.build(
                result, candidate.memref, list(candidate.indices))
            parent_block.insert_after(new_loop, final_store)

        # 4. Rewire uses of the original loop results and erase it.
        for old_result, new_result in zip(loop.results, new_loop.results):
            old_result.replace_all_uses_with(new_result)
        loop.erase()


register_pass_alias(
    "detect-reduction-generic", DetectReduction,
    description="Detect Reduction with the dialect-independent alias "
                "analysis (the DPC++/LLVM-IR baseline behaviour).",
    alias="generic")
