"""Fingerprint-keyed compile caching.

A :class:`CompileCache` memoizes pass-manager runs: the key is
``(textual fingerprint of the input, canonical pipeline spec)`` and
the value is a detached *template* of the optimized module plus the
statistics and remarks the run produced.  The textual fingerprint is a
hash of the *printed* module — hits splice a printable result back in,
so the key must capture exactly what determines output identity,
including SSA name spellings (the structural fingerprint in
``repro.ir.fingerprint`` deliberately ignores those; it serves
name-insensitive equivalence queries like function deduplication).  Compiling the same module
through the same pipeline a second time short-circuits the whole
pipeline — the template is deep-cloned and spliced back in, which is
structurally identical to a cold compile (``Operation.clone`` copies the
full region tree) and several times cheaper than re-parsing printed IR.
The template itself is never handed out, so later mutation of a spliced
result cannot poison the cache.

The cache is thread-safe (one lock around the LRU table) and is designed
to be *shared*: one cache serves every segment of a ``repro-opt``
batch run and every worker of a ``jobs=N`` pool.

Since PR 8 the in-memory table can sit on top of a persistent
:class:`~repro.transforms.disk_cache.DiskCache` (``disk=``), forming a
two-tier read-through/write-through hierarchy: a memory miss consults
the disk store, re-parses the persisted text into a template (the same
lossless ``loc``-trailer transport the process tier validates), and
promotes it so later lookups hit in memory; stores write through so a
warm compile survives the process.  Disk entries that fail to re-parse
are evicted on the spot and the lookup degrades to a cold compile —
PR 7's recover-don't-fail contract extended to persistent state.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir import Operation

#: Cache keys: ``(input fingerprint, canonical pipeline spec)``.
CacheKey = Tuple[str, str]


def text_fingerprint(text: str) -> str:
    """Hex digest of a printed module: the cache's input identity."""
    return hashlib.blake2b(text.encode("utf-8"), digest_size=16).hexdigest()


@dataclass
class CachedCompile:
    """The reusable outcome of one pass-manager run."""

    #: Detached optimized module; hits splice a deep clone of it.
    module: Operation
    #: ``(pass_name, statistic name, value)`` triples.
    statistics: List[Tuple[str, str, int]] = field(default_factory=list)
    remarks: List[str] = field(default_factory=list)
    #: Class names of analyses the compiling run left valid for the cached
    #: module; a hit carries them so consumers know what can be warmed.
    preserved_analyses: Tuple[str, ...] = ()

    def materialize(self) -> Operation:
        """A private deep clone of the cached module."""
        return self.module.clone({})


@dataclass
class CacheStats:
    """Hit/miss counters, exposed in reports and ``BENCH_4.json``."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0


class CompileCache:
    """An LRU map from ``(fingerprint, pipeline spec)`` to compile results.

    ``max_entries=None`` means unbounded — the right default for a batch
    driver whose working set is one invocation.  Long-lived services
    should bound it; eviction is least-recently-used.
    """

    def __init__(self, max_entries: Optional[int] = None, disk=None):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be None or >= 1")
        self.max_entries = max_entries
        #: Optional :class:`~repro.transforms.disk_cache.DiskCache`
        #: backing tier (read-through on miss, write-through on store).
        self.disk = disk
        self.stats = CacheStats()
        self._entries: "OrderedDict[CacheKey, CachedCompile]" = OrderedDict()
        self._lock = threading.Lock()

    @staticmethod
    def key_for(op: Operation, pipeline_spec: str) -> CacheKey:
        """The cache key of compiling ``op`` through ``pipeline_spec``.

        Must be computed *before* the run — the fingerprint of the input,
        not of the optimized output.  Keyed on the printed form: inputs
        that print identically compile identically, and inputs that print
        differently (even only in SSA names) must never share a key, or a
        hit would rewrite the later input's spelling.
        """
        from ..ir import Printer

        return (text_fingerprint(Printer().print_module(op)), pipeline_spec)

    def lookup(self, key: CacheKey) -> Optional[CachedCompile]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return entry
            self.stats.misses += 1
        if self.disk is None:
            return None
        # Read-through: parse/promote runs outside the lock — disk I/O
        # and re-parsing must not serialize concurrent compiles.
        entry = self._read_through(key)
        if entry is not None:
            self._promote(key, entry)
        return entry

    def _read_through(self, key: CacheKey) -> Optional[CachedCompile]:
        payload = self.disk.load(key)
        if payload is None:
            return None
        from ..ir import ParseError, parse_module

        try:
            module = parse_module(payload["text"], filename="<disk-cache>")
        except (ParseError, RecursionError):
            # The text passed its fingerprint but no longer parses (a
            # schema drift or a printer/parser bug): evict and recompile
            # rather than fail a compile a cold run would pass.
            self.disk.recover(key)
            return None
        return CachedCompile(
            module=module,
            statistics=[tuple(triple) for triple in payload["statistics"]],
            remarks=list(payload["remarks"]),
            preserved_analyses=tuple(payload["preserved_analyses"]),
        )

    def _promote(self, key: CacheKey, entry: CachedCompile) -> None:
        """Install a disk-tier hit in the memory table without touching
        hit/miss counters (the lookup already counted a memory miss)."""
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            if self.max_entries is not None:
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1

    def store(self, key: CacheKey, entry: CachedCompile) -> None:
        self._promote(key, entry)
        if self.disk is not None:
            self._write_through(key, entry)

    def _write_through(self, key: CacheKey, entry: CachedCompile) -> None:
        from ..ir import Printer

        text = Printer(print_locations=True).print_module(entry.module)
        self.disk.store(
            key, text,
            statistics=entry.statistics,
            remarks=entry.remarks,
            preserved_analyses=entry.preserved_analyses,
        )

    def evict(self, key: CacheKey) -> bool:
        """Drop one entry (the self-healing path: a hit whose
        clone/splice failed is evicted so the next compile runs cold
        instead of re-serving the corrupt template)."""
        with self._lock:
            if key not in self._entries:
                return False
            del self._entries[key]
            self.stats.evictions += 1
            return True

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def describe(self) -> Dict[str, object]:
        """JSON-able snapshot for reports and benchmarks.

        Memory-tier counters live at the top level (their historical
        shape); when a disk tier is attached its counters appear under
        the ``"disk"`` sub-dict.
        """
        with self._lock:
            summary: Dict[str, object] = {
                "entries": len(self._entries),
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "evictions": self.stats.evictions,
            }
        if self.disk is not None:
            summary["disk"] = self.disk.describe()
        return summary

    def __repr__(self) -> str:
        return (f"<CompileCache entries={len(self)} "
                f"hits={self.stats.hits} misses={self.stats.misses}>")
