"""JIT-time kernel specialization (AdaptiveCpp baseline modeling).

AdaptiveCpp's single-pass (SSCP) flow postpones the second compilation step
to kernel launch time, which lets it specialize the kernel on *runtime*
values: the ND-range, scalar arguments and the actual accessor/buffer
pointers (paper, Section IX).  This module implements that specialization as
a transformation applied to a kernel clone at launch time by the
AdaptiveCpp compiler model:

* global/local/group range queries are folded to the launch's ND-range;
* scalar arguments are replaced by their runtime values;
* accessor arguments whose underlying allocations are disjoint at runtime
  are recorded in ``acpp.runtime_noalias_args`` — downstream passes
  (LICM / detect-reduction) may use a runtime-checked alias analysis that
  consults this attribute, modeling LLVM's runtime alias-check versioning.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..ir import ArrayAttr, Builder, InsertionPoint, IntegerAttr, Value, i64
from ..dialects import arith
from ..dialects.func import FuncOp
from ..analysis.alias import AliasAnalysis, AliasResult, underlying_object
from ..ir import BlockArgument
from .pass_manager import CompileReport
from .host_device import HostDeviceOptimizationPass


def _fold_queries(kernel: FuncOp, op_names: Sequence[str],
                  sizes: Tuple[int, ...]) -> int:
    replaced = 0
    for op in list(kernel.walk()):
        if op.parent is None or op.OPERATION_NAME not in op_names:
            continue
        dim_value = op.dimension
        if dim_value is None:
            continue
        dim = arith.constant_value_of(dim_value)
        if dim is None or int(dim) >= len(sizes):
            continue
        constant = arith.ConstantOp.build(sizes[int(dim)], op.results[0].type)
        op.parent.insert_before(op, constant)
        op.replace_all_uses_with([constant.result])
        op.erase()
        replaced += 1
    return replaced


def specialize_kernel(kernel: FuncOp,
                      global_size: Optional[Tuple[int, ...]],
                      local_size: Optional[Tuple[int, ...]],
                      scalar_arguments: Optional[Dict[int, object]] = None,
                      disjoint_accessor_args: Optional[Sequence[int]] = None,
                      report: Optional[CompileReport] = None) -> int:
    """Specialize ``kernel`` in place on runtime launch information.

    ``scalar_arguments`` maps kernel argument indices to runtime values;
    ``disjoint_accessor_args`` lists argument indices whose underlying
    buffers were observed to be pairwise disjoint at launch time.
    Returns the number of rewrites performed.
    """
    rewrites = 0
    if global_size:
        rewrites += _fold_queries(
            kernel, HostDeviceOptimizationPass._GLOBAL_RANGE_QUERIES, global_size)
    if local_size:
        rewrites += _fold_queries(
            kernel, HostDeviceOptimizationPass._LOCAL_RANGE_QUERIES, local_size)
    if global_size and local_size and len(global_size) == len(local_size):
        group_range = tuple(g // l for g, l in zip(global_size, local_size))
        rewrites += _fold_queries(
            kernel, HostDeviceOptimizationPass._GROUP_RANGE_QUERIES, group_range)

    for arg_index, value in (scalar_arguments or {}).items():
        if arg_index >= len(kernel.arguments):
            continue
        argument = kernel.arguments[arg_index]
        if not argument.has_uses() or not isinstance(value, (int, float, bool)):
            continue
        builder = Builder(InsertionPoint(kernel.body, 0))
        constant = builder.insert(arith.ConstantOp.build(value, argument.type))
        argument.replace_all_uses_with(constant.result)
        rewrites += 1

    if disjoint_accessor_args:
        kernel.set_attr("acpp.runtime_noalias_args", ArrayAttr(tuple(
            IntegerAttr(int(i), i64()) for i in sorted(disjoint_accessor_args))))
        rewrites += 1

    if report is not None and rewrites:
        report.add_statistic("jit-specialization", "rewrites", rewrites)
    return rewrites


class RuntimeCheckedAliasAnalysis(AliasAnalysis):
    """Alias analysis that trusts runtime disjointness facts.

    Models the versioned code paths a JIT compiler can emit when it knows
    the actual pointer values: kernel arguments listed in
    ``acpp.runtime_noalias_args`` are treated as pairwise non-aliasing.
    """

    def alias(self, a: Value, b: Value) -> AliasResult:
        base_a = underlying_object(a)
        base_b = underlying_object(b)
        if base_a is not base_b and self._runtime_disjoint(base_a, base_b):
            return AliasResult.NO_ALIAS
        return super().alias(a, b)

    @staticmethod
    def _runtime_disjoint(a: Value, b: Value) -> bool:
        def arg_info(value: Value):
            if not isinstance(value, BlockArgument):
                return None
            block = value.owner_block()
            parent = block.parent_op() if block is not None else None
            if not isinstance(parent, FuncOp):
                return None
            attr = parent.attributes.get("acpp.runtime_noalias_args")
            if not isinstance(attr, ArrayAttr):
                return None
            indices = {entry.value for entry in attr
                       if isinstance(entry, IntegerAttr)}
            return parent, value.arg_index, indices

        info_a = arg_info(a)
        info_b = arg_info(b)
        if info_a is None or info_b is None:
            return False
        func_a, index_a, indices_a = info_a
        func_b, index_b, _ = info_b
        return (func_a is func_b and index_a != index_b and
                index_a in indices_a and index_b in indices_a)
