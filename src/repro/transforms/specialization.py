"""Runtime-checked alias analysis (AdaptiveCpp JIT baseline modeling).

AdaptiveCpp's single-pass (SSCP) flow postpones the second compilation
step to kernel launch time, when the actual accessor/buffer pointers are
known; kernels whose underlying allocations are observed disjoint carry an
``acpp.runtime_noalias_args`` attribute and downstream passes
(LICM / detect-reduction via ``alias=runtime-checked``) may trust it,
modeling LLVM's runtime alias-check versioning (paper, Section IX).

The launch-time kernel *specialization* rewrites that used to live here
(``specialize_kernel``: ND-range query folding, scalar-argument
constant-folding) were quarantined in PR 6: no shipped pipeline or driver
reached them (the ``repro-lint`` dead-code posture applied to our own
code).  ``git log`` has the implementation should a JIT driver grow back.
"""

from __future__ import annotations

from ..ir import ArrayAttr, BlockArgument, IntegerAttr, Value
from ..dialects.func import FuncOp
from ..analysis.alias import AliasAnalysis, AliasResult, underlying_object


class RuntimeCheckedAliasAnalysis(AliasAnalysis):
    """Alias analysis that trusts runtime disjointness facts.

    Models the versioned code paths a JIT compiler can emit when it knows
    the actual pointer values: kernel arguments listed in
    ``acpp.runtime_noalias_args`` are treated as pairwise non-aliasing.
    """

    def alias(self, a: Value, b: Value) -> AliasResult:
        base_a = underlying_object(a)
        base_b = underlying_object(b)
        if base_a is not base_b and self._runtime_disjoint(base_a, base_b):
            return AliasResult.NO_ALIAS
        return super().alias(a, b)

    @staticmethod
    def _runtime_disjoint(a: Value, b: Value) -> bool:
        def arg_info(value: Value):
            if not isinstance(value, BlockArgument):
                return None
            block = value.owner_block()
            parent = block.parent_op() if block is not None else None
            if not isinstance(parent, FuncOp):
                return None
            attr = parent.attributes.get("acpp.runtime_noalias_args")
            if not isinstance(attr, ArrayAttr):
                return None
            indices = {entry.value for entry in attr
                       if isinstance(entry, IntegerAttr)}
            return parent, value.arg_index, indices

        info_a = arg_info(a)
        info_b = arg_info(b)
        if info_a is None or info_b is None:
            return False
        func_a, index_a, indices_a = info_a
        func_b, index_b, _ = info_b
        return (func_a is func_b and index_a != index_b and
                index_a in indices_a and index_b in indices_a)
