"""Persistent, content-addressed compile-artifact store.

The in-memory :class:`~repro.transforms.compile_cache.CompileCache`
(PR 4) dies with the process; this module gives its entries a life on
disk so warm compiles survive restarts and are shared between
``repro-opt``, ``repro-run``, ``repro-lint`` and the ``repro-served``
daemon.  The design is a classic content-addressed store:

* **Addressing** — the cache key is PR 4's pair ``(textual fingerprint
  of the printed input, canonical pipeline spec)``; its blake2b digest
  becomes the file name, sharded into 2-hex-prefix directories
  (``<root>/ab/abcdef….json``) so no single directory grows unbounded.
  A changed input or changed pipeline spec therefore *cannot* hit — it
  addresses a different file.
* **Entries** — one JSON document per compile: the optimized module
  printed **with ``loc`` trailers** (the same lossless textual transport
  the process tier uses), the statistics and remarks the cold run
  produced, the preserved-analysis names, and a fingerprint of the
  stored text so torn writes are detectable.
* **Atomicity** — writes go to a same-directory temp file and land via
  ``os.replace``; readers can never observe a half-written entry under
  POSIX rename semantics.  A write that fails part-way leaves only a
  temp file, which eviction sweeps with everything else.
* **Eviction** — least-recently-used by mtime under a byte budget
  (``max_bytes``); every hit refreshes the entry's mtime.  The sweep
  runs after stores, so the store can only transiently exceed budget.
* **Self-healing reads** — an entry that fails to decode, fails its
  stored-text fingerprint, or mismatches the requested key (a mangled
  or misplaced file) is *evicted on the spot* and the lookup reported
  as a miss, so the caller recompiles cold and write-through repairs
  the entry — the same recover-don't-fail contract PR 7 gave the
  in-memory hit path.  I/O errors likewise degrade to a miss: a broken
  disk must never fail a compile a cold run would pass.

Fault-injection points (:mod:`repro.faults`): ``disk-cache.read``
(``corrupt`` poisons the loaded payload, ``transient`` fails the read)
and ``disk-cache.write`` (``transient`` fails the store), both keyed by
the entry digest.  The chaos suite drives recovery through them.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..faults import TransientFault, fault_point
from .compile_cache import CacheKey, text_fingerprint

#: Bump when the entry schema changes; readers treat other versions as
#: corrupt (evict and recompile) rather than guessing.
ENTRY_VERSION = 1

#: Default on-disk budget: generous for a developer cache, small enough
#: that an unattended daemon cannot fill a disk.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Environment variable the CLIs read when ``--cache-dir`` is absent.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


class CorruptEntry(RuntimeError):
    """A disk entry failed validation (decode, fingerprint, or key)."""


@dataclass
class DiskCacheStats:
    """Counters mirrored into ``--report`` and the daemon status."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    corrupt_recoveries: int = 0
    write_errors: int = 0


class DiskCache:
    """A sharded on-disk map from compile-cache keys to JSON entries.

    Thread-safe: one lock serializes the store/evict bookkeeping; reads
    are lock-free (atomic-rename writers mean a reader sees either the
    old entry, the new entry, or nothing).  Safe to share between
    processes — cross-process races resolve to one winner's entry, and
    both candidates were byte-equivalent by construction (same key, same
    deterministic compile).
    """

    def __init__(self, root, max_bytes: Optional[int] = DEFAULT_MAX_BYTES):
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be None or >= 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.stats = DiskCacheStats()
        self._lock = threading.Lock()

    # -- addressing ----------------------------------------------------------
    @staticmethod
    def digest_for(key: CacheKey) -> str:
        """Content address of a ``(fingerprint, pipeline spec)`` key."""
        fingerprint, spec = key
        raw = f"{fingerprint}\n{spec}".encode("utf-8")
        return hashlib.blake2b(raw, digest_size=16).hexdigest()

    def path_for(self, key: CacheKey) -> Path:
        digest = self.digest_for(key)
        return self.root / digest[:2] / f"{digest}.json"

    # -- reads ---------------------------------------------------------------
    def load(self, key: CacheKey) -> Optional[dict]:
        """The entry payload for ``key``, or ``None`` (a miss).

        Never raises: corrupt entries are evicted and counted as
        ``corrupt_recoveries``; I/O failures count as misses.  A hit
        refreshes the entry's mtime (the LRU clock).
        """
        path = self.path_for(key)
        digest = path.stem
        try:
            if fault_point("disk-cache.read", key=digest) == "corrupt":
                raise CorruptEntry("injected corrupt disk entry")
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
            except FileNotFoundError:
                self._miss()
                return None
            except json.JSONDecodeError as error:
                # Not an I/O failure: the file exists but its bytes are
                # garbage (a mangled or pre-atomic-write torn entry).
                raise CorruptEntry(
                    f"entry is not valid JSON: {error}") from error
            self._validate(key, payload)
        except CorruptEntry as error:
            self._recover(path, error)
            return None
        except (OSError, TransientFault, ValueError):
            # Unreadable disk or an injected read failure: a miss, not
            # an error — the caller recompiles cold.
            self._miss()
            return None
        try:
            os.utime(path)
        except OSError:
            pass  # recency is advisory; the entry itself was served
        with self._lock:
            self.stats.hits += 1
        return payload

    def _validate(self, key: CacheKey, payload: object) -> None:
        if not isinstance(payload, dict):
            raise CorruptEntry("entry is not a JSON object")
        if payload.get("version") != ENTRY_VERSION:
            raise CorruptEntry(
                f"entry version {payload.get('version')!r} != "
                f"{ENTRY_VERSION}")
        fingerprint, spec = key
        if payload.get("fingerprint") != fingerprint \
                or payload.get("spec") != spec:
            # A mangled, misplaced, or hash-colliding file: its content
            # does not describe this key's compile.
            raise CorruptEntry("entry key fields mismatch the lookup key")
        text = payload.get("text")
        if not isinstance(text, str) or not text.strip():
            raise CorruptEntry("entry has no result text")
        if text_fingerprint(text) != payload.get("text_fp"):
            raise CorruptEntry("result text fails its stored fingerprint")

    def _miss(self) -> None:
        with self._lock:
            self.stats.misses += 1

    def _recover(self, path: Path, error: CorruptEntry) -> None:
        """Evict a corrupt entry so the next compile runs (and stores)
        cold instead of tripping over it again."""
        with self._lock:
            self.stats.corrupt_recoveries += 1
            self.stats.misses += 1
        try:
            os.remove(path)
            with self._lock:
                self.stats.evictions += 1
        except OSError:
            pass

    # -- writes --------------------------------------------------------------
    def store(self, key: CacheKey, text: str,
              statistics: Optional[List[Tuple[str, str, int]]] = None,
              remarks: Optional[List[str]] = None,
              preserved_analyses: Tuple[str, ...] = ()) -> bool:
        """Persist one compile result; returns ``False`` on I/O failure.

        The write is atomic (same-directory temp file + ``os.replace``)
        and followed by an LRU sweep back under ``max_bytes``.
        """
        fingerprint, spec = key
        path = self.path_for(key)
        payload = {
            "version": ENTRY_VERSION,
            "fingerprint": fingerprint,
            "spec": spec,
            "text": text,
            "text_fp": text_fingerprint(text),
            "statistics": [list(triple) for triple in statistics or []],
            "remarks": list(remarks or []),
            "preserved_analyses": list(preserved_analyses),
        }
        encoded = json.dumps(payload, sort_keys=True)
        try:
            fault_point("disk-cache.write", key=path.stem)
            path.parent.mkdir(parents=True, exist_ok=True)
            temp = path.parent / f".{path.name}.{os.getpid()}.tmp"
            with open(temp, "w", encoding="utf-8") as handle:
                handle.write(encoded)
            os.replace(temp, path)
        except (OSError, TransientFault):
            with self._lock:
                self.stats.write_errors += 1
            return False
        with self._lock:
            self.stats.stores += 1
        self._evict_over_budget()
        return True

    def recover(self, key: CacheKey) -> None:
        """The caller found a loaded entry unusable after the fact (for
        example it no longer parses): evict it and count the recovery."""
        with self._lock:
            self.stats.corrupt_recoveries += 1
        self.evict(key)

    def evict(self, key: CacheKey) -> bool:
        """Drop one entry (the caller detected it is unusable)."""
        try:
            os.remove(self.path_for(key))
        except OSError:
            return False
        with self._lock:
            self.stats.evictions += 1
        return True

    # -- eviction ------------------------------------------------------------
    def _entries_by_age(self) -> List[Tuple[float, int, Path]]:
        """``(mtime, size, path)`` per entry file, oldest first.

        Leftover temp files (a writer died mid-store) are included so
        the sweep reclaims them too.
        """
        found: List[Tuple[float, int, Path]] = []
        for shard in self.root.iterdir():
            if not shard.is_dir():
                continue
            for path in shard.iterdir():
                try:
                    status = path.stat()
                except OSError:
                    continue
                found.append((status.st_mtime, status.st_size, path))
        found.sort(key=lambda item: item[0])
        return found

    def _evict_over_budget(self) -> None:
        if self.max_bytes is None:
            return
        with self._lock:
            entries = self._entries_by_age()
            total = sum(size for _, size, _ in entries)
            for _, size, path in entries:
                if total <= self.max_bytes:
                    break
                try:
                    os.remove(path)
                except OSError:
                    continue
                total -= size
                self.stats.evictions += 1

    # -- introspection -------------------------------------------------------
    def bytes_on_disk(self) -> int:
        return sum(size for _, size, _ in self._entries_by_age())

    def __len__(self) -> int:
        return sum(1 for _, _, path in self._entries_by_age()
                   if path.suffix == ".json")

    def describe(self) -> Dict[str, int]:
        """JSON-able snapshot for ``--report`` and the daemon status."""
        with self._lock:
            stats = DiskCacheStats(**vars(self.stats))
        return {
            "entries": len(self),
            "bytes_on_disk": self.bytes_on_disk(),
            "hits": stats.hits,
            "misses": stats.misses,
            "stores": stats.stores,
            "evictions": stats.evictions,
            "corrupt_recoveries": stats.corrupt_recoveries,
            "write_errors": stats.write_errors,
        }

    def __repr__(self) -> str:
        return (f"<DiskCache root={str(self.root)!r} "
                f"hits={self.stats.hits} misses={self.stats.misses}>")


def cache_dir_from_env() -> Optional[str]:
    """The ``REPRO_CACHE_DIR`` value, or ``None`` when unset/empty."""
    value = os.environ.get(CACHE_DIR_ENV, "").strip()
    return value or None
