"""Canonicalization: constant folding, algebraic simplification and DCE."""

from __future__ import annotations

from typing import List, Optional

from ..ir import (
    Attribute,
    BoolAttr,
    FloatAttr,
    IntegerAttr,
    Operation,
    Trait,
    Value,
    has_trait,
    is_side_effect_free,
)
from ..dialects import arith
from ..dialects.func import FuncOp
from .pass_manager import CompileReport, FunctionPass

#: Upper bound on folding sweeps per function.
_MAX_SWEEPS = 16


def _materialize_constant(attr: Attribute, type_) -> Optional[Operation]:
    if isinstance(attr, (IntegerAttr, FloatAttr)):
        return arith.ConstantOp.build(attr.value, type_)
    if isinstance(attr, BoolAttr):
        return arith.ConstantOp.build(attr.value, type_)
    return None


def fold_operation(op: Operation) -> bool:
    """Try to fold ``op``; returns True if it was replaced."""
    if isinstance(op, arith.ConstantOp):
        return False
    folded = op.fold()
    if folded is None:
        return False
    replacements: List[Value] = []
    for result, item in zip(op.results, folded):
        if isinstance(item, Value):
            replacements.append(item)
            continue
        constant = _materialize_constant(item, result.type)
        if constant is None:
            return False
        op.parent.insert_before(op, constant)
        replacements.append(constant.result)
    op.replace_all_uses_with(replacements)
    op.erase()
    return True


def _simplify_identities(op: Operation) -> bool:
    """Algebraic identities: ``x + 0``, ``x * 1``, ``x * 0``, ``select c,a,a``."""
    if isinstance(op, arith.SelectOp):
        if op.operands[1] is op.operands[2]:
            op.replace_all_uses_with([op.operands[1]])
            op.erase()
            return True
        return False
    identity = getattr(type(op), "IDENTITY", None)
    if identity is None or len(op.operands) != 2:
        return False
    lhs, rhs = op.operands
    rhs_const = arith.constant_value_of(rhs)
    lhs_const = arith.constant_value_of(lhs)
    commutative = has_trait(op, Trait.COMMUTATIVE)
    if rhs_const is not None and rhs_const == identity:
        op.replace_all_uses_with([lhs])
        op.erase()
        return True
    if commutative and lhs_const is not None and lhs_const == identity:
        op.replace_all_uses_with([rhs])
        op.erase()
        return True
    # x * 0 == 0 (integers only, to avoid NaN pitfalls with floats).
    if op.name == "arith.muli" and (rhs_const == 0 or lhs_const == 0):
        zero = arith.ConstantOp.build(0, op.results[0].type)
        op.parent.insert_before(op, zero)
        op.replace_all_uses_with([zero.result])
        op.erase()
        return True
    return False


def erase_dead_ops(root: Operation) -> int:
    """Remove operations that are dead.

    An operation is dead when none of its results are used and it has no
    observable effect: it is side-effect free, or its only effects are reads
    and allocations (a read whose result is unused is unobservable).
    """
    erased = 0
    changed = True
    while changed:
        changed = False
        for op in list(root.walk(include_self=False)):
            if op.parent is None or has_trait(op, Trait.TERMINATOR):
                continue
            if has_trait(op, Trait.SYMBOL) or op.regions:
                continue
            if op.has_uses():
                continue
            if not op.results:
                continue
            if is_side_effect_free(op) or _effects_are_unobservable(op):
                op.erase()
                erased += 1
                changed = True
        erased_allocs = _erase_write_only_allocations(root)
        if erased_allocs:
            erased += erased_allocs
            changed = True
    return erased


def _erase_write_only_allocations(root: Operation) -> int:
    """Erase local allocations that are only ever written, never read.

    This cleans up the id objects left behind when an accessor subscript is
    rewritten (e.g. by Loop Internalization): the ``memref.alloca`` and the
    ``sycl.constructor`` writing it have no observable effect once nothing
    reads the id.
    """
    from ..ir import EffectKind, get_memory_effects

    erased = 0
    for op in list(root.walk(include_self=False)):
        if op.parent is None:
            continue
        effects = get_memory_effects(op)
        if effects is None or not effects:
            continue
        if not all(e.kind == EffectKind.ALLOCATE for e in effects):
            continue
        allocation = op.results[0] if op.results else None
        if allocation is None:
            continue
        users = allocation.users()
        if not users:
            continue
        writers = []
        removable = True
        for user in users:
            if user.has_uses():
                removable = False
                break
            user_effects = get_memory_effects(user)
            if user_effects is None:
                removable = False
                break
            for effect in user_effects:
                if effect.kind == EffectKind.READ and effect.value is allocation:
                    removable = False
                    break
                if effect.kind == EffectKind.WRITE and effect.value is not allocation:
                    removable = False
                    break
            if not removable:
                break
            writers.append(user)
        if not removable:
            continue
        for writer in writers:
            writer.erase()
            erased += 1
        op.erase()
        erased += 1
    return erased


def _effects_are_unobservable(op: Operation) -> bool:
    """Only reads / allocations: removable when the results are unused."""
    from ..ir import EffectKind, get_memory_effects

    effects = get_memory_effects(op)
    if effects is None:
        return False
    return bool(effects) and all(
        e.kind in (EffectKind.READ, EffectKind.ALLOCATE) for e in effects)


class CanonicalizePass(FunctionPass):
    """Fold constants, simplify identities and erase dead pure operations."""

    NAME = "canonicalize"

    def run_on_function(self, function: FuncOp, report: CompileReport) -> None:
        for _ in range(_MAX_SWEEPS):
            changed = False
            for op in list(function.walk(include_self=False)):
                if op.parent is None:
                    continue
                if fold_operation(op):
                    report.add_statistic(self.NAME, "ops_folded")
                    changed = True
                    continue
                if _simplify_identities(op):
                    report.add_statistic(self.NAME, "identities_simplified")
                    changed = True
            erased = erase_dead_ops(function)
            if erased:
                report.add_statistic(self.NAME, "dead_ops_erased", erased)
                changed = True
            if not changed:
                break


class DCEPass(FunctionPass):
    """Standalone dead-code elimination."""

    NAME = "dce"

    def run_on_function(self, function: FuncOp, report: CompileReport) -> None:
        erased = erase_dead_ops(function)
        if erased:
            report.add_statistic(self.NAME, "dead_ops_erased", erased)
