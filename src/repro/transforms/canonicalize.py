"""Canonicalization: constant folding, algebraic simplification and DCE.

Folding and identity simplification run as rewrite patterns on the
worklist-driven greedy driver (:mod:`repro.transforms.rewrite`), and dead
code elimination is itself worklist-based: erasing an operation re-enqueues
the defining operations of its operands, so a dead chain of N operations
costs O(N) instead of N full-module sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..ir import (
    Attribute,
    BoolAttr,
    EffectKind,
    FloatAttr,
    IntegerAttr,
    Operation,
    Trait,
    Value,
    get_memory_effects,
    has_trait,
    is_side_effect_free,
)
from ..dialects import arith
from ..dialects.func import FuncOp
from .pass_manager import (
    CompileReport,
    FunctionPass,
    PassOptions,
    register_pass,
)
from .rewrite import (
    MAX_PATTERN_ITERATIONS,
    PatternRewriter,
    RewritePattern,
    apply_patterns_greedily,
)


def _materialize_constant(attr: Attribute, type_) -> Optional[Operation]:
    if isinstance(attr, (IntegerAttr, FloatAttr)):
        return arith.ConstantOp.build(attr.value, type_)
    if isinstance(attr, BoolAttr):
        return arith.ConstantOp.build(attr.value, type_)
    return None


def _standalone_rewriter(op: Operation) -> PatternRewriter:
    rewriter = PatternRewriter()
    rewriter.set_insertion_point_before(op)
    return rewriter


def fold_operation(op: Operation,
                   rewriter: Optional[PatternRewriter] = None) -> bool:
    """Try to fold ``op``; returns True if it was replaced."""
    if isinstance(op, arith.ConstantOp):
        return False
    folded = op.fold()
    if folded is None:
        return False
    # Materialize every constant before inserting any, so a result the
    # fold hook produced but we cannot materialize does not leave earlier
    # constants orphaned in the block.
    replacements: List[Value] = []
    pending: List[Operation] = []
    for result, item in zip(op.results, folded):
        if isinstance(item, Value):
            replacements.append(item)
            continue
        constant = _materialize_constant(item, result.type)
        if constant is None:
            return False
        pending.append(constant)
        replacements.append(constant.result)
    if rewriter is None:
        rewriter = _standalone_rewriter(op)
    for constant in pending:
        rewriter.insert(constant)
    rewriter.replace_op(op, replacements)
    return True


def _simplify_identities(op: Operation,
                         rewriter: Optional[PatternRewriter] = None) -> bool:
    """Algebraic identities: ``x + 0``, ``x * 1``, ``x * 0``, ``select c,a,a``."""
    if isinstance(op, arith.SelectOp):
        if op.operands[1] is op.operands[2]:
            if rewriter is None:
                rewriter = _standalone_rewriter(op)
            rewriter.replace_op(op, [op.operands[1]])
            return True
        return False
    identity = getattr(type(op), "IDENTITY", None)
    if identity is None or len(op.operands) != 2:
        return False
    lhs, rhs = op.operands
    rhs_const = arith.constant_value_of(rhs)
    lhs_const = arith.constant_value_of(lhs)
    commutative = has_trait(op, Trait.COMMUTATIVE)
    if rhs_const is not None and rhs_const == identity:
        if rewriter is None:
            rewriter = _standalone_rewriter(op)
        rewriter.replace_op(op, [lhs])
        return True
    if commutative and lhs_const is not None and lhs_const == identity:
        if rewriter is None:
            rewriter = _standalone_rewriter(op)
        rewriter.replace_op(op, [rhs])
        return True
    # x * 0 == 0 (integers only, to avoid NaN pitfalls with floats).
    if op.name == "arith.muli" and (rhs_const == 0 or lhs_const == 0):
        if rewriter is None:
            rewriter = _standalone_rewriter(op)
        zero = rewriter.insert(arith.ConstantOp.build(0, op.results[0].type))
        rewriter.replace_op(op, [zero.result])
        return True
    return False


class _CanonicalizePattern(RewritePattern):
    """Constant folding + algebraic identities as one worklist pattern.

    Fused so the driver dispatches once per visited op; fold is tried
    first, matching the old sweep's application order.
    """

    def __init__(self, report: Optional[CompileReport] = None,
                 pass_name: str = "canonicalize"):
        self.report = report
        self.pass_name = pass_name

    def match_and_rewrite(self, op: Operation,
                          rewriter: PatternRewriter) -> bool:
        if fold_operation(op, rewriter):
            if self.report is not None:
                self.report.add_statistic(self.pass_name, "ops_folded")
            return True
        if _simplify_identities(op, rewriter):
            if self.report is not None:
                self.report.add_statistic(self.pass_name,
                                          "identities_simplified")
            return True
        return False


def _is_trivially_dead(op: Operation) -> bool:
    # Cheapest checks first: most visited ops are live, so the common exit
    # is "a result has uses" — reached without any trait/effect queries.
    results = op.results
    if not results or op.parent is None:
        return False
    for result in results:
        if result._uses:
            return False
    if op.regions or has_trait(op, Trait.TERMINATOR) or \
            has_trait(op, Trait.SYMBOL):
        return False
    return is_side_effect_free(op) or _effects_are_unobservable(op)


def erase_dead_ops(root: Operation) -> int:
    """Remove operations that are dead.

    An operation is dead when none of its results are used and it has no
    observable effect: it is side-effect free, or its only effects are reads
    and allocations (a read whose result is unused is unobservable).

    Worklist-based: erasing an operation enqueues the defining operations
    of its operands, so dead chains are collected in one pass over the
    module plus O(ops erased).
    """
    worklist: List[Operation] = list(root.walk(include_self=False))
    seen = {id(op) for op in worklist}
    erased = _drain_trivially_dead(worklist, seen)
    return erased + _erase_allocation_groups(root)


def _drain_trivially_dead(worklist: List[Operation], seen: set) -> int:
    """Erase every trivially dead op reachable from ``worklist``.

    Erasing an op enqueues the defining ops of its operands, so dead
    chains collapse in O(chain length).
    """
    erased = 0
    while worklist:
        op = worklist.pop()
        seen.discard(id(op))
        if not _is_trivially_dead(op):
            continue
        feeders = [operand.defining_op() for operand in op.operands]
        op.erase()
        erased += 1
        for feeder in feeders:
            if feeder is not None and id(feeder) not in seen:
                seen.add(id(feeder))
                worklist.append(feeder)
    return erased


def _erase_allocation_groups(root: Operation) -> int:
    """Erase write-only allocation groups until none remain.

    Write-only local allocations are dead as a group (the allocation plus
    its writers) but not *trivially* dead, so they need their own sweep;
    each group erased can expose newly dead feeders (drained without a
    full re-seed), and erasing those can in turn make further allocations
    write-only — hence the loop.  Each round erases at least one op or
    stops, so this reaches the same fixed point the old while-changed
    sweep loop guaranteed.
    """
    erased = 0
    worklist: List[Operation] = []
    seen: set = set()
    while True:
        newly_dead = _erase_write_only_allocations(root)
        if not newly_dead:
            return erased
        erased += len(newly_dead)
        for feeders in newly_dead:
            for feeder in feeders:
                if feeder is not None and id(feeder) not in seen:
                    seen.add(id(feeder))
                    worklist.append(feeder)
        erased += _drain_trivially_dead(worklist, seen)


def _erase_write_only_allocations(root: Operation) -> List[List[Operation]]:
    """Erase local allocations that are only ever written, never read.

    This cleans up the id objects left behind when an accessor subscript is
    rewritten (e.g. by Loop Internalization): the ``memref.alloca`` and the
    ``sycl.constructor`` writing it have no observable effect once nothing
    reads the id.

    Returns, for each erased operation, the defining ops of its operands so
    the caller can re-check them for deadness.
    """
    feeders: List[List[Operation]] = []
    for op in root.walk(include_self=False):
        if op.parent is None:
            continue
        effects = get_memory_effects(op)
        if effects is None or not effects:
            continue
        if not all(e.kind == EffectKind.ALLOCATE for e in effects):
            continue
        allocation = op.results[0] if op.results else None
        if allocation is None:
            continue
        users = allocation.users()
        if not users:
            continue
        writers = []
        removable = True
        for user in users:
            if user.has_uses():
                removable = False
                break
            user_effects = get_memory_effects(user)
            if user_effects is None:
                removable = False
                break
            for effect in user_effects:
                if effect.kind == EffectKind.READ and effect.value is allocation:
                    removable = False
                    break
                if effect.kind == EffectKind.WRITE and effect.value is not allocation:
                    removable = False
                    break
            if not removable:
                break
            writers.append(user)
        if not removable:
            continue
        for writer in writers:
            feeders.append([operand.defining_op()
                            for operand in writer.operands])
            writer.erase()
        feeders.append([operand.defining_op() for operand in op.operands])
        op.erase()
    return feeders


def _effects_are_unobservable(op: Operation) -> bool:
    """Only reads / allocations: removable when the results are unused."""
    effects = get_memory_effects(op)
    if effects is None:
        return False
    return bool(effects) and all(
        e.kind in (EffectKind.READ, EffectKind.ALLOCATE) for e in effects)


@register_pass
class CanonicalizePass(FunctionPass):
    """Fold constants, simplify identities and erase dead pure operations."""

    NAME = "canonicalize"

    STATISTICS = (
        ("ops_folded", "operations replaced by folded constants"),
        ("identities_simplified", "algebraic identities rewritten away"),
        ("dead_ops_erased", "trivially dead operations removed"),
    )

    @dataclass
    class Options(PassOptions):
        #: Convergence bound forwarded to the greedy rewrite driver.
        max_iterations: int = MAX_PATTERN_ITERATIONS
        #: Fold dead-code elimination into the rewrite drain.
        prune_dead: bool = True

    def run_on_function(self, function: FuncOp, report: CompileReport) -> None:
        patterns = [_CanonicalizePattern(report, self.NAME)]
        # One driver run reaches the fold/simplify/DCE fixed point: the
        # worklist re-enqueues affected ops until quiescent, and trivially
        # dead ops are pruned during the same drain.  Folding depends only
        # on operands, so no restart loop is needed; afterwards only the
        # write-only allocation groups the trivial-deadness predicate
        # cannot see are collected (no full-module DCE re-seed).
        erased_in_driver = [0]

        def prune(op: Operation) -> bool:
            if _is_trivially_dead(op):
                erased_in_driver[0] += 1
                return True
            return False

        apply_patterns_greedily(
            function, patterns,
            max_iterations=self.options.max_iterations,
            prune_dead=prune if self.options.prune_dead else None)
        if not self.options.prune_dead:
            return
        erased = erased_in_driver[0] + _erase_allocation_groups(function)
        if erased:
            report.add_statistic(self.NAME, "dead_ops_erased", erased)


@register_pass
class DCEPass(FunctionPass):
    """Standalone dead-code elimination."""

    NAME = "dce"

    STATISTICS = (
        ("dead_ops_erased", "dead operations (and allocation groups) removed"),
    )

    def run_on_function(self, function: FuncOp, report: CompileReport) -> None:
        erased = erase_dead_ops(function)
        if erased:
            report.add_statistic(self.NAME, "dead_ops_erased", erased)
