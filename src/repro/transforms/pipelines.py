"""Standard pass pipelines and the textual pipeline-spec language.

* :func:`sycl_mlir_pipeline` — the paper's SYCL-MLIR flow: host raising,
  host-device propagation, then the SYCL-aware device optimizations
  (Loop Internalization, SYCL LICM, Detect Reduction) plus generic cleanup.
* :func:`dpcpp_pipeline` — the DPC++ baseline: premature lowering of SYCL
  accessor semantics followed by generic optimizations only.
* :func:`adaptivecpp_pipeline` — the AdaptiveCpp (SSCP JIT) baseline ahead-
  of-time part: premature lowering + generic optimizations; the runtime
  specialization happens at launch time (see
  :mod:`repro.transforms.specialization` and the compiler driver).

All three are expressed on the nested pass-manager API
(``pm.nest("func.func").add(...)``), so function-local optimizations run
once per isolated function.

The textual spec language (``repro-opt --passes``) round-trips through
:func:`parse_pass_pipeline` / :func:`dump_pass_pipeline`::

    builtin.module(cse,func.func(canonicalize{max-iterations=10},licm))

Grammar::

    pipeline  ::= element-list | anchored
    anchored  ::= anchor '(' element-list ')'
    element   ::= anchored | pass
    pass      ::= name [ '{' key '=' value (',' key '=' value)* '}' ]
    anchor    ::= 'builtin.module' | 'func.func'

Pass names resolve through the declarative registry populated by the
``@register_pass`` decorators on each pass module (see
:mod:`repro.transforms.pass_manager`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..analysis.alias import AliasAnalysis
from ..analysis.sycl_alias import SYCLAliasAnalysis
from .canonicalize import CanonicalizePass, DCEPass
from .cse import CSEPass
from .detect_reduction import DetectReduction
from .host_device import HostDeviceOptimizationPass
from .host_raising import HostRaisingPass
from .licm import LoopInvariantCodeMotion
from .loop_internalization import LoopInternalization
from .lower_sycl import LowerAccessorSubscripts
from .pass_manager import (
    ANCHOR_OPS,
    MODULE_ANCHOR,
    OpPassManager,
    Pass,
    PASS_REGISTRATIONS,
    PassManager,
    PassRegistration,
    lookup_pass,
)
from .specialization import RuntimeCheckedAliasAnalysis

# Importing the target subsystem registers the conversion passes behind
# the "lower-to-llvm" pipeline with the declarative pass registry, so
# `repro-opt --passes 'convert-scf-to-cf'` works standalone.
from ..target import conversions as _target_conversions  # noqa: E402,F401


@dataclass
class OptimizationOptions:
    """Feature toggles used by the drivers and the ablation benchmarks."""

    licm: bool = True
    detect_reduction: bool = True
    loop_internalization: bool = True
    host_device_propagation: bool = True
    host_raising: bool = True
    canonicalize: bool = True

    @classmethod
    def all_disabled(cls) -> "OptimizationOptions":
        return cls(licm=False, detect_reduction=False,
                   loop_internalization=False, host_device_propagation=False,
                   host_raising=False, canonicalize=True)

    def without(self, name: str) -> "OptimizationOptions":
        options = OptimizationOptions(**self.__dict__)
        if not hasattr(options, name):
            raise ValueError(f"unknown optimization flag {name!r}")
        setattr(options, name, False)
        return options


def _nest_function_passes(pm: PassManager, passes: List[Pass]) -> None:
    """Nest ``passes`` under a ``func.func`` pipeline, if any."""
    if not passes:
        return
    nested = pm.nest("func.func")
    for pass_ in passes:
        nested.add(pass_)


def sycl_mlir_pipeline(options: Optional[OptimizationOptions] = None,
                       jobs: int = 1) -> PassManager:
    """The SYCL-MLIR optimization pipeline (host + device, Sections V-VII)."""
    options = options or OptimizationOptions()
    alias = SYCLAliasAnalysis()
    pm = PassManager(jobs=jobs)
    if options.canonicalize:
        _nest_function_passes(pm, [CanonicalizePass(), CSEPass()])
    if options.host_raising:
        pm.add(HostRaisingPass())
    if options.host_device_propagation:
        pm.add(HostDeviceOptimizationPass())
    device: List[Pass] = []
    if options.canonicalize:
        device.append(CanonicalizePass())
    if options.loop_internalization:
        device.append(LoopInternalization())
    if options.licm:
        device.append(LoopInvariantCodeMotion(alias_analysis=alias))
    if options.detect_reduction:
        device.append(DetectReduction(alias_analysis=alias))
    if options.canonicalize:
        device.extend([CanonicalizePass(), CSEPass(), DCEPass()])
    _nest_function_passes(pm, device)
    return pm


def dpcpp_pipeline(options: Optional[OptimizationOptions] = None,
                   jobs: int = 1) -> PassManager:
    """The DPC++ baseline: premature lowering + generic optimizations.

    The generic optimizations use the dialect-independent alias analysis, so
    accessor-derived pointers conservatively may alias, which blocks scalar
    promotion of array reductions — the behaviour the paper attributes to
    LLVM-IR based flows.
    """
    options = options or OptimizationOptions()
    alias = AliasAnalysis()
    passes: List[Pass] = [
        CanonicalizePass(),
        CSEPass(),
        LowerAccessorSubscripts(),
        CanonicalizePass(),
        CSEPass(),
    ]
    if options.licm:
        passes.append(LoopInvariantCodeMotion(alias_analysis=alias))
    if options.detect_reduction:
        passes.append(DetectReduction(alias_analysis=alias))
    passes.extend([CanonicalizePass(), CSEPass(), DCEPass()])
    pm = PassManager(jobs=jobs)
    _nest_function_passes(pm, passes)
    return pm


def adaptivecpp_aot_pipeline(jobs: int = 1) -> PassManager:
    """AdaptiveCpp ahead-of-time part: lowering + light cleanup only."""
    pm = PassManager(jobs=jobs)
    _nest_function_passes(pm, [
        CanonicalizePass(),
        CSEPass(),
        LowerAccessorSubscripts(),
        CanonicalizePass(),
        CSEPass(),
    ])
    return pm


def adaptivecpp_jit_pipeline(jobs: int = 1) -> PassManager:
    """AdaptiveCpp launch-time (JIT) optimizations after specialization.

    The runtime-checked alias analysis trusts the disjointness facts the JIT
    observes at launch, enabling LICM of accessor metadata and scalar
    promotion of reductions (with the cost of JIT-ing accounted separately
    by the compiler driver).
    """
    alias = RuntimeCheckedAliasAnalysis()
    pm = PassManager(jobs=jobs)
    _nest_function_passes(pm, [
        CanonicalizePass(),
        CSEPass(),
        LoopInvariantCodeMotion(alias_analysis=alias),
        DetectReduction(alias_analysis=alias),
        CanonicalizePass(),
        CSEPass(),
        DCEPass(),
    ])
    return pm


def lower_to_llvm_pipeline(jobs: int = 1) -> PassManager:
    """Progressive lowering to an LLVM-dialect CFG.

    Accessor subscripts become plain memref accesses, affine constructs
    become ``scf``, structured control flow becomes a ``cf`` branch
    CFG, arithmetic and memory accesses become ``llvm.*``, and finally
    whole functions convert to ``llvm.func``.  The differential harness
    proves the composition preserves the source module's semantics
    (see :mod:`repro.target.conversions` and ``docs/lowering.md``).
    """
    from ..target.conversions import (
        ConvertArithToLLVM,
        ConvertFuncToLLVM,
        ConvertMemRefToLLVM,
        ConvertSCFToCF,
        LowerAffine,
    )

    pm = PassManager(jobs=jobs)
    _nest_function_passes(pm, [
        LowerAccessorSubscripts(),
        LowerAffine(),
        ConvertSCFToCF(),
        ConvertArithToLLVM(),
        ConvertMemRefToLLVM(),
    ])
    pm.add(ConvertFuncToLLVM())
    return pm


# ---------------------------------------------------------------------------
# Textual pass pipeline specifications (the `repro-opt --passes` language)
# ---------------------------------------------------------------------------

class _LegacyRegistryView:
    """Read-only dict-like view over the declarative registry.

    Preserves the old ``PASS_REGISTRY`` surface (name -> zero-argument
    factory) for callers that predate ``@register_pass``.
    """

    def __contains__(self, name: str) -> bool:
        return name in PASS_REGISTRATIONS

    def __iter__(self):
        return iter(PASS_REGISTRATIONS)

    def __len__(self) -> int:
        return len(PASS_REGISTRATIONS)

    def get(self, name: str) -> Optional[Callable[[], Pass]]:
        registration = lookup_pass(name)
        if registration is None:
            return None
        return registration.build

    def __getitem__(self, name: str) -> Callable[[], Pass]:
        factory = self.get(name)
        if factory is None:
            raise KeyError(name)
        return factory


#: Legacy view of the registry; new code should use ``@register_pass`` and
#: :func:`repro.transforms.pass_manager.lookup_pass` instead.
PASS_REGISTRY = _LegacyRegistryView()


def available_passes() -> List[str]:
    """Sorted names accepted by :func:`parse_pass_pipeline`."""
    return sorted(PASS_REGISTRATIONS)


def resolve_pass_name(name: str) -> str:
    """Resolve a registered name (possibly an alias) to the pass's NAME.

    ``licm`` resolves to ``sycl-licm`` — the name pass executions carry,
    which is what instrumentation selectors match against.  Raises
    ``ValueError`` for unregistered names.
    """
    registration = lookup_pass(name)
    if registration is None:
        raise ValueError(
            f"unknown pass {name!r}; available passes: "
            f"{', '.join(available_passes())}")
    return registration.pass_class.NAME


def describe_registered_passes() -> str:
    """Registered passes with their option schemas (``--list-passes``)."""
    lines: List[str] = []
    for name in available_passes():
        registration = PASS_REGISTRATIONS[name]
        header = name
        if registration.alias_of is not None:
            presets = registration.options_class(
                **registration.preset_options).to_spec()
            header += f"  (alias of {registration.alias_of}{presets})"
        lines.append(header)
        if registration.description:
            lines.append(f"    # {registration.description}")
        if registration.alias_of is None:
            for schema_line in registration.options_class.schema():
                lines.append(f"    {schema_line}")
            for stat_name, stat_description in \
                    registration.pass_class.STATISTICS:
                lines.append(f"    stat: {stat_name} — {stat_description}")
    return "\n".join(lines)


class PipelineParseError(ValueError):
    """A malformed pipeline spec; carries the offending character offset."""

    def __init__(self, message: str, offset: Optional[int] = None):
        if offset is not None:
            message = f"{message} (at character {offset})"
        super().__init__(message)
        self.offset = offset


_PUNCTUATION = "(){},="


def _tokenize(spec: str) -> List[Tuple[str, str, int]]:
    """Split ``spec`` into ``(kind, text, offset)`` tokens.

    ``kind`` is ``"punct"`` for one of ``(){},=`` and ``"name"`` for any
    other whitespace-delimited run (pass names, option keys and values).
    """
    tokens: List[Tuple[str, str, int]] = []
    index = 0
    length = len(spec)
    while index < length:
        char = spec[index]
        if char.isspace():
            index += 1
            continue
        if char in _PUNCTUATION:
            tokens.append(("punct", char, index))
            index += 1
            continue
        start = index
        while index < length and spec[index] not in _PUNCTUATION \
                and not spec[index].isspace():
            index += 1
        tokens.append(("name", spec[start:index], start))
    return tokens


class _PipelineParser:
    """Recursive-descent parser over the tokenized spec."""

    def __init__(self, spec: str):
        self.spec = spec
        self.tokens = _tokenize(spec)
        self.position = 0

    # -- token helpers -------------------------------------------------------
    def _peek(self) -> Optional[Tuple[str, str, int]]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def _next(self) -> Optional[Tuple[str, str, int]]:
        token = self._peek()
        if token is not None:
            self.position += 1
        return token

    def _at_punct(self, char: str) -> bool:
        token = self._peek()
        return token is not None and token[0] == "punct" and token[1] == char

    def _expect_punct(self, char: str) -> Tuple[str, str, int]:
        token = self._next()
        if token is None:
            raise PipelineParseError(
                f"expected '{char}' but the spec ended", len(self.spec))
        if token[0] != "punct" or token[1] != char:
            raise PipelineParseError(
                f"expected '{char}', got {token[1]!r}", token[2])
        return token

    # -- grammar -------------------------------------------------------------
    def parse(self) -> PassManager:
        if not any(kind == "name" for kind, _, _ in self.tokens):
            raise PipelineParseError("empty pass pipeline specification")
        elements = self._parse_element_list(terminator=None)
        trailing = self._peek()
        if trailing is not None:
            raise PipelineParseError(
                f"trailing input {trailing[1]!r}", trailing[2])
        if not elements:
            raise PipelineParseError("empty pass pipeline specification")
        root = PassManager()
        if len(elements) == 1:
            first, _ = elements[0]
            # A single top-level `builtin.module(...)` IS the root pipeline.
            if isinstance(first, OpPassManager) \
                    and first.anchor == MODULE_ANCHOR:
                root.elements = first.elements
                return root
        for element, offset in elements:
            self._attach(root, element, offset)
        return root

    def _attach(self, pipeline: OpPassManager,
                element: Union[Pass, OpPassManager], offset: int) -> None:
        try:
            if isinstance(element, OpPassManager):
                pipeline.elements.append(element)
            else:
                pipeline.add(element)
        except ValueError as error:
            raise PipelineParseError(str(error), offset)

    def _parse_element_list(
            self, terminator: Optional[str]
    ) -> List[Tuple[Union[Pass, OpPassManager], int]]:
        elements: List[Tuple[Union[Pass, OpPassManager], int]] = []
        while True:
            token = self._peek()
            if token is None or (terminator is not None
                                 and self._at_punct(terminator)):
                return elements
            elements.append(self._parse_element())
            if self._at_punct(","):
                self._next()
                continue
            return elements

    def _parse_element(self) -> Tuple[Union[Pass, OpPassManager], int]:
        token = self._next()
        if token is None:
            raise PipelineParseError("expected a pass or anchor",
                                     len(self.spec))
        kind, text, offset = token
        if kind != "name":
            raise PipelineParseError(
                f"expected a pass or anchor, got {text!r}", offset)
        if self._at_punct("("):
            return self._parse_anchored(text, offset), offset
        return self._parse_pass(text, offset), offset

    def _parse_anchored(self, anchor: str, offset: int) -> OpPassManager:
        if anchor not in ANCHOR_OPS:
            if lookup_pass(anchor) is not None:
                raise PipelineParseError(
                    f"pass '{anchor}' does not take a nested pipeline",
                    offset)
            raise PipelineParseError(
                f"unknown pipeline anchor '{anchor}'; expected one of "
                f"{', '.join(ANCHOR_OPS)}", offset)
        self._expect_punct("(")
        pipeline = OpPassManager(anchor)
        elements = self._parse_element_list(terminator=")")
        self._expect_punct(")")
        if not elements:
            raise PipelineParseError(
                f"empty pass pipeline for anchor '{anchor}'", offset)
        for element, element_offset in elements:
            if isinstance(element, OpPassManager) \
                    and element.anchor == MODULE_ANCHOR \
                    and anchor != MODULE_ANCHOR:
                raise PipelineParseError(
                    "cannot nest a 'builtin.module' pipeline under "
                    f"'{anchor}'", element_offset)
            self._attach(pipeline, element, element_offset)
        return pipeline

    def _parse_pass(self, name: str, offset: int) -> Pass:
        registration = lookup_pass(name)
        if registration is None:
            raise PipelineParseError(
                f"unknown pass '{name}'; available passes: "
                f"{', '.join(available_passes())}", offset)
        option_values: Dict[str, object] = {}
        if self._at_punct("{"):
            option_values = self._parse_options(registration)
        try:
            return registration.build(option_values)
        except (TypeError, ValueError) as error:
            raise PipelineParseError(
                f"cannot build pass '{name}': {error}", offset)

    def _parse_options(self,
                       registration: PassRegistration) -> Dict[str, object]:
        self._expect_punct("{")
        fields_by_key = registration.options_class.spec_fields()
        values: Dict[str, object] = {}
        while not self._at_punct("}"):
            key_token = self._next()
            if key_token is None:
                raise PipelineParseError(
                    "unterminated option block (missing '}')",
                    len(self.spec))
            kind, key, key_offset = key_token
            if kind != "name":
                raise PipelineParseError(
                    f"expected an option key, got {key!r}", key_offset)
            option_field = fields_by_key.get(key)
            if option_field is None:
                known = ", ".join(fields_by_key) or "none"
                raise PipelineParseError(
                    f"unknown option '{key}' for pass "
                    f"'{registration.name}' (available options: {known})",
                    key_offset)
            self._expect_punct("=")
            value_token = self._next()
            if value_token is None or value_token[0] != "name":
                where = value_token[2] if value_token else len(self.spec)
                raise PipelineParseError(
                    f"expected a value for option '{key}'", where)
            try:
                values[option_field.name] = \
                    registration.options_class.coerce(option_field,
                                                      value_token[1])
            except ValueError as error:
                raise PipelineParseError(str(error), value_token[2])
            if self._at_punct(","):
                comma = self._next()
                if self._at_punct("}"):
                    raise PipelineParseError(
                        "trailing ',' in option block", comma[2])
                continue
            if not self._at_punct("}"):
                stray = self._peek()
                where = stray[2] if stray else len(self.spec)
                what = repr(stray[1]) if stray else "end of spec"
                raise PipelineParseError(
                    f"expected ',' or '}}' after an option value, "
                    f"got {what}", where)
        self._expect_punct("}")
        return values


def parse_pass_pipeline(spec: str) -> PassManager:
    """Build a :class:`PassManager` from a textual pipeline spec.

    Accepts both the legacy flat form (``"canonicalize,cse"``) and the
    nested, options-aware form
    (``"builtin.module(cse,func.func(canonicalize{max-iterations=10}))"``);
    see the module docstring for the grammar.  Raises
    :class:`PipelineParseError` (a ``ValueError``) naming the offending
    token and its character offset on malformed input.
    """
    return _PipelineParser(spec).parse()


def check_pass_pipeline(spec: str, filename: str = "<pipeline>"):
    """Statically validate ``spec`` without building or running anything.

    Returns a list of :class:`~repro.ir.diagnostics.Diagnostic` objects —
    empty when the spec is well-formed.  Malformed specs yield an error
    diagnostic whose location points at the offending *character offset*
    (column) inside the spec, so drivers can report
    ``<pipeline>:1:17: error: ...`` before any IR is touched.
    """
    from ..ir import Diagnostic, Location, Severity, UNKNOWN

    try:
        _PipelineParser(spec).parse().close()
    except PipelineParseError as exc:
        location = Location(filename, 1, exc.offset + 1) \
            if exc.offset is not None else UNKNOWN
        return [Diagnostic(Severity.ERROR, str(exc), location)]
    except ValueError as exc:
        # Well-formed syntax but an unknown pass name / bad option value.
        return [Diagnostic(Severity.ERROR, str(exc),
                           Location(filename, 1, 1))]
    return []


def dump_pass_pipeline(pipeline: OpPassManager) -> str:
    """Canonical textual form of ``pipeline``.

    The inverse of :func:`parse_pass_pipeline`: dumping a parsed pipeline
    reproduces an equivalent spec (``dump(parse(s)) ==
    dump(parse(dump(parse(s))))``).  Pass options are included only when
    they differ from their defaults.
    """
    return pipeline.to_spec()


def _options_free(name: str, builder: Callable[[int], PassManager]):
    """Wrap a pipeline that takes no options; reject options explicitly."""

    def build(options: Optional[OptimizationOptions] = None,
              jobs: int = 1) -> PassManager:
        if options is not None:
            raise ValueError(
                f"pipeline {name!r} does not accept optimization options")
        return builder(jobs)

    return build


#: Full compiler-model pipelines selectable by name (`repro-opt --pipeline`).
NAMED_PIPELINES: Dict[str, Callable[..., PassManager]] = {
    "sycl-mlir": sycl_mlir_pipeline,
    "dpcpp": dpcpp_pipeline,
    "adaptivecpp-aot": _options_free(
        "adaptivecpp-aot", lambda jobs: adaptivecpp_aot_pipeline(jobs=jobs)),
    "adaptivecpp-jit": _options_free(
        "adaptivecpp-jit", lambda jobs: adaptivecpp_jit_pipeline(jobs=jobs)),
    "lower-to-llvm": _options_free(
        "lower-to-llvm", lambda jobs: lower_to_llvm_pipeline(jobs=jobs)),
}


def shipped_pipeline_names() -> List[str]:
    """Names of the shipped compiler-model pipelines.

    This is the set the differential-execution harness
    (:mod:`repro.interp.differential`) must prove semantics-preserving
    for every executable module — tests and the CI differential smoke
    job iterate it rather than hard-coding pipeline names.
    """
    return sorted(NAMED_PIPELINES)


def build_named_pipeline(
        name: str,
        options: Optional[OptimizationOptions] = None,
        jobs: int = 1) -> PassManager:
    """Instantiate one of the paper's three compiler-model pipelines.

    ``jobs`` sizes the per-function parallel scheduler of the returned
    :class:`PassManager` (1 = serial).
    """
    builder = NAMED_PIPELINES.get(name)
    if builder is None:
        raise ValueError(
            f"unknown pipeline {name!r}; available pipelines: "
            f"{', '.join(sorted(NAMED_PIPELINES))}")
    return builder(options, jobs=jobs)
