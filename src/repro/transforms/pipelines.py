"""Standard pass pipelines for the three compiler models.

* :func:`sycl_mlir_pipeline` — the paper's SYCL-MLIR flow: host raising,
  host-device propagation, then the SYCL-aware device optimizations
  (Loop Internalization, SYCL LICM, Detect Reduction) plus generic cleanup.
* :func:`dpcpp_pipeline` — the DPC++ baseline: premature lowering of SYCL
  accessor semantics followed by generic optimizations only.
* :func:`adaptivecpp_pipeline` — the AdaptiveCpp (SSCP JIT) baseline ahead-
  of-time part: premature lowering + generic optimizations; the runtime
  specialization happens at launch time (see
  :mod:`repro.transforms.specialization` and the compiler driver).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..analysis.alias import AliasAnalysis
from ..analysis.sycl_alias import SYCLAliasAnalysis
from .canonicalize import CanonicalizePass, DCEPass
from .cse import CSEPass
from .detect_reduction import DetectReduction
from .host_device import HostDeviceOptimizationPass
from .host_raising import HostRaisingPass
from .licm import LoopInvariantCodeMotion
from .loop_internalization import LoopInternalization
from .lower_sycl import LowerAccessorSubscripts
from .pass_manager import Pass, PassManager
from .specialization import RuntimeCheckedAliasAnalysis


@dataclass
class OptimizationOptions:
    """Feature toggles used by the drivers and the ablation benchmarks."""

    licm: bool = True
    detect_reduction: bool = True
    loop_internalization: bool = True
    host_device_propagation: bool = True
    host_raising: bool = True
    canonicalize: bool = True

    @classmethod
    def all_disabled(cls) -> "OptimizationOptions":
        return cls(licm=False, detect_reduction=False,
                   loop_internalization=False, host_device_propagation=False,
                   host_raising=False, canonicalize=True)

    def without(self, name: str) -> "OptimizationOptions":
        options = OptimizationOptions(**self.__dict__)
        if not hasattr(options, name):
            raise ValueError(f"unknown optimization flag {name!r}")
        setattr(options, name, False)
        return options


def sycl_mlir_pipeline(options: Optional[OptimizationOptions] = None) -> PassManager:
    """The SYCL-MLIR optimization pipeline (host + device, Sections V-VII)."""
    options = options or OptimizationOptions()
    alias = SYCLAliasAnalysis()
    passes: List[Pass] = []
    if options.canonicalize:
        passes.extend([CanonicalizePass(), CSEPass()])
    if options.host_raising:
        passes.append(HostRaisingPass())
    if options.host_device_propagation:
        passes.append(HostDeviceOptimizationPass())
    if options.canonicalize:
        passes.append(CanonicalizePass())
    if options.loop_internalization:
        passes.append(LoopInternalization())
    if options.licm:
        passes.append(LoopInvariantCodeMotion(alias_analysis=alias))
    if options.detect_reduction:
        passes.append(DetectReduction(alias_analysis=alias))
    if options.canonicalize:
        passes.extend([CanonicalizePass(), CSEPass(), DCEPass()])
    return PassManager(passes)


def dpcpp_pipeline(options: Optional[OptimizationOptions] = None) -> PassManager:
    """The DPC++ baseline: premature lowering + generic optimizations.

    The generic optimizations use the dialect-independent alias analysis, so
    accessor-derived pointers conservatively may alias, which blocks scalar
    promotion of array reductions — the behaviour the paper attributes to
    LLVM-IR based flows.
    """
    options = options or OptimizationOptions()
    alias = AliasAnalysis()
    passes: List[Pass] = [
        CanonicalizePass(),
        CSEPass(),
        LowerAccessorSubscripts(),
        CanonicalizePass(),
        CSEPass(),
    ]
    if options.licm:
        passes.append(LoopInvariantCodeMotion(alias_analysis=alias))
    if options.detect_reduction:
        passes.append(DetectReduction(alias_analysis=alias))
    passes.extend([CanonicalizePass(), CSEPass(), DCEPass()])
    return PassManager(passes)


def adaptivecpp_aot_pipeline() -> PassManager:
    """AdaptiveCpp ahead-of-time part: lowering + light cleanup only."""
    return PassManager([
        CanonicalizePass(),
        CSEPass(),
        LowerAccessorSubscripts(),
        CanonicalizePass(),
        CSEPass(),
    ])


# ---------------------------------------------------------------------------
# Textual pass pipeline specifications (the `repro-opt --passes` language)
# ---------------------------------------------------------------------------

#: Registry mapping textual pass names to zero-argument pass factories.
#: Keys follow each pass's ``NAME`` plus a few mlir-opt-flavoured aliases.
PASS_REGISTRY: Dict[str, Callable[[], Pass]] = {
    "canonicalize": CanonicalizePass,
    "cse": CSEPass,
    "dce": DCEPass,
    "licm": lambda: LoopInvariantCodeMotion(alias_analysis=SYCLAliasAnalysis()),
    "sycl-licm": lambda: LoopInvariantCodeMotion(
        alias_analysis=SYCLAliasAnalysis()),
    "licm-generic": lambda: LoopInvariantCodeMotion(
        alias_analysis=AliasAnalysis()),
    "detect-reduction": lambda: DetectReduction(
        alias_analysis=SYCLAliasAnalysis()),
    "detect-reduction-generic": lambda: DetectReduction(
        alias_analysis=AliasAnalysis()),
    "loop-internalization": LoopInternalization,
    "host-raising": HostRaisingPass,
    "host-device-propagation": HostDeviceOptimizationPass,
    "lower-sycl-accessors": LowerAccessorSubscripts,
}


def available_passes() -> List[str]:
    """Sorted names accepted by :func:`parse_pass_pipeline`."""
    return sorted(PASS_REGISTRY)


def parse_pass_pipeline(spec: str) -> PassManager:
    """Build a :class:`PassManager` from a spec like ``"canonicalize,cse"``.

    The spec is a comma-separated list of registered pass names (see
    :func:`available_passes`); whitespace around names is ignored.
    """
    names = [name.strip() for name in spec.split(",") if name.strip()]
    if not names:
        raise ValueError("empty pass pipeline specification")
    passes: List[Pass] = []
    for name in names:
        factory = PASS_REGISTRY.get(name)
        if factory is None:
            raise ValueError(
                f"unknown pass {name!r}; available passes: "
                f"{', '.join(available_passes())}")
        passes.append(factory())
    return PassManager(passes)


def _options_free(name: str, builder: Callable[[], PassManager]):
    """Wrap a pipeline that takes no options; reject options explicitly."""

    def build(options: Optional[OptimizationOptions] = None) -> PassManager:
        if options is not None:
            raise ValueError(
                f"pipeline {name!r} does not accept optimization options")
        return builder()

    return build


#: Full compiler-model pipelines selectable by name (`repro-opt --pipeline`).
NAMED_PIPELINES: Dict[str, Callable[[Optional[OptimizationOptions]],
                                    PassManager]] = {
    "sycl-mlir": sycl_mlir_pipeline,
    "dpcpp": dpcpp_pipeline,
    "adaptivecpp-aot": _options_free(
        "adaptivecpp-aot", lambda: adaptivecpp_aot_pipeline()),
    "adaptivecpp-jit": _options_free(
        "adaptivecpp-jit", lambda: adaptivecpp_jit_pipeline()),
}


def build_named_pipeline(
        name: str,
        options: Optional[OptimizationOptions] = None) -> PassManager:
    """Instantiate one of the paper's three compiler-model pipelines."""
    builder = NAMED_PIPELINES.get(name)
    if builder is None:
        raise ValueError(
            f"unknown pipeline {name!r}; available pipelines: "
            f"{', '.join(sorted(NAMED_PIPELINES))}")
    return builder(options)


def adaptivecpp_jit_pipeline() -> PassManager:
    """AdaptiveCpp launch-time (JIT) optimizations after specialization.

    The runtime-checked alias analysis trusts the disjointness facts the JIT
    observes at launch, enabling LICM of accessor metadata and scalar
    promotion of reductions (with the cost of JIT-ing accounted separately
    by the compiler driver).
    """
    alias = RuntimeCheckedAliasAnalysis()
    return PassManager([
        CanonicalizePass(),
        CSEPass(),
        LoopInvariantCodeMotion(alias_analysis=alias),
        DetectReduction(alias_analysis=alias),
        CanonicalizePass(),
        CSEPass(),
        DCEPass(),
    ])
