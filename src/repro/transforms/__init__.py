"""Transformation passes (paper, Sections VI and VII)."""

from .canonicalize import CanonicalizePass, DCEPass, erase_dead_ops, fold_operation
from .cse import CSEPass
from .detect_reduction import DetectReduction, ReductionCandidate
from .host_device import (
    AccessorInfo,
    HostDeviceOptimizationPass,
    KernelLaunchInfo,
    host_constructor_of,
)
from .host_raising import (
    DEVICE_MODULE_NAME,
    HostRaisingPass,
    classify_runtime_call,
    extract_kernel_name,
)
from .compile_cache import CachedCompile, CacheStats, CompileCache
from .disk_cache import DiskCache, DiskCacheStats, cache_dir_from_env
from .licm import LoopInvariantCodeMotion, VersionedLICM
from .loop_internalization import LoopInternalization, work_group_size_of
from .lower_sycl import LowerAccessorSubscripts
from .pass_manager import (
    CompileReport,
    FunctionPass,
    IRPrintingInstrumentation,
    LintInstrumentation,
    ModulePass,
    OpPassManager,
    Pass,
    PassInstrumentation,
    PassManager,
    PassOptions,
    PassRegistration,
    PassStatistic,
    TimingInstrumentation,
    VerifierInstrumentation,
    lookup_pass,
    register_pass,
    register_pass_alias,
)
from .pipelines import (
    OptimizationOptions,
    PipelineParseError,
    adaptivecpp_aot_pipeline,
    adaptivecpp_jit_pipeline,
    available_passes,
    build_named_pipeline,
    check_pass_pipeline,
    describe_registered_passes,
    dpcpp_pipeline,
    dump_pass_pipeline,
    parse_pass_pipeline,
    resolve_pass_name,
    shipped_pipeline_names,
    sycl_mlir_pipeline,
)
from .rewrite import (
    NonConvergenceWarning,
    PatternRewriter,
    RewritePattern,
    apply_patterns_greedily,
)
from .specialization import RuntimeCheckedAliasAnalysis

__all__ = [
    "CanonicalizePass", "DCEPass", "erase_dead_ops", "fold_operation",
    "CSEPass",
    "DetectReduction", "ReductionCandidate",
    "AccessorInfo", "HostDeviceOptimizationPass", "KernelLaunchInfo",
    "host_constructor_of",
    "DEVICE_MODULE_NAME", "HostRaisingPass", "classify_runtime_call",
    "extract_kernel_name",
    "LoopInvariantCodeMotion", "VersionedLICM",
    "LoopInternalization", "work_group_size_of",
    "LowerAccessorSubscripts",
    "CachedCompile", "CacheStats", "CompileCache",
    "DiskCache", "DiskCacheStats", "cache_dir_from_env",
    "CompileReport", "FunctionPass", "IRPrintingInstrumentation",
    "LintInstrumentation",
    "ModulePass", "OpPassManager", "Pass", "PassInstrumentation",
    "PassManager", "PassOptions", "PassRegistration", "PassStatistic",
    "TimingInstrumentation", "VerifierInstrumentation", "lookup_pass",
    "register_pass", "register_pass_alias",
    "OptimizationOptions", "PipelineParseError", "adaptivecpp_aot_pipeline",
    "adaptivecpp_jit_pipeline", "available_passes", "build_named_pipeline",
    "check_pass_pipeline",
    "describe_registered_passes", "dpcpp_pipeline", "dump_pass_pipeline",
    "parse_pass_pipeline", "resolve_pass_name", "sycl_mlir_pipeline",
    "NonConvergenceWarning", "PatternRewriter", "RewritePattern",
    "apply_patterns_greedily",
    "RuntimeCheckedAliasAnalysis",
]
