"""Supervised process-parallel execution tier.

The thread scheduler (PR 4) is deterministic but GIL-bound: BENCH_4/5
record jobs=4 at 0.85x of serial.  This module escapes the GIL by
shipping work units to ``ProcessPoolExecutor`` workers — and treats the
executor as a first-class *failure domain* rather than a transparent
speedup: workers can crash, hang, or return garbage, so every dispatch
runs under a supervisor implementing the full failure matrix.

Work units are textual and lossless by construction:

* **function units** — (per-function textual IR, ``dump_pass_pipeline``
  spec), both round-trip guaranteed (PR 1 parser/printer, PR 3 pipeline
  grammar).  Results are re-parsed, fingerprint-checked, and spliced
  back in anchor order, preserving the byte-identical-vs-serial
  contract.  Function IR travels *with* ``loc(...)`` trailers so source
  locations survive the process boundary.
* **segment units** — whole ``--split-input-file`` segments: the worker
  parses, verifies, compiles and prints the entire module, the parent
  stitches printed text back in input order.  No splice, no parent-side
  parse — the ROADMAP's "easy first target" for real speedup.

Failure matrix (every class injectable via :mod:`repro.faults` and
exercised by ``tests/test_fault_tolerance.py``):

===========  ====================================================
fault        supervision
===========  ====================================================
crash        ``BrokenProcessPool`` → pool rebuild (bounded), every
             in-flight unit rescheduled with an attempt charged
hang         per-unit deadline → pool restart, the overdue unit is
             charged an attempt, innocents reschedule free
corrupt      parent-side fingerprint + re-parse check → treated as
             a failed attempt (retry, then degrade)
transient    bounded retry with exponential backoff
===========  ====================================================

Exhausted units degrade to an **in-process serial run** (the caller
supplies the fallback), so a deterministic pass error reproduces with
native in-process semantics and no fault class can ever fail a compile
that serial would pass.  When the tier itself cannot make progress
(pool rebuild budget exhausted, pool unbuildable) a :class:`TierError`
is raised and the caller drops down the degradation ladder
(process → thread → serial; see ``docs/robustness.md``).

Worker exceptions cross the process boundary as payload dicts (via
:meth:`repro.ir.Diagnostic.to_payload`) carrying the failing pass name
and pipeline position, so a cross-process error renders like an
in-process one.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..faults import FaultPlan, TransientFault, active_fault_plan, fault_point
from ..ir import Diagnostic, Operation, Severity
from ..ir.location import location_of
from .compile_cache import text_fingerprint

#: How long one ``wait`` poll blocks while watching in-flight futures.
#: Completed futures wake the wait immediately; the poll only bounds how
#: late a deadline overrun is noticed.
_POLL_SECONDS = 0.05


class TierError(RuntimeError):
    """The process tier cannot make progress; degrade to the next tier."""


class CorruptResult(RuntimeError):
    """A worker result failed validation (fingerprint or re-parse)."""


@dataclass
class ExecutorOptions:
    """Supervision policy for the process tier."""

    #: Worker process count.
    jobs: int = 2
    #: Per-unit wall-clock deadline (seconds) before a worker is
    #: presumed hung and the pool restarted.
    deadline: float = 60.0
    #: Failed attempts tolerated per unit beyond the first try.
    max_retries: int = 2
    #: Base backoff delay (seconds); doubles per retry.
    backoff: float = 0.05
    #: Pool restarts (crash or hang) tolerated per ``run_units`` call.
    max_pool_rebuilds: int = 3


@dataclass
class WorkUnit:
    """One self-contained compile shipped to a worker."""

    uid: int
    #: Stable label (function sym_name, or segment origin) used in
    #: events, diagnostics and fault-plan keys.
    label: str
    #: ``"function"`` (splice mode) or ``"segment"`` (batch mode).
    kind: str
    #: Textual IR of the unit (function units carry ``loc`` trailers).
    text: str
    #: Pipeline spec (``func.func(...)`` for function units, a root
    #: spec or ``pipeline:<name>`` for segment units).
    spec: str
    #: Verify before/after the pipeline (segment units).
    verify: bool = False
    #: Print ``loc(...)`` trailers on the result (segment units).
    print_locations: bool = False
    #: Source file the unit came from (diagnostics).
    filename: str = "<unit>"


@dataclass
class WorkResult:
    """The supervised outcome of one unit."""

    unit: WorkUnit
    #: Printed result text; ``None`` when the serial fallback already
    #: applied the result in place.
    text: Optional[str]
    #: ``(pass_name, statistic, value)`` triples from the unit's run.
    statistics: List[Tuple[str, str, int]] = field(default_factory=list)
    remarks: List[str] = field(default_factory=list)
    #: Position-keyed pass timings.  Keys are unit-local positions when
    #: ``timing_keys_local`` (worker results); the caller shifts them to
    #: global pipeline positions before merging.
    timings: Dict[str, float] = field(default_factory=dict)
    timing_keys_local: bool = True
    #: Total attempts consumed (1 = first try succeeded).
    attempts: int = 1
    #: True when the unit fell back to an in-process serial run.
    degraded: bool = False
    #: Recovery events for this unit, in occurrence order.
    events: List[str] = field(default_factory=list)
    #: Validator artifact (the re-parsed function op in splice mode).
    payload: object = None


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

class _PassTracker:
    """Instrumentation recording the pass currently executing, so a
    worker exception can name the pass and pipeline position it
    happened in."""

    def __init__(self):
        self.current: Optional[Tuple[str, Optional[int]]] = None

    def run_before_pipeline(self, op) -> None:
        pass

    def run_after_pipeline(self, op) -> None:
        pass

    def run_before_pass(self, pass_, op) -> None:
        self.current = (pass_.NAME, pass_.pipeline_position)

    def run_after_pass(self, pass_, op) -> None:
        pass

    def run_after_failed_verify(self, pass_, op, error) -> None:
        pass


def _manager_for_spec(spec: str):
    """Build the worker-side pass manager for a unit spec."""
    from .pipelines import build_named_pipeline, parse_pass_pipeline

    if spec.startswith("pipeline:"):
        return build_named_pipeline(spec[len("pipeline:"):])
    if not spec.startswith("builtin.module("):
        spec = f"builtin.module({spec})"
    return parse_pass_pipeline(spec)


def _report_fields(report) -> dict:
    return {
        "statistics": [(s.pass_name, s.name, s.value)
                       for s in report.statistics],
        "remarks": list(report.remarks),
        "timings": dict(report.timings),
    }


def _error_fields(exc: BaseException, op=None,
                  tracker: Optional[_PassTracker] = None) -> dict:
    location = location_of(op) if op is not None else None
    diagnostic = Diagnostic(Severity.ERROR,
                            f"{type(exc).__name__}: {exc}", location)
    fields = {"diagnostic": diagnostic.to_payload(),
              "pass_name": None, "pass_position": None}
    if tracker is not None and tracker.current is not None:
        fields["pass_name"], fields["pass_position"] = tracker.current
    return fields


def _compile_work_unit(payload: dict) -> dict:
    """Worker entry point: compile one unit, return a picklable dict.

    Never raises — genuine failures come back as ``ok=False`` payloads
    (crash/hang faults bypass Python entirely, which is the point).
    """
    from ..dialects import all_dialects  # noqa: F401 - registers ops
    from ..faults import install_fault_plan
    from ..ir import Printer, parse_module, verify

    if payload.get("fault_plan"):
        install_fault_plan(FaultPlan.parse(payload["fault_plan"]))
    label = payload["label"]
    attempt = payload["attempt"]
    tracker = _PassTracker()
    op = None
    try:
        fault_point("executor.worker", key=label, occurrence=attempt)
        op = parse_module(payload["text"], filename=payload["filename"])
        manager = _manager_for_spec(payload["spec"])
        manager.add_instrumentation(tracker)
        if payload["kind"] == "segment" and payload.get("verify"):
            verify(op)
        report = manager.run(op)
        if payload["kind"] == "segment" and payload.get("verify"):
            verify(op)
        if payload["kind"] == "function":
            text = Printer(print_locations=True).print_module(op)
        else:
            text = Printer(
                print_locations=payload.get("print_locations", False)
            ).print_module(op) + "\n"
        result = {"ok": True, "uid": payload["uid"], "text": text,
                  "fingerprint": text_fingerprint(text)}
        result.update(_report_fields(report))
        if fault_point("executor.worker.result", key=label,
                       occurrence=attempt) == "corrupt":
            result["text"] = ("// corrupted worker result\n"
                              + result["text"][::-1])
        return result
    except TransientFault as exc:
        return {"ok": False, "uid": payload["uid"], "transient": True,
                **_error_fields(exc, op, tracker)}
    except BaseException as exc:  # noqa: BLE001 - shipped to supervisor
        return {"ok": False, "uid": payload["uid"], "transient": False,
                **_error_fields(exc, op, tracker)}


# ---------------------------------------------------------------------------
# Result validation (parent side)
# ---------------------------------------------------------------------------

def _check_fingerprint(unit: WorkUnit, outcome: dict) -> str:
    text = outcome.get("text")
    if not isinstance(text, str) or not text.strip():
        raise CorruptResult(f"unit '{unit.label}': empty worker result")
    if text_fingerprint(text) != outcome.get("fingerprint"):
        raise CorruptResult(
            f"unit '{unit.label}': result fingerprint mismatch")
    return text


def validate_function_result(unit: WorkUnit, outcome: dict) -> Operation:
    """Re-parse and sanity-check a function unit's result.

    Raises :class:`CorruptResult` on any discrepancy; returns the parsed
    function op ready to splice.
    """
    from ..ir import ParseError, parse_module

    text = _check_fingerprint(unit, outcome)
    if fault_point("executor.splice", key=unit.label) == "corrupt":
        text = "// corrupted at splice\n" + text[::-1]
    try:
        parsed = parse_module(text, filename=unit.filename)
    except ParseError as exc:
        raise CorruptResult(
            f"unit '{unit.label}': result does not re-parse: {exc}")
    if parsed.name != "func.func":
        raise CorruptResult(
            f"unit '{unit.label}': result is a '{parsed.name}', "
            "expected 'func.func'")
    sym = getattr(parsed, "sym_name", None)
    if sym != unit.label:
        raise CorruptResult(
            f"unit '{unit.label}': result renames the function to "
            f"'{sym}'")
    return parsed


def validate_segment_result(unit: WorkUnit, outcome: dict) -> str:
    """Fingerprint-check a segment unit's printed result text."""
    text = _check_fingerprint(unit, outcome)
    if fault_point("executor.splice", key=unit.label) == "corrupt":
        raise CorruptResult(
            f"unit '{unit.label}': injected corrupt segment result")
    return text


# ---------------------------------------------------------------------------
# Supervisor
# ---------------------------------------------------------------------------

#: ``validate(unit, outcome_dict) -> payload`` — raises CorruptResult.
Validator = Callable[[WorkUnit, dict], object]
#: ``serial_fallback(unit, attempts, events) -> WorkResult`` — runs the
#: unit in-process with serial semantics (exceptions propagate: a
#: deterministic compile error must fail the compile exactly as serial
#: would).
SerialFallback = Callable[[WorkUnit, int, List[str]], WorkResult]


class SupervisedExecutor:
    """A ``ProcessPoolExecutor`` wrapped in retry/deadline supervision.

    Persistent across runs (batch drivers reuse the warm pool); every
    pool teardown is a ``terminate`` — workers are stateless by design,
    so killing them never loses anything but in-flight attempts, and it
    is the only way to preempt a hung worker.
    """

    def __init__(self, options: Optional[ExecutorOptions] = None):
        self.options = options or ExecutorOptions()
        #: Pool-level events (rebuilds), appended in occurrence order.
        self.events: List[str] = []
        #: Supervision counters (crashes, hangs, retries, ...).
        self.stats: Dict[str, int] = {}
        self._pool: Optional[ProcessPoolExecutor] = None

    # -- pool lifecycle ----------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            try:
                methods = multiprocessing.get_all_start_methods()
                context = multiprocessing.get_context(
                    "fork" if "fork" in methods else None)
                self._pool = ProcessPoolExecutor(
                    max_workers=max(1, self.options.jobs),
                    mp_context=context)
            except (OSError, ValueError, PermissionError) as exc:
                raise TierError(f"cannot start worker pool: {exc}")
        return self._pool

    def close(self) -> None:
        """Terminate workers and drop the pool (idempotent, never
        blocks on a hung worker — Ctrl-C must not orphan processes)."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        for process in list(getattr(pool, "_processes", {}).values()):
            try:
                process.terminate()
            except OSError:  # pragma: no cover - already dead
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def _bump(self, name: str, value: int = 1) -> None:
        self.stats[name] = self.stats.get(name, 0) + value

    def _payload(self, unit: WorkUnit, attempt: int) -> dict:
        plan = active_fault_plan()
        return {
            "uid": unit.uid, "label": unit.label, "kind": unit.kind,
            "text": unit.text, "spec": unit.spec, "verify": unit.verify,
            "print_locations": unit.print_locations,
            "filename": unit.filename, "attempt": attempt,
            # The plan travels inside the payload so occurrence-indexed
            # worker rules keep firing deterministically even after a
            # crashed worker (whose counters died with it) is replaced.
            "fault_plan": plan.to_spec() if plan is not None else None,
        }

    # -- the supervision loop ----------------------------------------------
    def run_units(self, units: List[WorkUnit], validate: Validator,
                  serial_fallback: SerialFallback) -> Dict[int, WorkResult]:
        """Run every unit to a successful result; returns ``uid ->``
        :class:`WorkResult`.

        Raises :class:`TierError` when the tier cannot make progress
        (caller degrades), or the unit's own error when the in-process
        serial fallback reproduces a deterministic compile failure.
        """
        try:
            fault_point("process-tier.dispatch")
        except TransientFault as exc:
            raise TierError(str(exc))
        opts = self.options
        results: Dict[int, WorkResult] = {}
        attempts: Dict[int, int] = {unit.uid: 0 for unit in units}
        unit_events: Dict[int, List[str]] = {unit.uid: [] for unit in units}
        #: ``(due time, unit)`` — first attempts are due immediately.
        ready: List[Tuple[float, WorkUnit]] = [(0.0, unit)
                                               for unit in units]
        in_flight: Dict[Future, Tuple[WorkUnit, float]] = {}
        rebuilds = 0

        def degrade_unit(unit: WorkUnit, reason: str) -> None:
            self._bump("degraded_units")
            unit_events[unit.uid].append(
                f"unit '{unit.label}': degraded to in-process serial "
                f"run ({reason})")
            results[unit.uid] = serial_fallback(
                unit, attempts[unit.uid], unit_events[unit.uid])

        def charge_attempt(unit: WorkUnit, reason: str) -> None:
            """Count a failed attempt; reschedule with backoff or
            degrade when the retry budget is spent."""
            attempts[unit.uid] += 1
            used = attempts[unit.uid]
            if used > opts.max_retries:
                degrade_unit(unit, f"{reason}; retries exhausted "
                                   f"after {used} attempt(s)")
            else:
                delay = opts.backoff * (2 ** (used - 1))
                unit_events[unit.uid].append(
                    f"unit '{unit.label}': {reason}; retrying "
                    f"(attempt {used + 1}) after {delay:.2f}s backoff")
                ready.append((time.monotonic() + delay, unit))

        def restart_pool(cause: str) -> None:
            nonlocal rebuilds
            rebuilds += 1
            self._bump("pool_rebuilds")
            self.events.append(
                f"worker pool restarted after {cause} "
                f"(restart {rebuilds}/{opts.max_pool_rebuilds})")
            self.close()
            if rebuilds > opts.max_pool_rebuilds:
                raise TierError(
                    f"worker pool restart budget exhausted ({cause})")

        while len(results) < len(units):
            now = time.monotonic()
            waiting: List[Tuple[float, WorkUnit]] = []
            for due, unit in ready:
                if unit.uid in results:
                    continue
                if due > now:
                    waiting.append((due, unit))
                    continue
                try:
                    future = self._ensure_pool().submit(
                        _compile_work_unit,
                        self._payload(unit, attempts[unit.uid]))
                except RuntimeError as exc:
                    raise TierError(f"cannot submit to worker pool: {exc}")
                in_flight[future] = (unit, time.monotonic())
            ready = waiting
            if not in_flight:
                if ready:
                    time.sleep(max(0.0, min(due for due, _ in ready)
                                   - time.monotonic()))
                    continue
                if len(results) < len(units):  # pragma: no cover - guard
                    raise TierError("supervision loop stalled")
                break

            done, _ = wait(set(in_flight), timeout=_POLL_SECONDS,
                           return_when=FIRST_COMPLETED)
            pool_broken = False
            for future in done:
                unit, _started = in_flight.pop(future)
                if unit.uid in results:
                    continue
                try:
                    outcome = future.result()
                except BrokenProcessPool:
                    pool_broken = True
                    self._bump("worker_crashes")
                    charge_attempt(unit, "worker crashed")
                    continue
                except Exception as exc:  # noqa: BLE001 - supervised
                    # Cancelled (pool torn down under it) or transport
                    # failure: reschedule without charging the unit.
                    unit_events[unit.uid].append(
                        f"unit '{unit.label}': preempted "
                        f"({type(exc).__name__}); rescheduled")
                    ready.append((time.monotonic(), unit))
                    continue
                self._handle_outcome(unit, outcome, validate, attempts,
                                     unit_events, results, charge_attempt,
                                     degrade_unit)
            if pool_broken:
                # Every other in-flight future is doomed too: charge the
                # crash to all of them (the actual crasher must advance
                # its attempt counter; innocents have budget to spare)
                # and restart the pool once for the whole batch.
                for future, (unit, _started) in list(in_flight.items()):
                    if unit.uid not in results:
                        self._bump("worker_crashes")
                        charge_attempt(unit, "worker crashed")
                in_flight.clear()
                restart_pool("worker crash")
                continue

            now = time.monotonic()
            overdue = [(future, unit) for future, (unit, started)
                       in in_flight.items()
                       if now - started > opts.deadline]
            if overdue:
                for future, unit in overdue:
                    del in_flight[future]
                    if unit.uid in results:
                        continue
                    self._bump("hangs")
                    charge_attempt(
                        unit, f"deadline exceeded ({opts.deadline:.1f}s)")
                # A running task cannot be cancelled; terminating the
                # pool is the only preemption.  Innocent in-flight units
                # reschedule without an attempt charged.
                for future, (unit, _started) in list(in_flight.items()):
                    if unit.uid not in results:
                        unit_events[unit.uid].append(
                            f"unit '{unit.label}': preempted by pool "
                            "restart; rescheduled")
                        ready.append((now, unit))
                in_flight.clear()
                restart_pool("deadline overrun")
        return results

    def _handle_outcome(self, unit: WorkUnit, outcome: dict,
                        validate: Validator, attempts: Dict[int, int],
                        unit_events: Dict[int, List[str]],
                        results: Dict[int, WorkResult],
                        charge_attempt, degrade_unit) -> None:
        if not isinstance(outcome, dict):
            charge_attempt(unit, "malformed worker reply")
            return
        if outcome.get("ok"):
            try:
                payload = validate(unit, outcome)
            except CorruptResult as exc:
                self._bump("corrupt_results")
                charge_attempt(unit, f"corrupt result ({exc})")
                return
            used = attempts[unit.uid] + 1
            if used > 1:
                self._bump("recovered_units")
                unit_events[unit.uid].append(
                    f"unit '{unit.label}': recovered after "
                    f"{used - 1} failed attempt(s)")
            results[unit.uid] = WorkResult(
                unit=unit, text=outcome["text"],
                statistics=[tuple(triple)
                            for triple in outcome.get("statistics", [])],
                remarks=list(outcome.get("remarks", [])),
                timings=dict(outcome.get("timings", {})),
                attempts=used, events=unit_events[unit.uid],
                payload=payload)
            return
        diagnostic = self._render_worker_error(unit, outcome)
        if outcome.get("transient"):
            self._bump("transient_retries")
            charge_attempt(unit, f"transient worker error ({diagnostic})")
            return
        # A deterministic error: retrying cannot help, and the error
        # must surface with in-process semantics — degrade this unit to
        # the serial fallback, which reproduces (and raises) it.
        self._bump("worker_errors")
        unit_events[unit.uid].append(
            f"unit '{unit.label}': worker error: {diagnostic}")
        degrade_unit(unit, "deterministic worker error")

    @staticmethod
    def _render_worker_error(unit: WorkUnit, outcome: dict) -> str:
        """A located, pass-attributed rendering of a worker failure."""
        payload = outcome.get("diagnostic")
        try:
            diagnostic = Diagnostic.from_payload(payload)
        except (KeyError, TypeError, ValueError):
            return f"unit '{unit.label}': unintelligible worker error"
        rendered = diagnostic.render()
        if outcome.get("pass_name"):
            position = outcome.get("pass_position")
            where = f"in pass '{outcome['pass_name']}'"
            if position is not None:
                where += f" at pipeline position {position}"
            rendered += f" ({where})"
        return rendered
