"""Loop Internalization (paper, Section VI-C, Listings 6-7).

SYCL global-memory accesses inside a counted loop that exhibit temporal
reuse are prefetched into work-group local memory:

* the loop is tiled by the work-group size ``M``;
* an ``M x M`` (or ``M``) local-memory tile is allocated per candidate
  access;
* in the tiled outer loop every work-item prefetches one element of each
  tile, followed by a ``group_barrier``;
* the tiled inner loop reads from the local tiles instead of global memory,
  followed by a second ``group_barrier``.

Candidates are identified with the Memory Access Analysis (Section V-D);
the Uniformity Analysis (Section V-C) rejects loops inside divergent
regions, where the injected barriers would deadlock; stores are not
considered candidates (an explicitly stated limitation of the paper's
implementation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir import (
    IntegerAttr,
    MemRefType,
    Operation,
    Value,
    i64,
    index,
)
from ..dialects import affine as affine_dialect
from ..dialects import arith
from ..dialects import memref as memref_dialect
from ..dialects.func import FuncOp
from ..dialects.sycl import (
    NDItemType,
    SYCLAccessorSubscriptOp,
    SYCLGroupBarrierOp,
    SYCLNDItemGetGroupIDOp,
    SYCLNDItemGetGroupOp,
    SYCLNDItemGetLocalIDOp,
    accessor_type_of,
)
from ..analysis.memory_access import BasisKind, MemoryAccess, MemoryAccessAnalysis
from ..analysis.uniformity import UniformityAnalysis
from .pass_manager import CompileReport, FunctionPass, register_pass


@dataclass
class _RowPlan:
    """How one dimension of a candidate access maps to the tile."""

    kind: str              # "thread" or "loop"
    thread_dim: int = -1   # which work-item dimension (for kind == "thread")


@dataclass
class InternalizationCandidate:
    """One global-memory load to be prefetched into local memory."""

    load: Operation
    subscript: SYCLAccessorSubscriptOp
    access: MemoryAccess
    rows: List[_RowPlan]


def work_group_size_of(function: FuncOp) -> Optional[Tuple[int, ...]]:
    """Work-group size propagated from the host (``sycl.work_group_size``)."""
    attr = function.attributes.get("sycl.work_group_size")
    if attr is None:
        return None
    try:
        return tuple(int(a.value) for a in attr)
    except (TypeError, AttributeError):
        return None


@register_pass
class LoopInternalization(FunctionPass):
    """Prefetches reused global-memory accesses into SYCL local memory."""

    NAME = "loop-internalization"

    STATISTICS = (
        ("loops_internalized", "loops tiled through SYCL local memory"),
        ("references_prefetched", "global-memory references prefetched"),
        ("divergent_loops_skipped", "loops skipped due to divergence"),
    )

    def __init__(self, uniformity: Optional[UniformityAnalysis] = None,
                 options=None):
        super().__init__(options=options)
        self._uniformity = uniformity

    # ------------------------------------------------------------------
    def run_on_function(self, function: FuncOp, report: CompileReport) -> None:
        if not function.is_kernel():
            return
        wg_size = work_group_size_of(function)
        if not wg_size:
            return
        nd_item = self._nd_item_argument(function)
        if nd_item is None:
            return

        uniformity = self._uniformity or \
            self.get_analysis(UniformityAnalysis, function)
        loops = [op for op in function.walk()
                 if isinstance(op, affine_dialect.AffineForOp)]
        for loop in loops:
            if loop.parent is None:
                continue
            # Only innermost loops without nested control flow.
            if any(nested.regions for nested
                   in loop.body.ops_without_terminator()):
                continue
            if uniformity.is_in_divergent_region(loop):
                report.remark(
                    f"{self.NAME}: loop in divergent region not internalized "
                    f"in {function.sym_name}")
                report.add_statistic(self.NAME, "divergent_loops_skipped")
                continue
            candidates, tile = self._find_candidates(function, loop, wg_size)
            if not candidates or tile is None:
                continue
            self._transform(function, loop, candidates, nd_item, tile, wg_size)
            report.add_statistic(self.NAME, "loops_internalized")
            report.add_statistic(self.NAME, "references_prefetched",
                                 len(candidates))
            report.remark(
                f"{self.NAME}: prefetched {len(candidates)} array reference(s) "
                f"to local memory in {function.sym_name}")

    # ------------------------------------------------------------------
    # Candidate discovery
    # ------------------------------------------------------------------
    @staticmethod
    def _nd_item_argument(function: FuncOp) -> Optional[Value]:
        for argument in function.arguments:
            type_ = argument.type
            element = getattr(type_, "element_type", type_)
            if isinstance(element, NDItemType):
                return argument
        return None

    def _find_candidates(self, function: FuncOp, loop: affine_dialect.AffineForOp,
                         wg_size: Tuple[int, ...]):
        trip_count = loop.constant_trip_count()
        bounds = loop.constant_bounds()
        if trip_count is None or bounds is None or bounds[0] != 0 or \
                loop.step != 1 or loop.init_args:
            return [], None
        tile = min(wg_size)
        if any(extent != tile for extent in wg_size):
            # Require square work-groups so a single tile size fits all dims.
            return [], None
        if trip_count % tile != 0 or trip_count < tile or tile < 2:
            return [], None

        analysis = self.get_analysis(MemoryAccessAnalysis, loop)
        iv = loop.induction_variable()
        candidates: List[InternalizationCandidate] = []
        for op in loop.body.ops_without_terminator():
            if not isinstance(op, (affine_dialect.AffineLoadOp,
                                   memref_dialect.LoadOp)):
                continue
            subscript = op.memref.defining_op()
            if not isinstance(subscript, SYCLAccessorSubscriptOp):
                continue
            accessor_type = accessor_type_of(subscript.accessor)
            if accessor_type is None or accessor_type.is_local:
                continue
            access = analysis.access_for(op)
            if access is None or not access.has_temporal_reuse():
                continue
            rows = self._plan_rows(access, iv)
            if rows is None:
                continue
            candidates.append(InternalizationCandidate(op, subscript, access, rows))
        return candidates, tile

    @staticmethod
    def _plan_rows(access: MemoryAccess, loop_iv: Value) -> Optional[List[_RowPlan]]:
        """Classify every access dimension as thread-mapped or loop-mapped.

        A candidate must address each dimension either with exactly one
        work-item global id (unit coefficient, zero offset) or with exactly
        the loop induction variable (unit coefficient, zero offset), with
        exactly one loop-mapped dimension.
        """
        rows: List[_RowPlan] = []
        loop_rows = 0
        for row, offset in zip(access.matrix, access.offsets):
            if offset != 0:
                return None
            nonzero = [(col, coeff) for col, coeff in enumerate(row) if coeff != 0]
            if len(nonzero) != 1:
                return None
            col, coeff = nonzero[0]
            if coeff != 1:
                return None
            basis = access.basis[col]
            if basis.kind is BasisKind.LOOP:
                if basis.value is not loop_iv:
                    return None
                rows.append(_RowPlan("loop"))
                loop_rows += 1
            elif basis.kind is BasisKind.WORK_ITEM:
                dim = LoopInternalization._work_item_dimension(basis.value)
                if dim is None:
                    return None
                rows.append(_RowPlan("thread", dim))
            else:
                return None
        if loop_rows != 1:
            return None
        thread_dims = [r.thread_dim for r in rows if r.kind == "thread"]
        if len(set(thread_dims)) != len(thread_dims):
            return None
        if len(rows) > 2:
            return None
        return rows

    @staticmethod
    def _work_item_dimension(value: Value) -> Optional[int]:
        defining = value.defining_op()
        if defining is None or defining.dimension is None:
            return None
        dim = arith.constant_value_of(defining.dimension)
        return int(dim) if dim is not None else None

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def _transform(self, function: FuncOp, loop: affine_dialect.AffineForOp,
                   candidates: List[InternalizationCandidate], nd_item: Value,
                   tile: int, wg_size: Tuple[int, ...]) -> None:
        parent_block = loop.parent
        bounds = loop.constant_bounds()
        assert parent_block is not None and bounds is not None
        upper = bounds[1]

        def insert(op: Operation) -> Operation:
            parent_block.insert_before(loop, op)
            return op

        # Work-item coordinates used by the prefetch and the tiled uses.
        dim_constants: Dict[int, Value] = {}
        local_ids: Dict[int, Value] = {}
        group_ids: Dict[int, Value] = {}
        needed_dims = sorted(
            {r.thread_dim for c in candidates for r in c.rows
             if r.kind == "thread"} |
            {dim for c in candidates for dim in range(len(c.rows))})
        from ..ir import i32 as _i32

        for dim in needed_dims:
            dim_const = insert(arith.ConstantOp.build(dim, _i32()))
            dim_constants[dim] = dim_const.result
            local_ids[dim] = insert(
                SYCLNDItemGetLocalIDOp.build(nd_item, dim_const.result)).result
            group_ids[dim] = insert(
                SYCLNDItemGetGroupIDOp.build(nd_item, dim_const.result)).result

        group = insert(SYCLNDItemGetGroupOp.build(nd_item, len(wg_size)))
        tile_const = insert(arith.ConstantOp.build(tile, index()))
        zero = insert(arith.ConstantOp.build(0, index()))
        upper_const = insert(arith.ConstantOp.build(upper, index()))

        # Local-memory tiles, one per candidate reference (Listing 7, l. 2-3).
        tiles: List[Value] = []
        for candidate in candidates:
            elem = candidate.access.memref.type.element_type
            shape = tuple([tile] * len(candidate.rows))
            tile_alloc = insert(memref_dialect.AllocOp.build(
                MemRefType(shape, elem, "local")))
            tile_alloc.set_attr("sycl.local_tile", IntegerAttr(tile, i64()))
            tiles.append(tile_alloc.result)

        # Outer tiled loop: for t = 0 .. N step M (Listing 7, l. 13).
        outer = affine_dialect.AffineForOp.build(zero.result, upper_const.result,
                                                 step=tile)
        parent_block.insert_before(loop, outer)
        outer_body = outer.body
        t_value = outer.induction_variable()

        def append_outer(op: Operation) -> Operation:
            outer_body.append(op)
            return op

        # Prefetch one element per work-item per tile (Listing 7, l. 14-15).
        for candidate, tile_memref in zip(candidates, tiles):
            global_indices: List[Value] = []
            for row_index, row in enumerate(candidate.rows):
                local_value = local_ids[row_index]
                if row.kind == "loop":
                    base = t_value
                else:
                    scaled = append_outer(arith.MulIOp.build(
                        group_ids[row.thread_dim], tile_const.result))
                    base = scaled.result
                combined = append_outer(arith.AddIOp.build(base, local_value))
                global_indices.append(combined.result)
            prefetch_load = append_outer(self._build_accessor_load(
                candidate, global_indices, append_outer))
            tile_indices = [local_ids[row_index]
                            for row_index in range(len(candidate.rows))]
            append_outer(memref_dialect.StoreOp.build(
                prefetch_load.result, tile_memref, tile_indices))

        append_outer(SYCLGroupBarrierOp.build(group.result))

        # Inner tiled loop over the local tiles (Listing 7, l. 17-18).
        inner = affine_dialect.AffineForOp.build(zero.result, tile_const.result,
                                                 step=1)
        outer_body.append(inner)
        inner_body = inner.body
        k_prime = inner.induction_variable()

        # The original induction variable becomes t + k'.
        global_k = arith.AddIOp.build(t_value, k_prime)
        inner_body.append(global_k)

        mapping: Dict[Value, Value] = {loop.induction_variable(): global_k.result}
        candidate_loads = {id(c.load): (c, tile_memref)
                           for c, tile_memref in zip(candidates, tiles)}
        old_terminator = loop.body.terminator
        for op in loop.body.operations:
            if op is old_terminator:
                continue
            if id(op) in candidate_loads:
                candidate, tile_memref = candidate_loads[id(op)]
                tile_indices = []
                for row in candidate.rows:
                    if row.kind == "loop":
                        tile_indices.append(k_prime)
                    else:
                        tile_indices.append(local_ids[row.thread_dim])
                replacement = memref_dialect.LoadOp.build(tile_memref, tile_indices)
                inner_body.append(replacement)
                mapping[op.results[0]] = replacement.result
                continue
            cloned = op.clone(mapping)
            inner_body.append(cloned)
        inner_body.append(affine_dialect.AffineYieldOp.build())

        outer_body.append(SYCLGroupBarrierOp.build(group.result))
        outer_body.append(affine_dialect.AffineYieldOp.build())

        # The original loop is no longer referenced.
        for result in loop.results:
            if result.has_uses():
                return  # loops with results are rejected earlier; be safe
        loop.erase()

    def _build_accessor_load(self, candidate: InternalizationCandidate,
                             indices: Sequence[Value], append) -> Operation:
        """Build ``sycl.constructor`` + ``subscript`` + load for the prefetch."""
        from ..dialects.sycl import IDType, SYCLConstructorOp

        rank = len(indices)
        id_alloca = append(memref_dialect.AllocaOp.build(
            MemRefType((1,), IDType(rank))))
        append(SYCLConstructorOp.build("id", id_alloca.result, list(indices)))
        subscript = append(SYCLAccessorSubscriptOp.build(
            candidate.subscript.accessor, id_alloca.result))
        zero = append(arith.ConstantOp.build(0, index()))
        load = affine_dialect.AffineLoadOp.build(subscript.result, [zero.result])
        return load
