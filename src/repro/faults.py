"""Deterministic fault injection for the robustness test surface.

The process-parallel execution tier (:mod:`repro.transforms.executor`),
the :class:`~repro.transforms.compile_cache.CompileCache` hit path and
the ``repro-opt`` batch loop are threaded with named *injection points*
(:func:`fault_point`).  A :class:`FaultPlan` maps injection points to one
of four fault kinds, keyed by occurrence index and/or the call's key, so
the chaos suite can deterministically reproduce every failure class the
supervisor claims to survive:

``crash``
    The process dies on the spot (``os._exit``) — a segfaulting worker.
``hang``
    The call sleeps (default far beyond any deadline) — a wedged worker.
``transient``
    :class:`TransientFault` is raised — a retryable environmental error.
``corrupt``
    :func:`fault_point` returns ``"corrupt"`` and the call site mangles
    its own payload — a worker returning garbage.

Plans activate through the API (:func:`install_fault_plan`, or the
:func:`fault_plan` context manager in tests) or through the
``REPRO_FAULT_PLAN`` environment variable, which forked/spawned worker
processes re-read lazily so a plan installed before the pool exists is
honoured inside every worker.

Plan syntax (``;``-separated rules)::

    point[@key][:occurrence]=kind[/arg]

    executor.worker:0=crash          first attempt of any unit crashes
    executor.worker@k1=transient     first attempt at key "k1" fails
    executor.worker@k1:*=transient   every attempt at "k1" fails
    executor.worker@k1=hang/30       first attempt at "k1" sleeps 30s
    compile-cache.hit=corrupt        first cache hit splices garbage
    disk-cache.read=corrupt          first disk read loads garbage
    disk-cache.write:*=transient     every disk store fails (cache off)
    serve.request@compile=transient  first daemon compile is retryable
    jit.compile=corrupt              first JIT codegen emits garbage —
                                     the engine degrades to the
                                     interpreter tier with a remark
    jit.exec@gemm=transient          first jit run of kernel "gemm"
                                     fails pre-dispatch; same degrade

Occurrence indices are 0-based.  A missing occurrence means ``0`` (fire
once, on the first matching call); ``*`` fires on every matching call.
Call sites that retry pass the attempt number explicitly so occurrence
matching stays deterministic even when a crashed worker process (whose
local counters died with it) is replaced by a fresh one.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: The four injectable fault classes.
FAULT_KINDS = ("crash", "hang", "corrupt", "transient")

#: Environment variable carrying a plan spec into worker processes.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Seconds a ``hang`` sleeps when the rule carries no ``/seconds`` arg —
#: far beyond any reasonable work-unit deadline, so an unbounded wait
#: shows up as a test timeout instead of passing silently.
DEFAULT_HANG_SECONDS = 3600.0


class FaultInjected(RuntimeError):
    """An injected fault surfaced as an exception."""

    def __init__(self, message: str, kind: str = "transient"):
        super().__init__(message)
        self.kind = kind


class TransientFault(FaultInjected):
    """A retryable injected failure (kind ``transient``)."""

    def __init__(self, message: str):
        super().__init__(message, kind="transient")


@dataclass(frozen=True)
class FaultRule:
    """One ``point[@key][:occurrence]=kind[/arg]`` plan entry."""

    point: str
    kind: str
    #: 0-based occurrence index to fire on; ``None`` fires on every
    #: matching occurrence (the ``:*`` spelling).
    occurrence: Optional[int] = 0
    #: Exact key to match; ``None`` matches any key.
    key: Optional[str] = None
    #: Kind parameter (hang duration in seconds).
    arg: Optional[str] = None

    def matches(self, point: str, key: Optional[str],
                occurrence: int) -> bool:
        if self.point != point:
            return False
        if self.key is not None and self.key != key:
            return False
        return self.occurrence is None or self.occurrence == occurrence

    def to_spec(self) -> str:
        spec = self.point
        if self.key is not None:
            spec += f"@{self.key}"
        if self.occurrence is None:
            spec += ":*"
        elif self.occurrence != 0:
            spec += f":{self.occurrence}"
        spec += f"={self.kind}"
        if self.arg is not None:
            spec += f"/{self.arg}"
        return spec


@dataclass
class FaultFire:
    """Record of one rule firing (kept for assertions in tests)."""

    point: str
    key: Optional[str]
    occurrence: int
    kind: str


@dataclass
class FaultPlan:
    """An ordered set of :class:`FaultRule`\\ s plus firing bookkeeping.

    Occurrence counters are kept per ``point`` and per ``(point, key)``;
    a rule with a key consults the per-key counter, so "the second
    attempt at unit k3" is expressible independently of how many other
    units visited the same point first.
    """

    rules: List[FaultRule] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._point_counts: Dict[str, int] = {}
        self._key_counts: Dict[Tuple[str, Optional[str]], int] = {}
        self.fires: List[FaultFire] = []

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``;``-separated plan spec; raises ``ValueError``."""
        rules: List[FaultRule] = []
        for entry in spec.split(";"):
            entry = entry.strip()
            if not entry:
                continue
            if "=" not in entry:
                raise ValueError(
                    f"fault rule {entry!r} lacks '=kind'")
            lhs, rhs = entry.split("=", 1)
            kind, _, arg = rhs.partition("/")
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r} in {entry!r}; expected "
                    f"one of {', '.join(FAULT_KINDS)}")
            key: Optional[str] = None
            if "@" in lhs:
                point, key = lhs.split("@", 1)
            else:
                point = lhs
            occurrence: Optional[int] = 0
            tail = key if key is not None else point
            head, _, occ_text = tail.rpartition(":")
            if head and (occ_text == "*" or occ_text.isdigit()):
                occurrence = None if occ_text == "*" else int(occ_text)
                if key is not None:
                    key = head
                else:
                    point = head
            if not point:
                raise ValueError(f"fault rule {entry!r} lacks a point name")
            rules.append(FaultRule(point=point, kind=kind,
                                   occurrence=occurrence, key=key,
                                   arg=arg or None))
        return cls(rules=rules)

    def to_spec(self) -> str:
        """Canonical spec — what to export as ``REPRO_FAULT_PLAN``."""
        return ";".join(rule.to_spec() for rule in self.rules)

    def check(self, point: str, key: Optional[str] = None,
              occurrence: Optional[int] = None) -> Optional[FaultRule]:
        """The first rule matching this call, advancing counters.

        ``occurrence=None`` uses the plan's own per-point / per-key
        counters; call sites that retry (the executor) pass the attempt
        number explicitly instead.
        """
        with self._lock:
            if occurrence is None:
                if key is not None:
                    count_key = (point, key)
                    occurrence = self._key_counts.get(count_key, 0)
                    self._key_counts[count_key] = occurrence + 1
                self._point_counts.setdefault(point, 0)
                point_occurrence = self._point_counts[point]
                self._point_counts[point] = point_occurrence + 1
                if key is None:
                    occurrence = point_occurrence
            else:
                point_occurrence = occurrence
            for rule in self.rules:
                probe = occurrence if rule.key is not None \
                    else point_occurrence
                if rule.matches(point, key, probe):
                    self.fires.append(
                        FaultFire(point, key, probe, rule.kind))
                    return rule
        return None


#: Plan installed through the API; overrides the environment.
_installed_plan: Optional[FaultPlan] = None
#: Cache of the last environment spec parsed, so tests that swap
#: ``REPRO_FAULT_PLAN`` between cases get a fresh plan (and fresh
#: counters) without an explicit reset.
_env_cache: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)
_state_lock = threading.Lock()


def install_fault_plan(plan: Optional[FaultPlan]) -> None:
    """Install (or with ``None`` clear) the process-wide fault plan."""
    global _installed_plan
    with _state_lock:
        _installed_plan = plan


def active_fault_plan() -> Optional[FaultPlan]:
    """The plan in effect: the installed one, else ``REPRO_FAULT_PLAN``.

    The environment spec is parsed lazily and re-parsed whenever its
    value changes, so worker processes created by ``fork`` *or* ``spawn``
    both honour a plan exported before the pool was built.
    """
    global _env_cache
    with _state_lock:
        if _installed_plan is not None:
            return _installed_plan
        spec = os.environ.get(FAULT_PLAN_ENV)
        if spec is None or not spec.strip():
            return None
        cached_spec, cached_plan = _env_cache
        if spec != cached_spec:
            _env_cache = (spec, FaultPlan.parse(spec))
        return _env_cache[1]


class fault_plan:
    """Context manager installing a plan (from a spec string) for a test."""

    def __init__(self, spec: str):
        self.plan = FaultPlan.parse(spec)

    def __enter__(self) -> FaultPlan:
        install_fault_plan(self.plan)
        return self.plan

    def __exit__(self, *exc_info) -> None:
        install_fault_plan(None)


def fault_point(point: str, key: Optional[str] = None,
                occurrence: Optional[int] = None) -> Optional[str]:
    """Declare an injection point; a no-op unless a plan matches.

    Returns ``None`` normally.  When a matching ``corrupt`` rule fires it
    returns ``"corrupt"`` and the call site corrupts its own payload;
    ``transient`` raises :class:`TransientFault`; ``hang`` sleeps;
    ``crash`` kills the process without cleanup (``os._exit``), which is
    exactly what a segfault looks like from the supervising side.
    """
    plan = active_fault_plan()
    if plan is None:
        return None
    rule = plan.check(point, key=key, occurrence=occurrence)
    if rule is None:
        return None
    if rule.kind == "crash":
        os._exit(41)
    if rule.kind == "hang":
        seconds = float(rule.arg) if rule.arg else DEFAULT_HANG_SECONDS
        time.sleep(seconds)
        return None
    if rule.kind == "transient":
        raise TransientFault(
            f"injected transient fault at {point}"
            + (f" (key={key})" if key else ""))
    return "corrupt"
