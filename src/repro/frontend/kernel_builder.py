"""Device kernel frontend: a Python DSL emitting SYCL-dialect device IR.

The paper uses a Polygeist fork to translate SYCL C++ device code into MLIR
(Section IV).  We cannot run a C++ frontend here, so kernels are written in
a small Python DSL that emits exactly the IR shape that frontend produces:
``func.func`` kernels whose arguments are the ``item``/``nd_item`` followed
by the captured accessors and scalars, with ``sycl.*`` operations for
work-item queries and accessor accesses, and ``affine`` loops for the loop
nests.

Example (the matrix-multiply kernel of Listing 6)::

    def gemm_kernel(k: KernelBuilder):
        i = k.global_id(0)
        j = k.global_id(1)
        with k.loop(0, N) as kk:
            value = k.load("C", [i, j]) + k.load("A", [i, kk]) * k.load("B", [kk, j])
            k.store("C", [i, j], value)

    source = KernelSource("gemm", body=gemm_kernel, nd_range_dims=2,
                          accessors=[AccessorParam("A", 2, f32(), "read"), ...])
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..ir import (
    Builder,
    InsertionPoint,
    IntegerType,
    MemRefType,
    Operation,
    Type,
    UnitAttr,
    Value,
    f32,
    i1,
    i32,
    index,
    is_float,
    location_of,
    user_code_location,
)
from ..dialects import affine, arith, math as math_dialect, memref, scf, sycl
from ..dialects.func import FuncOp, ReturnOp

Number = Union[int, float]


@dataclass(frozen=True)
class AccessorParam:
    """A kernel accessor parameter (captured ``sycl::accessor``)."""

    name: str
    dimensions: int
    element_type: Type = field(default_factory=f32)
    access_mode: str = "read_write"
    target: str = "device"

    def accessor_type(self) -> sycl.AccessorType:
        return sycl.AccessorType(self.dimensions, self.element_type,
                                 self.access_mode, self.target)


@dataclass(frozen=True)
class ScalarParam:
    """A captured scalar kernel parameter."""

    name: str
    type: Type = field(default_factory=f32)


@dataclass
class KernelSource:
    """A device kernel before compilation (name + signature + DSL body)."""

    name: str
    body: Callable[["KernelBuilder"], None]
    nd_range_dims: int = 1
    #: True when the kernel takes an ``nd_item`` (work-group aware) rather
    #: than a plain ``item``.
    uses_nd_item: bool = True
    accessors: Sequence[AccessorParam] = field(default_factory=tuple)
    scalars: Sequence[ScalarParam] = field(default_factory=tuple)

    def parameter_names(self) -> List[str]:
        return [p.name for p in self.accessors] + [p.name for p in self.scalars]

    def build(self) -> FuncOp:
        """Emit the kernel as a ``func.func`` carrying SYCL dialect types."""
        builder = KernelBuilder(self)
        self.body(builder)
        return builder.finish()


class Expr:
    """Wrapper around an SSA value providing arithmetic operators."""

    def __init__(self, kernel_builder: "KernelBuilder", value: Value):
        self.kb = kernel_builder
        self.value = value

    # -- helpers -------------------------------------------------------------
    def _wrap(self, value: Value) -> "Expr":
        return Expr(self.kb, value)

    def _coerce(self, other: Union["Expr", Number]) -> "Expr":
        if isinstance(other, Expr):
            return other
        return self.kb.constant(other, self.value.type)

    @property
    def type(self) -> Type:
        return self.value.type

    def _is_float(self) -> bool:
        return is_float(self.value.type)

    def _binary(self, other, float_op, int_op, reverse: bool = False) -> "Expr":
        rhs = self._coerce(other)
        lhs = self
        if reverse:
            lhs, rhs = rhs, lhs
        op_class = float_op if lhs._is_float() or rhs._is_float() else int_op
        op = self.kb._insert(op_class.build(lhs.value, rhs.value))
        return self._wrap(op.result)

    # -- arithmetic -----------------------------------------------------------
    def __add__(self, other):
        return self._binary(other, arith.AddFOp, arith.AddIOp)

    def __radd__(self, other):
        return self._binary(other, arith.AddFOp, arith.AddIOp, reverse=True)

    def __sub__(self, other):
        return self._binary(other, arith.SubFOp, arith.SubIOp)

    def __rsub__(self, other):
        return self._binary(other, arith.SubFOp, arith.SubIOp, reverse=True)

    def __mul__(self, other):
        return self._binary(other, arith.MulFOp, arith.MulIOp)

    def __rmul__(self, other):
        return self._binary(other, arith.MulFOp, arith.MulIOp, reverse=True)

    def __truediv__(self, other):
        return self._binary(other, arith.DivFOp, arith.DivSIOp)

    def __rtruediv__(self, other):
        return self._binary(other, arith.DivFOp, arith.DivSIOp, reverse=True)

    def __mod__(self, other):
        return self._binary(other, arith.RemFOp, arith.RemSIOp)

    def __neg__(self):
        if self._is_float():
            op = self.kb._insert(arith.NegFOp.build(self.value))
            return self._wrap(op.result)
        zero = self.kb.constant(0, self.value.type)
        return zero - self

    # -- comparisons (return i1 Expr) ------------------------------------------
    def _compare(self, other, predicate_float: str, predicate_int: str) -> "Expr":
        rhs = self._coerce(other)
        if self._is_float() or rhs._is_float():
            op = self.kb._insert(arith.CmpFOp.build(predicate_float, self.value,
                                                    rhs.value))
        else:
            op = self.kb._insert(arith.CmpIOp.build(predicate_int, self.value,
                                                    rhs.value))
        return self._wrap(op.result)

    def __lt__(self, other):
        return self._compare(other, "olt", "slt")

    def __le__(self, other):
        return self._compare(other, "ole", "sle")

    def __gt__(self, other):
        return self._compare(other, "ogt", "sgt")

    def __ge__(self, other):
        return self._compare(other, "oge", "sge")

    def eq(self, other):
        return self._compare(other, "oeq", "eq")

    def ne(self, other):
        return self._compare(other, "one", "ne")

    # -- boolean combinators and selection (boundary guards) -------------------
    def _boolean(self, other, op_class) -> "Expr":
        rhs = other if isinstance(other, Expr) \
            else self.kb.constant(bool(other), i1())
        op = self.kb._insert(op_class.build(self.value, rhs.value))
        return self._wrap(op.result)

    def __and__(self, other):
        """Combine ``i1`` conditions: ``(i < n) & (j < n)``."""
        return self._boolean(other, arith.AndIOp)

    def __or__(self, other):
        return self._boolean(other, arith.OrIOp)

    def __invert__(self):
        return self._boolean(True, arith.XOrIOp)

    def select(self, if_true: Union["Expr", Number],
               if_false: Union["Expr", Number]) -> "Expr":
        """``arith.select`` on this ``i1`` condition.

        Literal branch values are typed after the other (Expr) branch, so
        integer selects like ``guard.select(value, 0)`` stay
        type-correct.
        """
        if not isinstance(if_true, Expr) and isinstance(if_false, Expr):
            if_true = self.kb.constant(if_true, if_false.type)
        elif not isinstance(if_true, Expr):
            if_true = self.kb.constant(if_true)
        if not isinstance(if_false, Expr):
            if_false = self.kb.constant(if_false, if_true.type)
        op = self.kb._insert(arith.SelectOp.build(self.value, if_true.value,
                                                  if_false.value))
        return self._wrap(op.result)

    # -- conversions -----------------------------------------------------------
    def to_float(self, type_: Optional[Type] = None) -> "Expr":
        target = type_ or f32()
        if self._is_float():
            return self
        op = self.kb._insert(arith.SIToFPOp.build(self.value, target))
        return self._wrap(op.result)

    def to_index(self) -> "Expr":
        if isinstance(self.value.type, (IntegerType,)):
            op = self.kb._insert(arith.IndexCastOp.build(self.value, index()))
            return self._wrap(op.result)
        return self

    def to_int(self, type_: Optional[Type] = None) -> "Expr":
        target = type_ or i32()
        if self._is_float():
            op = self.kb._insert(arith.FPToSIOp.build(self.value, target))
            return self._wrap(op.result)
        op = self.kb._insert(arith.IndexCastOp.build(self.value, target))
        return self._wrap(op.result)


class KernelBuilder:
    """Builds one device kernel function."""

    def __init__(self, source: KernelSource):
        self.source = source
        item_type = (sycl.NDItemType(source.nd_range_dims)
                     if source.uses_nd_item
                     else sycl.ItemType(source.nd_range_dims))
        arg_types: List[Type] = [sycl.memref_of(item_type)]
        arg_names: List[str] = ["item"]
        for accessor in source.accessors:
            arg_types.append(sycl.memref_of(accessor.accessor_type()))
            arg_names.append(accessor.name)
        for scalar in source.scalars:
            arg_types.append(scalar.type)
            arg_names.append(scalar.name)
        self.func = FuncOp.build(f"{source.name}", arg_types,
                                 arg_names=arg_names)
        self.func.location = user_code_location()
        self.func.set_attr("sycl.kernel", UnitAttr())
        self.func.set_attr("sycl.kernel_name", UnitAttr())
        self._builder = Builder(InsertionPoint.at_end(self.func.body))
        self._params: Dict[str, Value] = {
            name: arg for name, arg in zip(arg_names, self.func.arguments)
        }
        self._accessor_params = {a.name: a for a in source.accessors}
        self._finished = False

    # ------------------------------------------------------------------
    # Low-level helpers
    # ------------------------------------------------------------------
    def _insert(self, op: Operation) -> Operation:
        # Ops emitted from the embedded DSL point at the user's Python
        # kernel line, so lint/verifier findings on built kernels carry
        # a real source position.
        if not location_of(op).is_known:
            op.location = user_code_location()
        return self._builder.insert(op)

    @property
    def item(self) -> Value:
        return self._params["item"]

    def parameter(self, name: str) -> Expr:
        if name not in self._params:
            raise KeyError(f"unknown kernel parameter {name!r}")
        return Expr(self, self._params[name])

    def constant(self, value: Number, type_: Optional[Type] = None) -> Expr:
        if type_ is None:
            type_ = f32() if isinstance(value, float) else index()
        op = self._insert(arith.ConstantOp.build(value, type_))
        return Expr(self, op.result)

    def index_constant(self, value: int) -> Expr:
        return self.constant(int(value), index())

    # ------------------------------------------------------------------
    # Work-item queries
    # ------------------------------------------------------------------
    def _dim_constant(self, dim: int) -> Value:
        return self._insert(arith.ConstantOp.build(dim, i32())).result

    def global_id(self, dim: int = 0) -> Expr:
        dim_value = self._dim_constant(dim)
        if self.source.uses_nd_item:
            op = self._insert(sycl.SYCLNDItemGetGlobalIDOp.build(self.item, dim_value))
        else:
            op = self._insert(sycl.SYCLItemGetIDOp.build(self.item, dim_value))
        return Expr(self, op.result)

    def local_id(self, dim: int = 0) -> Expr:
        op = self._insert(sycl.SYCLNDItemGetLocalIDOp.build(
            self.item, self._dim_constant(dim)))
        return Expr(self, op.result)

    def group_id(self, dim: int = 0) -> Expr:
        op = self._insert(sycl.SYCLNDItemGetGroupIDOp.build(
            self.item, self._dim_constant(dim)))
        return Expr(self, op.result)

    def global_range(self, dim: int = 0) -> Expr:
        if self.source.uses_nd_item:
            op = self._insert(sycl.SYCLNDItemGetGlobalRangeOp.build(
                self.item, self._dim_constant(dim)))
        else:
            op = self._insert(sycl.SYCLItemGetRangeOp.build(
                self.item, self._dim_constant(dim)))
        return Expr(self, op.result)

    def local_range(self, dim: int = 0) -> Expr:
        op = self._insert(sycl.SYCLNDItemGetLocalRangeOp.build(
            self.item, self._dim_constant(dim)))
        return Expr(self, op.result)

    def group_range(self, dim: int = 0) -> Expr:
        op = self._insert(sycl.SYCLNDItemGetGroupRangeOp.build(
            self.item, self._dim_constant(dim)))
        return Expr(self, op.result)

    def group_barrier(self) -> None:
        group = self._insert(sycl.SYCLNDItemGetGroupOp.build(
            self.item, self.source.nd_range_dims))
        self._insert(sycl.SYCLGroupBarrierOp.build(group.result))

    # ------------------------------------------------------------------
    # Accessor accesses
    # ------------------------------------------------------------------
    def accessor_range(self, name: str, dim: int = 0) -> Expr:
        accessor = self._params[name]
        op = self._insert(sycl.SYCLAccessorGetRangeOp.build(
            accessor, self._dim_constant(dim)))
        return Expr(self, op.result)

    def _subscript(self, name: str, indices: Sequence[Union[Expr, Number]]) -> Value:
        accessor = self._params[name]
        param = self._accessor_params[name]
        if len(indices) != param.dimensions:
            raise ValueError(
                f"accessor {name!r} is {param.dimensions}-dimensional, got "
                f"{len(indices)} indices")
        index_values = [self._as_index(i) for i in indices]
        id_alloca = self._insert(memref.AllocaOp.build(
            MemRefType((1,), sycl.IDType(param.dimensions))))
        self._insert(sycl.SYCLConstructorOp.build(
            "id", id_alloca.result, index_values))
        subscript = self._insert(sycl.SYCLAccessorSubscriptOp.build(
            accessor, id_alloca.result))
        return subscript.result

    def _as_index(self, value: Union[Expr, Number]) -> Value:
        if isinstance(value, Expr):
            return value.value
        return self.index_constant(int(value)).value

    def load(self, name: str, indices: Sequence[Union[Expr, Number]]) -> Expr:
        view = self._subscript(name, indices)
        zero = self.index_constant(0)
        op = self._insert(affine.AffineLoadOp.build(view, [zero.value]))
        return Expr(self, op.result)

    def store(self, name: str, indices: Sequence[Union[Expr, Number]],
              value: Union[Expr, Number]) -> None:
        view = self._subscript(name, indices)
        zero = self.index_constant(0)
        param = self._accessor_params[name]
        if not isinstance(value, Expr):
            value = self.constant(value, param.element_type)
        self._insert(affine.AffineStoreOp.build(value.value, view, [zero.value]))

    # ------------------------------------------------------------------
    # Private (work-item local) memory
    # ------------------------------------------------------------------
    def private_array(self, size: int, element_type: Optional[Type] = None) -> Value:
        elem = element_type or f32()
        alloca = self._insert(memref.AllocaOp.build(
            MemRefType((size,), elem, "private")))
        return alloca.result

    def private_load(self, array: Value, idx: Union[Expr, Number]) -> Expr:
        op = self._insert(memref.LoadOp.build(array, [self._as_index(idx)]))
        return Expr(self, op.result)

    def private_store(self, array: Value, idx: Union[Expr, Number],
                      value: Union[Expr, Number]) -> None:
        if not isinstance(value, Expr):
            value = self.constant(value)
        self._insert(memref.StoreOp.build(value.value, array,
                                          [self._as_index(idx)]))

    # ------------------------------------------------------------------
    # Math helpers
    # ------------------------------------------------------------------
    def _unary_math(self, op_class, value: Union[Expr, Number]) -> Expr:
        if not isinstance(value, Expr):
            value = self.constant(float(value))
        op = self._insert(op_class.build(value.value))
        return Expr(self, op.result)

    def sqrt(self, value) -> Expr:
        return self._unary_math(math_dialect.SqrtOp, value)

    def exp(self, value) -> Expr:
        return self._unary_math(math_dialect.ExpOp, value)

    def log(self, value) -> Expr:
        return self._unary_math(math_dialect.LogOp, value)

    def sin(self, value) -> Expr:
        return self._unary_math(math_dialect.SinOp, value)

    def cos(self, value) -> Expr:
        return self._unary_math(math_dialect.CosOp, value)

    def fabs(self, value) -> Expr:
        return self._unary_math(math_dialect.AbsFOp, value)

    def floor(self, value) -> Expr:
        return self._unary_math(math_dialect.FloorOp, value)

    def rsqrt(self, value) -> Expr:
        return self._unary_math(math_dialect.RsqrtOp, value)

    def pow(self, base, exponent) -> Expr:
        if not isinstance(base, Expr):
            base = self.constant(float(base))
        if not isinstance(exponent, Expr):
            exponent = self.constant(float(exponent), base.type)
        op = self._insert(math_dialect.PowFOp.build(base.value, exponent.value))
        return Expr(self, op.result)

    def select(self, condition: Expr, if_true: Union[Expr, Number],
               if_false: Union[Expr, Number]) -> Expr:
        return condition.select(if_true, if_false)

    def minimum(self, a: Expr, b: Union[Expr, Number]) -> Expr:
        if not isinstance(b, Expr):
            b = self.constant(b, a.type)
        op_class = arith.MinFOp if a._is_float() else arith.MinSIOp
        op = self._insert(op_class.build(a.value, b.value))
        return Expr(self, op.result)

    def maximum(self, a: Expr, b: Union[Expr, Number]) -> Expr:
        if not isinstance(b, Expr):
            b = self.constant(b, a.type)
        op_class = arith.MaxFOp if a._is_float() else arith.MaxSIOp
        op = self._insert(op_class.build(a.value, b.value))
        return Expr(self, op.result)

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def loop(self, lower: Union[Expr, int], upper: Union[Expr, int],
             step: int = 1):
        """An ``affine.for`` loop; yields the induction variable."""
        lower_value = self._as_index(lower)
        upper_value = self._as_index(upper)
        loop = self._insert(affine.AffineForOp.build(lower_value, upper_value,
                                                     step=step))
        saved = self._builder.insertion_point
        self._builder.set_insertion_point_to_end(loop.body)
        try:
            yield Expr(self, loop.induction_variable())
        finally:
            self._insert(affine.AffineYieldOp.build())
            self._builder.insertion_point = saved

    @contextlib.contextmanager
    def if_then(self, condition: Expr):
        """An ``scf.if`` without an else branch."""
        if_op = self._insert(scf.IfOp.build(condition.value))
        saved = self._builder.insertion_point
        self._builder.set_insertion_point_to_end(if_op.then_block)
        try:
            yield
        finally:
            self._insert(scf.YieldOp.build())
            self._builder.insertion_point = saved

    @contextlib.contextmanager
    def if_then_else(self, condition: Expr):
        """An ``scf.if`` with both branches; yields ("then", "else") markers."""
        if_op = self._insert(scf.IfOp.build(condition.value, with_else=True))
        saved = self._builder.insertion_point

        @contextlib.contextmanager
        def branch(block):
            self._builder.set_insertion_point_to_end(block)
            try:
                yield
            finally:
                self._insert(scf.YieldOp.build())

        try:
            yield branch(if_op.then_block), branch(if_op.else_block)
        finally:
            self._builder.insertion_point = saved

    # ------------------------------------------------------------------
    def finish(self) -> FuncOp:
        if not self._finished:
            self._insert(ReturnOp.build())
            self._finished = True
        return self.func
