"""repro — Python reproduction of "Experiences Building an MLIR-Based SYCL
Compiler" (CGO 2024).

The public API is organised in layers:

* :mod:`repro.ir` and :mod:`repro.dialects` — the mini-MLIR infrastructure
  and the SYCL dialect (the paper's core contribution).
* :mod:`repro.analysis` and :mod:`repro.transforms` — the paper's analyses
  (alias, reaching definitions, uniformity, memory access) and device /
  host-device optimizations (LICM, detect-reduction, loop internalization,
  host raising, constant propagation, dead argument elimination).
* :mod:`repro.runtime` and :mod:`repro.interp` — the SYCL runtime
  substrate (buffers, accessors, devices) and the IR interpreter /
  differential-execution harness used in place of GPU hardware
  (``repro-run``, ``run_differential``).
* :mod:`repro.frontend` — the kernel-builder DSL and the three compiler
  drivers (SYCL-MLIR, DPC++ baseline, AdaptiveCpp baseline).
* :mod:`repro.benchsuite` and :mod:`repro.evaluation` — the SYCL-Bench /
  oneAPI workloads and the harness regenerating the paper's figures.
"""

__version__ = "1.0.0"

#: Subpackages resolved lazily (PEP 562) so that ``import repro.interp``
#: does not eagerly pull in the dialect definitions: the interpreter /
#: execution-engine layer only needs them once a module actually runs.
_LAZY_SUBPACKAGES = ("dialects", "interp", "ir")


def __getattr__(name):
    if name in _LAZY_SUBPACKAGES:
        import importlib

        module = importlib.import_module(f".{name}", __name__)
        globals()[name] = module
        return module
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


__all__ = ["dialects", "interp", "ir", "__version__"]
