"""Structural IR fingerprints.

A *fingerprint* is a stable hash over everything that defines an
operation structurally — the operation name, the operand/result wiring
(via a local value numbering), result and block-argument types,
attributes, successors and the nested region tree.  Two operations have
equal fingerprints iff they are structurally identical; SSA *name hints*
(``%x`` vs ``%0``) and object identities do not participate, so the
fingerprint is stable across parses, clones and process restarts.

This is the key of the :class:`repro.transforms.compile_cache.CompileCache`:
``(module fingerprint, pipeline spec)`` identifies a compile, so repeated
compiles of identical IR short-circuit.  ``ignore_attrs`` lets callers
widen the equivalence classes — e.g. hashing a function modulo its
``sym_name`` to recognize bodies duplicated under different names.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .operations import Block, Operation

#: Digest size in bytes; 16 (128 bits) makes collisions implausible while
#: keeping keys short enough to embed in reports and logs.
_DIGEST_SIZE = 16

_SEP = b"\x00"


class _Encoder:
    """Feeds a canonical byte encoding of the IR into a hash.

    Values and successor blocks are *numbered on first mention*, which
    handles forward references (graph regions) and makes the encoding
    independent of Python object identity.
    """

    def __init__(self, ignore_attrs: FrozenSet[str],
                 include_name_hints: bool = False):
        self._hash = hashlib.blake2b(digest_size=_DIGEST_SIZE)
        self._value_numbers: Dict[int, int] = {}
        self._block_numbers: Dict[int, int] = {}
        self._ignore_attrs = ignore_attrs
        self._include_name_hints = include_name_hints

    # -- primitives ---------------------------------------------------------
    def _emit(self, *parts: bytes) -> None:
        update = self._hash.update
        for part in parts:
            update(part)
            update(_SEP)

    def _emit_str(self, text: str) -> None:
        self._emit(text.encode("utf-8"))

    def _number(self, table: Dict[int, int], key: int) -> int:
        number = table.get(key)
        if number is None:
            number = len(table)
            table[key] = number
        return number

    # -- structure ----------------------------------------------------------
    def encode_op(self, op: "Operation") -> None:
        self._emit(b"op")
        self._emit_str(op.name)
        self._emit_str(str(len(op._operands)))
        for operand in op._operands:
            self._emit_str(str(self._number(self._value_numbers, id(operand))))
        for result in op.results:
            # Emit the definition's number, not just its type: with
            # use-before-def (graph regions), a use may have numbered the
            # value already, and two defs whose uses were swapped must not
            # encode identically.
            self._emit_str(str(self._number(self._value_numbers,
                                            id(result))))
            self._emit_str(str(result.type))
            if self._include_name_hints:
                self._emit_str(result.name_hint or "")
        for name in sorted(op.attributes):
            if name in self._ignore_attrs:
                continue
            attr = op.attributes[name]
            self._emit_str(name)
            self._emit_str(type(attr).__name__)
            self._emit_str(str(attr))
        for successor in op.successors:
            self._emit_str(str(self._number(self._block_numbers,
                                            id(successor))))
        for region in op.regions:
            self._emit(b"region")
            for block in region.blocks:
                self.encode_block(block)
        self._emit(b"end")

    def encode_block(self, block: "Block") -> None:
        self._emit(b"block")
        self._emit_str(str(self._number(self._block_numbers, id(block))))
        for argument in block.arguments:
            self._emit_str(str(self._number(self._value_numbers,
                                            id(argument))))
            self._emit_str(str(argument.type))
            if self._include_name_hints:
                self._emit_str(argument.name_hint or "")
        current = block.first_op
        while current is not None:
            self.encode_op(current)
            current = current.next_op()

    def digest(self) -> str:
        return self._hash.hexdigest()


def fingerprint(op: "Operation",
                ignore_attrs: Iterable[str] = (),
                include_name_hints: bool = False) -> str:
    """Hex digest of ``op``'s structure (operation, regions and all).

    ``ignore_attrs`` names attributes excluded from the hash at *every*
    operation in the tree — e.g. ``ignore_attrs=("sym_name",)`` hashes a
    function modulo its symbol name.  ``include_name_hints`` additionally
    hashes the SSA name hints, distinguishing textually different
    spellings of structurally identical IR.

    Digests are memoized on the root op against the global structural
    mutation clock (:func:`repro.ir.operations.mutation_clock`): bursts
    of fingerprint queries between mutations — the AnalysisManager's hit
    path validates every ``get`` this way — hash each subtree once.  Any
    mutation anywhere invalidates every memo, which is conservative but
    never stale.
    """
    from .operations import mutation_clock

    key = (frozenset(ignore_attrs), include_name_hints)
    now = mutation_clock()
    memo = getattr(op, "_fingerprint_memo", None)
    if memo is not None and memo[0] == now:
        digest = memo[1].get(key)
        if digest is not None:
            return digest
    encoder = _Encoder(key[0], include_name_hints=include_name_hints)
    encoder.encode_op(op)
    digest = encoder.digest()
    if memo is None or memo[0] != now:
        memo = (now, {})
        op._fingerprint_memo = memo
    memo[1][key] = digest
    return digest


def module_fingerprint(module: "Operation") -> str:
    """Structural fingerprint of a module (name hints excluded).

    Note this is deliberately *not* the compile-cache key:
    :meth:`repro.transforms.compile_cache.CompileCache.key_for` hashes
    the printed form instead, because a cache hit splices a printable
    result back in — two inputs that print differently (even just in SSA
    name spellings) must never share a cache key, while structural
    equivalence is exactly what this function ignores names for.
    """
    return fingerprint(module)


def function_fingerprint(function: "Operation",
                         ignore_name: bool = True) -> str:
    """Fingerprint of a function, by default modulo its ``sym_name``.

    Ignoring the symbol name lets a per-function cache recognize bodies
    duplicated under different names (common in generated kernels).
    """
    ignore = ("sym_name",) if ignore_name else ()
    return fingerprint(function, ignore_attrs=ignore)
