"""IR construction helpers: insertion points and the builder."""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional, Sequence

from .operations import Block, IRError, Operation


class InsertionPoint:
    """A position inside a block where new operations are inserted."""

    def __init__(self, block: Block, index: Optional[int] = None):
        self.block = block
        #: Index at which the next op is inserted; None means "at the end".
        self.index = index

    @classmethod
    def at_end(cls, block: Block) -> "InsertionPoint":
        return cls(block, None)

    @classmethod
    def before(cls, op: Operation) -> "InsertionPoint":
        if op.parent is None:
            raise IRError("operation has no parent block")
        return cls(op.parent, op.parent.operations.index(op))

    @classmethod
    def after(cls, op: Operation) -> "InsertionPoint":
        if op.parent is None:
            raise IRError("operation has no parent block")
        return cls(op.parent, op.parent.operations.index(op) + 1)

    def insert(self, op: Operation) -> Operation:
        if self.index is None:
            self.block.append(op)
        else:
            self.block.insert(self.index, op)
            self.index += 1
        return op


class Builder:
    """Creates operations at an insertion point.

    The builder is intentionally small: operation classes expose ``build``
    class methods with meaningful argument names, and the builder only takes
    care of placement.
    """

    def __init__(self, insertion_point: Optional[InsertionPoint] = None):
        self.insertion_point = insertion_point

    # -- placement management -------------------------------------------------
    def set_insertion_point_to_end(self, block: Block) -> None:
        self.insertion_point = InsertionPoint.at_end(block)

    def set_insertion_point_to_start(self, block: Block) -> None:
        self.insertion_point = InsertionPoint(block, 0)

    def set_insertion_point_before(self, op: Operation) -> None:
        self.insertion_point = InsertionPoint.before(op)

    def set_insertion_point_after(self, op: Operation) -> None:
        self.insertion_point = InsertionPoint.after(op)

    @contextmanager
    def at_end_of(self, block: Block):
        """Temporarily redirect insertion to the end of ``block``."""
        saved = self.insertion_point
        self.set_insertion_point_to_end(block)
        try:
            yield self
        finally:
            self.insertion_point = saved

    @contextmanager
    def at(self, insertion_point: InsertionPoint):
        saved = self.insertion_point
        self.insertion_point = insertion_point
        try:
            yield self
        finally:
            self.insertion_point = saved

    # -- creation --------------------------------------------------------------
    def insert(self, op: Operation) -> Operation:
        if self.insertion_point is None:
            raise IRError("builder has no insertion point")
        return self.insertion_point.insert(op)

    def create(self, op_class, *args, **kwargs) -> Operation:
        """Build an operation via its ``build`` class method and insert it."""
        op = op_class.build(*args, **kwargs)
        return self.insert(op)


def create_block_with_args(arg_types: Sequence, arg_names=None) -> Block:
    return Block(arg_types, arg_names)
