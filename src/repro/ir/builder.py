"""IR construction helpers: insertion points and the builder."""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional, Sequence

from .operations import Block, IRError, Operation


class InsertionPoint:
    """A position inside a block where new operations are inserted.

    Anchored on the operation the point currently precedes (``None`` means
    "at the end"), so creating a point and inserting through it are O(1)
    regardless of block size; successive inserts land in program order
    before the anchor, like MLIR's ``OpBuilder``.
    """

    def __init__(self, block: Block, index: Optional[int] = None):
        self.block = block
        if index is None:
            self._before: Optional[Operation] = None
        elif index < 0:
            # Rare path; keep list-style negative indexing via a snapshot.
            ops = block.operations
            self._before = ops[index] if -index <= len(ops) else block.first_op
        else:
            # O(index) walk instead of materializing the whole block.
            anchor = block.first_op
            for _ in range(index):
                if anchor is None:
                    break
                anchor = anchor.next_op()
            self._before = anchor

    @classmethod
    def at_end(cls, block: Block) -> "InsertionPoint":
        return cls(block)

    @classmethod
    def at_start(cls, block: Block) -> "InsertionPoint":
        point = cls(block)
        point._before = block.first_op
        return point

    @classmethod
    def before(cls, op: Operation) -> "InsertionPoint":
        if op.parent is None:
            raise IRError("operation has no parent block")
        point = cls(op.parent)
        point._before = op
        return point

    @classmethod
    def after(cls, op: Operation) -> "InsertionPoint":
        if op.parent is None:
            raise IRError("operation has no parent block")
        point = cls(op.parent)
        point._before = op.next_op()
        return point

    def move_before(self, op: Operation) -> "InsertionPoint":
        """Re-anchor this point before ``op`` (O(1), reuses the object)."""
        if op.parent is None:
            raise IRError("operation has no parent block")
        self.block = op.parent
        self._before = op
        return self

    def advance_past(self, op: Operation) -> None:
        """If anchored on ``op``, re-anchor on its successor (same position).

        Call before erasing ``op`` so the point does not dangle.
        """
        if self._before is op and op.parent is not None:
            self.block = op.parent
            self._before = op.next_op()

    def insert(self, op: Operation) -> Operation:
        if self._before is None:
            self.block.append(op)
        else:
            self.block.insert_before(self._before, op)
        return op


class Builder:
    """Creates operations at an insertion point.

    The builder is intentionally small: operation classes expose ``build``
    class methods with meaningful argument names, and the builder only takes
    care of placement.
    """

    def __init__(self, insertion_point: Optional[InsertionPoint] = None):
        self.insertion_point = insertion_point

    # -- placement management -------------------------------------------------
    def set_insertion_point_to_end(self, block: Block) -> None:
        self.insertion_point = InsertionPoint.at_end(block)

    def set_insertion_point_to_start(self, block: Block) -> None:
        self.insertion_point = InsertionPoint.at_start(block)

    def set_insertion_point_before(self, op: Operation) -> None:
        self.insertion_point = InsertionPoint.before(op)

    def set_insertion_point_after(self, op: Operation) -> None:
        self.insertion_point = InsertionPoint.after(op)

    @contextmanager
    def at_end_of(self, block: Block):
        """Temporarily redirect insertion to the end of ``block``."""
        saved = self.insertion_point
        self.set_insertion_point_to_end(block)
        try:
            yield self
        finally:
            self.insertion_point = saved

    @contextmanager
    def at(self, insertion_point: InsertionPoint):
        saved = self.insertion_point
        self.insertion_point = insertion_point
        try:
            yield self
        finally:
            self.insertion_point = saved

    # -- creation --------------------------------------------------------------
    def insert(self, op: Operation) -> Operation:
        if self.insertion_point is None:
            raise IRError("builder has no insertion point")
        return self.insertion_point.insert(op)

    def create(self, op_class, *args, **kwargs) -> Operation:
        """Build an operation via its ``build`` class method and insert it."""
        op = op_class.build(*args, **kwargs)
        return self.insert(op)


def create_block_with_args(arg_types: Sequence, arg_names=None) -> Block:
    return Block(arg_types, arg_names)
