"""Core IR structures: operations, blocks and regions.

The design mirrors MLIR: an :class:`Operation` has operands, results,
attributes and nested :class:`Region`\\ s; a region holds :class:`Block`\\ s;
a block holds a list of operations.  Nesting is what lets a single module
hold host and device code side by side (paper, Section III).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Type as PyType

from . import concurrency
from .attributes import Attribute, IntegerAttr, BoolAttr, StringAttr
from .traits import Trait, has_trait
from .types import Type
from .values import BlockArgument, OpResult, Use, Value


class IRError(Exception):
    """Raised for malformed IR manipulations."""


#: Global structural-mutation clock.  Every mutation that can change a
#: structural fingerprint — (un)linking an operation, rewiring an operand,
#: touching attributes, block arguments or region lists — bumps it, so
#: read-heavy layers (fingerprint memoization, and through it the
#: AnalysisManager's hit path) can validate cached derived data with one
#: integer compare instead of an O(n) re-hash.  Like ``_index_cache``,
#: the contract is "bursts of queries between mutations pay once".  The
#: counter is monotone; concurrent mutation is already restricted to
#: disjoint functions by the jobs=N write guard, which keeps the
#: increment-race window irrelevant for any fingerprint a worker can see.
_MUTATION_CLOCK = 0


def mutation_clock() -> int:
    """Current value of the structural-mutation clock."""
    return _MUTATION_CLOCK


def _bump_mutation_clock() -> None:
    global _MUTATION_CLOCK
    _MUTATION_CLOCK += 1


class Operation:
    """A generic operation.

    Concrete operations subclass this and set ``OPERATION_NAME`` plus
    ``TRAITS``.  Operations are created either through subclass ``build``
    class methods or through :class:`repro.ir.builder.Builder`.
    """

    OPERATION_NAME: str = "builtin.unregistered"
    TRAITS: frozenset = frozenset()

    #: Source provenance (:class:`repro.ir.location.Location`), attached by
    #: the parser / kernel builder; ``None`` means unknown.  Kept a class
    #: default so located and location-free ops stay layout-compatible
    #: (``clone`` copies the instance attribute when present).
    location = None

    def __init__(self,
                 operands: Sequence[Value] = (),
                 result_types: Sequence[Type] = (),
                 attributes: Optional[Dict[str, Attribute]] = None,
                 regions: int = 0,
                 successors: Sequence["Block"] = ()):
        self._operands: List[Value] = []
        self.results: List[OpResult] = [
            OpResult(self, i, t) for i, t in enumerate(result_types)
        ]
        self.attributes: Dict[str, Attribute] = dict(attributes or {})
        self.regions: List[Region] = [Region(self) for _ in range(regions)]
        self.successors: List[Block] = list(successors)
        self.parent: Optional[Block] = None
        # Intrusive doubly-linked list through the parent block; maintained
        # by Block so detach/insert/move/erase are O(1).
        self._prev: Optional[Operation] = None
        self._next: Optional[Operation] = None
        #: Position key within the parent block (gaps between neighbours are
        #: kept so insertions rarely force a renumbering); only meaningful
        #: while attached.
        self._order: int = 0
        for value in operands:
            self._append_operand(value)

    # ------------------------------------------------------------------
    # Identity / naming
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.OPERATION_NAME

    @property
    def dialect(self) -> str:
        return self.OPERATION_NAME.split(".", 1)[0]

    # ------------------------------------------------------------------
    # Operands
    # ------------------------------------------------------------------
    @property
    def operands(self) -> Tuple[Value, ...]:
        return tuple(self._operands)

    def _append_operand(self, value: Value) -> None:
        if not isinstance(value, Value):
            raise IRError(
                f"operand of {self.OPERATION_NAME} must be a Value, got {value!r}")
        index = len(self._operands)
        self._operands.append(value)
        value.add_use(Use(self, index))

    def set_operand(self, index: int, value: Value) -> None:
        if concurrency._ACTIVE_GUARD is not None:
            concurrency._ACTIVE_GUARD.check_op(self)
        _bump_mutation_clock()
        old = self._operands[index]
        old.remove_use(self, index)
        self._operands[index] = value
        value.add_use(Use(self, index))

    def replace_operand(self, old: Value, new: Value) -> None:
        for i, operand in enumerate(self._operands):
            if operand is old:
                self.set_operand(i, new)

    def drop_all_uses_of_operands(self) -> None:
        _bump_mutation_clock()
        for i, operand in enumerate(self._operands):
            operand.remove_use(self, i)
        self._operands = []

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def result(self) -> OpResult:
        if len(self.results) != 1:
            raise IRError(
                f"{self.OPERATION_NAME} has {len(self.results)} results; "
                "'result' expects exactly one")
        return self.results[0]

    def replace_all_uses_with(self, new_values: Sequence[Value]) -> None:
        if len(new_values) != len(self.results):
            raise IRError("replacement value count mismatch")
        for old, new in zip(self.results, new_values):
            old.replace_all_uses_with(new)

    def has_uses(self) -> bool:
        return any(res.has_uses() for res in self.results)

    # ------------------------------------------------------------------
    # Attributes
    # ------------------------------------------------------------------
    def get_attr(self, name: str, default=None):
        return self.attributes.get(name, default)

    def set_attr(self, name: str, attr: Attribute) -> None:
        _bump_mutation_clock()
        self.attributes[name] = attr

    def remove_attr(self, name: str) -> None:
        _bump_mutation_clock()
        self.attributes.pop(name, None)

    def get_int_attr(self, name: str, default: Optional[int] = None) -> Optional[int]:
        attr = self.attributes.get(name)
        if isinstance(attr, IntegerAttr):
            return attr.value
        if isinstance(attr, BoolAttr):
            return int(attr.value)
        return default

    def get_str_attr(self, name: str, default: Optional[str] = None) -> Optional[str]:
        attr = self.attributes.get(name)
        if isinstance(attr, StringAttr):
            return attr.value
        return default

    # ------------------------------------------------------------------
    # Structure navigation
    # ------------------------------------------------------------------
    def parent_op(self) -> Optional["Operation"]:
        if self.parent is None:
            return None
        region = self.parent.parent
        return region.parent if region is not None else None

    def parent_of_type(self, op_class) -> Optional["Operation"]:
        ancestor = self.parent_op()
        while ancestor is not None:
            if isinstance(ancestor, op_class):
                return ancestor
            ancestor = ancestor.parent_op()
        return None

    def is_ancestor_of(self, other: "Operation") -> bool:
        ancestor = other
        while ancestor is not None:
            if ancestor is self:
                return True
            ancestor = ancestor.parent_op()
        return False

    def is_proper_ancestor_of(self, other: "Operation") -> bool:
        return self is not other and self.is_ancestor_of(other)

    def all_blocks(self) -> Iterator["Block"]:
        for region in self.regions:
            yield from region.blocks

    def walk(self, include_self: bool = True) -> Iterator["Operation"]:
        """Pre-order traversal of this operation and all nested operations.

        The traversal snapshots each block before descending into it, so
        erasing the operation just yielded — or any operation nested inside
        it — is safe while iterating.  Iterative (explicit stack) rather
        than recursive: walks seed every worklist in the compiler, and
        nested generator resumption dominated their cost.
        """
        stack: List[Operation] = []

        def push_children(op: "Operation") -> None:
            for region in reversed(op.regions):
                for block in reversed(region.blocks):
                    ops = block.operations
                    ops.reverse()
                    stack.extend(ops)

        if include_self:
            stack.append(self)
        else:
            push_children(self)
        while stack:
            op = stack.pop()
            yield op
            push_children(op)

    def walk_type(self, op_class) -> Iterator["Operation"]:
        for op in self.walk():
            if isinstance(op, op_class):
                yield op

    def block_index(self) -> int:
        """Position of this operation in its block.

        Amortized O(1): the parent block keeps a lazily rebuilt index map
        that structural mutations invalidate, so bursts of queries between
        mutations pay one O(n) rebuild.
        """
        if self.parent is None:
            raise IRError("operation has no parent block")
        return self.parent._index_of(self)

    def is_before_in_block(self, other: "Operation") -> bool:
        if self.parent is not other.parent or self.parent is None:
            raise IRError("operations are not in the same block")
        return self._order < other._order

    def next_op(self) -> Optional["Operation"]:
        return self._next if self.parent is not None else None

    def prev_op(self) -> Optional["Operation"]:
        return self._prev if self.parent is not None else None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def detach(self) -> "Operation":
        """Remove this operation from its parent block without erasing it.

        O(1): unlinks from the intrusive operation list.
        """
        if self.parent is not None:
            self.parent._unlink(self)
        return self

    def erase(self) -> None:
        """Erase this operation (and its regions) from the IR.

        The operation must not have remaining uses of its results.
        """
        if self.has_uses():
            raise IRError(
                f"cannot erase {self.OPERATION_NAME}: results still have uses")
        for region in self.regions:
            for block in list(region.blocks):
                block.erase_all_ops()
        self.drop_all_uses_of_operands()
        self.detach()

    def move_before(self, other: "Operation") -> None:
        if other is self:
            return
        self.detach()
        block = other.parent
        if block is None:
            raise IRError("target operation has no parent block")
        block.insert_before(other, self)

    def move_after(self, other: "Operation") -> None:
        if other is self:
            return
        self.detach()
        block = other.parent
        if block is None:
            raise IRError("target operation has no parent block")
        block.insert_after(other, self)

    # ------------------------------------------------------------------
    # Cloning
    # ------------------------------------------------------------------
    def clone(self, mapping: Optional[Dict[Value, Value]] = None) -> "Operation":
        """Deep-clone this operation.

        ``mapping`` maps values in the original IR to values to be used by
        the clone; it is extended with result/argument mappings so that
        cloned regions refer to cloned values.
        """
        if mapping is None:
            mapping = {}
        new_operands = [mapping.get(operand, operand) for operand in self._operands]
        clone = self.__class__.__new__(self.__class__)
        Operation.__init__(
            clone,
            operands=new_operands,
            result_types=[res.type for res in self.results],
            attributes=dict(self.attributes),
            regions=0,
            successors=list(self.successors),
        )
        # Copy any extra (non-IR) instance state set by subclasses.
        core = {"_operands", "results", "attributes", "regions",
                "successors", "parent"}
        for key, value in self.__dict__.items():
            if key not in core and key not in clone.__dict__:
                clone.__dict__[key] = value
        for old_res, new_res in zip(self.results, clone.results):
            new_res.name_hint = old_res.name_hint
            mapping[old_res] = new_res
        for region in self.regions:
            clone.regions.append(region.clone_into(clone, mapping))
        return clone

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def verify_op(self) -> None:
        """Hook for per-operation structural checks (overridden by ops)."""

    def fold(self):
        """Hook for constant folding.

        Returns either ``None`` (cannot fold), a list of :class:`Attribute`
        (constant results), or a list of :class:`Value` (existing values to
        use instead of the results).
        """
        return None

    def __str__(self) -> str:
        from .printer import Printer

        return Printer().print_op_to_string(self)

    def __repr__(self) -> str:
        return f"<{self.__class__.__name__} {self.OPERATION_NAME}>"


#: Gap left between the order keys of neighbouring operations.  Inserting
#: between two operations bisects the gap; only when a gap is exhausted
#: (~log2(stride) consecutive inserts at the same point) is the whole block
#: renumbered, keeping order maintenance amortized O(1).
_ORDER_STRIDE = 1 << 16


class Block:
    """A sequential list of operations ending (usually) in a terminator.

    Operations are stored as an intrusive doubly-linked list threaded
    through ``Operation._prev``/``Operation._next``: ``append``,
    ``insert_before``/``insert_after`` and ``Operation.detach``/``erase``/
    ``move_before``/``move_after`` are all O(1).  ``block.operations``
    remains available as a materialized list view for read-only traversal.
    """

    def __init__(self, arg_types: Sequence[Type] = (),
                 arg_names: Optional[Sequence[str]] = None):
        self.arguments: List[BlockArgument] = []
        self.parent: Optional[Region] = None
        self._first: Optional[Operation] = None
        self._last: Optional[Operation] = None
        self._num_ops: int = 0
        #: Lazily rebuilt ``id(op) -> position`` map for ``block_index``.
        self._index_cache: Optional[Dict[int, int]] = None
        for i, type_ in enumerate(arg_types):
            name = arg_names[i] if arg_names else None
            self.arguments.append(BlockArgument(self, i, type_, name))

    # -- arguments ----------------------------------------------------------
    def add_argument(self, type_: Type, name_hint: Optional[str] = None) -> BlockArgument:
        _bump_mutation_clock()
        arg = BlockArgument(self, len(self.arguments), type_, name_hint)
        self.arguments.append(arg)
        return arg

    def erase_argument(self, index: int) -> None:
        _bump_mutation_clock()
        arg = self.arguments[index]
        if arg.has_uses():
            raise IRError("cannot erase block argument that still has uses")
        del self.arguments[index]
        for i, remaining in enumerate(self.arguments):
            remaining.arg_index = i

    # -- operations ----------------------------------------------------------
    @property
    def operations(self) -> List[Operation]:
        """Materialized list view of the operations (a fresh O(n) snapshot).

        Mutating the returned list does not affect the block; use
        ``append``/``insert_before``/``insert_after`` and
        ``Operation.detach``/``erase`` instead.
        """
        result: List[Operation] = []
        op = self._first
        while op is not None:
            result.append(op)
            op = op._next
        return result

    @property
    def first_op(self) -> Optional[Operation]:
        return self._first

    @property
    def last_op(self) -> Optional[Operation]:
        return self._last

    def append(self, op: Operation) -> Operation:
        if concurrency._ACTIVE_GUARD is not None:
            concurrency._ACTIVE_GUARD.check_block(self)
        _bump_mutation_clock()
        op.detach()
        op.parent = self
        op._prev = self._last
        op._next = None
        op._order = (self._last._order + _ORDER_STRIDE
                     if self._last is not None else 0)
        if self._last is not None:
            self._last._next = op
        else:
            self._first = op
        self._last = op
        self._num_ops += 1
        self._index_cache = None
        return op

    def insert(self, index: int, op: Operation) -> Operation:
        """Insert ``op`` at ``index`` (O(index); prefer the anchored forms).

        Follows ``list.insert`` semantics: out-of-range indices clamp to
        the ends and negative indices count from the back.
        """
        if index < 0:
            index = max(0, self._num_ops + index)
        if index >= self._num_ops:
            return self.append(op)
        anchor = self._first
        for _ in range(index):
            anchor = anchor._next
        return self.insert_before(anchor, op)

    def insert_before(self, anchor: Operation, op: Operation) -> Operation:
        if concurrency._ACTIVE_GUARD is not None:
            concurrency._ACTIVE_GUARD.check_block(self)
        if anchor.parent is not self:
            raise IRError("insertion anchor is not in this block")
        if op is anchor:
            return op  # inserting before itself is a no-op
        _bump_mutation_clock()
        op.detach()
        op.parent = self
        prev = anchor._prev
        op._prev = prev
        op._next = anchor
        anchor._prev = op
        if prev is not None:
            prev._next = op
        else:
            self._first = op
        self._num_ops += 1
        self._index_cache = None
        self._assign_order_between(op, prev, anchor)
        return op

    def insert_after(self, anchor: Operation, op: Operation) -> Operation:
        if anchor.parent is not self:
            raise IRError("insertion anchor is not in this block")
        if anchor._next is None:
            return self.append(op)
        return self.insert_before(anchor._next, op)

    def _unlink(self, op: Operation) -> None:
        """Remove ``op`` from the intrusive list (O(1))."""
        if concurrency._ACTIVE_GUARD is not None:
            concurrency._ACTIVE_GUARD.check_block(self)
        _bump_mutation_clock()
        prev, nxt = op._prev, op._next
        if prev is not None:
            prev._next = nxt
        else:
            self._first = nxt
        if nxt is not None:
            nxt._prev = prev
        else:
            self._last = prev
        op._prev = None
        op._next = None
        op.parent = None
        self._num_ops -= 1
        self._index_cache = None

    def _assign_order_between(self, op: Operation,
                              prev: Optional[Operation],
                              nxt: Operation) -> None:
        lo = prev._order if prev is not None else nxt._order - 2 * _ORDER_STRIDE
        hi = nxt._order
        if hi - lo > 1:
            op._order = (lo + hi) // 2
            return
        # Gap exhausted: renumber the whole block with fresh stride spacing.
        current = self._first
        order = 0
        while current is not None:
            current._order = order
            order += _ORDER_STRIDE
            current = current._next

    def _index_of(self, op: Operation) -> int:
        cache = self._index_cache
        if cache is None:
            cache = {}
            current = self._first
            position = 0
            while current is not None:
                cache[id(current)] = position
                position += 1
                current = current._next
            self._index_cache = cache
        try:
            return cache[id(op)]
        except KeyError:
            raise IRError("operation is not in this block") from None

    def erase_all_ops(self) -> None:
        """Erase all operations, dropping uses (used when erasing regions)."""
        _bump_mutation_clock()
        for op in reversed(self.operations):
            for res in op.results:
                res.drop_all_uses()
            for region in op.regions:
                for block in region.blocks:
                    block.erase_all_ops()
            op.drop_all_uses_of_operands()
            op.parent = None
            op._prev = None
            op._next = None
        self._first = None
        self._last = None
        self._num_ops = 0
        self._index_cache = None

    @property
    def terminator(self) -> Optional[Operation]:
        last = self._last
        if last is not None and has_trait(last, Trait.TERMINATOR):
            return last
        return None

    def ops_without_terminator(self) -> List[Operation]:
        ops = self.operations
        if self.terminator is not None:
            ops.pop()
        return ops

    # -- navigation -----------------------------------------------------------
    def parent_op(self) -> Optional[Operation]:
        return self.parent.parent if self.parent is not None else None

    def __iter__(self) -> Iterator[Operation]:
        """Iterate over a snapshot, so erasing the current op is safe."""
        return iter(self.operations)

    def __len__(self) -> int:
        return self._num_ops

    def __repr__(self) -> str:
        return f"<Block with {self._num_ops} ops>"


class Region:
    """A list of blocks nested inside an operation."""

    def __init__(self, parent: Optional[Operation] = None):
        self.parent = parent
        self.blocks: List[Block] = []

    def add_block(self, block: Optional[Block] = None) -> Block:
        _bump_mutation_clock()
        if block is None:
            block = Block()
        block.parent = self
        self.blocks.append(block)
        return block

    @property
    def front(self) -> Block:
        if not self.blocks:
            raise IRError("region has no blocks")
        return self.blocks[0]

    @property
    def empty(self) -> bool:
        return not self.blocks

    def clone_into(self, parent: Operation, mapping: Dict[Value, Value]) -> "Region":
        new_region = Region(parent)
        # First create all blocks/arguments so branch successors can map.
        block_map: Dict[Block, Block] = {}
        for block in self.blocks:
            new_block = Block()
            for arg in block.arguments:
                new_arg = new_block.add_argument(arg.type, arg.name_hint)
                mapping[arg] = new_arg
            new_region.add_block(new_block)
            block_map[block] = new_block
        for block in self.blocks:
            new_block = block_map[block]
            for op in block.operations:
                cloned = op.clone(mapping)
                cloned.successors = [block_map.get(s, s) for s in cloned.successors]
                new_block.append(cloned)
        return new_region

    def __iter__(self) -> Iterator[Block]:
        return iter(self.blocks)

    def __repr__(self) -> str:
        return f"<Region with {len(self.blocks)} blocks>"


# ---------------------------------------------------------------------------
# Operation registry
# ---------------------------------------------------------------------------

_OPERATION_REGISTRY: Dict[str, PyType[Operation]] = {}


def register_op(cls: PyType[Operation]) -> PyType[Operation]:
    """Class decorator registering an operation by its ``OPERATION_NAME``."""
    name = cls.OPERATION_NAME
    if name in _OPERATION_REGISTRY and _OPERATION_REGISTRY[name] is not cls:
        raise IRError(f"operation {name!r} registered twice")
    _OPERATION_REGISTRY[name] = cls
    return cls


def lookup_op_class(name: str) -> Optional[PyType[Operation]]:
    return _OPERATION_REGISTRY.get(name)


def registered_operations() -> Dict[str, PyType[Operation]]:
    return dict(_OPERATION_REGISTRY)
