"""Operation traits.

Traits are declarative markers attached to operation classes.  Analyses and
transformations query traits instead of hard-coding operation names, which is
how the paper's uniformity analysis is kept dialect-agnostic (Section V-C:
"A custom trait informs the analysis about SYCL operations that are known
sources of non-uniformity").
"""

from __future__ import annotations

import enum


class Trait(enum.Enum):
    """Known operation traits."""

    #: The operation has no side effects and can be freely duplicated/erased.
    PURE = "pure"
    #: The operation terminates a block (e.g. ``func.return``, ``scf.yield``).
    TERMINATOR = "terminator"
    #: The operation materializes a compile-time constant.
    CONSTANT_LIKE = "constant_like"
    #: Regions of this operation do not capture values defined above,
    #: except through explicit block arguments (e.g. ``func.func``).
    ISOLATED_FROM_ABOVE = "isolated_from_above"
    #: The operation's regions contain a single block.
    SINGLE_BLOCK = "single_block"
    #: The result of the operation differs between work-items in a
    #: work-group (a source of non-uniformity for the uniformity analysis).
    NON_UNIFORM_SOURCE = "non_uniform_source"
    #: The operation yields the same value for all work-items in a
    #: work-group (e.g. work-group id, group range queries).
    UNIFORM_SOURCE = "uniform_source"
    #: The operation is a work-group synchronization barrier.
    BARRIER = "barrier"
    #: The operation defines a symbol (function, global).
    SYMBOL = "symbol"
    #: The operation holds a symbol table in its region (e.g. module).
    SYMBOL_TABLE = "symbol_table"
    #: The operation behaves like a structured loop.
    LOOP_LIKE = "loop_like"
    #: The operation is commutative in its operands.
    COMMUTATIVE = "commutative"
    #: The operation can fail at runtime on some inputs (integer division
    #: by zero, out-of-range shifts, math domain errors).  Side-effect
    #: free but NOT speculatable: hoisting one above a guard or out of a
    #: possibly-zero-trip loop can introduce a trap that the original
    #: program never executed.
    MAY_TRAP = "may_trap"


# Each trait gets a bit so per-class trait sets collapse into an int mask;
# trait queries are then a cached integer AND instead of a frozenset lookup
# that would hash the enum member on every call (has_trait is one of the
# hottest functions in the rewrite/DCE inner loops).
for _index, _trait in enumerate(Trait):
    _trait.bit = 1 << _index


def has_trait(op_or_class, trait: Trait) -> bool:
    """Return True if the operation (or operation class) carries ``trait``."""
    cls = op_or_class if isinstance(op_or_class, type) else op_or_class.__class__
    mask = cls.__dict__.get("_trait_mask_")
    if mask is None:
        mask = 0
        for member in getattr(cls, "TRAITS", ()):
            mask |= member.bit
        cls._trait_mask_ = mask
    return bool(mask & trait.bit)
