"""Structural dominance queries for region-based IR.

The IR used by this project is almost exclusively structured (scf / affine
control flow rather than arbitrary CFGs), so dominance reduces to the
question "does operation A occur before operation B, where A's block is an
ancestor of (or equal to) B's block?".
"""

from __future__ import annotations

from typing import List, Optional

from .operations import Block, Operation
from .values import BlockArgument, Value


class DominanceInfo:
    """Answers dominance queries within a region tree rooted at ``root``."""

    def __init__(self, root: Operation):
        self.root = root

    # ------------------------------------------------------------------
    def enclosing_blocks(self, op: Operation) -> List[Block]:
        """Blocks enclosing ``op``, innermost first."""
        blocks: List[Block] = []
        block: Optional[Block] = op.parent
        while block is not None:
            blocks.append(block)
            parent_op = block.parent_op()
            block = parent_op.parent if parent_op is not None else None
        return blocks

    def properly_dominates(self, a: Operation, b: Operation) -> bool:
        """True if ``a`` strictly dominates ``b``."""
        if a is b:
            return False
        if a.parent is b.parent:
            return a.is_before_in_block(b)
        # Hoist b to the ancestor living in a's block.
        ancestor: Optional[Operation] = b
        while ancestor is not None and ancestor.parent is not a.parent:
            ancestor = ancestor.parent_op()
        if ancestor is None:
            return False
        if ancestor is a:
            # a encloses b; an enclosing op does not dominate its body ops
            # for SSA purposes, but region nesting makes values visible.
            return True
        return a.is_before_in_block(ancestor)

    def dominates(self, a: Operation, b: Operation) -> bool:
        return a is b or self.properly_dominates(a, b)

    def value_dominates(self, value: Value, op: Operation) -> bool:
        """True if ``value`` is usable at ``op``."""
        if isinstance(value, BlockArgument):
            return value.owner_block() in self.enclosing_blocks(op)
        defining = value.defining_op()
        if defining is None:
            return True
        return self.properly_dominates(defining, op)


def properly_dominates(a: Operation, b: Operation) -> bool:
    return DominanceInfo(a).properly_dominates(a, b)
