"""Structural and CFG dominance queries for region-based IR.

The IR used by this project is mostly structured (scf / affine control
flow rather than arbitrary CFGs), where dominance reduces to the question
"does operation A occur before operation B, where A's block is an
ancestor of (or equal to) B's block?".  After ``convert-scf-to-cf``
function bodies become genuine multi-block CFGs built from ``cf.br`` /
``cf.cond_br``; for those, per-region block dominator sets are computed
with the classic iterative data-flow algorithm (``dom(entry) = {entry}``,
``dom(b) = {b} ∪ ⋂ dom(preds(b))``) and memoized against the global
:func:`~repro.ir.operations.mutation_clock`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .operations import Block, Operation, Region, mutation_clock
from .values import BlockArgument, Value

#: Memoized per-region dominator sets: ``id(region) -> {id(block) ->
#: {id(dominator block)}}``, valid only for the recorded mutation clock.
#: Any IR mutation bumps the clock and flushes the whole cache, so stale
#: regions (or recycled ids) can never be consulted.
_DOM_CACHE: Dict[str, object] = {"clock": -1, "regions": {}}


def _dominator_sets(region: Region) -> Dict[int, Set[int]]:
    """Block dominator sets of one multi-block region.

    Unreachable blocks keep the full block set as dominators (the
    conventional solution of the data-flow equations), which makes
    queries about them conservatively permissive — the verifier will not
    reject uses in code no execution can reach.
    """
    clock = mutation_clock()
    if _DOM_CACHE["clock"] != clock:
        _DOM_CACHE["clock"] = clock
        _DOM_CACHE["regions"] = {}
    cached = _DOM_CACHE["regions"].get(id(region))
    if cached is not None:
        return cached

    blocks = region.blocks
    ids = [id(block) for block in blocks]
    all_ids = set(ids)
    preds: Dict[int, Set[int]] = {bid: set() for bid in ids}
    for block in blocks:
        terminator = block.last_op
        if terminator is None:
            continue
        for successor in terminator.successors:
            if id(successor) in preds:
                preds[id(successor)].add(id(block))

    entry = ids[0]
    dom: Dict[int, Set[int]] = {
        bid: ({entry} if bid == entry else set(all_ids)) for bid in ids}
    changed = True
    while changed:
        changed = False
        for bid in ids:
            if bid == entry:
                continue
            new = set(all_ids)
            for pred in preds[bid]:
                new &= dom[pred]
            new.add(bid)
            if new != dom[bid]:
                dom[bid] = new
                changed = True

    _DOM_CACHE["regions"][id(region)] = dom
    return dom


def block_dominates(a: Block, b: Block) -> bool:
    """True if block ``a`` dominates block ``b`` within their region."""
    if a is b:
        return True
    region = a.parent
    if region is None or region is not b.parent:
        return False
    return id(a) in _dominator_sets(region).get(id(b), set())


class DominanceInfo:
    """Answers dominance queries within a region tree rooted at ``root``."""

    def __init__(self, root: Operation):
        self.root = root

    # ------------------------------------------------------------------
    def enclosing_blocks(self, op: Operation) -> List[Block]:
        """Blocks enclosing ``op``, innermost first."""
        blocks: List[Block] = []
        block: Optional[Block] = op.parent
        while block is not None:
            blocks.append(block)
            parent_op = block.parent_op()
            block = parent_op.parent if parent_op is not None else None
        return blocks

    def properly_dominates(self, a: Operation, b: Operation) -> bool:
        """True if ``a`` strictly dominates ``b``."""
        if a is b:
            return False
        if a.parent is b.parent:
            return a.is_before_in_block(b)
        # Hoist b to the ancestor living in a's block.
        ancestor: Optional[Operation] = b
        while ancestor is not None and ancestor.parent is not a.parent:
            ancestor = ancestor.parent_op()
        if ancestor is not None:
            if ancestor is a:
                # a encloses b; an enclosing op does not dominate its body
                # ops for SSA purposes, but region nesting makes values
                # visible.
                return True
            return a.is_before_in_block(ancestor)
        # No ancestor of b shares a's block: a and (an ancestor of) b may
        # still live in sibling blocks of one multi-block region — decide
        # by CFG block dominance.
        region = a.parent.parent if a.parent is not None else None
        if region is None:
            return False
        ancestor = b
        while ancestor is not None:
            block = ancestor.parent
            if block is not None and block.parent is region:
                return block_dominates(a.parent, block)
            ancestor = ancestor.parent_op()
        return False

    def dominates(self, a: Operation, b: Operation) -> bool:
        return a is b or self.properly_dominates(a, b)

    def value_dominates(self, value: Value, op: Operation) -> bool:
        """True if ``value`` is usable at ``op``."""
        if isinstance(value, BlockArgument):
            owner = value.owner_block()
            enclosing = self.enclosing_blocks(op)
            if owner in enclosing:
                return True
            region = owner.parent if owner is not None else None
            if region is not None:
                for block in enclosing:
                    if block.parent is region:
                        return block_dominates(owner, block)
            return False
        defining = value.defining_op()
        if defining is None:
            return True
        return self.properly_dominates(defining, op)


def properly_dominates(a: Operation, b: Operation) -> bool:
    return DominanceInfo(a).properly_dominates(a, b)
