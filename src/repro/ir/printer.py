"""Textual printer for the IR.

Produces MLIR-flavoured generic syntax such as::

    %0 = "arith.addi"(%arg0, %c1) : (i64, i64) -> i64

The printer is deterministic and round-trips through
:mod:`repro.ir.parser`: ``parse_module(print(m))`` rebuilds the module and
re-prints to the identical text, which makes the printed form a verified
serialization layer rather than a debug aid only.
"""

from __future__ import annotations

from io import StringIO
from typing import Dict, Set

from .operations import Block, Operation, Region
from .values import BlockArgument, Value


class Printer:
    """Prints operation trees.

    ``print_locations`` (mlir-opt's ``-mlir-print-debuginfo`` analogue)
    appends each operation's ``loc(...)`` trailer.  It defaults to off so
    the canonical textual form — and everything keyed on it: the
    round-trip guarantee, fingerprints, the compile cache — is unaffected
    by where the IR happened to come from.
    """

    def __init__(self, indent_width: int = 2, print_locations: bool = False):
        self.indent_width = indent_width
        self.print_locations = print_locations
        self._names: Dict[int, str] = {}
        self._used: Set[str] = set()
        self._next_id = 0

    # ------------------------------------------------------------------
    def value_name(self, value: Value) -> str:
        key = id(value)
        if key not in self._names:
            if value.name_hint:
                name = self._uniqued(f"%{value.name_hint}")
            elif isinstance(value, BlockArgument):
                name = self._uniqued(f"%arg{value.arg_index}")
            else:
                name = self._next_anonymous()
            self._names[key] = name
            self._used.add(name)
        return self._names[key]

    def _uniqued(self, base: str) -> str:
        # Collision suffixes draw on a per-base counter, not the shared
        # anonymous id — a colliding hint must not shift the contiguous
        # %0, %1, ... numbering of anonymous values, or printing would
        # not be stable under a parse/print round trip.
        name = base
        suffix = 0
        while name in self._used:
            name = f"{base}_{suffix}"
            suffix += 1
        return name

    def _next_anonymous(self) -> str:
        while True:
            name = f"%{self._next_id}"
            self._next_id += 1
            if name not in self._used:
                return name

    # ------------------------------------------------------------------
    def print_module(self, module: Operation) -> str:
        return self.print_op_to_string(module)

    def print_op_to_string(self, op: Operation) -> str:
        out = StringIO()
        self._print_op(op, out, 0)
        return out.getvalue().rstrip("\n")

    # ------------------------------------------------------------------
    @staticmethod
    def _block_label(block: Block) -> str:
        """Label of a block: its index within its parent region."""
        region = block.parent
        if region is not None:
            for index, candidate in enumerate(region.blocks):
                if candidate is block:
                    return f"^bb{index}"
        return "^bb?"

    def _print_op(self, op: Operation, out: StringIO, indent: int) -> None:
        pad = " " * (indent * self.indent_width)
        results = ", ".join(self.value_name(res) for res in op.results)
        prefix = f"{results} = " if results else ""
        operands = ", ".join(self.value_name(v) for v in op.operands)
        attrs = ""
        if op.attributes:
            inner = ", ".join(
                f"{key} = {value}" for key, value in sorted(op.attributes.items()))
            attrs = f" {{{inner}}}"
        in_types = ", ".join(str(v.type) for v in op.operands)
        out_types = ", ".join(str(res.type) for res in op.results)
        signature = f" : ({in_types}) -> ({out_types})"
        out.write(f"{pad}{prefix}\"{op.name}\"({operands}){attrs}{signature}")
        if op.successors:
            names = ", ".join(self._block_label(s) for s in op.successors)
            out.write(f" [{names}]")
        if op.regions:
            out.write(" (")
            for region in op.regions:
                out.write("{\n")
                self._print_region(region, out, indent + 1)
                out.write(f"{pad}}}")
            out.write(")")
        if self.print_locations:
            from .location import location_of

            out.write(f" {location_of(op)}")
        out.write("\n")

    def _print_region(self, region: Region, out: StringIO, indent: int) -> None:
        for block_idx, block in enumerate(region.blocks):
            if block.arguments or len(region.blocks) > 1:
                pad = " " * ((indent - 1) * self.indent_width + 1)
                args = ", ".join(
                    f"{self.value_name(a)}: {a.type}" for a in block.arguments)
                out.write(f"{pad}^bb{block_idx}({args}):\n")
            for op in block.operations:
                self._print_op(op, out, indent)


def print_op(op: Operation) -> str:
    """Convenience wrapper printing a single operation tree."""
    return Printer().print_op_to_string(op)
