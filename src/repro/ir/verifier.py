"""Structural IR verification.

The verifier checks the invariants transformations rely on:

* every operand of an operation is either a block argument of an enclosing
  block or the result of an operation that dominates the use;
* blocks with a terminator have it in last position only;
* region-holding operations marked ``SINGLE_BLOCK`` have exactly one block;
* per-operation checks via ``Operation.verify_op``.

Findings are produced as source-located
:class:`~repro.ir.diagnostics.Diagnostic` objects
(:func:`verify_with_diagnostics`); the classic :func:`verify` entry point
keeps returning plain message strings and raising
:class:`VerificationError` so existing drivers are unaffected.
"""

from __future__ import annotations

from typing import List, Optional, Set

from .diagnostics import Diagnostic, DiagnosticEngine, Severity
from .dominance import block_dominates
from .location import location_of
from .operations import Block, Operation
from .traits import Trait, has_trait
from .values import BlockArgument, OpResult, Value


class VerificationError(Exception):
    """Raised when the IR violates a structural invariant.

    ``diagnostics`` carries the located findings behind the joined
    message text.
    """

    def __init__(self, message: str,
                 diagnostics: Optional[List[Diagnostic]] = None):
        super().__init__(message)
        self.diagnostics: List[Diagnostic] = list(diagnostics or [])


def verify(op: Operation, raise_on_error: bool = True) -> List[str]:
    """Verify ``op`` and all nested operations; return diagnostics."""
    diagnostics = verify_with_diagnostics(op)
    errors = [diag.message for diag in diagnostics]
    if errors and raise_on_error:
        raise VerificationError("; ".join(errors), diagnostics)
    return errors


def verify_with_diagnostics(
        op: Operation,
        engine: Optional[DiagnosticEngine] = None) -> List[Diagnostic]:
    """Verify ``op``; return (and optionally emit) located diagnostics."""
    diagnostics: List[Diagnostic] = []
    _verify_op(op, diagnostics)
    if engine is not None:
        for diagnostic in diagnostics:
            engine.emit(diagnostic)
    return diagnostics


def _report(diagnostics: List[Diagnostic], op: Operation,
            message: str) -> Diagnostic:
    diagnostic = Diagnostic(Severity.ERROR, message, location_of(op))
    diagnostics.append(diagnostic)
    return diagnostic


def _verify_op(op: Operation, diagnostics: List[Diagnostic]) -> None:
    try:
        op.verify_op()
    except Exception as exc:  # noqa: BLE001 - collect as diagnostic
        _report(diagnostics, op, f"{op.name}: {exc}")

    if has_trait(op, Trait.SINGLE_BLOCK):
        for region in op.regions:
            if len(region.blocks) > 1:
                _report(diagnostics, op,
                        f"{op.name}: expected a single block per region")

    for region in op.regions:
        for block in region.blocks:
            _verify_block(op, block, diagnostics)


def _verify_block(parent: Operation, block: Block,
                  diagnostics: List[Diagnostic]) -> None:
    ops = block.operations
    for index, op in enumerate(ops):
        if has_trait(op, Trait.TERMINATOR) and index != len(ops) - 1:
            _report(
                diagnostics, op,
                f"{op.name}: terminator must be the last operation in its "
                f"block")
        for successor in op.successors:
            if successor.parent is not block.parent:
                _report(
                    diagnostics, op,
                    f"{op.name}: successor block does not belong to the "
                    f"enclosing region")
        for operand in op.operands:
            if not _value_visible_from(operand, op):
                diagnostic = _report(
                    diagnostics, op,
                    f"{op.name}: operand {operand!r} does not dominate its "
                    f"use")
                defining = operand.defining_op()
                if defining is not None:
                    diagnostic.attach_note(
                        f"operand defined here by '{defining.name}'",
                        location_of(defining))
        _verify_op(op, diagnostics)


def _value_visible_from(value: Value, user: Operation) -> bool:
    """Check that ``value`` is visible (dominates) at ``user``.

    For structured control flow it is sufficient to check that the
    defining operation/block argument belongs to an ancestor block of the
    user and, for same-block definitions, occurs earlier in the block.
    In multi-block regions (the CFG ``convert-scf-to-cf`` produces) a
    definition in a sibling block is visible when its block dominates the
    block the use is (transitively) nested in.
    """
    owner_block = value.owner_block()
    if owner_block is None:
        # Detached value (e.g. being built); treat as visible.
        return True

    # Collect blocks enclosing the user, innermost first.
    enclosing: List[Block] = []
    block: Optional[Block] = user.parent
    while block is not None:
        enclosing.append(block)
        parent_op = block.parent_op()
        block = parent_op.parent if parent_op is not None else None

    if owner_block not in enclosing:
        region = owner_block.parent
        if region is not None:
            for candidate in enclosing:
                if candidate.parent is region:
                    return block_dominates(owner_block, candidate)
        return False

    if isinstance(value, BlockArgument):
        return True

    assert isinstance(value, OpResult)
    defining = value.defining_op()
    if defining is None:
        return True
    if defining.parent is user.parent:
        return defining.is_before_in_block(user)
    # Defined in an enclosing block: find the ancestor of `user` that lives in
    # the same block and compare positions.
    ancestor = user
    while ancestor.parent is not None and ancestor.parent is not defining.parent:
        next_parent = ancestor.parent_op()
        if next_parent is None:
            return True
        ancestor = next_parent
    if ancestor.parent is defining.parent:
        return defining.is_before_in_block(ancestor)
    return True


def collect_symbols(module: Operation) -> Set[str]:
    """Return the set of symbol names defined directly under ``module``."""
    from .attributes import StringAttr

    symbols: Set[str] = set()
    for region in module.regions:
        for block in region.blocks:
            for op in block.operations:
                if has_trait(op, Trait.SYMBOL):
                    name_attr = op.attributes.get("sym_name")
                    if isinstance(name_attr, StringAttr):
                        symbols.add(name_attr.value)
    return symbols
