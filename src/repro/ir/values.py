"""SSA values: operation results and block arguments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from .types import Type

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .operations import Block, Operation


@dataclass
class Use:
    """A single use of a value: operand ``index`` of ``owner``."""

    owner: "Operation"
    index: int


class Value:
    """Base class of all SSA values.

    The use-def chain is an order-preserving dict keyed by
    ``(id(owner), operand_index)``, so ``add_use``/``remove_use`` are O(1)
    and ``users()`` is O(uses) even for values with many uses (dicts keep
    insertion order, preserving use order for deterministic traversals).
    """

    def __init__(self, type_: Type, name_hint: Optional[str] = None):
        self.type = type_
        self.name_hint = name_hint
        self._uses: Dict[Tuple[int, int], Use] = {}

    # -- use-def chain -----------------------------------------------------
    @property
    def uses(self) -> List[Use]:
        """List view of the uses, in insertion order."""
        return list(self._uses.values())

    def add_use(self, use: Use) -> None:
        self._uses[(id(use.owner), use.index)] = use

    def remove_use(self, owner: "Operation", index: int) -> None:
        self._uses.pop((id(owner), index), None)

    def drop_all_uses(self) -> None:
        """Forget every use without rewriting the owners' operand lists."""
        self._uses.clear()

    def has_uses(self) -> bool:
        return bool(self._uses)

    def num_uses(self) -> int:
        return len(self._uses)

    def users(self) -> List["Operation"]:
        """Distinct operations using this value, in use order."""
        seen: Dict[int, "Operation"] = {}
        for use in self._uses.values():
            key = id(use.owner)
            if key not in seen:
                seen[key] = use.owner
        return list(seen.values())

    def replace_all_uses_with(self, other: "Value") -> None:
        """Replace every use of this value with ``other``."""
        if other is self:
            return
        for use in list(self._uses.values()):
            use.owner.set_operand(use.index, other)

    def replace_uses_in(self, other: "Value", ops) -> None:
        """Replace uses of this value with ``other`` only inside ``ops``."""
        op_set = set(id(op) for op in ops)
        for use in list(self._uses.values()):
            if id(use.owner) in op_set:
                use.owner.set_operand(use.index, other)

    # -- structural queries -------------------------------------------------
    def defining_op(self) -> Optional["Operation"]:
        """The operation producing this value, or None for block arguments."""
        return None

    def owner_block(self) -> Optional["Block"]:
        """The block this value is introduced in."""
        return None

    def __repr__(self) -> str:
        hint = self.name_hint or "?"
        return f"<Value %{hint} : {self.type}>"


class OpResult(Value):
    """A result produced by an operation."""

    def __init__(self, op: "Operation", index: int, type_: Type):
        super().__init__(type_)
        self.op = op
        self.result_index = index

    def defining_op(self) -> Optional["Operation"]:
        return self.op

    def owner_block(self) -> Optional["Block"]:
        return self.op.parent

    def __repr__(self) -> str:
        return f"<OpResult #{self.result_index} of {self.op.name} : {self.type}>"


class BlockArgument(Value):
    """An argument of a block (including region entry blocks)."""

    def __init__(self, block: "Block", index: int, type_: Type,
                 name_hint: Optional[str] = None):
        super().__init__(type_, name_hint)
        self.block = block
        self.arg_index = index

    def owner_block(self) -> Optional["Block"]:
        return self.block

    def __repr__(self) -> str:
        return f"<BlockArgument #{self.arg_index} : {self.type}>"
