"""Compilation context and dialect registry.

A :class:`Context` tracks which dialects are loaded.  Dialects are mostly a
namespacing and documentation concept in this reproduction — the operation
classes self-register globally — but the context is still useful to verify
that a module only uses loaded dialects and to look up dialect objects (for
example the SYCL dialect's alias-analysis hooks).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Type as PyType

from . import concurrency
from .operations import Operation, lookup_op_class, registered_operations


class Dialect:
    """Base class for dialect descriptors."""

    #: Dialect namespace, e.g. ``"arith"`` or ``"sycl"``.
    NAME: str = ""

    def operations(self) -> Dict[str, PyType[Operation]]:
        """Return the operations registered under this dialect namespace."""
        prefix = self.NAME + "."
        return {
            name: cls
            for name, cls in registered_operations().items()
            if name.startswith(prefix)
        }

    def __repr__(self) -> str:
        return f"<Dialect {self.NAME}>"


class Context:
    """Holds the set of loaded dialects for one compilation."""

    def __init__(self, dialects: Optional[Iterable[Dialect]] = None):
        self._dialects: Dict[str, Dialect] = {}
        for dialect in dialects or ():
            self.load_dialect(dialect)

    @staticmethod
    def allow_unregistered_threading(allowed: bool = True) -> None:
        """Permit IR mutation from threads the pass scheduler does not
        manage.

        By default, ``PassManager(jobs=N)`` installs a write guard so a
        function pipeline that mutates IR outside its own anchored
        function raises
        :class:`repro.ir.concurrency.ConcurrentWriteError` instead of
        silently corrupting ``Value`` use lists or ``Block`` order
        indexes.  Callers that synchronize IR access themselves can opt
        out with this switch (see ``docs/concurrency.md``).
        """
        concurrency.allow_unregistered_threading(allowed)

    def load_dialect(self, dialect: Dialect) -> Dialect:
        existing = self._dialects.get(dialect.NAME)
        if existing is not None:
            return existing
        self._dialects[dialect.NAME] = dialect
        return dialect

    def get_dialect(self, name: str) -> Optional[Dialect]:
        return self._dialects.get(name)

    @property
    def loaded_dialects(self) -> List[str]:
        return sorted(self._dialects)

    def is_loaded(self, dialect_name: str) -> bool:
        return dialect_name in self._dialects

    def verify_dialects(self, module: Operation) -> List[str]:
        """Report operations belonging to dialects that are not loaded."""
        problems: List[str] = []
        for op in module.walk():
            if op.dialect and not self.is_loaded(op.dialect):
                problems.append(
                    f"operation {op.name!r} uses unloaded dialect {op.dialect!r}")
        return problems

    def lookup_operation(self, name: str) -> Optional[PyType[Operation]]:
        return lookup_op_class(name)


def default_context() -> Context:
    """Create a context with every dialect of this project loaded."""
    from ..dialects import all_dialects

    return Context(all_dialects())
