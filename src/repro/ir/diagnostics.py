"""Source-located diagnostics (MLIR's ``DiagnosticEngine`` analogue).

Verifier checks, lint rules and analyses report findings as
:class:`Diagnostic` objects — a severity, a message, the
:class:`~repro.ir.location.Location` of the offending operation and any
number of attached notes — instead of bare strings.  A
:class:`DiagnosticEngine` routes emitted diagnostics to registered
handlers; the default handler prints to stderr, and tests/drivers capture
into a list instead (``engine.capture()``).

``repro-opt --verify-diagnostics`` builds on this: expected diagnostics
are written as ``// expected-error {{...}}`` comments in the input and
matched against what the engine actually captured (see
:mod:`repro.tools.repro_opt`).
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from enum import Enum
from typing import Callable, Iterator, List, Optional

from .location import Location, location_of


class Severity(Enum):
    """Diagnostic severities, ordered from informational to fatal."""

    REMARK = "remark"
    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:
        return self.value


class Diagnostic:
    """One emitted finding: severity, message, location and notes."""

    __slots__ = ("severity", "message", "location", "notes")

    def __init__(self, severity: Severity, message: str,
                 location: Optional[Location] = None,
                 notes: Optional[List["Diagnostic"]] = None):
        self.severity = severity
        self.message = message
        self.location = location if location is not None else Location()
        self.notes: List[Diagnostic] = list(notes or [])

    def attach_note(self, message: str,
                    location: Optional[Location] = None) -> "Diagnostic":
        """Attach a note to this diagnostic; returns self for chaining."""
        self.notes.append(Diagnostic(Severity.REMARK, message, location))
        return self

    def to_payload(self) -> dict:
        """A picklable/JSON-able dict form for crossing process
        boundaries (the process-parallel executor ships worker failures
        as payloads, not exception objects — worker-side exception types
        may not unpickle in the parent)."""
        return {
            "severity": self.severity.value,
            "message": self.message,
            "location": [self.location.filename, self.location.line,
                         self.location.column],
            "notes": [note.to_payload() for note in self.notes],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Diagnostic":
        """Rebuild a diagnostic from :meth:`to_payload` output."""
        filename, line, column = payload.get("location") or ("", 0, 0)
        return cls(Severity(payload["severity"]), payload["message"],
                   Location(filename, line, column),
                   [cls.from_payload(note)
                    for note in payload.get("notes", ())])

    def render(self) -> str:
        """``file:line:col: severity: message`` plus indented notes."""
        lines = [f"{self.location.describe()}: {self.severity}: "
                 f"{self.message}"]
        for note in self.notes:
            lines.append(f"{note.location.describe()}: note: {note.message}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()

    def __repr__(self) -> str:
        return f"<Diagnostic {self.severity}: {self.message!r}>"


DiagnosticHandler = Callable[[Diagnostic], None]


def _print_handler(diagnostic: Diagnostic) -> None:
    print(diagnostic.render(), file=sys.stderr)


class DiagnosticEngine:
    """Routes diagnostics to handlers and keeps severity counts.

    With no handler registered, diagnostics print to stderr (the MLIR
    default).  ``capture()`` temporarily swaps handlers for a list sink —
    the mode every test and the ``--verify-diagnostics`` driver use.
    """

    def __init__(self):
        self.handlers: List[DiagnosticHandler] = []
        self.captured: List[Diagnostic] = []
        self._capturing = 0
        self.counts = {severity: 0 for severity in Severity}

    # -- emission ----------------------------------------------------------
    def emit(self, diagnostic: Diagnostic) -> Diagnostic:
        self.counts[diagnostic.severity] += 1
        if self._capturing:
            self.captured.append(diagnostic)
            return diagnostic
        if self.handlers:
            for handler in self.handlers:
                handler(diagnostic)
        else:
            _print_handler(diagnostic)
        return diagnostic

    def _emit(self, severity: Severity, message: str,
              location: Optional[Location], op) -> Diagnostic:
        if location is None and op is not None:
            location = location_of(op)
        return self.emit(Diagnostic(severity, message, location))

    def error(self, message: str, location: Optional[Location] = None,
              op=None) -> Diagnostic:
        return self._emit(Severity.ERROR, message, location, op)

    def warning(self, message: str, location: Optional[Location] = None,
                op=None) -> Diagnostic:
        return self._emit(Severity.WARNING, message, location, op)

    def remark(self, message: str, location: Optional[Location] = None,
               op=None) -> Diagnostic:
        return self._emit(Severity.REMARK, message, location, op)

    # -- handlers ----------------------------------------------------------
    def register_handler(self, handler: DiagnosticHandler) -> None:
        self.handlers.append(handler)

    @contextmanager
    def capture(self) -> Iterator[List[Diagnostic]]:
        """Capture emitted diagnostics into the yielded list."""
        sink: List[Diagnostic] = []
        outer = self.captured
        self.captured = sink
        self._capturing += 1
        try:
            yield sink
        finally:
            self._capturing -= 1
            self.captured = outer

    @property
    def error_count(self) -> int:
        return self.counts[Severity.ERROR]
