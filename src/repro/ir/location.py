"""Source locations attached to operations (MLIR's ``Location`` analogue).

Every operation can carry a :class:`Location` telling where it came from:
a file/line/column triple threaded from the textual parser, a Python
call-site captured by the kernel builder, or the :data:`UNKNOWN` sentinel
for programmatically built IR with no provenance.

Locations print as MLIR's trailing ``loc("file":line:col)`` form.  The
printer only emits them when asked (``Printer(print_locations=True)``, the
``-mlir-print-debuginfo`` analogue) so the default textual form — and with
it the round-trip guarantee and every fingerprint-keyed cache — stays
byte-stable.
"""

from __future__ import annotations

from typing import Optional


class Location:
    """An immutable file:line:column source position.

    ``line``/``column`` are 1-based; ``0`` means "unknown" for either.
    Compare and hash by value so analyses can key on locations.
    """

    __slots__ = ("filename", "line", "column")

    def __init__(self, filename: str = "", line: int = 0, column: int = 0):
        object.__setattr__(self, "filename", filename)
        object.__setattr__(self, "line", line)
        object.__setattr__(self, "column", column)

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Location is immutable")

    @property
    def is_known(self) -> bool:
        return bool(self.filename) or self.line > 0

    def __eq__(self, other) -> bool:
        return isinstance(other, Location) and \
            (self.filename, self.line, self.column) == \
            (other.filename, other.line, other.column)

    def __hash__(self) -> int:
        return hash((self.filename, self.line, self.column))

    def __str__(self) -> str:
        if not self.is_known:
            return "loc(unknown)"
        return f'loc("{self.filename}":{self.line}:{self.column})'

    def __repr__(self) -> str:
        return f"<Location {self}>"

    def describe(self) -> str:
        """Human-readable ``file:line:col`` prefix for diagnostics."""
        if not self.is_known:
            return "<unknown>"
        return f"{self.filename}:{self.line}:{self.column}"


#: Shared sentinel for operations with no recorded provenance.
UNKNOWN = Location()


def location_of(op) -> Location:
    """The location attached to ``op``, or :data:`UNKNOWN`."""
    loc = getattr(op, "location", None)
    return loc if isinstance(loc, Location) else UNKNOWN


def caller_location(depth: int = 1) -> Location:
    """Location of the Python call-site ``depth`` frames up.

    Used by :class:`~repro.frontend.kernel_builder.KernelBuilder` so ops
    emitted from embedded-DSL kernels point at the user's Python source.
    """
    import sys

    frame = sys._getframe(depth + 1)
    code = frame.f_code
    return Location(code.co_filename, frame.f_lineno, 1)


def user_code_location() -> Location:
    """Location of the nearest enclosing call-site *outside* ``repro``.

    Builder helpers nest to varying depths (``kb.global_id`` inserts
    through ``_dim_constant``, expression sugar through ``Expr``), so a
    fixed frame depth would blame library code; walking to the first
    frame outside the package blames the user's kernel line instead.
    """
    import os
    import sys

    package_dir = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    frame = sys._getframe(1)
    while frame is not None:
        filename = os.path.abspath(frame.f_code.co_filename)
        if not filename.startswith(package_dir + os.sep):
            return Location(frame.f_code.co_filename, frame.f_lineno, 1)
        frame = frame.f_back
    return UNKNOWN
