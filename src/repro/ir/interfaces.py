"""Operation interfaces.

Interfaces let analyses reason about operations from any dialect without
knowing the concrete operation, mirroring MLIR's interface mechanism.  The
most important one here is the *memory effects* interface used by the
reaching-definition analysis, the uniformity analysis and LICM (paper,
Sections V-B, V-C and VI-A).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from .traits import Trait, has_trait

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .values import Value


class EffectKind(enum.Enum):
    """Kinds of memory effects an operation may have on a value."""

    READ = "read"
    WRITE = "write"
    ALLOCATE = "allocate"
    FREE = "free"


@dataclass(frozen=True)
class MemoryEffect:
    """A single memory effect.

    ``value`` is the SSA value whose pointed-to memory is affected; ``None``
    means the effect applies to an unspecified location (e.g. a call with
    unknown side effects on some resource).
    """

    kind: EffectKind
    value: Optional["Value"] = None
    resource: str = "default"


def read(value: Optional["Value"] = None, resource: str = "default") -> MemoryEffect:
    return MemoryEffect(EffectKind.READ, value, resource)


def write(value: Optional["Value"] = None, resource: str = "default") -> MemoryEffect:
    return MemoryEffect(EffectKind.WRITE, value, resource)


def allocate(value: Optional["Value"] = None) -> MemoryEffect:
    return MemoryEffect(EffectKind.ALLOCATE, value)


def free(value: Optional["Value"] = None) -> MemoryEffect:
    return MemoryEffect(EffectKind.FREE, value)


class MemoryEffectsInterface:
    """Mixin for operations with *known* memory effects.

    Operations implementing this interface override :meth:`memory_effects`
    and return the complete list of effects; an empty list means the
    operation has no memory effects.  Operations that do not implement the
    interface have *unknown* effects, which analyses treat conservatively.
    """

    def memory_effects(self) -> List[MemoryEffect]:  # pragma: no cover
        raise NotImplementedError

    @classmethod
    def implements_memory_effects(cls) -> bool:
        return True


class LoopLikeInterface:
    """Mixin for structured loop operations (``scf.for``, ``affine.for``)."""

    def loop_body(self):  # pragma: no cover - overridden
        """Return the :class:`Block` forming the loop body."""
        raise NotImplementedError

    def induction_variable(self):  # pragma: no cover - overridden
        """Return the induction variable block argument, if any."""
        raise NotImplementedError

    def loop_bounds(self):  # pragma: no cover - overridden
        """Return ``(lower, upper, step)`` as values or constants."""
        raise NotImplementedError

    def is_defined_outside(self, value) -> bool:
        """Return True if ``value`` is defined outside this loop's body."""
        from .operations import Operation

        region_op: Operation = self  # type: ignore[assignment]
        defining = value.defining_op()
        if defining is None:
            # Block argument: outside unless it belongs to the loop body.
            return value.owner_block() not in region_op.all_blocks()
        ancestor = defining
        while ancestor is not None:
            if ancestor is region_op:
                return False
            ancestor = ancestor.parent_op()
        return True


class InterpretableOpInterface:
    """Mixin for operations that carry their own execution semantics.

    The IR interpreter (:mod:`repro.interp`) first consults the
    per-dialect evaluator registry
    (:func:`repro.interp.registry.register_evaluator`); operations not
    found there but implementing this interface are evaluated through
    :meth:`interpret`.  ``args`` holds the already-evaluated operand
    values and ``ctx`` is the active
    :class:`repro.interp.interpreter.EvalContext`; the method returns one
    Python value per op result.
    """

    def interpret(self, args: Sequence[object], ctx) -> Sequence[object]:  # pragma: no cover
        raise NotImplementedError

    @classmethod
    def implements_interpret(cls) -> bool:
        return True


class CallOpInterface:
    """Mixin for call-like operations."""

    def callee_name(self) -> Optional[str]:  # pragma: no cover - overridden
        raise NotImplementedError

    def call_arguments(self) -> Sequence["Value"]:  # pragma: no cover
        raise NotImplementedError


class BranchOpInterface:
    """Mixin for terminators transferring control to successor blocks."""

    def successor_operands(self, index: int) -> Sequence["Value"]:  # pragma: no cover
        raise NotImplementedError


def get_memory_effects(op) -> Optional[List[MemoryEffect]]:
    """Return the memory effects of ``op`` or ``None`` if unknown.

    Pure operations (carrying :data:`Trait.PURE`) trivially have no effects.
    """
    if isinstance(op, MemoryEffectsInterface):
        return op.memory_effects()
    if has_trait(op, Trait.PURE) or has_trait(op, Trait.CONSTANT_LIKE):
        return []
    return None


def is_side_effect_free(op) -> bool:
    """True when ``op`` is known to have no memory effects at all."""
    effects = get_memory_effects(op)
    return effects is not None and len(effects) == 0
