"""Textual IR parser for the MLIR-generic syntax emitted by the printer.

Accepts the generic operation form::

    %0 = "arith.addi"(%a, %b) {attrs} : (i64, i64) -> (i64)

including nested regions, blocks with arguments, successor lists and the
full type grammar (``i32``, ``f32``, ``index``, ``memref<...>``, function
types and ``!``-prefixed dialect types resolved through the dialect type
parser registry in :mod:`repro.dialects`).

Together with :mod:`repro.ir.printer` this gives a verified serialization
layer: for any module ``m`` built programmatically,
``print(parse(print(m)))`` reproduces ``print(m)`` exactly.  The parser is
whitespace-insensitive and supports ``//`` line comments so textual test
cases can be annotated.

Operation classes are resolved through the operation registry
(:func:`repro.ir.operations.lookup_op_class`); parsing an op name that is
not registered is an error unless ``allow_unregistered`` is set.
"""

from __future__ import annotations

import difflib
import re
from typing import Dict, List, Optional, Sequence, Tuple

from .attributes import (
    ArrayAttr,
    Attribute,
    BoolAttr,
    DenseElementsAttr,
    DictAttr,
    FloatAttr,
    IntegerAttr,
    StringAttr,
    SymbolRefAttr,
    TypeAttr,
    UnitAttr,
)
from .location import UNKNOWN, Location
from .operations import (
    Block,
    Operation,
    Region,
    lookup_op_class,
    registered_operations,
)
from .traits import Trait, has_trait
from .types import (
    DYNAMIC,
    FloatType,
    FunctionType,
    IndexType,
    IntegerType,
    MemRefType,
    NoneType,
    Type,
    VectorType,
    is_float,
)
from .values import Value


class ParseError(Exception):
    """Raised on malformed textual IR, with 1-based line/column info."""

    def __init__(self, message: str, line: Optional[int] = None,
                 column: Optional[int] = None):
        if line is not None:
            message = f"line {line}:{column}: {message}"
        super().__init__(message)
        self.line = line
        self.column = column


_IDENT_RE = re.compile(r"[A-Za-z_$][A-Za-z0-9_$.]*")
_IDENT_CHAR_RE = re.compile(r"[A-Za-z0-9_$.]")
_VALUE_ID_RE = re.compile(r"%([A-Za-z0-9_$.]+)")
_NUMBER_RE = re.compile(r"-?(?:\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|inf|nan)")
_SUCCESSOR_RE = re.compile(r"\^bb(\d+)")
_INTEGER_TYPE_RE = re.compile(r"i(\d+)$")
_FLOAT_TYPE_RE = re.compile(r"f(\d+)$")
_DIM_RE = re.compile(r"(\?|\d+)x")


def _keepable_hint(name: str) -> Optional[str]:
    """The parsed SSA name as a ``name_hint``, or ``None`` for ``%0``-style
    purely numeric names.  MLIR never preserves numeric SSA names — the
    printer renumbers anonymous values contiguously — and baking a parsed
    ``%7`` in as a permanent hint would freeze stale numbering across a
    parse/optimize/print round trip (optimizations that erase values
    would leave gaps serial compilation does not produce)."""
    return None if name.isdigit() else name


class _Scope:
    """One SSA name scope; ``isolated`` scopes stop outward name lookup."""

    def __init__(self, isolated: bool):
        self.isolated = isolated
        self.values: Dict[str, Value] = {}
        #: Forward references (uses before the definition, MLIR-style):
        #: ``name -> (placeholder value, position of the first use)``.
        #: Resolved when the scope later defines the name; still-unresolved
        #: entries are reported when the scope closes.  Dominance of
        #: resolved uses is deliberately NOT the parser's job — the
        #: verifier and ``repro-lint`` diagnose it on the parsed IR.
        self.forward: Dict[str, Tuple[Value, int]] = {}


class Parser:
    """Recursive-descent parser over the printed generic syntax."""

    def __init__(self, text: str, allow_unregistered: bool = False,
                 filename: str = "<input>"):
        self.text = text
        self.pos = 0
        self.allow_unregistered = allow_unregistered
        self.filename = filename
        self._scopes: List[_Scope] = [_Scope(isolated=True)]

    # ------------------------------------------------------------------
    # Low-level scanning
    # ------------------------------------------------------------------
    def _skip_ws(self) -> None:
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch in " \t\r\n":
                self.pos += 1
            elif self.text.startswith("//", self.pos):
                end = self.text.find("\n", self.pos)
                self.pos = len(self.text) if end == -1 else end
            else:
                break

    def _at_end(self) -> bool:
        self._skip_ws()
        return self.pos >= len(self.text)

    def _peek(self, literal: str) -> bool:
        self._skip_ws()
        return self.text.startswith(literal, self.pos)

    def _consume(self, literal: str) -> bool:
        if self._peek(literal):
            self.pos += len(literal)
            return True
        return False

    def _expect(self, literal: str, context: str = "") -> None:
        if not self._consume(literal):
            where = f" {context}" if context else ""
            found = self.text[self.pos:self.pos + 12] or "<end of input>"
            self.error(f"expected {literal!r}{where}, found {found!r}")

    def _match(self, pattern: re.Pattern) -> Optional[str]:
        self._skip_ws()
        m = pattern.match(self.text, self.pos)
        if m is None:
            return None
        self.pos = m.end()
        return m.group(0)

    def _match_group(self, pattern: re.Pattern) -> Optional[str]:
        self._skip_ws()
        m = pattern.match(self.text, self.pos)
        if m is None:
            return None
        self.pos = m.end()
        return m.group(1)

    def error(self, message: str) -> None:
        consumed = self.text[:self.pos]
        line = consumed.count("\n") + 1
        column = self.pos - (consumed.rfind("\n") + 1) + 1
        raise ParseError(message, line, column)

    def _location_at(self, pos: int) -> Location:
        """Source location (1-based line/col) of character ``pos``."""
        consumed = self.text[:pos]
        line = consumed.count("\n") + 1
        column = pos - (consumed.rfind("\n") + 1) + 1
        return Location(self.filename, line, column)

    # ------------------------------------------------------------------
    # SSA value scoping
    # ------------------------------------------------------------------
    def _define_value(self, name: str, value: Value) -> None:
        scope = self._scopes[-1]
        if name in scope.values:
            self.error(f"redefinition of value %{name}")
        scope.values[name] = value
        pending = scope.forward.pop(name, None)
        if pending is not None:
            placeholder, use_pos = pending
            if placeholder.type != value.type:
                self.pos = use_pos
                self.error(
                    f"type mismatch for forward-referenced value %{name}: "
                    f"used as {placeholder.type} but defined as {value.type}")
            placeholder.replace_all_uses_with(value)

    def _lookup_value(self, name: str, declared: Optional[Type] = None,
                      use_pos: Optional[int] = None) -> Value:
        for scope in reversed(self._scopes):
            if name in scope.values:
                return scope.values[name]
            if scope.isolated:
                break
        if declared is None:
            self.error(f"use of undefined value %{name}")
        # A use before the definition: hand out a typed placeholder that a
        # later definition in this scope replaces (the mlir-opt behaviour,
        # which keeps dominance violations *parseable* so the verifier and
        # the lint rules can diagnose them on real IR).
        scope = self._scopes[-1]
        if name not in scope.forward:
            pos = use_pos if use_pos is not None else self.pos
            scope.forward[name] = (
                Value(declared, name_hint=_keepable_hint(name)), pos)
        return scope.forward[name][0]

    def _close_scope(self) -> None:
        scope = self._scopes.pop()
        if scope.forward:
            name, (_, use_pos) = next(iter(scope.forward.items()))
            self.pos = use_pos
            self.error(f"use of undefined value %{name}")

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def parse_operation(
            self,
            successor_sink: Optional[List[Tuple[Operation, List[int]]]] = None,
    ) -> Operation:
        self._skip_ws()
        op_start = self.pos
        result_names = self._parse_result_names()
        op_name = self._parse_string_literal("operation name")
        operand_names = self._parse_operand_names()

        # Upstream-MLIR generic order (the `--emit=mlir` exporter):
        # successor list and region list come directly after the operand
        # list, with the attribute dictionary after the regions.  The
        # classic order printed by repro.ir.printer puts both after the
        # signature instead; a '[' or '(' here is unambiguous because
        # the classic order always continues with '{' or ':'.
        successor_indices: Optional[List[int]] = None
        if self._peek("["):
            successor_indices = self._parse_successor_indices()
        early_regions: Optional[List[Region]] = None
        if self._peek("("):
            early_regions = self._parse_detached_regions(op_name)

        attributes = self._parse_attr_dict() if self._peek("{") else {}
        self._expect(":", "before the operation signature")
        in_types = self._parse_paren_type_list()
        self._expect("->", "in the operation signature")
        out_types = self._parse_paren_type_list()

        if len(operand_names) != len(in_types):
            self.error(
                f"'{op_name}' has {len(operand_names)} operands but its "
                f"signature lists {len(in_types)} operand types")
        operands = []
        for (name, use_pos), declared in zip(operand_names, in_types):
            value = self._lookup_value(name, declared, use_pos)
            if value.type != declared:
                self.error(
                    f"type mismatch for operand %{name} of '{op_name}': "
                    f"value has type {value.type} but the signature "
                    f"declares {declared}")
            operands.append(value)
        if len(result_names) != len(out_types):
            self.error(
                f"'{op_name}' binds {len(result_names)} results but its "
                f"signature lists {len(out_types)} result types")

        op = self._create_operation(op_name, operands, out_types, attributes)
        if early_regions is not None:
            for region in early_regions:
                region.parent = op
                op.regions.append(region)
        for res, name in zip(op.results, result_names):
            res.name_hint = _keepable_hint(name)
            self._define_value(name, res)

        if successor_indices is None and self._peek("["):
            successor_indices = self._parse_successor_indices()
        if successor_indices is not None:
            if successor_sink is None:
                self.error(
                    f"'{op_name}' lists successors outside of a region")
            successor_sink.append((op, successor_indices))

        if early_regions is None and self._peek("("):
            self._parse_region_list(op)

        # Trailing `loc(...)` (printed under print_locations) wins over the
        # textual position the op was parsed at.
        explicit = self._parse_location_trailer()
        op.location = explicit if explicit is not None \
            else self._location_at(op_start)
        return op

    def _parse_result_names(self) -> List[str]:
        names: List[str] = []
        if not self._peek("%"):
            return names
        while True:
            name = self._match_group(_VALUE_ID_RE)
            if name is None:
                self.error("expected a result name after '%'")
            names.append(name)
            if not self._consume(","):
                break
        self._expect("=", "after the operation result list")
        return names

    _STRING_ESCAPES = {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}

    def _parse_string_literal(self, what: str) -> str:
        self._skip_ws()
        if not self._consume('"'):
            found = self.text[self.pos:self.pos + 12] or "<end of input>"
            self.error(f"expected {what} in double quotes, found {found!r}")
        chars: List[str] = []
        i = self.pos
        while i < len(self.text):
            ch = self.text[i]
            if ch == '"':
                self.pos = i + 1
                return "".join(chars)
            if ch == "\\" and i + 1 < len(self.text):
                chars.append(self._STRING_ESCAPES.get(
                    self.text[i + 1], self.text[i + 1]))
                i += 2
            else:
                chars.append(ch)
                i += 1
        self.error(f"unterminated string literal in {what}")
        raise AssertionError("unreachable")

    def _parse_operand_names(self) -> List[Tuple[str, int]]:
        """``(name, position)`` per operand; positions locate use errors."""
        self._expect("(", "before the operand list")
        names: List[Tuple[str, int]] = []
        if not self._consume(")"):
            while True:
                self._skip_ws()
                use_pos = self.pos
                name = self._match_group(_VALUE_ID_RE)
                if name is None:
                    self.error("expected an operand name ('%value')")
                names.append((name, use_pos))
                if not self._consume(","):
                    break
            self._expect(")", "after the operand list")
        return names

    def _parse_successor_indices(self) -> List[int]:
        self._expect("[")
        indices: List[int] = []
        while True:
            label = self._match_group(_SUCCESSOR_RE)
            if label is None:
                self.error("expected a successor label ('^bbN')")
            indices.append(int(label))
            if not self._consume(","):
                break
        self._expect("]", "after the successor list")
        return indices

    def _parse_location_trailer(self) -> Optional[Location]:
        """Parse an optional trailing ``loc("file":line:col)`` clause."""
        if not self._consume("loc("):
            return None
        if self._consume("unknown"):
            self._expect(")", "after 'loc(unknown'")
            return UNKNOWN
        filename = self._parse_string_literal("location filename")
        self._expect(":", "after the location filename")
        line = self._match(_NUMBER_RE)
        if line is None:
            self.error("expected a line number in loc(...)")
        self._expect(":", "after the location line number")
        column = self._match(_NUMBER_RE)
        if column is None:
            self.error("expected a column number in loc(...)")
        self._expect(")", "after the location")
        return Location(filename, int(line), int(column))

    def _create_operation(self, name: str, operands: Sequence[Value],
                          result_types: Sequence[Type],
                          attributes: Dict[str, Attribute]) -> Operation:
        op_class = lookup_op_class(name)
        if op_class is None:
            if self.allow_unregistered:
                op = Operation(operands=operands, result_types=result_types,
                               attributes=attributes)
                op.OPERATION_NAME = name
                return op
            close = difflib.get_close_matches(name, registered_operations(), 1)
            hint = f"; did you mean {close[0]!r}?" if close else ""
            self.error(f"unknown operation {name!r}{hint}")
        op = op_class.__new__(op_class)
        Operation.__init__(op, operands=operands, result_types=result_types,
                           attributes=attributes)
        return op

    # ------------------------------------------------------------------
    # Regions and blocks
    # ------------------------------------------------------------------
    def _parse_region_list(self, op: Operation) -> None:
        self._expect("(")
        while self._peek("{"):
            region = Region(op)
            op.regions.append(region)
            self._parse_region_body(
                region, has_trait(op, Trait.ISOLATED_FROM_ABOVE), op.name)
        self._expect(")", "after the region list")

    def _parse_detached_regions(self, op_name: str) -> List[Region]:
        """Region list parsed before its operation exists (upstream order).

        The regions are attached to the operation once the signature has
        been read and the operation created; isolation for SSA scoping
        comes from the registered operation class, since there is no
        instance to ask yet.
        """
        op_class = lookup_op_class(op_name)
        isolated = op_class is not None and \
            has_trait(op_class, Trait.ISOLATED_FROM_ABOVE)
        self._expect("(")
        regions: List[Region] = []
        while self._peek("{"):
            region = Region()
            regions.append(region)
            self._parse_region_body(region, isolated, op_name)
        self._expect(")", "after the region list")
        return regions

    def _parse_region_body(self, region: Region, isolated: bool,
                           op_name: str) -> None:
        self._expect("{")
        self._scopes.append(_Scope(isolated))
        label_map: Dict[int, Block] = {}
        fixups: List[Tuple[Operation, List[int]]] = []
        current: Optional[Block] = None
        while not self._peek("}"):
            if self._at_end():
                self.error(
                    f"unbalanced region in '{op_name}': missing '}}' before "
                    "end of input")
            if self._peek("^"):
                label, block = self._parse_block_header()
                if label in label_map:
                    self.error(f"duplicate block label ^bb{label}")
                region.add_block(block)
                label_map[label] = block
                current = block
            else:
                if current is None:
                    current = region.add_block(Block())
                    label_map.setdefault(0, current)
                current.append(self.parse_operation(fixups))
        self._expect("}")
        if not region.blocks:
            # An empty region body stands for one empty block (builders always
            # materialize entry blocks, and `region.front` relies on it).
            region.add_block(Block())
        for branch, indices in fixups:
            successors = []
            for index in indices:
                target = label_map.get(index)
                if target is None:
                    self.error(
                        f"'{branch.name}' references undefined block "
                        f"^bb{index}")
                successors.append(target)
            branch.successors = successors
        self._close_scope()

    def _parse_block_header(self) -> Tuple[int, Block]:
        label = self._match_group(_SUCCESSOR_RE)
        if label is None:
            self.error("expected a block label ('^bbN')")
        block = Block()
        if self._consume("("):
            if not self._consume(")"):
                while True:
                    name = self._match_group(_VALUE_ID_RE)
                    if name is None:
                        self.error("expected a block argument name")
                    self._expect(":", "after the block argument name")
                    arg = block.add_argument(self.parse_type(),
                                             _keepable_hint(name))
                    self._define_value(name, arg)
                    if not self._consume(","):
                        break
                self._expect(")", "after the block argument list")
        self._expect(":", "after the block label")
        return int(label), block

    # ------------------------------------------------------------------
    # Types
    # ------------------------------------------------------------------
    def _parse_paren_type_list(self) -> List[Type]:
        self._expect("(", "before a type list")
        types: List[Type] = []
        if not self._consume(")"):
            while True:
                types.append(self.parse_type())
                if not self._consume(","):
                    break
            self._expect(")", "after a type list")
        return types

    def parse_type(self) -> Type:
        if self._peek("("):
            inputs = self._parse_paren_type_list()
            self._expect("->", "in a function type")
            results = self._parse_paren_type_list()
            return FunctionType(tuple(inputs), tuple(results))
        if self._peek("!"):
            return self._parse_dialect_type()
        ident = self._match(_IDENT_RE)
        if ident is None:
            found = self.text[self.pos:self.pos + 12] or "<end of input>"
            self.error(f"expected a type, found {found!r}")
        if ident == "index":
            return IndexType()
        if ident == "none":
            return NoneType()
        if ident == "memref":
            return self._parse_memref_body()
        if ident == "vector":
            return self._parse_vector_body()
        m = _INTEGER_TYPE_RE.match(ident)
        if m and m.end() == len(ident):
            return IntegerType(int(m.group(1)))
        m = _FLOAT_TYPE_RE.match(ident)
        if m and m.end() == len(ident):
            return FloatType(int(m.group(1)))
        self.error(f"unknown type {ident!r}")
        raise AssertionError("unreachable")

    def _parse_shape(self) -> Tuple[int, ...]:
        shape: List[int] = []
        while True:
            self._skip_ws()
            m = _DIM_RE.match(self.text, self.pos)
            if m is None:
                break
            self.pos = m.end()
            dim = m.group(1)
            shape.append(DYNAMIC if dim == "?" else int(dim))
        return tuple(shape)

    def _parse_memref_body(self) -> MemRefType:
        self._expect("<", "after 'memref'")
        shape = self._parse_shape()
        element = self.parse_type()
        memory_space = "global"
        if self._consume(","):
            space = self._match(_IDENT_RE)
            if space is None:
                self.error("expected a memory space name in memref type")
            memory_space = space
        self._expect(">", "after the memref element type")
        return MemRefType(shape, element, memory_space)

    def _parse_vector_body(self) -> VectorType:
        self._expect("<", "after 'vector'")
        shape = self._parse_shape()
        element = self.parse_type()
        self._expect(">", "after the vector element type")
        return VectorType(shape, element)

    def _parse_dialect_type(self) -> Type:
        self._expect("!")
        self._skip_ws()
        start = self.pos
        if _IDENT_RE.match(self.text, self.pos) is None:
            self.error("expected a dialect type name after '!'")
        # Take the full raw spelling: identifier characters interleaved with
        # balanced <...> groups (e.g. `sycl_accessor_1_memref<4xf32>_read`)
        # and embedded `!` from nested dialect-type elements
        # (`sycl_buffer_1_!sycl_id_2`).
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch == "<":
                self._skip_balanced_angle()
            elif ch == "!" or _IDENT_CHAR_RE.match(ch):
                self.pos += 1
            else:
                break
        raw = self.text[start:self.pos]
        # The dialect namespace is the leading identifier run, up to the
        # first '.', '_', '<' or nested '!' ("sycl" in "sycl_buffer_1_...",
        # "llvm" in "llvm.ptr<...>").
        dialect = re.match(r"[A-Za-z$][A-Za-z0-9$]*", raw).group(0)
        from ..dialects import lookup_type_parser

        type_parser = lookup_type_parser(dialect)
        if type_parser is None:
            self.error(
                f"no type parser registered for dialect {dialect!r} "
                f"(while parsing '!{raw}')")
        result = type_parser(raw, parse_type)
        if result is None:
            self.error(f"dialect {dialect!r} cannot parse type '!{raw}'")
        return result

    def _skip_balanced_angle(self) -> None:
        assert self.text[self.pos] == "<"
        depth = 0
        for i in range(self.pos, len(self.text)):
            ch = self.text[i]
            if ch == "<":
                depth += 1
            elif ch == ">":
                depth -= 1
                if depth == 0:
                    self.pos = i + 1
                    return
        self.error("unbalanced '<...>' in dialect type")

    # ------------------------------------------------------------------
    # Attributes
    # ------------------------------------------------------------------
    def _parse_attr_dict(self) -> Dict[str, Attribute]:
        self._expect("{")
        attrs: Dict[str, Attribute] = {}
        if not self._consume("}"):
            while True:
                key = self._match(_IDENT_RE)
                if key is None:
                    self.error("expected an attribute name")
                self._expect("=", "after the attribute name")
                attrs[key] = self.parse_attribute()
                if not self._consume(","):
                    break
            self._expect("}", "after the attribute dictionary")
        return attrs

    def parse_attribute(self) -> Attribute:
        if self._consume("true"):
            return BoolAttr(True)
        if self._consume("false"):
            return BoolAttr(False)
        if self._consume("unit"):
            return UnitAttr()
        if self._peek('"'):
            return StringAttr(self._parse_string_literal("string attribute"))
        if self._peek("@"):
            return self._parse_symbol_ref()
        if self._peek("["):
            return self._parse_array_attr()
        if self._consume("dense"):
            return self._parse_dense_attr()
        self._skip_ws()
        if self.text.startswith("{", self.pos):
            return DictAttr(tuple(self._parse_attr_dict().items()))
        number = self._match(_NUMBER_RE)
        if number is not None:
            self._expect(":", "after a numeric attribute value")
            type_ = self.parse_type()
            if is_float(type_):
                return FloatAttr(float(number), type_)
            try:
                return IntegerAttr(int(number), type_)
            except ValueError:
                self.error(f"invalid integer literal {number!r} for "
                           f"type {type_}")
        return TypeAttr(self.parse_type())

    def _parse_symbol_ref(self) -> SymbolRefAttr:
        self._expect("@")
        root = self._match(_IDENT_RE)
        if root is None:
            self.error("expected a symbol name after '@'")
        nested: List[str] = []
        while self._consume("::"):
            self._expect("@", "in a nested symbol reference")
            name = self._match(_IDENT_RE)
            if name is None:
                self.error("expected a nested symbol name after '::@'")
            nested.append(name)
        return SymbolRefAttr(root, tuple(nested))

    def _parse_array_attr(self) -> ArrayAttr:
        self._expect("[")
        elements: List[Attribute] = []
        if not self._consume("]"):
            while True:
                elements.append(self.parse_attribute())
                if not self._consume(","):
                    break
            self._expect("]", "after the array attribute")
        return ArrayAttr(tuple(elements))

    def _parse_dense_attr(self) -> DenseElementsAttr:
        self._expect("<", "after 'dense'")
        self._expect("[", "in a dense attribute")
        values: List[object] = []
        if not self._consume("]"):
            while True:
                if self._peek("..."):
                    self.error(
                        "dense attribute contains a truncation marker "
                        "('...'); the data cannot be reconstructed")
                number = self._match(_NUMBER_RE)
                if number is None:
                    self.error("expected a number in dense attribute")
                if any(c in number for c in ".eE") or \
                        number.lstrip("-") in ("inf", "nan"):
                    values.append(float(number))
                else:
                    values.append(int(number))
                if not self._consume(","):
                    break
            self._expect("]", "after the dense attribute values")
        self._expect(":", "before the dense attribute shape")
        shape = self._parse_shape()
        element_type = self.parse_type()
        self._expect(">", "after the dense attribute")
        return DenseElementsAttr(tuple(values), shape, element_type)


# ---------------------------------------------------------------------------
# Convenience entry points
# ---------------------------------------------------------------------------

def parse_op(text: str, allow_unregistered: bool = False,
             filename: str = "<input>") -> Operation:
    """Parse a single top-level operation; the whole input must be used."""
    parser = Parser(text, allow_unregistered=allow_unregistered,
                    filename=filename)
    if parser._at_end():
        parser.error("empty input: expected an operation")
    op = parser.parse_operation()
    if not parser._at_end():
        parser.error("unexpected trailing input after the top-level operation")
    parser._close_scope()
    return op


def parse_module(text: str, allow_unregistered: bool = False,
                 filename: str = "<input>") -> Operation:
    """Parse textual IR holding one top-level op (typically a module)."""
    return parse_op(text, allow_unregistered=allow_unregistered,
                    filename=filename)


def parse_type(text: str) -> Type:
    """Parse a standalone type from ``text`` (used by dialect type hooks)."""
    parser = Parser(text)
    type_ = parser.parse_type()
    if not parser._at_end():
        parser.error("unexpected trailing input after the type")
    return type_


def parse_attribute(text: str) -> Attribute:
    """Parse a standalone attribute value from ``text``."""
    parser = Parser(text)
    attr = parser.parse_attribute()
    if not parser._at_end():
        parser.error("unexpected trailing input after the attribute")
    return attr
