"""Mini-MLIR core IR infrastructure.

This package provides the generic compiler infrastructure the SYCL-MLIR
reproduction is built on: types, attributes, SSA values, operations with
nested regions, builders, a printer, a verifier and dominance utilities.
"""

from .attributes import (
    ArrayAttr,
    Attribute,
    BoolAttr,
    DenseElementsAttr,
    DictAttr,
    FloatAttr,
    IntegerAttr,
    StringAttr,
    SymbolRefAttr,
    TypeAttr,
    UnitAttr,
    array_attr,
    bool_attr,
    float_attr,
    int_array_attr,
    int_array_values,
    int_attr,
    str_attr,
    symbol_ref,
)
from .builder import Builder, InsertionPoint
from .concurrency import (
    ConcurrentWriteError,
    WriteGuard,
    allow_unregistered_threading,
    guarded_region,
    unregistered_threading_allowed,
)
from .context import Context, Dialect, default_context
from .diagnostics import (
    Diagnostic,
    DiagnosticEngine,
    Severity,
)
from .dominance import DominanceInfo, properly_dominates
from .fingerprint import fingerprint, function_fingerprint, module_fingerprint
from .location import (
    UNKNOWN,
    Location,
    caller_location,
    location_of,
    user_code_location,
)
from .interfaces import (
    BranchOpInterface,
    CallOpInterface,
    EffectKind,
    InterpretableOpInterface,
    LoopLikeInterface,
    MemoryEffect,
    MemoryEffectsInterface,
    get_memory_effects,
    is_side_effect_free,
)
from .operations import (
    Block,
    IRError,
    Operation,
    Region,
    lookup_op_class,
    register_op,
    registered_operations,
)
from .parser import (
    ParseError,
    Parser,
    parse_attribute,
    parse_module,
    parse_op,
    parse_type,
)
from .printer import Printer, print_op
from .traits import Trait, has_trait
from .types import (
    DYNAMIC,
    FloatType,
    FunctionType,
    IndexType,
    IntegerType,
    MemRefType,
    NoneType,
    PointerType,
    StructType,
    Type,
    VectorType,
    f32,
    f64,
    function_type,
    i1,
    i8,
    i32,
    i64,
    index,
    is_float,
    is_integer,
    is_scalar,
    memref,
)
from .values import BlockArgument, OpResult, Use, Value
from .verifier import (
    VerificationError,
    collect_symbols,
    verify,
    verify_with_diagnostics,
)

__all__ = [
    "ArrayAttr", "Attribute", "BoolAttr", "DenseElementsAttr", "DictAttr",
    "FloatAttr", "IntegerAttr", "StringAttr", "SymbolRefAttr", "TypeAttr",
    "UnitAttr", "array_attr", "bool_attr", "float_attr", "int_array_attr",
    "int_array_values", "int_attr", "str_attr", "symbol_ref",
    "Builder", "InsertionPoint",
    "ConcurrentWriteError", "WriteGuard", "allow_unregistered_threading",
    "guarded_region", "unregistered_threading_allowed",
    "Context", "Dialect", "default_context",
    "Diagnostic", "DiagnosticEngine", "Severity",
    "DominanceInfo", "properly_dominates",
    "Location", "UNKNOWN", "caller_location", "location_of",
    "user_code_location",
    "fingerprint", "function_fingerprint", "module_fingerprint",
    "BranchOpInterface", "CallOpInterface", "EffectKind",
    "InterpretableOpInterface", "LoopLikeInterface",
    "MemoryEffect", "MemoryEffectsInterface", "get_memory_effects",
    "is_side_effect_free",
    "Block", "IRError", "Operation", "Region", "lookup_op_class",
    "register_op", "registered_operations",
    "ParseError", "Parser", "parse_attribute", "parse_module", "parse_op",
    "parse_type",
    "Printer", "print_op",
    "Trait", "has_trait",
    "DYNAMIC", "FloatType", "FunctionType", "IndexType", "IntegerType",
    "MemRefType", "NoneType", "PointerType", "StructType", "Type",
    "VectorType", "f32", "f64", "function_type", "i1", "i8", "i32", "i64",
    "index", "is_float", "is_integer", "is_scalar", "memref",
    "BlockArgument", "OpResult", "Use", "Value",
    "VerificationError", "collect_symbols", "verify",
    "verify_with_diagnostics",
]
