"""Type system for the mini-MLIR infrastructure.

Types are immutable value objects: two type instances compare equal when they
describe the same type.  Dialects define their own types by subclassing
:class:`Type` (see ``repro.dialects.sycl`` for the SYCL dialect types).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple


class Type:
    """Base class for all IR types."""

    def __str__(self) -> str:  # pragma: no cover - overridden by subclasses
        return self.__class__.__name__

    def __repr__(self) -> str:
        return f"Type({self})"


@dataclass(frozen=True)
class NoneType(Type):
    """Absence of a value (used for ops with no meaningful result)."""

    def __str__(self) -> str:
        return "none"


@dataclass(frozen=True)
class IndexType(Type):
    """Platform-sized integer used for indexing (MLIR ``index``)."""

    def __str__(self) -> str:
        return "index"


@dataclass(frozen=True)
class IntegerType(Type):
    """Fixed-width integer type (``i1``, ``i8``, ``i32``, ``i64``...)."""

    width: int
    signed: bool = True

    def __str__(self) -> str:
        return f"i{self.width}"


@dataclass(frozen=True)
class FloatType(Type):
    """IEEE floating-point type (``f16``, ``f32``, ``f64``)."""

    width: int

    def __str__(self) -> str:
        return f"f{self.width}"


@dataclass(frozen=True)
class FunctionType(Type):
    """Function signature type: ``(inputs) -> (results)``."""

    inputs: Tuple[Type, ...]
    results: Tuple[Type, ...]

    def __str__(self) -> str:
        ins = ", ".join(str(t) for t in self.inputs)
        outs = ", ".join(str(t) for t in self.results)
        return f"({ins}) -> ({outs})"


#: Sentinel used for dynamic dimensions in shaped types, mirroring MLIR's `?`.
DYNAMIC = -1


@dataclass(frozen=True)
class MemRefType(Type):
    """A reference to a region of memory with a shape and element type.

    ``memory_space`` distinguishes the SYCL memory hierarchy:
    ``"global"``, ``"local"`` or ``"private"``.
    """

    shape: Tuple[int, ...]
    element_type: Type
    memory_space: str = "global"

    def __str__(self) -> str:
        dims = "x".join("?" if d == DYNAMIC else str(d) for d in self.shape)
        prefix = f"{dims}x" if self.shape else ""
        space = f", {self.memory_space}" if self.memory_space != "global" else ""
        return f"memref<{prefix}{self.element_type}{space}>"

    @property
    def rank(self) -> int:
        return len(self.shape)

    def has_static_shape(self) -> bool:
        return all(d != DYNAMIC for d in self.shape)

    def num_elements(self) -> Optional[int]:
        if not self.has_static_shape():
            return None
        total = 1
        for dim in self.shape:
            total *= dim
        return total


@dataclass(frozen=True)
class PointerType(Type):
    """An opaque pointer, mirroring ``!llvm.ptr``.

    Host modules obtained from LLVM IR use opaque pointers; the pointee type
    is optional provenance information used by the host raising pass.
    """

    pointee: Optional[Type] = None
    address_space: int = 0

    def __str__(self) -> str:
        if self.pointee is None:
            return "!llvm.ptr"
        return f"!llvm.ptr<{self.pointee}>"


@dataclass(frozen=True)
class StructType(Type):
    """A named aggregate, mirroring ``!llvm.struct``."""

    name: str
    body: Tuple[Type, ...] = field(default_factory=tuple)

    def __str__(self) -> str:
        return f"!llvm.struct<{self.name!r}>"


@dataclass(frozen=True)
class VectorType(Type):
    """A fixed-size vector of elements."""

    shape: Tuple[int, ...]
    element_type: Type

    def __str__(self) -> str:
        dims = "x".join(str(d) for d in self.shape)
        return f"vector<{dims}x{self.element_type}>"


# ---------------------------------------------------------------------------
# Convenience constructors for the most common types.
# ---------------------------------------------------------------------------

def i1() -> IntegerType:
    return IntegerType(1)


def i8() -> IntegerType:
    return IntegerType(8)


def i32() -> IntegerType:
    return IntegerType(32)


def i64() -> IntegerType:
    return IntegerType(64)


def f32() -> FloatType:
    return FloatType(32)


def f64() -> FloatType:
    return FloatType(64)


def index() -> IndexType:
    return IndexType()


def memref(shape: Sequence[int], element_type: Type,
           memory_space: str = "global") -> MemRefType:
    return MemRefType(tuple(shape), element_type, memory_space)


def function_type(inputs: Sequence[Type], results: Sequence[Type]) -> FunctionType:
    return FunctionType(tuple(inputs), tuple(results))


def is_integer(type_: Type) -> bool:
    return isinstance(type_, (IntegerType, IndexType))


def is_float(type_: Type) -> bool:
    return isinstance(type_, FloatType)


def is_scalar(type_: Type) -> bool:
    return is_integer(type_) or is_float(type_)
