"""Attributes: compile-time constant metadata attached to operations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

from .types import Type


class Attribute:
    """Base class for all attributes."""

    def __repr__(self) -> str:
        return f"Attr({self})"


@dataclass(frozen=True)
class IntegerAttr(Attribute):
    value: int
    type: Type

    def __str__(self) -> str:
        return f"{self.value} : {self.type}"


@dataclass(frozen=True)
class FloatAttr(Attribute):
    value: float
    type: Type

    def __str__(self) -> str:
        return f"{self.value} : {self.type}"


@dataclass(frozen=True)
class BoolAttr(Attribute):
    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class StringAttr(Attribute):
    value: str

    def __str__(self) -> str:
        escaped = (self.value.replace("\\", "\\\\").replace('"', '\\"')
                   .replace("\n", "\\n").replace("\t", "\\t"))
        return f'"{escaped}"'


@dataclass(frozen=True)
class SymbolRefAttr(Attribute):
    """Reference to a symbol (function / global), possibly nested."""

    root: str
    nested: Tuple[str, ...] = ()

    def __str__(self) -> str:
        parts = [f"@{self.root}"] + [f"@{name}" for name in self.nested]
        return "::".join(parts)

    @property
    def leaf(self) -> str:
        """Name of the innermost referenced symbol."""
        return self.nested[-1] if self.nested else self.root


@dataclass(frozen=True)
class TypeAttr(Attribute):
    value: Type

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class ArrayAttr(Attribute):
    value: Tuple[Attribute, ...]

    def __str__(self) -> str:
        return "[" + ", ".join(str(a) for a in self.value) + "]"

    def __len__(self) -> int:
        return len(self.value)

    def __iter__(self):
        return iter(self.value)

    def __getitem__(self, idx: int) -> Attribute:
        return self.value[idx]


@dataclass(frozen=True)
class DenseElementsAttr(Attribute):
    """Constant tensor/array data, e.g. a constant filter for a convolution.

    Prints *all* values plus the shape and element type
    (``dense<[1, 2, 3, 4] : 2x2xi64>``) so the textual form is a lossless
    serialization the parser can reconstruct exactly.
    """

    values: Tuple[Any, ...]
    shape: Tuple[int, ...]
    element_type: Type

    def __str__(self) -> str:
        body = ", ".join(str(v) for v in self.values)
        dims = "x".join(str(d) for d in self.shape)
        type_ = f"{dims}x{self.element_type}" if dims else str(self.element_type)
        return f"dense<[{body}] : {type_}>"


@dataclass(frozen=True)
class UnitAttr(Attribute):
    """Presence-only attribute (e.g. ``sycl.kernel``)."""

    def __str__(self) -> str:
        return "unit"


@dataclass(frozen=True)
class DictAttr(Attribute):
    value: Tuple[Tuple[str, Attribute], ...]

    def __str__(self) -> str:
        inner = ", ".join(f"{k} = {v}" for k, v in self.value)
        return "{" + inner + "}"

    def get(self, key: str, default=None):
        for name, attr in self.value:
            if name == key:
                return attr
        return default


def int_attr(value: int, type_: Type) -> IntegerAttr:
    return IntegerAttr(int(value), type_)


def float_attr(value: float, type_: Type) -> FloatAttr:
    return FloatAttr(float(value), type_)


def str_attr(value: str) -> StringAttr:
    return StringAttr(value)


def bool_attr(value: bool) -> BoolAttr:
    return BoolAttr(bool(value))


def symbol_ref(root: str, *nested: str) -> SymbolRefAttr:
    return SymbolRefAttr(root, tuple(nested))


def array_attr(values) -> ArrayAttr:
    return ArrayAttr(tuple(values))


def int_array_attr(values, type_: Type) -> ArrayAttr:
    """An ``ArrayAttr`` of ``IntegerAttr``\\ s, e.g. for static offsets."""
    return ArrayAttr(tuple(IntegerAttr(int(v), type_) for v in values))


def int_array_values(attr) -> list:
    """Integer payload of an ``ArrayAttr`` of ``IntegerAttr``\\ s.

    Returns ``[]`` for missing/malformed attributes so accessors over
    parsed (possibly hand-written) IR degrade gracefully.
    """
    if not isinstance(attr, ArrayAttr):
        return []
    return [a.value for a in attr if isinstance(a, IntegerAttr)]
