"""Single-writer enforcement for concurrent IR access.

MLIR's threading model — which the pass manager's ``jobs=N`` scheduler
adopts — allows pipelines anchored on *isolated-from-above* operations
(``func.func``) to run concurrently because no worker can reach another
worker's IR through SSA use-def chains.  Nothing in the data structures
themselves enforces that, though: ``Value`` use lists and ``Block`` order
indexes are plain Python state, and a buggy pass that mutates a sibling
function would corrupt them silently.

This module provides the guard that turns such bugs into errors:

* a :class:`WriteGuard` maps *claimed* subtree roots (the per-worker
  function ops) to their owning thread;
* while a guard is installed (only during parallel pass execution),
  every structural ``Block`` mutation and operand rewrite checks that the
  current thread owns the nearest claimed ancestor — mutating another
  worker's function, or shared IR outside every claimed subtree, raises
  :class:`ConcurrentWriteError`;
* :func:`allow_unregistered_threading` (also reachable as
  ``Context.allow_unregistered_threading``) disables the guard for
  callers that manage their own synchronization.

When no guard is installed — every single-threaded compile — the cost is
one module-global ``None`` check per mutation.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Dict, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .operations import Block, Operation


class ConcurrentWriteError(RuntimeError):
    """An IR mutation violated the parallel scheduler's ownership rules."""


#: The guard consulted by ``Block``/``Operation`` mutators; ``None`` means
#: unguarded (the single-threaded fast path).
_ACTIVE_GUARD: Optional["WriteGuard"] = None

#: When True, parallel pass execution skips installing a guard entirely
#: (the ``Context.allow_unregistered_threading`` escape hatch).
_UNREGISTERED_THREADING_ALLOWED = False


def allow_unregistered_threading(allowed: bool = True) -> None:
    """Permit IR mutation from threads the scheduler does not know about.

    With this set, ``PassManager(jobs=N)`` runs without a write guard and
    the caller takes responsibility for synchronization — the behaviour
    before the guard existed.
    """
    global _UNREGISTERED_THREADING_ALLOWED
    _UNREGISTERED_THREADING_ALLOWED = allowed


def unregistered_threading_allowed() -> bool:
    return _UNREGISTERED_THREADING_ALLOWED


class WriteGuard:
    """Tracks which thread owns which claimed IR subtree.

    The claim table is only mutated from :meth:`claim`/:meth:`release`
    under a lock; :meth:`check` is read-only on the table, so the hot
    mutation path takes no lock.
    """

    def __init__(self) -> None:
        self._owners: Dict[int, int] = {}
        self._protected: set = set()
        self._lock = threading.Lock()

    def claim(self, root: "Operation") -> None:
        """Mark ``root`` (and everything nested in it) as owned by the
        calling thread."""
        with self._lock:
            self._owners[id(root)] = threading.get_ident()

    def release(self, root: "Operation") -> None:
        with self._lock:
            self._owners.pop(id(root), None)

    def protect(self, root: "Operation") -> None:
        """Mark ``root``'s subtree read-only outside claimed subtrees.

        The scheduler protects the *attached* run root (the module):
        mutating shared IR under it raises, while mutation of *detached*
        subtrees — IR a worker is building or cloning, reachable by no
        other thread — stays legal.
        """
        with self._lock:
            self._protected.add(id(root))

    # -- hot path ------------------------------------------------------------
    def check_block(self, block: "Block") -> None:
        """Raise unless the calling thread may mutate ``block``."""
        op = block.parent.parent if block.parent is not None else None
        owners = self._owners
        protected = self._protected
        while op is not None:
            owner = owners.get(id(op))
            if owner is not None:
                if owner != threading.get_ident():
                    raise ConcurrentWriteError(
                        f"thread {threading.get_ident()} mutated IR inside "
                        f"'{op.name}' owned by thread {owner}; "
                        "function pipelines must only mutate their own "
                        "anchored function (see docs/concurrency.md)")
                return
            if id(op) in protected:
                raise ConcurrentWriteError(
                    "IR outside every worker-owned subtree was mutated "
                    "during parallel pass execution; module-level IR is "
                    "read-only while func.func pipelines run under --jobs "
                    "(see docs/concurrency.md)")
            parent_block = op.parent
            op = (parent_block.parent.parent
                  if parent_block is not None and parent_block.parent
                  is not None else None)
        # The walk ended at a detached root: the subtree is reachable only
        # by the thread holding it (a clone or builder fragment) — legal.

    def check_op(self, op: "Operation") -> None:
        if op.parent is not None:
            self.check_block(op.parent)


def active_guard() -> Optional[WriteGuard]:
    return _ACTIVE_GUARD


@contextmanager
def guarded_region(guard: Optional[WriteGuard]) -> Iterator[None]:
    """Install ``guard`` as the active write guard for the duration.

    Passing ``None`` is a no-op, which keeps call sites branch-free.
    Nested guarded regions are rejected: the scheduler only parallelizes
    the outermost function dispatch.
    """
    global _ACTIVE_GUARD
    if guard is None:
        yield
        return
    if _ACTIVE_GUARD is not None:
        raise ConcurrentWriteError(
            "nested parallel pass execution is not supported")
    _ACTIVE_GUARD = guard
    try:
        yield
    finally:
        _ACTIVE_GUARD = None
