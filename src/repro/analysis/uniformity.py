"""Uniformity analysis (paper, Section V-C).

A value is *uniform* when every work-item in a work-group computes the same
value for it, and *non-uniform* otherwise.  Divergent branches — branches
whose condition is non-uniform — matter because injecting a work-group
barrier inside one would deadlock; the Loop Internalization pass therefore
queries this analysis before transforming a loop (Section VI-C).

The analysis is an inter-procedural data-flow analysis:

* formal parameters start as *unknown*, except for SYCL kernel entry points
  whose parameters are uniform by definition;
* operations carrying the ``NON_UNIFORM_SOURCE`` trait produce non-uniform
  results (e.g. ``sycl.nd_item.get_global_id``), those carrying
  ``UNIFORM_SOURCE`` produce uniform results;
* other operations are non-uniform if any operand is, unknown if any operand
  is unknown, and uniform when all operands are uniform and the operation is
  free of memory effects;
* loads are resolved through the reaching-definition analysis: the
  uniformity of the stored values *and of the branch conditions dominating
  the stores* is merged (data divergence through memory);
* the call graph propagates argument uniformity to callee parameters when
  all call sites are known.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional

from ..ir import (
    EffectKind,
    Operation,
    Trait,
    Value,
    get_memory_effects,
    has_trait,
)
from ..dialects import scf as scf_dialect
from ..dialects.builtin import ModuleOp
from ..dialects.func import FuncOp
from .alias import AliasAnalysis
from .callgraph import CallGraph
from .reaching_definitions import ReachingDefinitionAnalysis
from .sycl_alias import SYCLAliasAnalysis


class Uniformity(enum.Enum):
    UNIFORM = "uniform"
    NON_UNIFORM = "non_uniform"
    UNKNOWN = "unknown"

    @staticmethod
    def merge(values: Iterable["Uniformity"]) -> "Uniformity":
        result = Uniformity.UNIFORM
        for value in values:
            if value is Uniformity.NON_UNIFORM:
                return Uniformity.NON_UNIFORM
            if value is Uniformity.UNKNOWN:
                result = Uniformity.UNKNOWN
        return result


#: Maximum number of inter-procedural fixpoint rounds.
_INTERPROCEDURAL_ROUNDS = 4


class UniformityAnalysis:
    """Inter-procedural uniformity analysis over a module or function."""

    def __init__(self, root: Operation,
                 alias_analysis: Optional[AliasAnalysis] = None):
        self.root = root
        self.alias_analysis = alias_analysis or SYCLAliasAnalysis()
        self._uniformity: Dict[int, Uniformity] = {}
        self._reaching: Dict[int, ReachingDefinitionAnalysis] = {}
        self._param_uniformity: Dict[int, List[Uniformity]] = {}
        self._call_graph: Optional[CallGraph] = None
        if isinstance(root, ModuleOp):
            self._call_graph = CallGraph(root)
            self._run_module(root)
        else:
            self._run_function(root)

    # ------------------------------------------------------------------
    # Public queries
    # ------------------------------------------------------------------
    def uniformity_of(self, value: Value) -> Uniformity:
        return self._uniformity.get(id(value), Uniformity.UNKNOWN)

    def is_uniform(self, value: Value) -> bool:
        return self.uniformity_of(value) is Uniformity.UNIFORM

    def is_non_uniform(self, value: Value) -> bool:
        return self.uniformity_of(value) is Uniformity.NON_UNIFORM

    def is_divergent_branch(self, op: Operation) -> bool:
        """An ``scf.if`` whose condition is not known to be uniform."""
        if not isinstance(op, scf_dialect.IfOp):
            return False
        return self.uniformity_of(op.condition) is not Uniformity.UNIFORM

    def is_in_divergent_region(self, op: Operation) -> bool:
        """True when ``op`` is nested in a branch that may diverge.

        This is the query Loop Internalization uses to reject candidate
        loops (a barrier in a divergent region would deadlock).
        """
        ancestor = op.parent_op()
        while ancestor is not None:
            if isinstance(ancestor, scf_dialect.IfOp) and \
                    self.is_divergent_branch(ancestor):
                return True
            ancestor = ancestor.parent_op()
        return False

    def divergent_branches(self, root: Optional[Operation] = None) \
            -> List[Operation]:
        """Every ``scf.if`` under ``root`` (default: the analysis root)
        whose condition is not known to be uniform.

        The vectorized execution tier uses this query to decide legality:
        a kernel with any divergent branch cannot run whole work-groups
        in lockstep, so it falls back to the scalar interpreter.
        """
        scope = root if root is not None else self.root
        return [op for op in scope.walk()
                if self.is_divergent_branch(op)]

    def is_work_item_scalar(self, value: Value) -> bool:
        """True when ``value`` varies per work-item (the vectorizer's
        "lane-varying" lattice point, complementing :meth:`is_uniform`).

        ``UNKNOWN`` values answer ``False`` for both queries: a vectorizer
        must treat them as illegal to vectorize rather than guess.
        """
        return self.uniformity_of(value) is Uniformity.NON_UNIFORM

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------
    def _run_module(self, module: ModuleOp) -> None:
        functions = self._all_functions(module)
        # Seed parameter uniformity.
        for function in functions:
            self._param_uniformity[id(function)] = self._initial_parameters(function)
        for _ in range(_INTERPROCEDURAL_ROUNDS):
            changed = False
            for function in functions:
                self._run_function(function)
            changed = self._propagate_call_arguments(functions)
            if not changed:
                break
        # Final pass with stable parameter information.
        for function in functions:
            self._run_function(function)

    def _all_functions(self, module: ModuleOp) -> List[FuncOp]:
        functions: List[FuncOp] = []
        for op in module.walk():
            if isinstance(op, FuncOp):
                functions.append(op)
        return functions

    def _initial_parameters(self, function: FuncOp) -> List[Uniformity]:
        if function.is_kernel():
            # Kernel entry-point parameters are uniform by definition: every
            # work-item receives the same accessors / scalars / nd_item
            # object handle.
            return [Uniformity.UNIFORM] * len(function.arguments)
        return [Uniformity.UNKNOWN] * len(function.arguments)

    def _propagate_call_arguments(self, functions: List[FuncOp]) -> bool:
        if self._call_graph is None:
            return False
        changed = False
        for function in functions:
            if function.is_kernel():
                continue
            callers = self._call_graph.callers_of(function)
            if not callers:
                continue
            if self._call_graph.has_external_callers(function):
                # External calls possible: keep the conservative default.
                continue
            merged: List[Uniformity] = []
            for index in range(len(function.arguments)):
                at_index = []
                for site in callers:
                    args = getattr(site.call_op, "call_arguments", None)
                    actual_args = site.call_op.operands if args is None else \
                        site.call_op.call_arguments()
                    if index < len(actual_args):
                        at_index.append(self.uniformity_of(actual_args[index]))
                merged.append(Uniformity.merge(at_index) if at_index
                              else Uniformity.UNKNOWN)
            if merged != self._param_uniformity.get(id(function)):
                self._param_uniformity[id(function)] = merged
                changed = True
        return changed

    # ------------------------------------------------------------------
    # Per-function analysis
    # ------------------------------------------------------------------
    def _run_function(self, function: Operation) -> None:
        if isinstance(function, FuncOp):
            params = self._param_uniformity.get(id(function))
            if params is None:
                params = self._initial_parameters(function)
                self._param_uniformity[id(function)] = params
            for argument, uniformity in zip(function.arguments, params):
                self._uniformity[id(argument)] = uniformity
        reaching = ReachingDefinitionAnalysis(function, self.alias_analysis)
        self._reaching[id(function)] = reaching
        self._visit_region_ops(function, reaching)

    def _visit_region_ops(self, root: Operation,
                          reaching: ReachingDefinitionAnalysis) -> None:
        for op in root.walk(include_self=False):
            self._visit_op(op, reaching)

    def _visit_op(self, op: Operation,
                  reaching: ReachingDefinitionAnalysis) -> None:
        # Region entry block arguments (loop induction variables, iter args).
        if isinstance(op, (scf_dialect.ForOp,)) or \
                op.OPERATION_NAME == "affine.for":
            self._assign_loop_arguments(op)

        if not op.results:
            return

        if has_trait(op, Trait.NON_UNIFORM_SOURCE):
            self._set_results(op, Uniformity.NON_UNIFORM)
            return
        if has_trait(op, Trait.UNIFORM_SOURCE):
            self._set_results(op, Uniformity.UNIFORM)
            return
        if has_trait(op, Trait.CONSTANT_LIKE):
            self._set_results(op, Uniformity.UNIFORM)
            return

        operand_uniformity = [self.uniformity_of(v) for v in op.operands]
        merged = Uniformity.merge(operand_uniformity)
        if merged is Uniformity.NON_UNIFORM:
            self._set_results(op, Uniformity.NON_UNIFORM)
            return

        effects = get_memory_effects(op)
        if effects is None:
            self._set_results(op, Uniformity.UNKNOWN)
            return
        if not effects:
            self._set_results(op, merged)
            return

        # Operation with memory effects: analyse reads through reaching defs.
        result = merged
        for effect in effects:
            if effect.kind != EffectKind.READ or effect.value is None:
                continue
            result = Uniformity.merge(
                [result, self._uniformity_of_memory(op, effect.value, reaching)])
        self._set_results(op, result)

    def _assign_loop_arguments(self, loop: Operation) -> None:
        """Loop induction variables inherit uniformity from the bounds."""
        body = loop.regions[0].front if loop.regions and loop.regions[0].blocks \
            else None
        if body is None or not body.arguments:
            return
        bound_uniformity = Uniformity.merge(
            self.uniformity_of(operand) for operand in loop.operands)
        iv = body.arguments[0]
        self._uniformity[id(iv)] = bound_uniformity
        for extra in body.arguments[1:]:
            self._uniformity.setdefault(id(extra), bound_uniformity)

    def _uniformity_of_memory(self, at: Operation, pointer: Value,
                              reaching: ReachingDefinitionAnalysis) -> Uniformity:
        """Uniformity of the memory read by ``at`` through ``pointer``."""
        defs = reaching.reaching_definitions(at, pointer)
        if not defs.all_definitions:
            # No writes seen: the value comes from outside the kernel (e.g.
            # accessor data written by the host), identical for every
            # work-item unless indexed non-uniformly — and non-uniform
            # indexing is already accounted for through the operands.
            return Uniformity.UNIFORM
        parts: List[Uniformity] = []
        for definition in defs.all_definitions:
            parts.append(self._uniformity_of_definition(definition))
        return Uniformity.merge(parts)

    def _uniformity_of_definition(self, definition: Operation) -> Uniformity:
        # The stored value's uniformity...
        stored = Uniformity.merge(
            self.uniformity_of(operand) for operand in definition.operands)
        if stored is Uniformity.NON_UNIFORM:
            return Uniformity.NON_UNIFORM
        # ... merged with the uniformity of dominating branch conditions:
        # a uniform value stored under a divergent branch produces divergent
        # data (Listing 2 of the paper).
        conditions = self._dominating_branch_conditions(definition)
        merged = Uniformity.merge([stored, *conditions])
        return merged

    def _dominating_branch_conditions(self, op: Operation) -> List[Uniformity]:
        conditions: List[Uniformity] = []
        ancestor = op.parent_op()
        while ancestor is not None:
            if isinstance(ancestor, scf_dialect.IfOp):
                conditions.append(self.uniformity_of(ancestor.condition))
            ancestor = ancestor.parent_op()
        return conditions

    def _set_results(self, op: Operation, uniformity: Uniformity) -> None:
        for result in op.results:
            self._uniformity[id(result)] = uniformity
