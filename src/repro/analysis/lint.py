"""``repro-lint``: static rules that catch miscompile classes before execution.

PR 5's differential interpreter found two real miscompiles — a cached
``sycl.accessor.get_pointer`` that stopped dominating its uses across
sibling regions, and a ``MAY_TRAP`` division speculated out of a
possibly-zero-trip loop — by *executing* modules.  Both properties are
statically decidable; the rules here decide them (plus three more classes
in the same spirit) on unexecuted IR, reporting source-located
:class:`~repro.ir.diagnostics.Diagnostic` findings.

Rules are registered with :func:`register_lint_rule` and run by
:func:`run_lint`; each rule requests the analyses it needs through an
:class:`~repro.analysis.manager.AnalysisManager`, so repeated rules (and
``repro-opt --lint-each``) share cached results.

Shipped rules:

``non-dominating-use``
    an operand whose definition does not dominate the use (the cached
    ``get_pointer`` class);
``speculated-trap``
    a ``MAY_TRAP`` op placed outside the conditional/possibly-zero-trip
    loop region that guards every one of its uses (the LICM hoist class);
``barrier-divergence``
    ``sycl.group_barrier`` under control flow uniformity analysis cannot
    prove uniform (deadlocks a work-group);
``readonly-accessor-write``
    a store through a view of a read-only accessor;
``dead-private-function``
    a private ``func.func`` no call site reaches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..ir import (
    Diagnostic,
    DiagnosticEngine,
    DominanceInfo,
    Operation,
    Severity,
    Trait,
    has_trait,
    location_of,
)
from ..dialects import affine as affine_dialect
from ..dialects import scf as scf_dialect
from ..dialects.func import FuncOp
from ..dialects.sycl import SYCLGroupBarrierOp, accessor_type_of
from .alias import underlying_object
from .callgraph import CallGraph
from .manager import AnalysisManager
from .memory_access import MemoryAccessAnalysis
from .uniformity import UniformityAnalysis


@dataclass
class LintContext:
    """What a rule sees: the module, shared analyses and a findings sink."""

    module: Operation
    am: AnalysisManager
    engine: Optional[DiagnosticEngine] = None
    findings: List[Diagnostic] = field(default_factory=list)

    def report(self, severity: Severity, message: str,
               op: Operation) -> Diagnostic:
        diagnostic = Diagnostic(severity, message, location_of(op))
        self.findings.append(diagnostic)
        if self.engine is not None:
            self.engine.emit(diagnostic)
        return diagnostic

    def error(self, message: str, op: Operation) -> Diagnostic:
        return self.report(Severity.ERROR, message, op)

    def warning(self, message: str, op: Operation) -> Diagnostic:
        return self.report(Severity.WARNING, message, op)


LintRule = Callable[[LintContext], None]


@dataclass
class LintRuleRegistration:
    name: str
    rule: LintRule
    description: str


#: All registered rules, in registration order, keyed by rule name.
LINT_RULES: Dict[str, LintRuleRegistration] = {}


def register_lint_rule(name: str, description: str = ""):
    """Decorator registering a lint rule under ``name``."""

    def wrap(rule: LintRule) -> LintRule:
        if name in LINT_RULES:
            raise ValueError(f"lint rule {name!r} is already registered")
        doc = description or (rule.__doc__ or "").strip().splitlines()[0]
        LINT_RULES[name] = LintRuleRegistration(name, rule, doc)
        return rule

    return wrap


def run_lint(module: Operation,
             rules: Optional[List[str]] = None,
             am: Optional[AnalysisManager] = None,
             engine: Optional[DiagnosticEngine] = None) -> List[Diagnostic]:
    """Run lint rules over ``module``; return the findings.

    ``rules`` selects a subset by name (default: all registered rules);
    ``am`` shares analysis results with the caller's pipeline run.
    """
    selected = list(LINT_RULES) if rules is None else list(rules)
    unknown = [name for name in selected if name not in LINT_RULES]
    if unknown:
        known = ", ".join(LINT_RULES)
        raise ValueError(
            f"unknown lint rule(s) {', '.join(unknown)} "
            f"(available: {known})")
    context = LintContext(module=module,
                          am=am if am is not None else AnalysisManager(),
                          engine=engine)
    for name in selected:
        LINT_RULES[name].rule(context)
    return context.findings


def describe_lint_rules() -> str:
    lines = ["Registered lint rules:"]
    for registration in LINT_RULES.values():
        lines.append(f"  {registration.name:26} {registration.description}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

@register_lint_rule(
    "non-dominating-use",
    "operand definitions must dominate their uses (catches cached "
    "pointers escaping into sibling regions)")
def _lint_non_dominating_use(ctx: LintContext) -> None:
    dominance = ctx.am.get(DominanceInfo, ctx.module)
    for op in ctx.module.walk():
        for operand in op.operands:
            if dominance.value_dominates(operand, op):
                continue
            diagnostic = ctx.error(
                f"operand of '{op.name}' does not dominate this use", op)
            defining = operand.defining_op()
            if defining is not None:
                diagnostic.attach_note(
                    f"definition by '{defining.name}' is in a region that "
                    f"does not enclose the use", location_of(defining))


_LOOP_OPS = (scf_dialect.ForOp, affine_dialect.AffineForOp,
             scf_dialect.WhileOp)


def _loop_may_not_execute(loop: Operation) -> bool:
    trip = getattr(loop, "constant_trip_count", lambda: None)()
    return trip is None or trip == 0


@register_lint_rule(
    "speculated-trap",
    "MAY_TRAP ops must not sit outside the conditional/loop region "
    "guarding every use (catches illegal LICM speculation)")
def _lint_speculated_trap(ctx: LintContext) -> None:
    for op in ctx.module.walk():
        if not has_trait(op, Trait.MAY_TRAP) or op.parent is None:
            continue
        users = [user for result in op.results for user in result.users()]
        if not users:
            continue
        # Hoist every user to its ancestor in op's own block; if all land
        # on one region-holding sibling, that sibling guards every use.
        guards = set()
        for user in users:
            ancestor: Optional[Operation] = user
            while ancestor is not None and ancestor.parent is not op.parent:
                ancestor = ancestor.parent_op()
            if ancestor is None or ancestor is op:
                guards.clear()
                break
            guards.add(ancestor)
        if len(guards) != 1:
            continue
        guard = guards.pop()
        if guard is op or not guard.regions:
            continue
        if isinstance(guard, scf_dialect.IfOp):
            reason = "a conditional region"
        elif isinstance(guard, _LOOP_OPS) and _loop_may_not_execute(guard):
            reason = "a possibly-zero-trip loop"
        else:
            continue
        ctx.warning(
            f"'{op.name}' may trap but was speculated outside {reason} "
            f"('{guard.name}') that guards every use", op).attach_note(
                "guarding region is here", location_of(guard))


@register_lint_rule(
    "barrier-divergence",
    "sycl.group_barrier must not execute under control flow that may "
    "diverge across the work-group")
def _lint_barrier_divergence(ctx: LintContext) -> None:
    barriers = [op for op in ctx.module.walk()
                if isinstance(op, SYCLGroupBarrierOp)]
    if not barriers:
        return
    uniformity = ctx.am.get(UniformityAnalysis, ctx.module)
    for barrier in barriers:
        if uniformity.is_in_divergent_region(barrier):
            ctx.error(
                "'sycl.group_barrier' under control flow that uniformity "
                "analysis cannot prove uniform (work-group deadlock)",
                barrier)


@register_lint_rule(
    "readonly-accessor-write",
    "stores must not target a view of a read-only accessor")
def _lint_readonly_accessor_write(ctx: LintContext) -> None:
    for function in ctx.module.walk():
        if not isinstance(function, FuncOp):
            continue
        accesses = ctx.am.get(MemoryAccessAnalysis, function)
        for access in accesses.accesses:
            if not access.is_store:
                continue
            base = underlying_object(access.memref)
            accessor_type = accessor_type_of(base) if base is not None \
                else None
            if accessor_type is not None and accessor_type.is_read_only:
                ctx.error(
                    f"store through read-only accessor "
                    f"(access mode '{accessor_type.access_mode}')",
                    access.access_op)


@register_lint_rule(
    "dead-private-function",
    "private func.funcs no call site reaches are dead code")
def _lint_dead_private_function(ctx: LintContext) -> None:
    if ctx.module.name != "builtin.module":
        return
    callgraph = ctx.am.get(CallGraph, ctx.module)
    for function in ctx.module.walk():
        if not isinstance(function, FuncOp):
            continue
        if callgraph.has_external_callers(function):
            continue
        if not callgraph.callers_of(function):
            ctx.warning(
                f"private function '@{function.sym_name}' has no callers "
                f"and is dead", function)
