"""Compiler analyses (paper, Section V)."""

from .alias import AliasAnalysis, AliasResult, underlying_object
from .callgraph import CallGraph, CallGraphNode, CallSite
from .dataflow import StructuredDataFlowAnalysis
from .memory_access import (
    BasisKind,
    BasisVariable,
    MemoryAccess,
    MemoryAccessAnalysis,
    NonAffineAccessError,
)
from .reaching_definitions import ReachingDefinitionAnalysis, ReachingDefs
from .sycl_alias import SYCLAliasAnalysis, sycl_values_definitely_distinct
from .uniformity import Uniformity, UniformityAnalysis

__all__ = [
    "AliasAnalysis", "AliasResult", "underlying_object",
    "CallGraph", "CallGraphNode", "CallSite",
    "StructuredDataFlowAnalysis",
    "BasisKind", "BasisVariable", "MemoryAccess", "MemoryAccessAnalysis",
    "NonAffineAccessError",
    "ReachingDefinitionAnalysis", "ReachingDefs",
    "SYCLAliasAnalysis", "sycl_values_definitely_distinct",
    "Uniformity", "UniformityAnalysis",
]
