"""Compiler analyses (paper, Section V)."""

from .alias import AliasAnalysis, AliasResult, underlying_object
from .callgraph import CallGraph, CallGraphNode, CallSite
from .dataflow import NonConvergenceWarning, StructuredDataFlowAnalysis
from .lint import (
    LINT_RULES,
    LintContext,
    describe_lint_rules,
    register_lint_rule,
    run_lint,
)
from .manager import (
    ALL_ANALYSES,
    AnalysisManager,
    analysis_scope,
    current_analysis_manager,
    get_analysis,
)
from .memory_access import (
    BasisKind,
    BasisVariable,
    MemoryAccess,
    MemoryAccessAnalysis,
    NonAffineAccessError,
)
from .reaching_definitions import ReachingDefinitionAnalysis, ReachingDefs
from .sycl_alias import SYCLAliasAnalysis, sycl_values_definitely_distinct
from .uniformity import Uniformity, UniformityAnalysis

__all__ = [
    "AliasAnalysis", "AliasResult", "underlying_object",
    "CallGraph", "CallGraphNode", "CallSite",
    "NonConvergenceWarning", "StructuredDataFlowAnalysis",
    "LINT_RULES", "LintContext", "describe_lint_rules",
    "register_lint_rule", "run_lint",
    "ALL_ANALYSES", "AnalysisManager", "analysis_scope",
    "current_analysis_manager", "get_analysis",
    "BasisKind", "BasisVariable", "MemoryAccess", "MemoryAccessAnalysis",
    "NonAffineAccessError",
    "ReachingDefinitionAnalysis", "ReachingDefs",
    "SYCLAliasAnalysis", "sycl_values_definitely_distinct",
    "Uniformity", "UniformityAnalysis",
]
