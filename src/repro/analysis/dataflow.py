"""Structured data-flow analysis framework.

MLIR ships a data-flow framework that analyses build on (paper, Sections V-B
and V-C).  Because the IR in this project uses structured control flow
(``scf``/``affine`` regions rather than arbitrary CFGs), the framework here
is a region-walking abstract interpreter: concrete analyses provide a state
type with ``copy`` / ``join`` and a transfer function, and the framework
handles straight-line code, conditionals and loop fixpoints uniformly.
"""

from __future__ import annotations

import warnings
from typing import Dict, Generic, Optional, TypeVar

from ..ir import DiagnosticEngine, Operation, location_of
from ..dialects import affine as affine_dialect
from ..dialects import scf as scf_dialect

StateT = TypeVar("StateT")

#: Safety bound on loop-body fixpoint iteration.  Loop bodies iterate to a
#: *real* fixpoint (change detection stops the loop); this cap only guards
#: against analyses whose join is not monotonic.  Hitting it is reported as
#: a :class:`NonConvergenceWarning` — the old silent ``4`` could stop while
#: the state was still changing, making downstream facts unsound.
LOOP_FIXPOINT_LIMIT = 64


class NonConvergenceWarning(UserWarning):
    """A loop-body fixpoint hit :data:`LOOP_FIXPOINT_LIMIT` while still
    changing; facts derived below that loop may be unsound."""


class AbstractState:
    """Interface for analysis states."""

    def copy(self) -> "AbstractState":  # pragma: no cover - interface
        raise NotImplementedError

    def join(self, other: "AbstractState") -> bool:
        """Merge ``other`` into self; return True if self changed."""
        raise NotImplementedError

    def __eq__(self, other) -> bool:  # pragma: no cover - interface
        raise NotImplementedError


class StructuredDataFlowAnalysis(Generic[StateT]):
    """Forward abstract interpretation over structured regions.

    Subclasses implement :meth:`transfer` for straight-line operations.  The
    framework takes care of:

    * ``scf.if``: both branches are analysed from a copy of the incoming
      state and the results are joined;
    * ``scf.for`` / ``affine.for`` / ``scf.while``: the body is re-analysed
      until the state stabilises (bounded by :data:`LOOP_FIXPOINT_LIMIT`) and
      joined with the state before the loop (zero-trip case);
    * any other operation with regions: regions are analysed as if optionally
      executed (state joined with the incoming state).

    The state *before* every visited operation is recorded and can be
    queried with :meth:`state_before`.
    """

    def __init__(self):
        self._before: Dict[int, StateT] = {}
        #: Optional sink for non-convergence diagnostics; falls back to
        #: ``warnings.warn(NonConvergenceWarning)`` when unset.
        self.diagnostics_engine: Optional[DiagnosticEngine] = None
        #: False once any loop fixpoint hit the iteration cap.
        self.converged = True

    # -- to be provided by subclasses ------------------------------------
    def initial_state(self, function: Operation) -> StateT:  # pragma: no cover
        raise NotImplementedError

    def transfer(self, op: Operation, state: StateT) -> None:  # pragma: no cover
        """Apply the effect of ``op`` to ``state`` in place."""
        raise NotImplementedError

    # -- driver ------------------------------------------------------------
    def run(self, function: Operation) -> None:
        state = self.initial_state(function)
        for region in function.regions:
            for block in region.blocks:
                self._process_block(block, state)

    def state_before(self, op: Operation) -> Optional[StateT]:
        return self._before.get(id(op))

    # -- internals ----------------------------------------------------------
    def _report_non_convergence(self, loop: Operation) -> None:
        self.converged = False
        message = (
            f"data-flow fixpoint for '{loop.name}' did not converge within "
            f"{LOOP_FIXPOINT_LIMIT} iterations; facts below this loop are "
            f"conservative")
        if self.diagnostics_engine is not None:
            self.diagnostics_engine.warning(message, location_of(loop))
        else:
            warnings.warn(message, NonConvergenceWarning, stacklevel=3)

    def _record(self, op: Operation, state: StateT) -> None:
        self._before[id(op)] = state.copy()

    def _process_block(self, block, state: StateT) -> None:
        for op in block.operations:
            self._process_op(op, state)

    def _process_op(self, op: Operation, state: StateT) -> None:
        self._record(op, state)

        if isinstance(op, scf_dialect.IfOp):
            then_state = state.copy()
            self._process_block(op.then_block, then_state)
            else_state = state.copy()
            if op.else_block is not None:
                self._process_block(op.else_block, else_state)
            state.join(then_state)
            state.join(else_state)
            return

        if isinstance(op, (scf_dialect.ForOp, affine_dialect.AffineForOp,
                           scf_dialect.WhileOp, scf_dialect.ParallelOp)):
            before_loop = state.copy()
            changed = True
            for _ in range(LOOP_FIXPOINT_LIMIT):
                iteration_state = state.copy()
                for region in op.regions:
                    for block in region.blocks:
                        self._process_block(block, iteration_state)
                changed = state.join(iteration_state)
                if not changed:
                    break
            if changed:
                self._report_non_convergence(op)
            state.join(before_loop)
            return

        if op.regions:
            # Unknown region-holding operation: analyse regions as optional.
            for region in op.regions:
                for block in region.blocks:
                    region_state = state.copy()
                    self._process_block(block, region_state)
                    state.join(region_state)

        self.transfer(op, state)
