"""Memory access (access matrix) analysis (paper, Section V-D).

For SYCL memory accesses inside affine loops the analysis derives, per
access, an *access matrix* ``A`` and *offset vector* ``b`` such that the
accessed multi-dimensional index equals ``A x + b`` where ``x`` stacks the
work-item global ids and the enclosing loop induction variables — exactly
the Listing 3 example of the paper:

.. code-block:: text

    [ 1 0 0 ]   [ gid_x ]   [ 1 ]
    [ 0 0 2 ] * [ gid_y ] + [ 0 ]
    [ 0 1 2 ]   [   i   ]   [ 2 ]

The matrix is split into the *inter–work-item* part (columns of work-item
ids) and the *intra–work-item* part (columns of loop induction variables) to
classify coalescing and temporal reuse following Kaeli et al. [14]; Loop
Internalization uses this classification to pick prefetch candidates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..ir import BlockArgument, Operation, Trait, Value, has_trait
from ..dialects import affine as affine_dialect
from ..dialects import memref as memref_dialect
from ..dialects.arith import constant_value_of
from ..dialects.sycl import (
    NON_UNIFORM_QUERY_OPS,
    SYCLAccessorSubscriptOp,
    SYCLConstructorOp,
)


class BasisKind(enum.Enum):
    """What a column of the access matrix ranges over."""

    WORK_ITEM = "work_item"     # global / local work-item id
    LOOP = "loop"               # affine loop induction variable
    PARAMETER = "parameter"     # uniform runtime parameter (range, scalar arg)


@dataclass(frozen=True)
class BasisVariable:
    """One column of the access matrix."""

    value: Value
    kind: BasisKind
    label: str

    def __repr__(self) -> str:
        return f"<{self.kind.value}:{self.label}>"


class NonAffineAccessError(Exception):
    """Raised when an index expression is not affine in the basis."""


@dataclass
class LinearExpression:
    """``sum(coefficient_i * basis_i) + constant``."""

    coefficients: Dict[int, int] = field(default_factory=dict)  # id(basis value)
    constant: int = 0

    def add(self, other: "LinearExpression", scale: int = 1) -> None:
        for key, coeff in other.coefficients.items():
            self.coefficients[key] = self.coefficients.get(key, 0) + scale * coeff
        self.constant += scale * other.constant

    def scaled(self, scale: int) -> "LinearExpression":
        result = LinearExpression(dict(self.coefficients), self.constant)
        result.coefficients = {k: v * scale for k, v in result.coefficients.items()}
        result.constant *= scale
        return result


class _ExpressionBuilder:
    """Extracts affine expressions from SSA index computations."""

    def __init__(self):
        self.basis: Dict[int, BasisVariable] = {}

    def basis_list(self) -> List[BasisVariable]:
        return list(self.basis.values())

    # ------------------------------------------------------------------
    def expression_of(self, value: Value) -> LinearExpression:
        const = constant_value_of(value)
        if const is not None:
            return LinearExpression(constant=int(const))

        basis_kind = self._basis_kind_of(value)
        if basis_kind is not None:
            self._register_basis(value, basis_kind)
            return LinearExpression(coefficients={id(value): 1})

        defining = value.defining_op()
        if defining is None:
            # Unclassified block argument: treat as a uniform parameter.
            self._register_basis(value, BasisKind.PARAMETER)
            return LinearExpression(coefficients={id(value): 1})

        name = defining.OPERATION_NAME
        operands = defining.operands
        if name in ("arith.addi",):
            result = self.expression_of(operands[0])
            result.add(self.expression_of(operands[1]))
            return result
        if name in ("arith.subi",):
            result = self.expression_of(operands[0])
            result.add(self.expression_of(operands[1]), scale=-1)
            return result
        if name in ("arith.muli",):
            lhs_const = constant_value_of(operands[0])
            rhs_const = constant_value_of(operands[1])
            if rhs_const is not None:
                return self.expression_of(operands[0]).scaled(int(rhs_const))
            if lhs_const is not None:
                return self.expression_of(operands[1]).scaled(int(lhs_const))
            raise NonAffineAccessError(
                "product of two non-constant index expressions")
        if name in ("arith.index_cast", "arith.extsi", "arith.trunci"):
            return self.expression_of(operands[0])
        if name == "affine.apply":
            result = LinearExpression(constant=defining.get_int_attr("constant", 0))
            for coeff, operand in zip(defining.coefficients, operands):
                result.add(self.expression_of(operand), scale=coeff)
            return result

        # Any other operation: if it is a known uniform query treat its
        # result as a parameter, otherwise give up.
        if has_trait(defining, Trait.UNIFORM_SOURCE) or \
                has_trait(defining, Trait.PURE) or \
                defining.OPERATION_NAME.startswith("sycl.accessor.get"):
            self._register_basis(value, BasisKind.PARAMETER)
            return LinearExpression(coefficients={id(value): 1})
        raise NonAffineAccessError(
            f"cannot express {defining.OPERATION_NAME} result as affine")

    # ------------------------------------------------------------------
    def _basis_kind_of(self, value: Value) -> Optional[BasisKind]:
        defining = value.defining_op()
        if defining is not None:
            if defining.OPERATION_NAME in NON_UNIFORM_QUERY_OPS:
                return BasisKind.WORK_ITEM
            return None
        if isinstance(value, BlockArgument):
            block = value.owner_block()
            parent = block.parent_op() if block is not None else None
            if isinstance(parent, affine_dialect.AffineForOp) and \
                    value.arg_index == 0:
                return BasisKind.LOOP
            from ..dialects import scf as scf_dialect

            if isinstance(parent, scf_dialect.ForOp) and value.arg_index == 0:
                return BasisKind.LOOP
        return None

    def _register_basis(self, value: Value, kind: BasisKind) -> None:
        if id(value) in self.basis:
            return
        label = self._label_for(value, kind)
        self.basis[id(value)] = BasisVariable(value, kind, label)

    @staticmethod
    def _label_for(value: Value, kind: BasisKind) -> str:
        defining = value.defining_op()
        if defining is not None and defining.OPERATION_NAME in NON_UNIFORM_QUERY_OPS:
            dim = None
            if defining.dimension is not None:
                dim = constant_value_of(defining.dimension)
            suffix = "xyz"[int(dim)] if dim is not None and int(dim) < 3 else "?"
            return f"gid_{suffix}"
        if kind is BasisKind.LOOP:
            return "iv"
        return value.name_hint or "param"


@dataclass
class MemoryAccess:
    """Access matrix description of one load/store."""

    access_op: Operation
    memref: Value
    basis: List[BasisVariable]
    matrix: List[List[int]]        # rows: index dimensions, cols: basis
    offsets: List[int]
    is_store: bool

    # -- matrix views --------------------------------------------------------
    def _columns_of_kind(self, kind: BasisKind) -> List[int]:
        return [i for i, b in enumerate(self.basis) if b.kind is kind]

    def submatrix(self, kind: BasisKind) -> List[List[int]]:
        columns = self._columns_of_kind(kind)
        return [[row[c] for c in columns] for row in self.matrix]

    def inter_work_item_matrix(self) -> List[List[int]]:
        """Matrix restricted to work-item id columns (Section VI-C)."""
        return self.submatrix(BasisKind.WORK_ITEM)

    def intra_work_item_matrix(self) -> List[List[int]]:
        """Matrix restricted to loop induction variable columns."""
        return self.submatrix(BasisKind.LOOP)

    # -- classification --------------------------------------------------------
    def has_temporal_reuse(self) -> bool:
        """The intra–work-item matrix is not the zero matrix."""
        return any(any(entry != 0 for entry in row)
                   for row in self.intra_work_item_matrix())

    def classify_inter_work_item(self) -> str:
        """Classify the inter–work-item pattern (Linear / ReverseLinear / ...).

        Following [14]: *Linear* means the fastest-varying subscript (last
        row) depends with unit stride on the fastest-varying work-item id
        (last work-item column) and slower subscripts do not depend on it;
        *ReverseLinear* is the transposed situation.
        """
        matrix = self.inter_work_item_matrix()
        if not matrix or not matrix[0]:
            return "None"
        if all(all(entry == 0 for entry in row) for row in matrix):
            return "Zero"
        last_row = matrix[-1]
        fastest_col = len(matrix[0]) - 1
        if last_row[fastest_col] == 1 and \
                all(matrix[r][fastest_col] == 0 for r in range(len(matrix) - 1)):
            return "Linear"
        first_col_last_row = last_row[0] if last_row else 0
        if len(matrix[0]) > 1 and first_col_last_row == 1 and \
                all(matrix[r][0] == 0 for r in range(len(matrix) - 1)):
            return "ReverseLinear"
        return "NonLinear"

    def can_be_coalesced(self) -> bool:
        return self.classify_inter_work_item() in ("Linear", "ReverseLinear")

    def work_item_stride_elements(self, row_extent: int = 1024) -> int:
        """Approximate element stride between adjacent work-items.

        Used by the GPU cost model when it has no simulation-observed
        addresses: the stride of the linearized (row-major) address with
        respect to the fastest-varying work-item id, assuming each row of
        the accessed array has ``row_extent`` elements.
        """
        matrix = self.inter_work_item_matrix()
        if not matrix or not matrix[0]:
            return 0
        fastest_col = len(matrix[0]) - 1
        stride = 0
        multiplier = 1
        for row in reversed(matrix):
            stride += row[fastest_col] * multiplier
            multiplier *= row_extent
        return stride

    def __repr__(self) -> str:
        return (f"<MemoryAccess {self.access_op.OPERATION_NAME} matrix={self.matrix} "
                f"offsets={self.offsets} basis={self.basis}>")


class MemoryAccessAnalysis:
    """Derives :class:`MemoryAccess` descriptions for accesses in a kernel."""

    def __init__(self, root: Operation):
        self.root = root
        self.accesses: List[MemoryAccess] = []
        self._by_op: Dict[int, MemoryAccess] = {}
        self._run()

    # ------------------------------------------------------------------
    def _run(self) -> None:
        for op in self.root.walk():
            if isinstance(op, (affine_dialect.AffineLoadOp,
                               affine_dialect.AffineStoreOp,
                               memref_dialect.LoadOp,
                               memref_dialect.StoreOp)):
                access = self._analyze_access(op)
                if access is not None:
                    self.accesses.append(access)
                    self._by_op[id(op)] = access

    def access_for(self, op: Operation) -> Optional[MemoryAccess]:
        return self._by_op.get(id(op))

    # ------------------------------------------------------------------
    def _analyze_access(self, op: Operation) -> Optional[MemoryAccess]:
        is_store = isinstance(op, (affine_dialect.AffineStoreOp,
                                   memref_dialect.StoreOp))
        memref = op.memref
        index_values = self._index_expressions_of(op)
        if index_values is None:
            return None

        builder = _ExpressionBuilder()
        expressions: List[LinearExpression] = []
        try:
            for index_value in index_values:
                expressions.append(builder.expression_of(index_value))
        except NonAffineAccessError:
            return None

        basis = builder.basis_list()
        # Stable column order: work-item ids first, then loop ivs (outer to
        # inner is preserved by first-encounter order), then parameters.
        order = {BasisKind.WORK_ITEM: 0, BasisKind.LOOP: 1, BasisKind.PARAMETER: 2}
        basis.sort(key=lambda b: order[b.kind])
        matrix: List[List[int]] = []
        offsets: List[int] = []
        for expression in expressions:
            row = [expression.coefficients.get(id(b.value), 0) for b in basis]
            matrix.append(row)
            offsets.append(expression.constant)
        return MemoryAccess(op, memref, basis, matrix, offsets, is_store)

    def _index_expressions_of(self, op: Operation) -> Optional[List[Value]]:
        """The index expressions addressed by ``op``, one per dimension.

        For accesses through ``sycl.accessor.subscript`` the per-dimension
        expressions are the arguments of the ``sycl.constructor`` that built
        the subscript id (Listing 3); for plain memref accesses they are the
        access indices themselves.
        """
        memref = op.memref
        subscript = memref.defining_op()
        if isinstance(subscript, SYCLAccessorSubscriptOp):
            constructor = self._constructor_of(subscript.index)
            if constructor is None:
                direct = constant_value_of(subscript.index)
                if direct is not None:
                    return []
                return [subscript.index]
            return list(constructor.arguments)
        indices = list(op.indices)
        return indices

    @staticmethod
    def _constructor_of(id_value: Value) -> Optional[SYCLConstructorOp]:
        for user in id_value.users():
            if isinstance(user, SYCLConstructorOp) and user.destination is id_value:
                return user
        return None
