"""SYCL-specific alias analysis (paper, Section V-A).

The SYCL dialect encodes enough semantics to prove that many values do not
alias:

* SYCL *index-like* objects (``id``, ``range``, ``item``, ``nd_item``,
  ``group``) never alias accessor data — they are separate objects entirely.
* Local accessors live in work-group local memory, which never aliases
  global-memory accessors.
* Two distinct local accessors receive distinct local-memory allocations.
* Accessor subscripts of the *same* accessor with the same index must alias;
  with different constant indices they do not alias.
* Accessor subscripts of *different* accessors do not alias when the host
  analysis has proven the underlying buffers to be distinct (recorded as the
  ``sycl.noalias_args`` attribute on the kernel by the host-device
  optimization pass) — this is the joint host/device refinement discussed in
  Section VII-B.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..ir import ArrayAttr, BlockArgument, IntegerAttr, MemRefType, Value
from ..dialects.func import FuncOp
from ..dialects.sycl import (
    AccessorType,
    GroupType,
    IDType,
    ItemType,
    NDItemType,
    NDRangeType,
    RangeType,
    SYCLAccessorSubscriptOp,
    accessor_type_of,
)
from .alias import AliasAnalysis, AliasResult, underlying_object

_INDEX_LIKE = (IDType, RangeType, ItemType, NDItemType, GroupType, NDRangeType)


def _element_kind(value: Value):
    """The SYCL type carried by a value (directly or behind a memref)."""
    type_ = value.type
    if isinstance(type_, MemRefType):
        return type_.element_type
    return type_


def _is_index_like(value: Value) -> bool:
    return isinstance(_element_kind(value), _INDEX_LIKE)


def _is_accessor(value: Value) -> bool:
    return isinstance(_element_kind(value), AccessorType)


def _noalias_arg_indices(func: FuncOp) -> Sequence[int]:
    attr = func.attributes.get("sycl.noalias_args")
    if isinstance(attr, ArrayAttr):
        return [a.value for a in attr if isinstance(a, IntegerAttr)]
    return []


def _kernel_argument(value: Value) -> Optional[BlockArgument]:
    if not isinstance(value, BlockArgument):
        return None
    block = value.owner_block()
    if block is None:
        return None
    parent = block.parent_op()
    if isinstance(parent, FuncOp):
        return value
    return None


def sycl_values_definitely_distinct(a: Value, b: Value) -> bool:
    """Type-level distinctness facts contributed by the SYCL dialect."""
    if a is b:
        return False

    kind_a = _element_kind(a)
    kind_b = _element_kind(b)

    # Index-like objects never alias accessors or raw data memrefs.
    if _is_index_like(a) != _is_index_like(b):
        return True

    # Local accessors never alias device (global-memory) accessors.
    if isinstance(kind_a, AccessorType) and isinstance(kind_b, AccessorType):
        if kind_a.is_local != kind_b.is_local:
            return True
        # Distinct local accessors have distinct local allocations.
        if kind_a.is_local and kind_b.is_local and a is not b:
            arg_a = _kernel_argument(a)
            arg_b = _kernel_argument(b)
            if arg_a is not None and arg_b is not None and arg_a is not arg_b:
                return True
    return False


def _constructor_of_id(id_value: Value):
    """The ``sycl.constructor`` initialising ``id_value``, if unique."""
    from ..dialects.sycl import SYCLConstructorOp

    constructors = [user for user in id_value.users()
                    if isinstance(user, SYCLConstructorOp) and
                    user.destination is id_value]
    return constructors[0] if len(constructors) == 1 else None


def _equivalent_subscript_ids(a: SYCLAccessorSubscriptOp,
                              b: SYCLAccessorSubscriptOp) -> bool:
    """True when both subscripts index with ids built from identical values."""
    ctor_a = _constructor_of_id(a.index)
    ctor_b = _constructor_of_id(b.index)
    if ctor_a is None or ctor_b is None:
        return False
    args_a = list(ctor_a.arguments)
    args_b = list(ctor_b.arguments)
    return len(args_a) == len(args_b) and all(
        x is y for x, y in zip(args_a, args_b))


def _constant_subscript_index(op: SYCLAccessorSubscriptOp) -> Optional[tuple]:
    """If the subscript's id is built from constants only, return them."""
    from ..dialects.arith import constant_value_of
    from ..dialects.sycl import SYCLConstructorOp

    index_value = op.index
    defining = index_value.defining_op()
    if defining is None:
        return None
    # The id may be constructed into an alloca right before the subscript.
    for user in index_value.users():
        if isinstance(user, SYCLConstructorOp) and user.destination is index_value:
            components = []
            for arg in user.arguments:
                const = constant_value_of(arg)
                if const is None:
                    return None
                components.append(int(const))
            return tuple(components)
    const = constant_value_of(index_value)
    if const is not None:
        return (int(const),)
    return None


class SYCLAliasAnalysis(AliasAnalysis):
    """Alias analysis augmented with SYCL dialect semantics."""

    def alias(self, a: Value, b: Value) -> AliasResult:
        if a is b:
            return AliasResult.MUST_ALIAS

        if sycl_values_definitely_distinct(a, b):
            return AliasResult.NO_ALIAS

        result = self._alias_subscripts(a, b)
        if result is not None:
            return result

        base_a = underlying_object(a)
        base_b = underlying_object(b)
        if base_a is not base_b and sycl_values_definitely_distinct(base_a, base_b):
            return AliasResult.NO_ALIAS
        if base_a is not base_b and self._distinct_noalias_arguments(base_a, base_b):
            return AliasResult.NO_ALIAS

        return super().alias(a, b)

    # ------------------------------------------------------------------
    def _alias_subscripts(self, a: Value, b: Value) -> Optional[AliasResult]:
        op_a = a.defining_op()
        op_b = b.defining_op()
        if not isinstance(op_a, SYCLAccessorSubscriptOp) or \
                not isinstance(op_b, SYCLAccessorSubscriptOp):
            return None

        acc_a = op_a.accessor
        acc_b = op_b.accessor
        if acc_a is acc_b:
            if op_a.index is op_b.index:
                return AliasResult.MUST_ALIAS
            if _equivalent_subscript_ids(op_a, op_b):
                return AliasResult.MUST_ALIAS
            idx_a = _constant_subscript_index(op_a)
            idx_b = _constant_subscript_index(op_b)
            if idx_a is not None and idx_b is not None:
                return (AliasResult.MUST_ALIAS if idx_a == idx_b
                        else AliasResult.NO_ALIAS)
            return AliasResult.PARTIAL_ALIAS

        # Different accessor values.
        if sycl_values_definitely_distinct(acc_a, acc_b):
            return AliasResult.NO_ALIAS
        if self._distinct_noalias_arguments(acc_a, acc_b):
            return AliasResult.NO_ALIAS

        type_a = accessor_type_of(acc_a)
        type_b = accessor_type_of(acc_b)
        if type_a is not None and type_b is not None:
            # Read-only accessors cannot alias write-only accessors to the
            # same buffer in a well-formed SYCL program only if the host
            # proved distinct buffers; types alone are not enough.
            if type_a.is_local != type_b.is_local:
                return AliasResult.NO_ALIAS
        return AliasResult.MAY_ALIAS

    def _distinct_noalias_arguments(self, a: Value, b: Value) -> bool:
        """Both values are distinct kernel arguments marked no-alias."""
        arg_a = _kernel_argument(a)
        arg_b = _kernel_argument(b)
        if arg_a is None or arg_b is None or arg_a is arg_b:
            return False
        func_a = arg_a.owner_block().parent_op()
        func_b = arg_b.owner_block().parent_op()
        if func_a is not func_b or not isinstance(func_a, FuncOp):
            return False
        noalias = set(_noalias_arg_indices(func_a))
        return arg_a.arg_index in noalias and arg_b.arg_index in noalias
