"""Call graph construction.

The uniformity analysis (paper, Section V-C) works inter-procedurally by
propagating argument uniformity along call edges, and the host-device
optimizations follow ``sycl.host.schedule_kernel`` edges from host code into
device kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..ir import CallOpInterface, Operation
from ..dialects.builtin import ModuleOp
from ..dialects.func import FuncOp
from ..dialects.llvm import LLVMFuncOp
from ..dialects.sycl import SYCLHostScheduleKernelOp


@dataclass
class CallSite:
    """One call edge: ``call_op`` inside ``caller`` targeting ``callee``."""

    caller: Operation
    call_op: Operation
    callee: Operation


@dataclass
class CallGraphNode:
    function: Operation
    call_sites: List[CallSite] = field(default_factory=list)
    callers: List[CallSite] = field(default_factory=list)


class CallGraph:
    """Call graph of a (possibly combined host+device) module."""

    def __init__(self, module: ModuleOp):
        self.module = module
        self.nodes: Dict[str, CallGraphNode] = {}
        self._functions_by_name: Dict[str, Operation] = {}
        self._build()

    # ------------------------------------------------------------------
    def _collect_functions(self, module: ModuleOp) -> None:
        for op in module.body.operations:
            if isinstance(op, (FuncOp, LLVMFuncOp)):
                name = op.get_str_attr("sym_name", "")
                self._functions_by_name[name] = op
                self.nodes.setdefault(name, CallGraphNode(op))
            elif isinstance(op, ModuleOp):
                self._collect_functions(op)

    def _build(self) -> None:
        self._collect_functions(self.module)
        for name, node in self.nodes.items():
            function = node.function
            for op in function.walk(include_self=False):
                callee_name: Optional[str] = None
                if isinstance(op, CallOpInterface):
                    callee_name = op.callee_name()
                elif isinstance(op, SYCLHostScheduleKernelOp):
                    callee_name = op.kernel_name
                if callee_name is None:
                    continue
                callee = self._functions_by_name.get(callee_name)
                if callee is None:
                    continue
                site = CallSite(function, op, callee)
                node.call_sites.append(site)
                self.nodes[callee_name].callers.append(site)

    # ------------------------------------------------------------------
    def lookup(self, name: str) -> Optional[Operation]:
        return self._functions_by_name.get(name)

    def node(self, function: Operation) -> Optional[CallGraphNode]:
        return self.nodes.get(function.get_str_attr("sym_name", ""))

    def callers_of(self, function: Operation) -> List[CallSite]:
        node = self.node(function)
        return list(node.callers) if node else []

    def callees_of(self, function: Operation) -> List[CallSite]:
        node = self.node(function)
        return list(node.call_sites) if node else []

    def functions(self) -> List[Operation]:
        return [node.function for node in self.nodes.values()]

    def has_external_callers(self, function: Operation) -> bool:
        """Kernel entry points / public functions may be called externally."""
        visibility = function.get_str_attr("sym_visibility", "public")
        return visibility != "private"

    def post_order(self) -> List[Operation]:
        """Callee-before-caller ordering (cycles broken arbitrarily)."""
        visited: Set[str] = set()
        order: List[Operation] = []

        def visit(name: str) -> None:
            if name in visited:
                return
            visited.add(name)
            node = self.nodes.get(name)
            if node is None:
                return
            for site in node.call_sites:
                callee_name = site.callee.get_str_attr("sym_name", "")
                visit(callee_name)
            order.append(node.function)

        for name in self.nodes:
            visit(name)
        return order

    def reverse_post_order(self) -> List[Operation]:
        return list(reversed(self.post_order()))
