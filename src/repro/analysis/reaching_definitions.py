"""Reaching definition analysis (paper, Section V-B).

For every program point and memory value the analysis provides two sets of
defining operations:

* **modifiers (MODS)** — operations that definitely wrote the value (their
  write target must-alias the queried value);
* **potential modifiers (PMODS)** — operations whose write target may alias
  the queried value.

The example from Listing 1 of the paper (two stores under an ``scf.if`` to
potentially-aliasing memrefs) yields ``{MODS: a, PMODS: b}`` for the load,
which is exactly what the unit tests for this module check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Set

from ..ir import EffectKind, Operation, Value, get_memory_effects
from .alias import AliasAnalysis, underlying_object
from .dataflow import StructuredDataFlowAnalysis


@dataclass
class ReachingDefs:
    """Result of a reaching-definition query."""

    mods: FrozenSet[Operation] = frozenset()
    pmods: FrozenSet[Operation] = frozenset()

    @property
    def all_definitions(self) -> FrozenSet[Operation]:
        return self.mods | self.pmods

    def is_empty(self) -> bool:
        return not self.mods and not self.pmods


class _DefinitionState:
    """Per-object sets of reaching writes plus "unknown" writes."""

    def __init__(self):
        #: underlying object id -> (object value, set of must-writes)
        self.definitions: Dict[int, tuple] = {}
        #: operations with unknown side effects (calls, barriers, ...)
        self.unknown_writers: Set[Operation] = set()

    def copy(self) -> "_DefinitionState":
        new = _DefinitionState()
        new.definitions = {
            key: (obj, set(ops)) for key, (obj, ops) in self.definitions.items()
        }
        new.unknown_writers = set(self.unknown_writers)
        return new

    def join(self, other: "_DefinitionState") -> bool:
        changed = False
        for key, (obj, ops) in other.definitions.items():
            if key not in self.definitions:
                self.definitions[key] = (obj, set(ops))
                changed = True
            else:
                existing = self.definitions[key][1]
                before = len(existing)
                existing |= ops
                changed |= len(existing) != before
        before_unknown = len(self.unknown_writers)
        self.unknown_writers |= other.unknown_writers
        changed |= len(self.unknown_writers) != before_unknown
        return changed

    def record_write(self, obj: Value, op: Operation) -> None:
        key = id(obj)
        # A new definite write replaces previous reaching writes to the same
        # object along this path.
        self.definitions[key] = (obj, {op})

    def record_unknown_write(self, op: Operation) -> None:
        self.unknown_writers.add(op)


class ReachingDefinitionAnalysis(StructuredDataFlowAnalysis[_DefinitionState]):
    """Flow-sensitive reaching-definition analysis over a function."""

    def __init__(self, function: Operation,
                 alias_analysis: Optional[AliasAnalysis] = None):
        super().__init__()
        self.function = function
        self.alias_analysis = alias_analysis or AliasAnalysis()
        self.run(function)

    # -- framework hooks ----------------------------------------------------
    def initial_state(self, function: Operation) -> _DefinitionState:
        return _DefinitionState()

    def transfer(self, op: Operation, state: _DefinitionState) -> None:
        effects = get_memory_effects(op)
        if effects is None:
            # Unknown effects: the operation may write anything.
            state.record_unknown_write(op)
            return
        for effect in effects:
            if effect.kind != EffectKind.WRITE:
                continue
            if effect.value is None:
                state.record_unknown_write(op)
            else:
                state.record_write(underlying_object(effect.value), op)

    # -- queries --------------------------------------------------------------
    def reaching_definitions(self, at: Operation, value: Value) -> ReachingDefs:
        """MODS / PMODS reaching ``at`` for the memory behind ``value``."""
        state = self.state_before(at)
        if state is None:
            return ReachingDefs()
        target = underlying_object(value)
        mods: Set[Operation] = set()
        pmods: Set[Operation] = set(state.unknown_writers)
        for _, (obj, ops) in state.definitions.items():
            result = self.alias_analysis.alias(obj, target)
            if result.is_no():
                continue
            if result.is_must():
                mods |= ops
            else:
                pmods |= ops
        return ReachingDefs(frozenset(mods), frozenset(pmods))

    def definite_modifiers(self, at: Operation, value: Value) -> FrozenSet[Operation]:
        return self.reaching_definitions(at, value).mods

    def potential_modifiers(self, at: Operation, value: Value) -> FrozenSet[Operation]:
        return self.reaching_definitions(at, value).pmods
