"""MLIR-shaped analysis manager: cached, invalidation-aware analyses.

Passes request analyses by class —

::

    dominance = am.get(DominanceInfo, function)
    uniformity = am.get(UniformityAnalysis, module)

— and the manager constructs, caches and invalidates them:

* results are cached per ``(analysis class, anchor op)`` and tagged with
  the anchor's structural fingerprint at construction time; a lookup whose
  fingerprint no longer matches is a miss (the safety net under passes
  that mutate without declaring it);
* after a pass runs on an anchor, :meth:`invalidate` evicts every cached
  analysis whose anchor is that op, one of its ancestors or one of its
  descendants — *except* the classes the pass declares in
  ``Pass.preserves()`` (MLIR's ``markAnalysesPreserved``);
* hit/miss/invalidation counts are kept per manager and aggregate across
  the per-worker child managers the ``jobs=N`` scheduler spawns
  (:meth:`child` / :meth:`absorb`).

The *current* manager is tracked per thread
(:func:`current_analysis_manager` / :func:`analysis_scope`) rather than
stored on pass instances: the parallel scheduler runs one pass instance
concurrently across functions, so instance state would race.
"""

from __future__ import annotations

import inspect
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple, Type

from ..ir import Operation
from ..ir.fingerprint import fingerprint

#: Sentinel for ``Pass.preserves()``: every cached analysis survives.
ALL_ANALYSES = object()


class _Entry:
    """One cached analysis result, pinned to its anchor op."""

    __slots__ = ("analysis", "anchor", "fingerprint")

    def __init__(self, analysis: Any, anchor: Operation, digest: str):
        self.analysis = analysis
        self.anchor = anchor
        self.fingerprint = digest


def _construct(analysis_cls: Type, anchor: Operation) -> Any:
    """Instantiate ``analysis_cls`` for ``anchor``.

    Analyses follow the single-argument convention (``DominanceInfo(op)``);
    classes whose constructor takes no required parameters (e.g.
    ``SYCLAliasAnalysis``) are built without the anchor.
    """
    try:
        signature = inspect.signature(analysis_cls)
    except (TypeError, ValueError):  # pragma: no cover - builtins
        return analysis_cls(anchor)
    positional = [
        p for p in signature.parameters.values()
        if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
    ]
    if positional:
        return analysis_cls(anchor)
    return analysis_cls()


class AnalysisManager:
    """Constructs, caches and invalidates analyses for pass pipelines."""

    def __init__(self):
        self._entries: Dict[Tuple[Type, int], _Entry] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        #: Analysis class names a compile-cache hit reported still valid.
        self.carried: List[str] = []

    # -- queries -----------------------------------------------------------
    def get(self, analysis_cls: Type, anchor: Operation) -> Any:
        """The (cached) ``analysis_cls`` result anchored at ``anchor``."""
        key = (analysis_cls, id(anchor))
        digest = fingerprint(anchor)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.anchor is anchor \
                    and entry.fingerprint == digest:
                self.hits += 1
                return entry.analysis
            self.misses += 1
        analysis = _construct(analysis_cls, anchor)
        with self._lock:
            self._entries[key] = _Entry(analysis, anchor, digest)
        return analysis

    def get_cached(self, analysis_cls: Type,
                   anchor: Operation) -> Optional[Any]:
        """The cached result if present and fresh; never constructs."""
        key = (analysis_cls, id(anchor))
        with self._lock:
            entry = self._entries.get(key)
        if entry is None or entry.anchor is not anchor:
            return None
        if entry.fingerprint != fingerprint(anchor):
            return None
        return entry.analysis

    # -- invalidation ------------------------------------------------------
    def invalidate(self, anchor: Operation, preserved=()) -> int:
        """Evict analyses made stale by a pass that ran on ``anchor``.

        Evicts entries anchored at ``anchor``, at any of its ancestors
        (their whole-tree view includes the mutated subtree) and at any of
        its descendants.  ``preserved`` is an iterable of analysis classes
        to keep, or :data:`ALL_ANALYSES` to keep everything.
        """
        if preserved is ALL_ANALYSES:
            return 0
        preserved_classes = tuple(preserved)
        evicted = 0
        with self._lock:
            for key in list(self._entries):
                analysis_cls, _ = key
                if analysis_cls in preserved_classes:
                    continue
                entry = self._entries[key]
                if self._related(entry.anchor, anchor):
                    del self._entries[key]
                    evicted += 1
            self.invalidations += evicted
        return evicted

    @staticmethod
    def _related(cached_anchor: Operation, mutated: Operation) -> bool:
        if cached_anchor is mutated:
            return True
        return mutated.is_ancestor_of(cached_anchor) or \
            cached_anchor.is_ancestor_of(mutated)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # -- parallel scheduling ----------------------------------------------
    def child(self) -> "AnalysisManager":
        """A fresh manager for one worker of the ``jobs=N`` scheduler.

        Workers run on disjoint isolated functions, so children start
        empty (module-anchored entries cannot be shared safely while
        sibling workers mutate the module's functions) and their stats
        are folded back with :meth:`absorb`.
        """
        return AnalysisManager()

    def absorb(self, worker: "AnalysisManager") -> None:
        """Fold a worker manager's stats (and live entries) back in."""
        with self._lock:
            self.hits += worker.hits
            self.misses += worker.misses
            self.invalidations += worker.invalidations
            self._entries.update(worker._entries)

    # -- compile-cache interplay ------------------------------------------
    def note_carried(self, analysis_names) -> None:
        """Record analyses a compile-cache hit reported as still valid."""
        with self._lock:
            self.carried.extend(analysis_names)

    def preserved_names(self) -> List[str]:
        """Class names of every currently cached (live) analysis."""
        with self._lock:
            return sorted({cls.__name__ for cls, _ in self._entries})

    def preserved_names_for(self, root: Operation) -> List[str]:
        """Class names of cached analyses anchored within ``root``'s tree."""
        with self._lock:
            return sorted({
                cls.__name__ for (cls, _), entry in self._entries.items()
                if entry.anchor is root or root.is_ancestor_of(entry.anchor)
            })

    # -- reporting ---------------------------------------------------------
    def describe(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "entries": len(self._entries),
            }

    def __repr__(self) -> str:
        stats = self.describe()
        return (f"<AnalysisManager hits={stats['hits']} "
                f"misses={stats['misses']} "
                f"invalidations={stats['invalidations']} "
                f"entries={stats['entries']}>")


# ---------------------------------------------------------------------------
# The per-thread current manager
# ---------------------------------------------------------------------------

_TLS = threading.local()


def current_analysis_manager() -> Optional[AnalysisManager]:
    """The manager installed for this thread's pipeline run, if any."""
    return getattr(_TLS, "manager", None)


@contextmanager
def analysis_scope(manager: Optional[AnalysisManager]) -> Iterator[
        Optional[AnalysisManager]]:
    """Install ``manager`` as this thread's current analysis manager."""
    previous = getattr(_TLS, "manager", None)
    _TLS.manager = manager
    try:
        yield manager
    finally:
        _TLS.manager = previous


def get_analysis(analysis_cls: Type, anchor: Operation) -> Any:
    """Request an analysis through the current manager, or build directly.

    The helper passes use (via ``Pass.get_analysis``): inside a pipeline
    run results are cached and invalidation-tracked; outside (unit tests,
    ad-hoc scripts) it falls back to direct construction.
    """
    manager = current_analysis_manager()
    if manager is not None:
        return manager.get(analysis_cls, anchor)
    return _construct(analysis_cls, anchor)
