"""Alias analysis.

MLIR provides an alias-analysis framework that can be augmented with
dialect-specific knowledge (paper, Section V-A).  :class:`AliasAnalysis`
implements the generic, conservative rules; ``repro.analysis.sycl_alias``
extends it with SYCL-dialect knowledge exactly as the paper describes.
"""

from __future__ import annotations

import enum
from typing import Optional

from ..ir import MemRefType, Operation, PointerType, Value
from ..dialects import memref as memref_dialect
from ..dialects.func import FuncOp


class AliasResult(enum.Enum):
    """Result of an alias query, mirroring MLIR's ``AliasResult``."""

    NO_ALIAS = "no_alias"
    MAY_ALIAS = "may_alias"
    PARTIAL_ALIAS = "partial_alias"
    MUST_ALIAS = "must_alias"

    def is_no(self) -> bool:
        return self is AliasResult.NO_ALIAS

    def is_must(self) -> bool:
        return self is AliasResult.MUST_ALIAS

    def is_may(self) -> bool:
        return self in (AliasResult.MAY_ALIAS, AliasResult.PARTIAL_ALIAS)


def underlying_object(value: Value) -> Value:
    """Chase view-like operations back to the underlying allocation/argument.

    ``memref.cast`` and subscript-style operations produce views of another
    value; for alias purposes the query is about the underlying object.
    """
    from ..dialects.sycl import SYCLAccessorGetPointerOp, SYCLAccessorSubscriptOp

    current = value
    for _ in range(64):  # defensive bound against malformed chains
        defining = current.defining_op()
        if defining is None:
            return current
        if isinstance(defining, memref_dialect.CastOp):
            current = defining.operands[0]
            continue
        if isinstance(defining, (SYCLAccessorSubscriptOp, SYCLAccessorGetPointerOp)):
            current = defining.operands[0]
            continue
        return current
    return current


def is_distinct_allocation(value: Value) -> bool:
    """True when ``value`` is produced by an allocation operation."""
    defining = value.defining_op()
    return isinstance(defining, (memref_dialect.AllocaOp, memref_dialect.AllocOp))


def memory_space_of(value: Value) -> Optional[str]:
    type_ = value.type
    if isinstance(type_, MemRefType):
        return type_.memory_space
    if isinstance(type_, PointerType):
        return "host"
    return None


class AliasAnalysis:
    """Conservative, dialect-independent alias analysis."""

    def alias(self, a: Value, b: Value) -> AliasResult:
        if a is b:
            return AliasResult.MUST_ALIAS

        base_a = underlying_object(a)
        base_b = underlying_object(b)
        if base_a is base_b and (base_a is not a or base_b is not b):
            # Views of the same object: they may overlap.
            return AliasResult.PARTIAL_ALIAS

        result = self._alias_underlying(base_a, base_b)
        return result

    # ------------------------------------------------------------------
    def _alias_underlying(self, a: Value, b: Value) -> AliasResult:
        if a is b:
            return AliasResult.MUST_ALIAS

        # Two distinct allocations never alias.
        if is_distinct_allocation(a) and is_distinct_allocation(b):
            return AliasResult.NO_ALIAS
        # An allocation local to a function cannot alias a function argument
        # (the argument existed before the allocation).
        if is_distinct_allocation(a) and self._is_function_argument(b):
            return AliasResult.NO_ALIAS
        if is_distinct_allocation(b) and self._is_function_argument(a):
            return AliasResult.NO_ALIAS

        # Values in different memory spaces (global vs local vs private)
        # never alias.
        space_a = memory_space_of(a)
        space_b = memory_space_of(b)
        if space_a is not None and space_b is not None and space_a != space_b:
            return AliasResult.NO_ALIAS

        return AliasResult.MAY_ALIAS

    @staticmethod
    def _is_function_argument(value: Value) -> bool:
        block = value.owner_block()
        if block is None or value.defining_op() is not None:
            return False
        parent = block.parent_op()
        return isinstance(parent, FuncOp)

    # ------------------------------------------------------------------
    def may_alias(self, a: Value, b: Value) -> bool:
        return not self.alias(a, b).is_no()

    def must_alias(self, a: Value, b: Value) -> bool:
        return self.alias(a, b).is_must()

    def no_alias(self, a: Value, b: Value) -> bool:
        return self.alias(a, b).is_no()

    def get_mod_ref(self, op: Operation, location: Value) -> str:
        """Classic Mod/Ref interface: how may ``op`` affect ``location``."""
        from ..ir import EffectKind, get_memory_effects

        effects = get_memory_effects(op)
        if effects is None:
            return "modref"
        mods = False
        refs = False
        for effect in effects:
            if effect.value is not None and self.no_alias(effect.value, location):
                continue
            if effect.kind == EffectKind.WRITE:
                mods = True
            elif effect.kind == EffectKind.READ:
                refs = True
        if mods and refs:
            return "modref"
        if mods:
            return "mod"
        if refs:
            return "ref"
        return "noeffect"
