"""Conversion passes: structured IR down to an LLVM-dialect CFG.

The ``lower-to-llvm`` pipeline (registered in
:mod:`repro.transforms.pipelines`) composes the passes defined here:

``lower-affine``
    ``affine.for`` / ``affine.load`` / ``affine.store`` /
    ``affine.apply`` / ``affine.min`` to their ``scf`` / ``memref`` /
    ``arith`` equivalents.
``convert-scf-to-cf``
    structured ``scf.if`` / ``scf.for`` / ``scf.while`` into a
    branch-based CFG of ``cf.br`` / ``cf.cond_br`` blocks.
``convert-arith-to-llvm``
    ``arith.*`` into the mirroring ``llvm.*`` arithmetic.
``convert-memref-to-llvm``
    ``memref.load`` / ``memref.store`` into
    ``llvm.getelementptr`` + ``llvm.load`` / ``llvm.store`` through a
    ``builtin.unrealized_conversion_cast`` pointer bridge, and private
    static allocations into ``llvm.alloca``.
``convert-func-to-llvm``
    ``func.func`` / ``func.return`` / ``func.call`` into ``llvm.func``
    / ``llvm.return`` / ``llvm.call``.

Every pass is robust standalone (the CI pass-smoke job runs each
registered pass in isolation with ``--verify-each``): operations a pass
cannot convert are left untouched rather than rejected, so partially
lowered modules always verify and interpret.  The differential harness
(:mod:`repro.interp.differential`) is the proof the full composition
preserves semantics.
"""

from __future__ import annotations

from typing import List, Optional

from ..dialects import affine as affine_d
from ..dialects import arith, cf, memref, scf
from ..dialects import llvm as llvm_d
from ..dialects.builtin import UnrealizedConversionCastOp
from ..dialects.func import CallOp, FuncOp, ReturnOp
from ..ir import (
    Block,
    IndexType,
    MemRefType,
    Operation,
    PointerType,
    Region,
    is_scalar,
)
from ..transforms.pass_manager import (
    CompileReport,
    FunctionPass,
    ModulePass,
    register_pass,
)


def _move_block(block: Block, region: Region) -> Block:
    """Move ``block`` (and its argument identities) into ``region``."""
    old = block.parent
    if old is not None:
        old.blocks.remove(block)
    region.add_block(block)
    return block


def _pop_terminator(block: Block, op_class) -> List:
    """Detach ``block``'s terminator if it is an ``op_class``.

    Returns the terminator's operands (the values the structured region
    yielded); a missing terminator means "yields nothing".
    """
    terminator = block.terminator
    if terminator is None or not isinstance(terminator, op_class):
        return []
    values = list(terminator.operands)
    terminator.erase()
    return values


# ---------------------------------------------------------------------------
# lower-affine
# ---------------------------------------------------------------------------

@register_pass
class LowerAffine(FunctionPass):
    """Expand ``affine.*`` into ``scf`` loops and plain memory accesses.

    ``affine.apply`` becomes a ``muli``/``addi`` chain (skipping zero
    coefficients and strength-reducing unit ones), ``affine.min`` a
    ``minsi`` chain, and ``affine.for``'s integer step is materialized
    as an ``arith.constant`` so the loop can become ``scf.for``.  The
    affine body *block* is moved, not cloned, preserving block-argument
    identities and any nested regions untouched.
    """

    NAME = "lower-affine"
    DESCRIPTION = "lower affine operations to scf/memref/arith"
    STATISTICS = (
        ("lowered", "affine operations expanded to scf/memref/arith"),
    )

    def run_on_function(self, function: FuncOp,
                        report: CompileReport) -> None:
        lowered = 0
        while True:
            target = None
            for op in function.walk(include_self=False):
                if isinstance(op, (affine_d.AffineForOp,
                                   affine_d.AffineLoadOp,
                                   affine_d.AffineStoreOp,
                                   affine_d.AffineApplyOp,
                                   affine_d.AffineMinOp)):
                    target = op
                    break
            if target is None:
                break
            self._lower(target)
            lowered += 1
        if lowered:
            report.add_statistic(self.NAME, "lowered", lowered)

    # ------------------------------------------------------------------
    def _lower(self, op: Operation) -> None:
        if isinstance(op, affine_d.AffineForOp):
            self._lower_for(op)
        elif isinstance(op, affine_d.AffineLoadOp):
            new = memref.LoadOp.build(op.memref, list(op.indices))
            op.parent.insert_before(op, new)
            op.replace_all_uses_with(list(new.results))
            op.erase()
        elif isinstance(op, affine_d.AffineStoreOp):
            new = memref.StoreOp.build(op.value, op.memref, list(op.indices))
            op.parent.insert_before(op, new)
            op.erase()
        elif isinstance(op, affine_d.AffineApplyOp):
            self._lower_apply(op)
        elif isinstance(op, affine_d.AffineMinOp):
            self._lower_min(op)

    def _lower_for(self, op: affine_d.AffineForOp) -> None:
        block = op.parent
        step = arith.ConstantOp.build(op.step, IndexType())
        block.insert_before(op, step)
        loop = scf.ForOp.build(op.lower_bound, op.upper_bound,
                               step.results[0], list(op.init_args))
        block.insert_before(op, loop)
        old_body, new_body = op.body, loop.body
        for old_arg, new_arg in zip(old_body.arguments, new_body.arguments):
            old_arg.replace_all_uses_with(new_arg)
        for body_op in old_body.operations:
            new_body.append(body_op)
        yielded = _pop_terminator(new_body, affine_d.AffineYieldOp)
        new_body.append(scf.YieldOp.build(yielded))
        op.replace_all_uses_with(list(loop.results))
        op.erase()

    def _lower_apply(self, op: affine_d.AffineApplyOp) -> None:
        block = op.parent
        coefficients = op.coefficients
        if len(coefficients) != len(op.operands):
            return  # malformed hand-written IR; leave it alone
        constant = op.get_int_attr("constant", 0)
        total: Optional = None
        for coeff, operand in zip(coefficients, op.operands):
            if coeff == 0:
                continue
            if coeff == 1:
                term = operand
            else:
                c = arith.ConstantOp.build(coeff, IndexType())
                block.insert_before(op, c)
                mul = arith.MulIOp.build(operand, c.results[0])
                block.insert_before(op, mul)
                term = mul.results[0]
            if total is None:
                total = term
            else:
                add = arith.AddIOp.build(total, term)
                block.insert_before(op, add)
                total = add.results[0]
        if constant != 0 or total is None:
            c = arith.ConstantOp.build(constant, IndexType())
            block.insert_before(op, c)
            if total is None:
                total = c.results[0]
            else:
                add = arith.AddIOp.build(total, c.results[0])
                block.insert_before(op, add)
                total = add.results[0]
        op.replace_all_uses_with([total])
        op.erase()

    def _lower_min(self, op: affine_d.AffineMinOp) -> None:
        block = op.parent
        total = op.operands[0]
        for operand in op.operands[1:]:
            low = arith.MinSIOp.build(total, operand)
            block.insert_before(op, low)
            total = low.results[0]
        op.replace_all_uses_with([total])
        op.erase()


# ---------------------------------------------------------------------------
# convert-scf-to-cf
# ---------------------------------------------------------------------------

@register_pass
class ConvertSCFToCF(FunctionPass):
    """Expand structured ``scf`` control flow into a ``cf`` CFG.

    Only operations whose parent block lives directly in the function
    region are expanded: ``scf`` nested inside a ``SINGLE_BLOCK``
    structured region (an ``affine.for`` body, an ``scf.parallel``
    band) stays structured, so the pass is safe standalone — run
    ``lower-affine`` first for a full lowering.  Expansion is
    outermost-first; inner ``scf`` becomes eligible once its block is
    moved into the function region.

    Blocks are *moved*, never cloned: region block arguments keep their
    identity and become ordinary CFG block arguments.
    """

    NAME = "convert-scf-to-cf"
    DESCRIPTION = "convert structured scf control flow to cf branches"
    STATISTICS = (
        ("expanded", "structured scf operations expanded into CFG blocks"),
    )

    def run_on_function(self, function: FuncOp,
                        report: CompileReport) -> None:
        region = function.regions[0]
        expanded = 0
        while True:
            target = None
            for block in region.blocks:
                for op in block.operations:
                    if isinstance(op, (scf.IfOp, scf.ForOp, scf.WhileOp)):
                        target = op
                        break
                if target is not None:
                    break
            if target is None:
                break
            self._expand(target, region)
            expanded += 1
        if expanded:
            report.add_statistic(self.NAME, "expanded", expanded)

    # ------------------------------------------------------------------
    def _expand(self, op: Operation, region: Region) -> None:
        block = op.parent
        # The continuation block receives the op's results as arguments.
        cont = Block([result.type for result in op.results])
        trailing = block.operations
        for trailing_op in trailing[trailing.index(op) + 1:]:
            cont.append(trailing_op)
        if isinstance(op, scf.IfOp):
            self._expand_if(op, block, cont, region)
        elif isinstance(op, scf.ForOp):
            self._expand_for(op, block, cont, region)
        else:
            self._expand_while(op, block, cont, region)
        region.add_block(cont)
        op.replace_all_uses_with(list(cont.arguments))
        op.erase()

    def _expand_if(self, op: scf.IfOp, block: Block, cont: Block,
                   region: Region) -> None:
        then_block = _move_block(op.then_block, region)
        then_block.append(cf.BranchOp.build(
            cont, _pop_terminator(then_block, scf.YieldOp)))
        if op.has_else():
            false_dest = _move_block(op.else_block, region)
            false_dest.append(cf.BranchOp.build(
                cont, _pop_terminator(false_dest, scf.YieldOp)))
        else:
            false_dest = cont
        block.append(cf.CondBranchOp.build(
            op.condition, then_block, (), false_dest, ()))

    def _expand_for(self, op: scf.ForOp, block: Block, cont: Block,
                    region: Region) -> None:
        carried = [value.type for value in op.init_args]
        header = Block([IndexType(), *carried],
                       ["iv"] + [f"carried{i}" for i in range(len(carried))])
        region.add_block(header)
        body = _move_block(op.body, region)
        block.append(cf.BranchOp.build(
            header, [op.lower_bound, *op.init_args]))
        compare = arith.CmpIOp.build("slt", header.arguments[0],
                                     op.upper_bound)
        header.append(compare)
        header.append(cf.CondBranchOp.build(
            compare.results[0], body, list(header.arguments),
            cont, list(header.arguments)[1:]))
        yielded = _pop_terminator(body, scf.YieldOp)
        bump = arith.AddIOp.build(body.arguments[0], op.step)
        body.append(bump)
        body.append(cf.BranchOp.build(header, [bump.results[0], *yielded]))

    def _expand_while(self, op: scf.WhileOp, block: Block, cont: Block,
                      region: Region) -> None:
        before = _move_block(op.before_block, region)
        after = _move_block(op.after_block, region)
        block.append(cf.BranchOp.build(before, list(op.operands)))
        condition = before.terminator
        assert isinstance(condition, scf.ConditionOp), \
            "scf.while before-region must end with scf.condition"
        flag, forwarded = condition.operands[0], list(condition.operands[1:])
        condition.erase()
        before.append(cf.CondBranchOp.build(
            flag, after, forwarded, cont, forwarded))
        after.append(cf.BranchOp.build(
            before, _pop_terminator(after, scf.YieldOp)))


# ---------------------------------------------------------------------------
# convert-arith-to-llvm
# ---------------------------------------------------------------------------

#: ``arith`` operation name -> mirroring ``llvm`` operation class.  The
#: rewrite is attribute-preserving, which carries ``cmpi``/``cmpf``
#: predicates and constant ``value`` payloads across unchanged.
_ARITH_TO_LLVM = {
    "arith.constant": llvm_d.LLVMConstantOp,
    "arith.addi": llvm_d.LLVMAddOp,
    "arith.subi": llvm_d.LLVMSubOp,
    "arith.muli": llvm_d.LLVMMulOp,
    "arith.divsi": llvm_d.LLVMSDivOp,
    "arith.divui": llvm_d.LLVMUDivOp,
    "arith.remsi": llvm_d.LLVMSRemOp,
    "arith.remui": llvm_d.LLVMURemOp,
    "arith.andi": llvm_d.LLVMAndOp,
    "arith.ori": llvm_d.LLVMOrOp,
    "arith.xori": llvm_d.LLVMXOrOp,
    "arith.shli": llvm_d.LLVMShlOp,
    "arith.shrsi": llvm_d.LLVMAShrOp,
    "arith.minsi": llvm_d.LLVMSMinOp,
    "arith.maxsi": llvm_d.LLVMSMaxOp,
    "arith.addf": llvm_d.LLVMFAddOp,
    "arith.subf": llvm_d.LLVMFSubOp,
    "arith.mulf": llvm_d.LLVMFMulOp,
    "arith.divf": llvm_d.LLVMFDivOp,
    "arith.remf": llvm_d.LLVMFRemOp,
    "arith.minf": llvm_d.LLVMFMinOp,
    "arith.maxf": llvm_d.LLVMFMaxOp,
    "arith.cmpi": llvm_d.LLVMICmpOp,
    "arith.cmpf": llvm_d.LLVMFCmpOp,
    "arith.select": llvm_d.LLVMSelectOp,
    "arith.negf": llvm_d.LLVMFNegOp,
    "arith.index_cast": llvm_d.LLVMSExtOp,
    "arith.extsi": llvm_d.LLVMSExtOp,
    "arith.trunci": llvm_d.LLVMTruncOp,
    "arith.sitofp": llvm_d.LLVMSIToFPOp,
    "arith.fptosi": llvm_d.LLVMFPToSIOp,
    "arith.extf": llvm_d.LLVMFPExtOp,
    "arith.truncf": llvm_d.LLVMFPTruncOp,
}


@register_pass
class ConvertArithToLLVM(FunctionPass):
    """Rewrite ``arith.*`` into the mirroring ``llvm.*`` operations.

    Types are left untouched (``index`` stays ``index``; the project's
    LLVM dialect is value-typed the same way ``arith`` is), so the
    rewrite is a name-and-class change with identical operands, results
    and attributes.  Unmapped ``arith`` operations are left in place.
    """

    NAME = "convert-arith-to-llvm"
    DESCRIPTION = "convert arith operations to their llvm equivalents"
    STATISTICS = (
        ("converted", "arith operations rewritten to llvm equivalents"),
    )

    def run_on_function(self, function: FuncOp,
                        report: CompileReport) -> None:
        converted = 0
        for op in list(function.walk(include_self=False)):
            target = _ARITH_TO_LLVM.get(op.name)
            if target is None:
                continue
            new = target(
                operands=tuple(op.operands),
                result_types=tuple(result.type for result in op.results),
                attributes=dict(op.attributes))
            op.parent.insert_before(op, new)
            op.replace_all_uses_with(list(new.results))
            op.erase()
            converted += 1
        if converted:
            report.add_statistic(self.NAME, "converted", converted)


# ---------------------------------------------------------------------------
# convert-memref-to-llvm
# ---------------------------------------------------------------------------

@register_pass
class ConvertMemRefToLLVM(FunctionPass):
    """Lower memref accesses to ``llvm.getelementptr`` + load/store.

    A converted access bridges the memref SSA value into ``!llvm.ptr``
    with a ``builtin.unrealized_conversion_cast`` (the runtime value —
    ``MemRefStorage``/``MemRefView``/accessor binding — passes through
    unchanged), computes a row-major linear offset, and indexes with a
    single dynamic ``getelementptr`` operand:

    * rank-1 accesses (including the dynamic-shaped views
      ``lower-sycl-accessors`` produces) use their index directly;
    * higher-rank static-shape accesses linearize by Horner's rule with
      ``llvm.mul``/``llvm.add``, matching ``MemRefStorage``'s layout.

    Accesses it cannot prove linearizable keep their ``memref`` form.
    Private static-shape allocations whose every remaining use is such
    a pointer bridge are then promoted to ``llvm.alloca``; ``local``
    (work-group shared) allocations are never promoted because their
    storage identity is the work-group tile keyed by the allocating
    operation.
    """

    NAME = "convert-memref-to-llvm"
    DESCRIPTION = "lower memref accesses to llvm pointer arithmetic"
    STATISTICS = (
        ("accesses", "memref loads/stores lowered to getelementptr"),
        ("allocations", "private allocations promoted to llvm.alloca"),
    )

    def run_on_function(self, function: FuncOp,
                        report: CompileReport) -> None:
        accesses = 0
        for op in list(function.walk(include_self=False)):
            if isinstance(op, (memref.LoadOp, memref.StoreOp)):
                accesses += self._convert_access(op)
        allocations = 0
        for op in list(function.walk(include_self=False)):
            if isinstance(op, (memref.AllocaOp, memref.AllocOp)):
                allocations += self._promote_allocation(op)
        if accesses:
            report.add_statistic(self.NAME, "accesses", accesses)
        if allocations:
            report.add_statistic(self.NAME, "allocations", allocations)

    # ------------------------------------------------------------------
    def _linear_index(self, op: Operation, memref_type: MemRefType):
        """Emit (before ``op``) the row-major linear offset, or None."""
        indices = list(op.indices)
        block = op.parent
        if len(indices) == 1:
            return indices[0]
        if not indices:
            zero = llvm_d.LLVMConstantOp.build(0, IndexType())
            block.insert_before(op, zero)
            return zero.results[0]
        if (not memref_type.has_static_shape()
                or len(indices) != len(memref_type.shape)):
            return None
        linear = indices[0]
        for dim, index in zip(memref_type.shape[1:], indices[1:]):
            extent = llvm_d.LLVMConstantOp.build(dim, IndexType())
            block.insert_before(op, extent)
            scaled = llvm_d.LLVMMulOp.build(linear, extent.results[0])
            block.insert_before(op, scaled)
            bumped = llvm_d.LLVMAddOp.build(scaled.results[0], index)
            block.insert_before(op, bumped)
            linear = bumped.results[0]
        return linear

    def _convert_access(self, op: Operation) -> int:
        memref_value = op.memref
        memref_type = memref_value.type
        if not isinstance(memref_type, MemRefType):
            return 0
        element = memref_type.element_type
        if not is_scalar(element):
            return 0
        linear = self._linear_index(op, memref_type)
        if linear is None:
            return 0
        block = op.parent
        bridge = UnrealizedConversionCastOp.build(
            memref_value, PointerType(element))
        block.insert_before(op, bridge)
        address = llvm_d.LLVMGEPOp.build(bridge.results[0], [linear])
        block.insert_before(op, address)
        if isinstance(op, memref.LoadOp):
            new = llvm_d.LLVMLoadOp.build(address.results[0], element)
            block.insert_before(op, new)
            op.replace_all_uses_with(list(new.results))
        else:
            block.insert_before(
                op, llvm_d.LLVMStoreOp.build(op.value, address.results[0]))
        op.erase()
        return 1

    def _promote_allocation(self, op: Operation) -> int:
        memref_type = op.results[0].type
        if not isinstance(memref_type, MemRefType):
            return 0
        if (memref_type.memory_space == "local"
                or not memref_type.has_static_shape()
                or not is_scalar(memref_type.element_type)):
            return 0
        bridges = [use.owner for use in op.results[0].uses]
        if not bridges or not all(
                isinstance(user, UnrealizedConversionCastOp)
                and isinstance(user.results[0].type, PointerType)
                for user in bridges):
            return 0
        block = op.parent
        size = llvm_d.LLVMConstantOp.build(
            memref_type.num_elements(), IndexType())
        block.insert_before(op, size)
        alloca = llvm_d.LLVMAllocaOp.build(
            size.results[0], element_type=memref_type.element_type)
        block.insert_before(op, alloca)
        for bridge in bridges:
            bridge.results[0].replace_all_uses_with(alloca.results[0])
            bridge.erase()
        op.erase()
        return 1


# ---------------------------------------------------------------------------
# convert-func-to-llvm
# ---------------------------------------------------------------------------

@register_pass
class ConvertFuncToLLVM(ModulePass):
    """Rewrite ``func``-dialect functions into ``llvm.func``.

    The body CFG moves wholesale (blocks keep their identity, so
    entry-block arguments — the ABI surface the execution engine binds
    buffers to — are unchanged) and every attribute is carried over:
    ``sym_name``, ``function_type``, visibility, and the ``sycl.*``
    kernel metadata the launch path keys on.  ``func.return`` and
    ``func.call`` inside moved bodies become ``llvm.return`` /
    ``llvm.call`` with the same symbol linkage.
    """

    NAME = "convert-func-to-llvm"
    DESCRIPTION = "convert func functions, calls and returns to llvm"
    STATISTICS = (
        ("functions", "func.func symbols rewritten to llvm.func"),
    )

    def run_on_module(self, module, report: CompileReport) -> None:
        functions = 0
        for op in list(module.body.operations):
            if not isinstance(op, FuncOp):
                continue
            self._convert_function(op, module)
            functions += 1
        if functions:
            report.add_statistic(self.NAME, "functions", functions)

    def _convert_function(self, op: FuncOp, module) -> None:
        new = llvm_d.LLVMFuncOp(
            operands=(), result_types=(),
            attributes=dict(op.attributes), regions=1)
        for block in list(op.regions[0].blocks):
            _move_block(block, new.regions[0])
        module.body.insert_before(op, new)
        op.erase()
        for body_op in list(new.walk(include_self=False)):
            if isinstance(body_op, ReturnOp):
                replacement = llvm_d.LLVMReturnOp.build(
                    list(body_op.operands))
                body_op.parent.insert_before(body_op, replacement)
                body_op.erase()
            elif isinstance(body_op, CallOp):
                callee = body_op.callee_name()
                if callee is None:
                    continue
                replacement = llvm_d.LLVMCallOp.build(
                    callee, list(body_op.operands),
                    [result.type for result in body_op.results])
                body_op.parent.insert_before(body_op, replacement)
                body_op.replace_all_uses_with(list(replacement.results))
                body_op.erase()
