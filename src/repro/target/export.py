"""MLIR-compatible textual export (``repro-opt --emit=mlir``).

The stock printer (:mod:`repro.ir.printer`) uses a "classic" generic
order in which the attribute dictionary follows the operand list and the
successor/region lists trail the type signature::

    "scf.if"(%cond) {attrs} : (i1) -> () ({...}, {...})

Upstream MLIR's generic form orders the pieces differently: successors
and regions come directly after the operand list and the attribute
dictionary sits *between* the regions and the signature::

    "scf.if"(%cond) ({...}, {...}) {attrs} : (i1) -> ()

:class:`MLIRPrinter` emits the upstream order so the text can be fed to
``mlir-opt -allow-unregistered-dialect``; :mod:`repro.ir.parser` accepts
both orders, so ``parse_module(emit_mlir(m))`` round-trips through our
own stack too.  Locations, when requested, are restricted by
construction to the plain ``loc("file":line:col)`` / ``loc(unknown)``
forms — the :class:`repro.ir.location.Location` model has no extended
(fused/callsite/named) variants, so exported text never embeds extended
location syntax.
"""

from __future__ import annotations

from io import StringIO

from ..ir.operations import Operation
from ..ir.printer import Printer

__all__ = ["MLIRPrinter", "emit_mlir"]


class MLIRPrinter(Printer):
    """Prints operation trees in upstream-MLIR generic order.

    Value/block naming, attribute formatting, and region layout are
    inherited from :class:`repro.ir.printer.Printer`; only the order of
    the clauses on each operation line changes.
    """

    def _print_op(self, op: Operation, out: StringIO, indent: int) -> None:
        pad = " " * (indent * self.indent_width)
        results = ", ".join(self.value_name(res) for res in op.results)
        prefix = f"{results} = " if results else ""
        operands = ", ".join(self.value_name(v) for v in op.operands)
        out.write(f"{pad}{prefix}\"{op.name}\"({operands})")
        if op.successors:
            names = ", ".join(self._block_label(s) for s in op.successors)
            out.write(f"[{names}]")
        if op.regions:
            out.write(" (")
            for region in op.regions:
                out.write("{\n")
                self._print_region(region, out, indent + 1)
                out.write(f"{pad}}}")
            out.write(")")
        if op.attributes:
            inner = ", ".join(
                f"{key} = {value}"
                for key, value in sorted(op.attributes.items()))
            out.write(f" {{{inner}}}")
        in_types = ", ".join(str(v.type) for v in op.operands)
        out_types = ", ".join(str(res.type) for res in op.results)
        out.write(f" : ({in_types}) -> ({out_types})")
        if self.print_locations:
            from ..ir.location import location_of

            out.write(f" {location_of(op)}")
        out.write("\n")


def emit_mlir(module: Operation, print_locations: bool = False) -> str:
    """Render ``module`` as upstream-MLIR generic-form text.

    The output is deterministic and byte-stable under a parse/re-emit
    round trip: ``emit_mlir(parse_module(emit_mlir(m))) == emit_mlir(m)``.
    """
    printer = MLIRPrinter(print_locations=print_locations)
    return printer.print_op_to_string(module)
