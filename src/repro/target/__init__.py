"""Lowering / target subsystem.

Home of everything that takes the project's structured IR *down and
out*: the conversion passes behind the ``lower-to-llvm`` pipeline
(:mod:`repro.target.conversions`) and the upstream-MLIR-compatible
textual exporter behind ``repro-opt --emit=mlir``
(:mod:`repro.target.export`).

Importing this package registers the conversion passes with the pass
registry; :mod:`repro.transforms.pipelines` does so when it registers
the ``lower-to-llvm`` named pipeline.
"""

from . import conversions
from .conversions import (
    ConvertArithToLLVM,
    ConvertFuncToLLVM,
    ConvertMemRefToLLVM,
    ConvertSCFToCF,
    LowerAffine,
)
from .export import MLIRPrinter, emit_mlir

__all__ = [
    "ConvertArithToLLVM",
    "ConvertFuncToLLVM",
    "ConvertMemRefToLLVM",
    "ConvertSCFToCF",
    "LowerAffine",
    "MLIRPrinter",
    "conversions",
    "emit_mlir",
]
