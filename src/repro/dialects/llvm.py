"""``llvm`` dialect subset.

The host side of a DPC++ compilation arrives as LLVM IR and is translated
into the MLIR LLVM dialect (paper, Fig. 1, via ``mlir-translate``).  This
module models the subset of that dialect needed to express DPC++ host code
for SYCL command groups: functions, calls into the SYCL runtime, stack
allocations of SYCL objects, loads/stores and constants.  The host raising
pass (``repro.transforms.host_raising``) pattern-matches these operations.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..ir import (
    Block,
    CallOpInterface,
    Dialect,
    FloatAttr,
    FloatType,
    FunctionType,
    IntegerAttr,
    MemoryEffect,
    MemoryEffectsInterface,
    Operation,
    PointerType,
    StringAttr,
    Trait,
    Type,
    TypeAttr,
    Value,
    register_op,
)
from ..ir.attributes import DenseElementsAttr
from ..ir.interfaces import allocate, read, write


@register_op
class LLVMFuncOp(Operation):
    """An LLVM-dialect function (host code)."""

    OPERATION_NAME = "llvm.func"
    TRAITS = frozenset({Trait.SYMBOL, Trait.ISOLATED_FROM_ABOVE})

    @classmethod
    def build(cls, name: str, arg_types: Sequence[Type],
              result_types: Sequence[Type] = (),
              arg_names: Optional[Sequence[str]] = None,
              is_declaration: bool = False) -> "LLVMFuncOp":
        func_type = FunctionType(tuple(arg_types), tuple(result_types))
        op = cls(
            operands=(),
            result_types=(),
            attributes={
                "sym_name": StringAttr(name),
                "function_type": TypeAttr(func_type),
            },
            regions=1,
        )
        if not is_declaration:
            entry = Block(arg_types, arg_names)
            op.regions[0].add_block(entry)
        return op

    @property
    def sym_name(self) -> str:
        return self.get_str_attr("sym_name", "")

    @property
    def function_type(self) -> FunctionType:
        attr = self.attributes["function_type"]
        assert isinstance(attr, TypeAttr)
        return attr.value  # type: ignore[return-value]

    @property
    def is_declaration(self) -> bool:
        return not self.regions or self.regions[0].empty

    @property
    def body(self) -> Block:
        return self.regions[0].front

    @property
    def arguments(self):
        return self.body.arguments


@register_op
class LLVMReturnOp(Operation):
    OPERATION_NAME = "llvm.return"
    TRAITS = frozenset({Trait.TERMINATOR, Trait.PURE})

    @classmethod
    def build(cls, values: Sequence[Value] = ()) -> "LLVMReturnOp":
        return cls(operands=tuple(values))


@register_op
class LLVMCallOp(Operation, CallOpInterface):
    """A call, usually into the (mangled) SYCL runtime."""

    OPERATION_NAME = "llvm.call"

    @classmethod
    def build(cls, callee: str, args: Sequence[Value],
              result_types: Sequence[Type] = ()) -> "LLVMCallOp":
        return cls(operands=tuple(args), result_types=tuple(result_types),
                   attributes={"callee": StringAttr(callee)})

    def callee_name(self) -> Optional[str]:
        return self.get_str_attr("callee")

    def call_arguments(self) -> Sequence[Value]:
        return self.operands


@register_op
class LLVMConstantOp(Operation):
    OPERATION_NAME = "llvm.mlir.constant"
    TRAITS = frozenset({Trait.PURE, Trait.CONSTANT_LIKE})

    @classmethod
    def build(cls, value, type_: Type) -> "LLVMConstantOp":
        if isinstance(type_, FloatType):
            attr = FloatAttr(float(value), type_)
        else:
            attr = IntegerAttr(int(value), type_)
        return cls(operands=(), result_types=(type_,), attributes={"value": attr})

    @property
    def value(self):
        attr = self.attributes["value"]
        return attr.value

    def fold(self):
        return [self.attributes["value"]]


@register_op
class LLVMUndefOp(Operation):
    OPERATION_NAME = "llvm.mlir.undef"
    TRAITS = frozenset({Trait.PURE})

    @classmethod
    def build(cls, type_: Type) -> "LLVMUndefOp":
        return cls(operands=(), result_types=(type_,))


@register_op
class LLVMAllocaOp(Operation, MemoryEffectsInterface):
    """Stack allocation of a host object (SYCL buffer/accessor/range...)."""

    OPERATION_NAME = "llvm.alloca"

    @classmethod
    def build(cls, size: Value, object_name: Optional[str] = None) -> "LLVMAllocaOp":
        attrs = {}
        if object_name is not None:
            attrs["object"] = StringAttr(object_name)
        return cls(operands=(size,), result_types=(PointerType(),),
                   attributes=attrs)

    def memory_effects(self) -> List[MemoryEffect]:
        return [allocate(self.results[0])]


@register_op
class LLVMLoadOp(Operation, MemoryEffectsInterface):
    OPERATION_NAME = "llvm.load"

    @classmethod
    def build(cls, pointer: Value, result_type: Type) -> "LLVMLoadOp":
        return cls(operands=(pointer,), result_types=(result_type,))

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    def memory_effects(self) -> List[MemoryEffect]:
        return [read(self.pointer)]


@register_op
class LLVMStoreOp(Operation, MemoryEffectsInterface):
    OPERATION_NAME = "llvm.store"

    @classmethod
    def build(cls, value: Value, pointer: Value) -> "LLVMStoreOp":
        return cls(operands=(value, pointer))

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]

    def memory_effects(self) -> List[MemoryEffect]:
        return [write(self.pointer)]


@register_op
class LLVMGEPOp(Operation):
    """Pointer arithmetic (``getelementptr``)."""

    OPERATION_NAME = "llvm.getelementptr"
    TRAITS = frozenset({Trait.PURE})

    @classmethod
    def build(cls, base: Value, indices: Sequence[Value] = (),
              static_offsets: Sequence[int] = ()) -> "LLVMGEPOp":
        # Offsets are a real attribute so they print, parse, and take part
        # in CSE's structural identity.
        from ..ir import i64, int_array_attr

        return cls(operands=(base, *indices), result_types=(PointerType(),),
                   attributes={"static_offsets": int_array_attr(
                       static_offsets, i64())})

    @property
    def base(self) -> Value:
        return self.operands[0]

    @property
    def static_offsets(self) -> List[int]:
        from ..ir import int_array_values

        return int_array_values(self.attributes.get("static_offsets"))


@register_op
class LLVMBitcastOp(Operation):
    OPERATION_NAME = "llvm.bitcast"
    TRAITS = frozenset({Trait.PURE})

    @classmethod
    def build(cls, value: Value, result_type: Type) -> "LLVMBitcastOp":
        return cls(operands=(value,), result_types=(result_type,))


@register_op
class LLVMGlobalOp(Operation):
    """Module-level global constant (e.g. a host-side filter array)."""

    OPERATION_NAME = "llvm.mlir.global"
    TRAITS = frozenset({Trait.SYMBOL})

    @classmethod
    def build(cls, name: str, value: Optional[DenseElementsAttr] = None,
              constant: bool = True) -> "LLVMGlobalOp":
        attrs = {"sym_name": StringAttr(name)}
        if value is not None:
            attrs["value"] = value
        if constant:
            from ..ir import UnitAttr

            attrs["constant"] = UnitAttr()
        return cls(operands=(), result_types=(), attributes=attrs)


@register_op
class LLVMAddressOfOp(Operation):
    OPERATION_NAME = "llvm.mlir.addressof"
    TRAITS = frozenset({Trait.PURE})

    @classmethod
    def build(cls, global_name: str) -> "LLVMAddressOfOp":
        return cls(operands=(), result_types=(PointerType(),),
                   attributes={"global_name": StringAttr(global_name)})


from ..ir import StructType  # noqa: E402  (grouped with the parser hook)


def parse_llvm_type(text, parse_type):
    """Dialect type-parser hook for printed ``!llvm.*`` types.

    ``text`` is the full raw spelling after ``!``.  Handles ``!llvm.ptr``,
    ``!llvm.ptr<T>`` and ``!llvm.struct<'name'>``; returns None for
    unrecognized spellings.
    """
    if text == "llvm.ptr":
        return PointerType()
    if text.startswith("llvm.ptr<") and text.endswith(">"):
        return PointerType(parse_type(text[len("llvm.ptr<"):-1]))
    if text.startswith("llvm.struct<") and text.endswith(">"):
        name = text[len("llvm.struct<"):-1].strip()
        if len(name) >= 2 and name[0] == name[-1] and name[0] in "'\"":
            name = name[1:-1]
        return StructType(name)
    return None


# ---------------------------------------------------------------------------
# Interpreter evaluators (see repro.interp).  Host modules raised from
# LLVM IR are modelled, not executed: only the value-level ops have
# semantics here; memory/pointer ops trap with an explanation.
# ---------------------------------------------------------------------------

from ..interp.memory import BlockResult, TrapError  # noqa: E402
from ..interp.registry import register_evaluator  # noqa: E402


@register_evaluator("llvm.mlir.constant")
def _eval_llvm_constant(ctx, op, args):
    return [op.value]


@register_evaluator("llvm.mlir.undef")
def _eval_llvm_undef(ctx, op, args):
    # A defined default keeps differential runs deterministic.
    return [0]


@register_evaluator("llvm.bitcast")
def _eval_llvm_bitcast(ctx, op, args):
    return [args[0]]


@register_evaluator("llvm.return")
def _eval_llvm_return(ctx, op, args):
    return BlockResult("return", tuple(args))


def _eval_llvm_unsupported(ctx, op, args):
    raise TrapError(
        f"'{op.name}' models opaque host LLVM IR and is not executable; "
        "raise the host module (host-raising pass) or interpret device "
        "functions instead")


for _name in ("llvm.alloca", "llvm.load", "llvm.store", "llvm.getelementptr",
              "llvm.call", "llvm.mlir.global", "llvm.mlir.addressof"):
    register_evaluator(_name, _eval_llvm_unsupported)


class LLVMDialect(Dialect):
    NAME = "llvm"
