"""``llvm`` dialect subset.

The host side of a DPC++ compilation arrives as LLVM IR and is translated
into the MLIR LLVM dialect (paper, Fig. 1, via ``mlir-translate``).  This
module models the subset of that dialect needed to express DPC++ host code
for SYCL command groups: functions, calls into the SYCL runtime, stack
allocations of SYCL objects, loads/stores and constants.  The host raising
pass (``repro.transforms.host_raising``) pattern-matches these operations.
"""

from __future__ import annotations

import math as _math
from typing import List, Optional, Sequence

from ..ir import (
    Block,
    CallOpInterface,
    Dialect,
    FloatAttr,
    FloatType,
    FunctionType,
    IntegerAttr,
    MemoryEffect,
    MemoryEffectsInterface,
    Operation,
    PointerType,
    StringAttr,
    Trait,
    Type,
    TypeAttr,
    Value,
    is_scalar,
    register_op,
)
from ..ir.attributes import DenseElementsAttr
from ..ir.interfaces import allocate, read, write


@register_op
class LLVMFuncOp(Operation):
    """An LLVM-dialect function (host code)."""

    OPERATION_NAME = "llvm.func"
    TRAITS = frozenset({Trait.SYMBOL, Trait.ISOLATED_FROM_ABOVE})

    @classmethod
    def build(cls, name: str, arg_types: Sequence[Type],
              result_types: Sequence[Type] = (),
              arg_names: Optional[Sequence[str]] = None,
              is_declaration: bool = False) -> "LLVMFuncOp":
        func_type = FunctionType(tuple(arg_types), tuple(result_types))
        op = cls(
            operands=(),
            result_types=(),
            attributes={
                "sym_name": StringAttr(name),
                "function_type": TypeAttr(func_type),
            },
            regions=1,
        )
        if not is_declaration:
            entry = Block(arg_types, arg_names)
            op.regions[0].add_block(entry)
        return op

    @property
    def sym_name(self) -> str:
        return self.get_str_attr("sym_name", "")

    @property
    def function_type(self) -> FunctionType:
        attr = self.attributes["function_type"]
        assert isinstance(attr, TypeAttr)
        return attr.value  # type: ignore[return-value]

    @property
    def is_declaration(self) -> bool:
        return not self.regions or self.regions[0].empty

    @property
    def body(self) -> Block:
        return self.regions[0].front

    @property
    def arguments(self):
        return self.body.arguments

    def is_kernel(self) -> bool:
        # `convert-func-to-llvm` carries the sycl.* metadata across, so
        # lowered kernels keep launching through the engine's ND-range
        # path exactly like their `func.func` originals.
        return "sycl.kernel" in self.attributes


@register_op
class LLVMReturnOp(Operation):
    OPERATION_NAME = "llvm.return"
    TRAITS = frozenset({Trait.TERMINATOR, Trait.PURE})

    @classmethod
    def build(cls, values: Sequence[Value] = ()) -> "LLVMReturnOp":
        return cls(operands=tuple(values))


@register_op
class LLVMCallOp(Operation, CallOpInterface):
    """A call, usually into the (mangled) SYCL runtime."""

    OPERATION_NAME = "llvm.call"

    @classmethod
    def build(cls, callee: str, args: Sequence[Value],
              result_types: Sequence[Type] = ()) -> "LLVMCallOp":
        return cls(operands=tuple(args), result_types=tuple(result_types),
                   attributes={"callee": StringAttr(callee)})

    def callee_name(self) -> Optional[str]:
        return self.get_str_attr("callee")

    def call_arguments(self) -> Sequence[Value]:
        return self.operands


@register_op
class LLVMConstantOp(Operation):
    OPERATION_NAME = "llvm.mlir.constant"
    TRAITS = frozenset({Trait.PURE, Trait.CONSTANT_LIKE})

    @classmethod
    def build(cls, value, type_: Type) -> "LLVMConstantOp":
        if isinstance(type_, FloatType):
            attr = FloatAttr(float(value), type_)
        else:
            attr = IntegerAttr(int(value), type_)
        return cls(operands=(), result_types=(type_,), attributes={"value": attr})

    @property
    def value(self):
        attr = self.attributes["value"]
        return attr.value

    def fold(self):
        return [self.attributes["value"]]


@register_op
class LLVMUndefOp(Operation):
    OPERATION_NAME = "llvm.mlir.undef"
    TRAITS = frozenset({Trait.PURE})

    @classmethod
    def build(cls, type_: Type) -> "LLVMUndefOp":
        return cls(operands=(), result_types=(type_,))


@register_op
class LLVMAllocaOp(Operation, MemoryEffectsInterface):
    """Stack allocation of a host object (SYCL buffer/accessor/range...)."""

    OPERATION_NAME = "llvm.alloca"

    @classmethod
    def build(cls, size: Value, object_name: Optional[str] = None,
              element_type: Optional[Type] = None) -> "LLVMAllocaOp":
        attrs = {}
        if object_name is not None:
            attrs["object"] = StringAttr(object_name)
        return cls(operands=(size,), result_types=(PointerType(element_type),),
                   attributes=attrs)

    def memory_effects(self) -> List[MemoryEffect]:
        return [allocate(self.results[0])]


@register_op
class LLVMLoadOp(Operation, MemoryEffectsInterface):
    OPERATION_NAME = "llvm.load"

    @classmethod
    def build(cls, pointer: Value, result_type: Type) -> "LLVMLoadOp":
        return cls(operands=(pointer,), result_types=(result_type,))

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    def memory_effects(self) -> List[MemoryEffect]:
        return [read(self.pointer)]


@register_op
class LLVMStoreOp(Operation, MemoryEffectsInterface):
    OPERATION_NAME = "llvm.store"

    @classmethod
    def build(cls, value: Value, pointer: Value) -> "LLVMStoreOp":
        return cls(operands=(value, pointer))

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]

    def memory_effects(self) -> List[MemoryEffect]:
        return [write(self.pointer)]


@register_op
class LLVMGEPOp(Operation):
    """Pointer arithmetic (``getelementptr``)."""

    OPERATION_NAME = "llvm.getelementptr"
    TRAITS = frozenset({Trait.PURE})

    @classmethod
    def build(cls, base: Value, indices: Sequence[Value] = (),
              static_offsets: Sequence[int] = ()) -> "LLVMGEPOp":
        # Offsets are a real attribute so they print, parse, and take part
        # in CSE's structural identity.
        from ..ir import i64, int_array_attr

        return cls(operands=(base, *indices), result_types=(PointerType(),),
                   attributes={"static_offsets": int_array_attr(
                       static_offsets, i64())})

    @property
    def base(self) -> Value:
        return self.operands[0]

    @property
    def static_offsets(self) -> List[int]:
        from ..ir import int_array_values

        return int_array_values(self.attributes.get("static_offsets"))


@register_op
class LLVMBitcastOp(Operation):
    OPERATION_NAME = "llvm.bitcast"
    TRAITS = frozenset({Trait.PURE})

    @classmethod
    def build(cls, value: Value, result_type: Type) -> "LLVMBitcastOp":
        return cls(operands=(value,), result_types=(result_type,))


@register_op
class LLVMGlobalOp(Operation):
    """Module-level global constant (e.g. a host-side filter array)."""

    OPERATION_NAME = "llvm.mlir.global"
    TRAITS = frozenset({Trait.SYMBOL})

    @classmethod
    def build(cls, name: str, value: Optional[DenseElementsAttr] = None,
              constant: bool = True) -> "LLVMGlobalOp":
        attrs = {"sym_name": StringAttr(name)}
        if value is not None:
            attrs["value"] = value
        if constant:
            from ..ir import UnitAttr

            attrs["constant"] = UnitAttr()
        return cls(operands=(), result_types=(), attributes=attrs)


@register_op
class LLVMAddressOfOp(Operation):
    OPERATION_NAME = "llvm.mlir.addressof"
    TRAITS = frozenset({Trait.PURE})

    @classmethod
    def build(cls, global_name: str) -> "LLVMAddressOfOp":
        return cls(operands=(), result_types=(PointerType(),),
                   attributes={"global_name": StringAttr(global_name)})


# ---------------------------------------------------------------------------
# Value ops mirroring ``arith`` (the convert-arith-to-llvm targets).
#
# Each class provides the same duck-typed hooks arith's op classes do
# (``_compute`` / ``PREDICATES`` + ``predicate`` / ``_convert``), so the
# arith evaluators are registered verbatim for the llvm names below and
# both dialects share one set of trap/IEEE semantics by construction.
# ---------------------------------------------------------------------------

from . import arith as _arith  # noqa: E402  (shares op machinery)

LLVMAddOp = _arith._int_binop("llvm.add", lambda a, b: a + b,
                              commutative=True, identity=0)
LLVMSubOp = _arith._int_binop("llvm.sub", lambda a, b: a - b)
LLVMMulOp = _arith._int_binop("llvm.mul", lambda a, b: a * b,
                              commutative=True, identity=1)
LLVMSDivOp = _arith._int_binop("llvm.sdiv", _arith._floordiv, may_trap=True)
LLVMUDivOp = _arith._int_binop("llvm.udiv", lambda a, b: a // b,
                               may_trap=True)
LLVMSRemOp = _arith._int_binop(
    "llvm.srem", lambda a, b: a - _arith._floordiv(a, b) * b, may_trap=True)
LLVMURemOp = _arith._int_binop("llvm.urem", lambda a, b: a % b,
                               may_trap=True)
LLVMAndOp = _arith._int_binop("llvm.and", lambda a, b: a & b,
                              commutative=True)
LLVMOrOp = _arith._int_binop("llvm.or", lambda a, b: a | b, commutative=True)
LLVMXOrOp = _arith._int_binop("llvm.xor", lambda a, b: a ^ b,
                              commutative=True)
LLVMShlOp = _arith._int_binop("llvm.shl", lambda a, b: a << b, may_trap=True)
LLVMAShrOp = _arith._int_binop("llvm.ashr", lambda a, b: a >> b,
                               may_trap=True)
LLVMSMinOp = _arith._int_binop("llvm.intr.smin", min, commutative=True)
LLVMSMaxOp = _arith._int_binop("llvm.intr.smax", max, commutative=True)

LLVMFAddOp = _arith._float_binop("llvm.fadd", lambda a, b: a + b,
                                 commutative=True, identity=0.0)
LLVMFSubOp = _arith._float_binop("llvm.fsub", lambda a, b: a - b)
LLVMFMulOp = _arith._float_binop("llvm.fmul", lambda a, b: a * b,
                                 commutative=True, identity=1.0)
LLVMFDivOp = _arith._float_binop("llvm.fdiv", lambda a, b: a / b)
LLVMFRemOp = _arith._float_binop("llvm.frem", _math.fmod)
LLVMFMinOp = _arith._float_binop(
    "llvm.intr.fmin", _arith._nan_propagating(min), commutative=True)
LLVMFMaxOp = _arith._float_binop(
    "llvm.intr.fmax", _arith._nan_propagating(max), commutative=True)


@register_op
class LLVMICmpOp(_arith.CmpIOp):
    OPERATION_NAME = "llvm.icmp"
    PREDICATES = _arith._INT_PREDICATES


@register_op
class LLVMFCmpOp(_arith.CmpIOp):
    OPERATION_NAME = "llvm.fcmp"
    PREDICATES = _arith._FLOAT_PREDICATES


@register_op
class LLVMSelectOp(_arith.SelectOp):
    OPERATION_NAME = "llvm.select"


@register_op
class LLVMFNegOp(_arith.NegFOp):
    OPERATION_NAME = "llvm.fneg"


@register_op
class LLVMSExtOp(_arith._CastOp):
    OPERATION_NAME = "llvm.sext"

    def _convert(self, value):
        return int(value)


@register_op
class LLVMZExtOp(_arith._CastOp):
    OPERATION_NAME = "llvm.zext"

    def _convert(self, value):
        return int(value)


@register_op
class LLVMTruncOp(_arith._CastOp):
    OPERATION_NAME = "llvm.trunc"

    def _convert(self, value):
        width = self.results[0].type.width
        return int(value) & ((1 << width) - 1)


@register_op
class LLVMSIToFPOp(_arith._CastOp):
    OPERATION_NAME = "llvm.sitofp"

    def _convert(self, value):
        return float(value)


@register_op
class LLVMFPToSIOp(_arith._CastOp):
    OPERATION_NAME = "llvm.fptosi"

    def _convert(self, value):
        return int(value)


@register_op
class LLVMFPExtOp(_arith._CastOp):
    OPERATION_NAME = "llvm.fpext"

    def _convert(self, value):
        return float(value)


@register_op
class LLVMFPTruncOp(_arith._CastOp):
    OPERATION_NAME = "llvm.fptrunc"

    def _convert(self, value):
        return float(value)


from ..ir import StructType  # noqa: E402  (grouped with the parser hook)


def parse_llvm_type(text, parse_type):
    """Dialect type-parser hook for printed ``!llvm.*`` types.

    ``text`` is the full raw spelling after ``!``.  Handles ``!llvm.ptr``,
    ``!llvm.ptr<T>`` and ``!llvm.struct<'name'>``; returns None for
    unrecognized spellings.
    """
    if text == "llvm.ptr":
        return PointerType()
    if text.startswith("llvm.ptr<") and text.endswith(">"):
        return PointerType(parse_type(text[len("llvm.ptr<"):-1]))
    if text.startswith("llvm.struct<") and text.endswith(">"):
        name = text[len("llvm.struct<"):-1].strip()
        if len(name) >= 2 and name[0] == name[-1] and name[0] in "'\"":
            name = name[1:-1]
        return StructType(name)
    return None


# ---------------------------------------------------------------------------
# Interpreter evaluators (see repro.interp).  Value ops share the arith
# evaluators (same trap/IEEE semantics); memory ops execute against
# MemRefStorage/MemRefView runtime values, which is what
# ``convert-memref-to-llvm``'s pointers resolve to.  Pointers into
# opaque host objects (no element type) still trap with an explanation.
# ---------------------------------------------------------------------------

from ..interp.memory import (  # noqa: E402
    AccessorBinding,
    BlockResult,
    InterpreterError,
    MemRefStorage,
    MemRefView,
    TrapError,
)
from ..interp.registry import register_evaluator  # noqa: E402


@register_evaluator("llvm.mlir.constant")
def _eval_llvm_constant(ctx, op, args):
    return [op.value]


@register_evaluator("llvm.mlir.undef")
def _eval_llvm_undef(ctx, op, args):
    # A defined default keeps differential runs deterministic.
    return [0]


@register_evaluator("llvm.bitcast")
def _eval_llvm_bitcast(ctx, op, args):
    return [args[0]]


@register_evaluator("llvm.return")
def _eval_llvm_return(ctx, op, args):
    return BlockResult("return", tuple(args))


for _name in (
    "llvm.add", "llvm.sub", "llvm.mul", "llvm.sdiv", "llvm.udiv",
    "llvm.srem", "llvm.urem", "llvm.and", "llvm.or", "llvm.xor",
    "llvm.intr.smin", "llvm.intr.smax",
    "llvm.fadd", "llvm.fsub", "llvm.fmul", "llvm.fdiv", "llvm.frem",
    "llvm.intr.fmin", "llvm.intr.fmax",
):
    register_evaluator(_name, _arith._eval_binary)

register_evaluator("llvm.shl", _arith._eval_shift)
register_evaluator("llvm.ashr", _arith._eval_shift)
register_evaluator("llvm.icmp", _arith._eval_cmp)
register_evaluator("llvm.fcmp", _arith._eval_cmp)
register_evaluator("llvm.select", _arith._eval_select)
register_evaluator("llvm.fneg", _arith._eval_negf)

for _name in ("llvm.sext", "llvm.zext", "llvm.trunc", "llvm.sitofp",
              "llvm.fptosi", "llvm.fpext", "llvm.fptrunc"):
    register_evaluator(_name, _arith._eval_cast)


def _pointer_element_type(type_):
    pointee = getattr(type_, "pointee", None)
    if pointee is not None and is_scalar(pointee):
        return pointee
    return None


@register_evaluator("llvm.alloca")
def _eval_llvm_alloca(ctx, op, args):
    element = _pointer_element_type(op.results[0].type)
    if element is None:
        raise TrapError(
            f"'{op.name}' of an opaque host object is not executable; "
            "only element-typed allocations (from convert-memref-to-llvm) "
            "have storage semantics")
    size = int(args[0]) if args else 1
    if size < 0:
        raise TrapError(f"'{op.name}' with negative size {size}")
    return [MemRefStorage((size,), element)]


def _pointer_window(value):
    """Normalize a runtime pointer value to a flat-addressable window."""
    if isinstance(value, (MemRefView, MemRefStorage)):
        return value
    if isinstance(value, AccessorBinding):
        return MemRefView(value.storage, value.base_linear_offset())
    return None


@register_evaluator("llvm.load")
def _eval_llvm_load(ctx, op, args):
    target = _pointer_window(args[0])
    if target is None:
        raise TrapError(
            f"'{op.name}' through an opaque host pointer is not executable")
    ctx.counters.count_load(target.element_bytes)
    return [target.load_flat(0)]


@register_evaluator("llvm.store")
def _eval_llvm_store(ctx, op, args):
    target = _pointer_window(args[1])
    if target is None:
        raise TrapError(
            f"'{op.name}' through an opaque host pointer is not executable")
    ctx.counters.count_store(target.element_bytes)
    target.store_flat(0, args[0])
    return []


@register_evaluator("llvm.getelementptr")
def _eval_llvm_gep(ctx, op, args):
    offset = sum(op.static_offsets) + sum(int(v) for v in args[1:])
    base = args[0]
    if isinstance(base, MemRefView):
        return [MemRefView(base.storage, base.base + offset)]
    if isinstance(base, MemRefStorage):
        return [MemRefView(base, offset)]
    if isinstance(base, AccessorBinding):
        return [MemRefView(base.storage, base.base_linear_offset() + offset)]
    raise TrapError(
        f"'{op.name}' over an opaque host pointer is not executable")


@register_evaluator("llvm.call")
def _eval_llvm_call(ctx, op, args):
    callee = op.callee_name()
    if callee is None:
        raise InterpreterError("llvm.call without a callee symbol")
    results = yield from ctx.call(callee, args)
    if len(results) != len(op.results):
        raise InterpreterError(
            f"call to '{callee}' returned {len(results)} values, "
            f"call site expects {len(op.results)}")
    return results


def _eval_llvm_unsupported(ctx, op, args):
    raise TrapError(
        f"'{op.name}' models opaque host LLVM IR and is not executable; "
        "raise the host module (host-raising pass) or interpret device "
        "functions instead")


for _name in ("llvm.mlir.global", "llvm.mlir.addressof"):
    register_evaluator(_name, _eval_llvm_unsupported)


class LLVMDialect(Dialect):
    NAME = "llvm"
