"""``scf`` dialect: structured control flow (loops and conditionals)."""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..ir import (
    Block,
    Dialect,
    IndexType,
    LoopLikeInterface,
    Operation,
    Trait,
    Type,
    Value,
    register_op,
)
from .arith import constant_value_of


@register_op
class YieldOp(Operation):
    """Terminator yielding values from an ``scf`` region."""

    OPERATION_NAME = "scf.yield"
    TRAITS = frozenset({Trait.TERMINATOR, Trait.PURE})

    @classmethod
    def build(cls, values: Sequence[Value] = ()) -> "YieldOp":
        return cls(operands=tuple(values))


@register_op
class ForOp(Operation, LoopLikeInterface):
    """Counted loop ``for %iv = %lb to %ub step %step iter_args(...)``."""

    OPERATION_NAME = "scf.for"
    TRAITS = frozenset({Trait.SINGLE_BLOCK, Trait.LOOP_LIKE})

    @classmethod
    def build(cls, lower: Value, upper: Value, step: Value,
              iter_args: Sequence[Value] = ()) -> "ForOp":
        result_types = tuple(v.type for v in iter_args)
        op = cls(operands=(lower, upper, step, *iter_args),
                 result_types=result_types, regions=1)
        body = Block([IndexType(), *[v.type for v in iter_args]],
                     ["iv"] + [f"iter{i}" for i in range(len(iter_args))])
        op.regions[0].add_block(body)
        return op

    # -- accessors -----------------------------------------------------------
    @property
    def lower_bound(self) -> Value:
        return self.operands[0]

    @property
    def upper_bound(self) -> Value:
        return self.operands[1]

    @property
    def step(self) -> Value:
        return self.operands[2]

    @property
    def init_args(self) -> Sequence[Value]:
        return self.operands[3:]

    @property
    def body(self) -> Block:
        return self.regions[0].front

    def induction_variable(self) -> Value:
        return self.body.arguments[0]

    @property
    def region_iter_args(self) -> Sequence[Value]:
        return self.body.arguments[1:]

    def loop_body(self) -> Block:
        return self.body

    def loop_bounds(self):
        return (self.lower_bound, self.upper_bound, self.step)

    def constant_trip_count(self) -> Optional[int]:
        lb = constant_value_of(self.lower_bound)
        ub = constant_value_of(self.upper_bound)
        step = constant_value_of(self.step)
        if lb is None or ub is None or step is None or step <= 0:
            return None
        return max(0, -(-(ub - lb) // step))

    def yielded_values(self) -> Sequence[Value]:
        terminator = self.body.terminator
        return terminator.operands if terminator is not None else ()


@register_op
class IfOp(Operation):
    """Conditional with a then region and an optional else region."""

    OPERATION_NAME = "scf.if"
    TRAITS = frozenset({Trait.SINGLE_BLOCK})

    @classmethod
    def build(cls, condition: Value, result_types: Sequence[Type] = (),
              with_else: bool = False) -> "IfOp":
        op = cls(operands=(condition,), result_types=tuple(result_types),
                 regions=2 if with_else or result_types else 1)
        op.regions[0].add_block(Block())
        if len(op.regions) > 1:
            op.regions[1].add_block(Block())
        return op

    @property
    def condition(self) -> Value:
        return self.operands[0]

    @property
    def then_block(self) -> Block:
        return self.regions[0].front

    @property
    def else_block(self) -> Optional[Block]:
        if len(self.regions) < 2 or self.regions[1].empty:
            return None
        return self.regions[1].front

    def has_else(self) -> bool:
        return self.else_block is not None


@register_op
class WhileOp(Operation):
    """General while loop with a condition ("before") and body ("after") region."""

    OPERATION_NAME = "scf.while"
    TRAITS = frozenset({Trait.LOOP_LIKE})

    @classmethod
    def build(cls, init_args: Sequence[Value],
              result_types: Sequence[Type]) -> "WhileOp":
        op = cls(operands=tuple(init_args), result_types=tuple(result_types),
                 regions=2)
        op.regions[0].add_block(Block([v.type for v in init_args]))
        op.regions[1].add_block(Block(list(result_types)))
        return op

    @property
    def before_block(self) -> Block:
        return self.regions[0].front

    @property
    def after_block(self) -> Block:
        return self.regions[1].front


@register_op
class ConditionOp(Operation):
    """Terminator of the "before" region of ``scf.while``."""

    OPERATION_NAME = "scf.condition"
    TRAITS = frozenset({Trait.TERMINATOR, Trait.PURE})

    @classmethod
    def build(cls, condition: Value, args: Sequence[Value] = ()) -> "ConditionOp":
        return cls(operands=(condition, *args))


@register_op
class ParallelOp(Operation, LoopLikeInterface):
    """Parallel loop nest (used when lowering ND-range execution)."""

    OPERATION_NAME = "scf.parallel"
    TRAITS = frozenset({Trait.SINGLE_BLOCK, Trait.LOOP_LIKE})

    @classmethod
    def build(cls, lowers: Sequence[Value], uppers: Sequence[Value],
              steps: Sequence[Value]) -> "ParallelOp":
        rank = len(lowers)
        op = cls(operands=(*lowers, *uppers, *steps), regions=1)
        op.regions[0].add_block(
            Block([IndexType()] * rank, [f"iv{i}" for i in range(rank)]))
        op.rank = rank
        return op

    @property
    def body(self) -> Block:
        return self.regions[0].front

    def loop_body(self) -> Block:
        return self.body

    def induction_variable(self) -> Value:
        return self.body.arguments[0]

    def loop_bounds(self):
        rank = getattr(self, "rank", len(self.body.arguments))
        return (self.operands[:rank], self.operands[rank:2 * rank],
                self.operands[2 * rank:3 * rank])


def loop_ops() -> List[str]:
    """Names of loop-like scf operations (used by generic analyses)."""
    return [ForOp.OPERATION_NAME, WhileOp.OPERATION_NAME,
            ParallelOp.OPERATION_NAME]


class SCFDialect(Dialect):
    NAME = "scf"


# ---------------------------------------------------------------------------
# Interpreter evaluators (see repro.interp).  Region-executing evaluators
# are generator functions delegating with ``yield from`` so work-group
# barriers nested inside loop/if bodies can suspend the work item.
# ---------------------------------------------------------------------------

import itertools  # noqa: E402

from ..interp.memory import BlockResult, TrapError  # noqa: E402
from ..interp.registry import register_evaluator  # noqa: E402


@register_evaluator("scf.yield")
def _eval_yield(ctx, op, args):
    return BlockResult("yield", tuple(args))


@register_evaluator("scf.condition")
def _eval_condition(ctx, op, args):
    return BlockResult("condition", tuple(args))


@register_evaluator("scf.for")
def _eval_for(ctx, op, args):
    lower, upper, step = int(args[0]), int(args[1]), int(args[2])
    if step <= 0:
        raise TrapError(f"scf.for with non-positive step {step}")
    carried = list(args[3:])
    body = op.body
    for iv in range(lower, upper, step):
        outcome = yield from ctx.exec_block(body, [iv, *carried])
        if outcome.kind == "yield":
            carried = list(outcome.values)
    return carried


@register_evaluator("scf.if")
def _eval_if(ctx, op, args):
    block = op.then_block if args[0] else op.else_block
    if block is None:
        if op.results:
            raise TrapError("scf.if with results but no else region")
        return []
    outcome = yield from ctx.exec_block(block)
    return list(outcome.values)


@register_evaluator("scf.while")
def _eval_while(ctx, op, args):
    carried = list(args)
    while True:
        outcome = yield from ctx.exec_block(op.before_block, carried)
        if outcome.kind != "condition":
            raise TrapError(
                "scf.while 'before' region must end in scf.condition")
        if not outcome.values[0]:
            return list(outcome.values[1:])
        after = yield from ctx.exec_block(op.after_block,
                                          list(outcome.values[1:]))
        carried = list(after.values)


@register_evaluator("scf.parallel")
def _eval_parallel(ctx, op, args):
    rank = len(op.body.arguments)
    lowers = [int(v) for v in args[:rank]]
    uppers = [int(v) for v in args[rank:2 * rank]]
    steps = [int(v) for v in args[2 * rank:3 * rank]]
    if any(step <= 0 for step in steps):
        raise TrapError("scf.parallel with non-positive step")
    spaces = [range(lo, up, st) for lo, up, st in zip(lowers, uppers, steps)]
    for point in itertools.product(*spaces):
        yield from ctx.exec_block(op.body, list(point))
    return []
